(* burstsim — command-line driver for the ICDCS 2000 TCP-burstiness
   reproduction. Subcommands regenerate the paper's tables and figures or
   run custom experiments. *)

open Cmdliner

let std = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)

let duration =
  let doc = "Total simulated time per run, in seconds (Table 1: 200)." in
  Arg.(value & opt float 200. & info [ "duration" ] ~docv:"SECONDS" ~doc)

let seed =
  let doc = "Base RNG seed; every run derives from it deterministically." in
  Arg.(value & opt int 0x1CDC5 & info [ "seed" ] ~docv:"INT" ~doc)

let fast =
  let doc =
    "Reduced scale: 60 s runs and a sparser client sweep. Roughly 10x faster; \
     shapes are preserved, absolute counts shrink."
  in
  Arg.(value & flag & info [ "fast" ] ~doc)

let clients_list =
  let doc = "Comma-separated client counts to sweep." in
  Arg.(value & opt (some (list int)) None & info [ "clients" ] ~docv:"N,N,..." ~doc)

let base_config ~duration ~seed ~fast =
  let cfg = { Burstcore.Config.default with seed = Int64.of_int seed } in
  let cfg =
    if fast then { cfg with duration_s = 60.; warmup_s = 5. }
    else { cfg with duration_s = duration }
  in
  (* Keep the warm-up inside short custom durations. *)
  { cfg with warmup_s = Stdlib.min cfg.warmup_s (cfg.duration_s /. 4.) }

let sweep_counts ~fast ~clients_list =
  match clients_list with
  | Some ns -> ns
  | None ->
      if fast then [ 5; 15; 25; 30; 36; 39; 42; 50; 60 ]
      else Burstcore.Figures.default_client_counts

let scenario_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "udp" -> Ok Burstcore.Scenario.udp
    | "reno" -> Ok Burstcore.Scenario.reno
    | "reno-red" | "reno/red" -> Ok Burstcore.Scenario.reno_red
    | "reno-delack" | "reno/delack" -> Ok Burstcore.Scenario.reno_delack
    | "vegas" -> Ok Burstcore.Scenario.vegas
    | "vegas-red" | "vegas/red" -> Ok Burstcore.Scenario.vegas_red
    | "tahoe" -> Ok Burstcore.Scenario.tahoe
    | "newreno" -> Ok Burstcore.Scenario.newreno
    | "reno-ecn" | "reno/ecn" -> Ok Burstcore.Scenario.reno_ecn
    | "vegas-ecn" | "vegas/ecn" -> Ok Burstcore.Scenario.vegas_ecn
    | "reno-ared" | "reno/ared" -> Ok Burstcore.Scenario.reno_ared
    | "vegas-ared" | "vegas/ared" -> Ok Burstcore.Scenario.vegas_ared
    | "sack" -> Ok Burstcore.Scenario.sack
    | "sack-red" | "sack/red" -> Ok Burstcore.Scenario.sack_red
    | "reno-sfq" | "reno/sfq" -> Ok Burstcore.Scenario.reno_sfq
    | "vegas-sfq" | "vegas/sfq" -> Ok Burstcore.Scenario.vegas_sfq
    | _ -> Error (`Msg (Printf.sprintf "unknown scenario %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Burstcore.Scenario.label s) in
  Arg.conv (parse, print)

let progress label = Format.eprintf "running %s...@." label

let jobs =
  let doc =
    "Fan independent simulation points across $(docv) domains. Results are \
     bit-identical for every value; only wall-clock time changes. The default \
     1 runs everything sequentially on the calling domain."
  in
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "JOBS must be at least 1")
      | None -> Error (`Msg (Printf.sprintf "invalid job count %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt jobs_conv 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

(* ------------------------------------------------------------------ *)
(* Telemetry options (shared by the simulation subcommands)            *)

type tele_opts = {
  report_out : string option; (* None = off, Some "-" = stderr *)
  trace_out : string option;
  record_out : string option;
  burst_out : string option;
  want_progress : bool;
}

let tele_term =
  let report_out =
    let doc =
      "Collect run telemetry (phase timings, event counts, queue high-water \
       marks, events/sec) and write the JSON report to $(docv), or to stderr \
       when $(docv) is omitted."
    in
    Arg.(
      value
      & opt ~vopt:(Some "-") (some string) None
      & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let trace_out =
    let doc =
      "Write every simulation event (packet, TCP congestion decision, RED \
       queue decision) as one NDJSON line to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let record_out =
    let doc =
      "Record every simulation event plus lifecycle records (congestion \
       phases, RTT samples, receiver reordering, run markers) in the binary \
       flight-recorder format to $(docv); query the file with the 'trace \
       decode/stats/grep/spans' subcommands. Unlike --trace-out the recorder \
       is allocation-free on the hot path and works with --jobs > 1."
    in
    Arg.(
      value & opt (some string) None & info [ "record-out" ] ~docv:"FILE" ~doc)
  in
  let burst_out =
    let doc =
      "Attach the streaming multi-timescale burstiness aggregator \
       (per-scale c.o.v. and index of dispersion, wavelet logscale diagram, \
       queue-oscillation detector) to every run and write the per-run \
       summaries as one JSON document to $(docv). Composes with --jobs; \
       rows appear in input order."
    in
    Arg.(value & opt (some string) None & info [ "burst-out" ] ~docv:"FILE" ~doc)
  in
  let want_progress =
    let doc = "Report per-run progress with an ETA on stderr." in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  Term.(
    const (fun report_out trace_out record_out burst_out want_progress ->
        { report_out; trace_out; record_out; burst_out; want_progress })
    $ report_out $ trace_out $ record_out $ burst_out $ want_progress)

(* Run [f] with a pool of [jobs] domains, or without one when sequential. *)
let with_jobs ~jobs f =
  if jobs <= 1 then f None
  else Parallel.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* Build the probe + sinks a subcommand asked for, run [f probe notify]
   under the "total" phase, emit the report, and return [f]'s result.
   [notify] is the after-each-run hook; it feeds the progress reporter. *)
let open_sink path =
  try open_out path
  with Sys_error msg ->
    Format.eprintf "burstsim: cannot open %s@." msg;
    exit 1

(* Decode the parity records of the accumulated flight-recorder segments
   back into the NDJSON stream the live bus tracer would have produced —
   the --trace-out path under --jobs > 1, where no single ordered bus
   stream exists during the run. *)
let decode_segments_to_ndjson probe oc =
  List.iter
    (fun r ->
      let interns = Telemetry.Recorder.intern_array r in
      let lookup i =
        if i >= 0 && i < Array.length interns then interns.(i)
        else Printf.sprintf "?%d" i
      in
      Telemetry.Recorder.iter_merged r (fun ~lane:_ ~seq:_ words off ->
          match Telemetry.Record.event_of_record ~lookup words off with
          | Some e -> Telemetry.Event_bus.ndjson_writer oc e
          | None -> ()))
    (Telemetry.Probe.segments probe)

let with_telemetry ~label ?(total_runs = 0) ?(jobs = 1) opts f =
  (match (opts.record_out, opts.trace_out) with
  | Some r, Some t when r = t ->
      Format.eprintf
        "burstsim: --record-out and --trace-out name the same file %s@." r;
      exit 1
  | _ -> ());
  if
    opts.report_out = None && opts.trace_out = None && opts.record_out = None
    && opts.burst_out = None
    && not opts.want_progress
  then f None (fun (_ : string) -> ())
  else begin
    let probe = Telemetry.Probe.create () in
    if opts.burst_out <> None then
      Telemetry.Probe.set_burst probe (Some Telemetry.Burst.default_config);
    (* --record-out captures the full lifecycle stream; --trace-out under
       --jobs > 1 records parity events per domain instead of streaming
       from the bus, then decodes them at the end so the file stays
       byte-identical to a sequential run's. *)
    (match opts.record_out with
    | Some _ ->
        Telemetry.Probe.set_recording probe Telemetry.Recorder.default_config
    | None ->
        if opts.trace_out <> None && jobs > 1 then
          Telemetry.Probe.set_recording probe
            { Telemetry.Recorder.default_config with lifecycle = false });
    let trace_oc = Option.map open_sink opts.trace_out in
    (match trace_oc with
    | Some oc when jobs <= 1 ->
        ignore
          (Telemetry.Event_bus.subscribe probe.Telemetry.Probe.bus
             (Telemetry.Event_bus.ndjson_writer oc))
    | Some _ | None -> ());
    let reporter =
      if opts.want_progress && total_runs > 0 then
        Some (Telemetry.Progress.create ~total:total_runs ())
      else None
    in
    let notify point =
      match reporter with
      | Some r ->
          Telemetry.Progress.step r
            ~events:(Telemetry.Probe.events_total probe)
            point
      | None -> ()
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Option.iter close_out trace_oc)
        (fun () ->
          let result =
            Telemetry.Probe.time (Some probe) "total" (fun () ->
                f (Some probe) notify)
          in
          (match trace_oc with
          | Some oc when jobs > 1 -> decode_segments_to_ndjson probe oc
          | Some _ | None -> ());
          result)
    in
    (match reporter with Some r -> Telemetry.Progress.finish r | None -> ());
    (match opts.record_out with
    | Some path ->
        let oc = open_sink path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Telemetry.Probe.write_segments probe oc);
        Format.eprintf "wrote flight recording to %s@." path
    | None -> ());
    let report = Telemetry.Report.of_probe ~label probe in
    (match opts.report_out with
    | Some "-" ->
        prerr_endline
          (Burstcore.Json.to_string (Telemetry.Report.to_json report))
    | Some path -> (
        match Burstcore.Export.write_run_report path report with
        | () -> Format.eprintf "wrote telemetry report to %s@." path
        | exception Sys_error msg ->
            Format.eprintf "burstsim: cannot write %s@." msg;
            exit 1)
    | None -> ());
    result
  end

(* Write the --burst-out artifact from whatever run metrics the command
   produced. Runs without a burst summary are filtered out, so commands
   that return no metrics write an empty "runs" list. *)
let write_burst_out opts (ms : Burstcore.Metrics.t list) =
  match opts.burst_out with
  | None -> ()
  | Some path ->
      Burstcore.Export.write_file path
        (Burstcore.Json.to_string (Burstcore.Export.burst_to_json ms) ^ "\n");
      Format.eprintf "wrote burst summaries to %s@." path

let sweep_metrics (sweep : Burstcore.Figures.sweep_result) =
  List.concat_map snd sweep

(* ------------------------------------------------------------------ *)
(* table1                                                              *)

let table1_cmd =
  let run duration seed fast tele =
    with_telemetry ~label:"table1" tele (fun _probe _notify ->
        Burstcore.Figures.table1 std (base_config ~duration ~seed ~fast))
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the simulation parameters (Table 1).")
    Term.(const run $ duration $ seed $ fast $ tele_term)

(* ------------------------------------------------------------------ *)
(* fig N                                                               *)

let fig_number =
  let doc = "Figure number (2-13)." in
  Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)

let render_sweep_figure ?pool ?probe ?notify n cfg counts =
  let sweep = Burstcore.Figures.run_sweep ?pool ?probe ?notify ~progress cfg counts in
  (match n with
  | 2 -> Burstcore.Figures.fig2 std sweep cfg
  | 3 -> Burstcore.Figures.fig3 std sweep
  | 4 -> Burstcore.Figures.fig4 std sweep
  | 13 -> Burstcore.Figures.fig13 std sweep
  | _ -> assert false);
  sweep

let n_paper_series = List.length Burstcore.Scenario.paper_series

let replicates_opt =
  let doc = "Independent seeds per point (figure 2 only)." in
  Arg.(value & opt int 1 & info [ "replicates" ] ~docv:"R" ~doc)

let fig_cmd =
  let run n duration seed fast clients_list replicates jobs tele =
    let cfg = base_config ~duration ~seed ~fast in
    let counts = sweep_counts ~fast ~clients_list in
    let sweep_runs = n_paper_series * List.length counts in
    match n with
    | 2 when replicates > 1 ->
        with_jobs ~jobs (fun pool ->
            with_telemetry ~label:"fig 2 (replicated)"
              ~total_runs:(sweep_runs * replicates) ~jobs tele (fun probe notify ->
                Burstcore.Figures.fig2_replicated ?pool ?probe ~notify std cfg
                  counts ~replicates));
        write_burst_out tele []
    | 2 | 3 | 4 | 13 ->
        let sweep =
          with_jobs ~jobs (fun pool ->
              with_telemetry
                ~label:(Printf.sprintf "fig %d" n)
                ~total_runs:sweep_runs ~jobs tele
                (fun probe notify ->
                  render_sweep_figure ?pool ?probe ~notify n cfg counts))
        in
        write_burst_out tele (sweep_metrics sweep)
    | _ -> (
        match
          List.find_opt
            (fun (k, _, _) -> k = n)
            Burstcore.Figures.cwnd_figures
        with
        | Some (k, scenario, clients) ->
            with_telemetry
              ~label:(Printf.sprintf "fig %d" k)
              ~total_runs:1 tele
              (fun probe notify ->
                Burstcore.Figures.fig_cwnd ?probe std cfg ~scenario ~clients
                  ~label:(Printf.sprintf "Figure %d" k);
                notify
                  (Printf.sprintf "%s n=%d"
                     (Burstcore.Scenario.label scenario)
                     clients));
            write_burst_out tele []
        | None ->
            Format.eprintf "no such figure: %d (valid: 2-13)@." n;
            exit 1)
  in
  Cmd.v
    (Cmd.info "fig" ~doc:"Regenerate one figure of the paper.")
    Term.(
      const run $ fig_number $ duration $ seed $ fast $ clients_list
      $ replicates_opt $ jobs $ tele_term)

(* ------------------------------------------------------------------ *)
(* all                                                                 *)

let all_cmd =
  let run duration seed fast clients_list jobs tele =
    let cfg = base_config ~duration ~seed ~fast in
    let counts = sweep_counts ~fast ~clients_list in
    let total_runs =
      (n_paper_series * List.length counts)
      + List.length Burstcore.Figures.cwnd_figures
    in
    let sweep =
      with_jobs ~jobs @@ fun pool ->
      with_telemetry ~label:"all" ~total_runs ~jobs tele (fun probe notify ->
        Burstcore.Figures.table1 std cfg;
        let sweep =
          Burstcore.Figures.run_sweep ?pool ?probe ~notify ~progress cfg counts
        in
        Format.fprintf std "@.";
        Burstcore.Figures.fig2 std sweep cfg;
        Format.fprintf std "@.";
        Burstcore.Figures.fig3 std sweep;
        Format.fprintf std "@.";
        Burstcore.Figures.fig4 std sweep;
        Format.fprintf std "@.";
        Burstcore.Figures.fig13 std sweep;
        List.iter
          (fun (k, scenario, clients) ->
            Format.fprintf std "@.";
            Burstcore.Figures.fig_cwnd ?probe std cfg ~scenario ~clients
              ~label:(Printf.sprintf "Figure %d" k);
            notify
              (Printf.sprintf "fig %d: %s n=%d" k
                 (Burstcore.Scenario.label scenario)
                 clients))
          Burstcore.Figures.cwnd_figures;
        sweep)
    in
    write_burst_out tele (sweep_metrics sweep)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure.")
    Term.(const run $ duration $ seed $ fast $ clients_list $ jobs $ tele_term)

(* ------------------------------------------------------------------ *)
(* run — one custom experiment                                         *)

let run_cmd =
  let scenario =
    let doc =
      "Scenario: udp, reno, reno-red, reno-delack, vegas, vegas-red, tahoe, \
       newreno, reno-ecn, vegas-ecn, reno-ared, vegas-ared, sack, sack-red, \
       reno-sfq, vegas-sfq."
    in
    Arg.(value & opt scenario_conv Burstcore.Scenario.reno & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let clients =
    let doc = "Number of clients." in
    Arg.(value & opt int 30 & info [ "n"; "clients" ] ~docv:"N" ~doc)
  in
  let json =
    let doc = "Print the metrics as a JSON document instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let shards =
    let doc =
      "Parallelise this single run over $(docv) domains with the sharded \
       conservative-PDES engine. Results are bit-identical for every \
       $(docv) >= 1 with the same seed; 0 (the default) runs the classic \
       single-domain engine. Composes with --trace-out (shard traces are \
       merged into one deterministic stream) but not with --record-out."
    in
    Arg.(value & opt int 0 & info [ "shards" ] ~docv:"K" ~doc)
  in
  let background =
    let doc =
      "Add $(docv) background Reno flows to the bottleneck via the hybrid \
       fluid/packet engine: they are simulated as one mean-field ODE \
       coupled to the packet-level queue each quantum, so a million \
       background users cost O(1) work per simulated second. 0 (the \
       default) disables the coupling. Composes with --shards, \
       --trace-out and --burst-out."
    in
    Arg.(value & opt int 0 & info [ "background" ] ~docv:"M" ~doc)
  in
  let foreground =
    let doc =
      "Alias for --clients, named for hybrid runs: the number of \
       packet-level foreground flows alongside --background fluid flows. \
       Overrides --clients when both are given."
    in
    Arg.(value & opt (some int) None & info [ "foreground" ] ~docv:"K" ~doc)
  in
  let run scenario clients duration seed fast json shards background foreground
      tele =
    let clients = Option.value ~default:clients foreground in
    if shards < 0 then begin
      Format.eprintf "burstsim: --shards must be >= 0 (got %d)@." shards;
      exit 1
    end;
    if shards > 0 && tele.record_out <> None then begin
      Format.eprintf
        "burstsim: --record-out needs the classic single-domain engine and \
         cannot be combined with --shards; drop --shards, or use --trace-out \
         (its NDJSON stream is merged deterministically across shard \
         domains)@.";
      exit 1
    end;
    if background < 0 then begin
      Format.eprintf "burstsim: --background must be >= 0 (got %d)@."
        background;
      exit 1
    end;
    let cfg =
      {
        (Burstcore.Config.with_clients (base_config ~duration ~seed ~fast)
           clients)
        with
        shards;
        background;
      }
    in
    let m =
      with_telemetry ~label:(Burstcore.Scenario.label scenario)
        ~total_runs:1 tele (fun probe notify ->
          let m = Burstcore.Run.run ?probe ~trace_clients:[ 0 ] cfg scenario in
          notify
            (Printf.sprintf "%s n=%d" (Burstcore.Scenario.label scenario) clients);
          m)
    in
    write_burst_out tele [ m ];
    if json then
      Format.fprintf std "%s@."
        (Burstcore.Json.to_string
           (Burstcore.Json.Obj
              [
                ("config", Burstcore.Export.config_to_json cfg);
                ("metrics", Burstcore.Export.metrics_to_json m);
              ]))
    else begin
      Format.fprintf std "%a@." Burstcore.Metrics.pp_row m;
      Format.fprintf std
        "offered=%d sent=%d retransmits=%d fast_rtx=%d gateway arrivals=%d drops=%d@."
        m.Burstcore.Metrics.offered m.Burstcore.Metrics.segments_sent
        m.Burstcore.Metrics.retransmits m.Burstcore.Metrics.fast_retransmits
        m.Burstcore.Metrics.gateway_arrivals m.Burstcore.Metrics.gateway_drops
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one scenario and print its metrics.")
    Term.(
      const run $ scenario $ clients $ duration $ seed $ fast $ json $ shards
      $ background $ foreground $ tele_term)

(* ------------------------------------------------------------------ *)
(* trace — packet-level event trace of the bottleneck                  *)

(* --- trace query subcommands: read a --record-out file back --- *)

let recording_pos =
  let doc = "Flight recording written by --record-out." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let query_out =
  let doc = "Output file; stdout when omitted." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let read_recording path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Format.eprintf "burstsim: cannot read %s@." msg;
      exit 1
  in
  match
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Telemetry.Recorder.read_segments ic)
  with
  | [] ->
      Format.eprintf "burstsim: %s: empty recording@." path;
      exit 1
  | segments -> segments
  | exception Failure msg ->
      Format.eprintf "burstsim: %s: %s@." path msg;
      exit 1

let with_query_out out f =
  match out with
  | None -> f stdout
  | Some path ->
      let oc = open_sink path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let iter_records segments f =
  List.iter
    (fun seg ->
      let lookup = Telemetry.Recorder.seg_lookup seg in
      Telemetry.Recorder.iter_segment seg (fun ~lane ~seq words off ->
          f seg lookup ~lane ~seq words off))
    segments

let trace_decode_cmd =
  let run file out =
    let segments = read_recording file in
    with_query_out out (fun oc ->
        iter_records segments (fun _seg lookup ~lane:_ ~seq:_ words off ->
            output_string oc
              (Telemetry.Record.ndjson_of_record ~lookup words off);
            output_char oc '\n'))
  in
  Cmd.v
    (Cmd.info "decode"
       ~doc:
         "Decode a flight recording to NDJSON, one event per line. For a \
          recording made by --trace-out under --jobs > 1 semantics, parity \
          events serialize byte-identically to the live tracer's output.")
    Term.(const run $ recording_pos $ query_out)

let trace_stats_cmd =
  let run file =
    let segments = read_recording file in
    List.iter
      (fun seg ->
        let counts = Array.make (Telemetry.Record.max_kind + 1) 0 in
        let first = ref max_int and last = ref min_int and total = ref 0 in
        Telemetry.Recorder.iter_segment seg (fun ~lane:_ ~seq:_ words off ->
            incr total;
            let tick = words.(off) and kind = words.(off + 1) in
            if tick < !first then first := tick;
            if tick > !last then last := tick;
            if kind >= 0 && kind < Array.length counts then
              counts.(kind) <- counts.(kind) + 1);
        Format.fprintf std "segment %S@." (Telemetry.Recorder.seg_label seg);
        List.iter
          (fun l ->
            Format.fprintf std "  lane %d: %d recorded, %d retained, %d dropped@."
              (Telemetry.Recorder.read_lane_id l)
              (Telemetry.Recorder.read_lane_total l)
              (Telemetry.Recorder.read_lane_retained l)
              (Telemetry.Recorder.read_lane_dropped l))
          (Telemetry.Recorder.seg_lanes seg);
        if !total > 0 then
          Format.fprintf std "  ticks %.6f .. %.6f s (%d records)@."
            (Telemetry.Record.time_of_tick !first)
            (Telemetry.Record.time_of_tick !last)
            !total;
        Array.iteri
          (fun kind n ->
            if n > 0 then
              Format.fprintf std "  %-20s %d@."
                (Telemetry.Record.kind_label kind)
                n)
          counts)
      segments
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Summarize a flight recording: per-segment lanes, drop accounting, \
          tick range and record counts by kind.")
    Term.(const run $ recording_pos)

let trace_grep_cmd =
  let flow_opt =
    let doc = "Only records of flow $(docv)." in
    Arg.(value & opt (some int) None & info [ "flow" ] ~docv:"N" ~doc)
  in
  let kind_opt =
    let doc =
      "Only records of kind $(docv) (a kind label as printed by 'trace \
       stats', e.g. packet_drop or tcp_phase)."
    in
    Arg.(value & opt (some string) None & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let from_opt =
    let doc = "Only records at or after $(docv) simulated seconds." in
    Arg.(value & opt (some float) None & info [ "from" ] ~docv:"SECONDS" ~doc)
  in
  let to_opt =
    let doc = "Only records at or before $(docv) simulated seconds." in
    Arg.(value & opt (some float) None & info [ "to" ] ~docv:"SECONDS" ~doc)
  in
  let run file flow kind tfrom tto out =
    let kind_code =
      match kind with
      | None -> None
      | Some label -> (
          match Telemetry.Record.kind_of_label label with
          | Some c -> Some c
          | None ->
              Format.eprintf "burstsim: unknown record kind %S@." label;
              exit 1)
    in
    let segments = read_recording file in
    with_query_out out (fun oc ->
        iter_records segments (fun _seg lookup ~lane:_ ~seq:_ words off ->
            let tick = words.(off) in
            let t = Telemetry.Record.time_of_tick tick in
            let keep =
              (match flow with None -> true | Some f -> words.(off + 2) = f)
              && (match kind_code with
                 | None -> true
                 | Some k -> words.(off + 1) = k)
              && (match tfrom with None -> true | Some s -> t >= s)
              && match tto with None -> true | Some s -> t <= s
            in
            if keep then begin
              output_string oc
                (Telemetry.Record.ndjson_of_record ~lookup words off);
              output_char oc '\n'
            end))
  in
  Cmd.v
    (Cmd.info "grep"
       ~doc:
         "Filter a flight recording by flow, kind and time range; print \
          matches as NDJSON.")
    Term.(
      const run $ recording_pos $ flow_opt $ kind_opt $ from_opt $ to_opt
      $ query_out)

let trace_spans_cmd =
  let prometheus =
    let doc =
      "Print the span histograms in Prometheus text exposition format \
       instead of the summary table."
    in
    Arg.(value & flag & info [ "prometheus" ] ~doc)
  in
  let run file prometheus =
    let segments = read_recording file in
    let registry = Telemetry.Registry.create () in
    List.iter (fun seg -> Telemetry.Spans.of_segment ~registry seg) segments;
    if prometheus then print_string (Telemetry.Registry.to_prometheus registry)
    else
      List.iter
        (fun (name, h) ->
          let n = Telemetry.Registry.observations h in
          if n = 0 then Format.fprintf std "%-18s no samples@." name
          else
            Format.fprintf std "%-18s n=%-8d p50=%.6gs p99=%.6gs@." name n
              (Telemetry.Registry.p50 h) (Telemetry.Registry.p99 h))
        (Telemetry.Spans.histograms registry)
  in
  Cmd.v
    (Cmd.info "spans"
       ~doc:
         "Derive lifecycle spans (packet sojourn, RTT samples, congestion \
          phases) from a flight recording and print their distributions.")
    Term.(const run $ recording_pos $ prometheus)

let trace_cmd =
  let scenario =
    let doc = "Scenario to trace." in
    Arg.(value & opt scenario_conv Burstcore.Scenario.reno & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let clients =
    let doc = "Number of clients." in
    Arg.(value & opt int 20 & info [ "n"; "clients" ] ~docv:"N" ~doc)
  in
  let out =
    let doc = "Output file; stdout when omitted." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run scenario clients out duration seed fast tele =
    let cfg =
      Burstcore.Config.with_clients (base_config ~duration ~seed ~fast) clients
    in
    let tracer = Netsim.Tracer.create () in
    let m =
      with_telemetry ~label:(Burstcore.Scenario.label scenario) ~total_runs:1
        tele (fun probe notify ->
          let m =
            Burstcore.Run.run ?probe
              ~prepare:(fun net ->
                Netsim.Tracer.attach tracer (Burstcore.Dumbbell.pool net)
                  (Burstcore.Dumbbell.bottleneck net))
              cfg scenario
          in
          notify
            (Printf.sprintf "%s n=%d" (Burstcore.Scenario.label scenario) clients);
          m)
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Netsim.Tracer.output tracer oc);
        Format.eprintf "wrote %d events to %s@." (Netsim.Tracer.length tracer) path
    | None -> Netsim.Tracer.output tracer stdout);
    write_burst_out tele [ m ];
    Format.eprintf "%a@." Burstcore.Metrics.pp_row m
  in
  Cmd.group
    ~default:
      Term.(
        const run $ scenario $ clients $ out $ duration $ seed $ fast
        $ tele_term)
    (Cmd.info "trace"
       ~doc:
         "Run one scenario and emit an ns-style packet event trace of the \
          bottleneck link, or (with a subcommand) query a binary flight \
          recording written by --record-out.")
    [ trace_decode_cmd; trace_stats_cmd; trace_grep_cmd; trace_spans_cmd ]

(* ------------------------------------------------------------------ *)
(* burst — offline burstiness analysis of a recorded trace             *)

(* Sniff the 8-byte flight-recorder magic so one positional FILE serves
   both input formats. *)
let looks_like_recording path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Format.eprintf "burstsim: cannot read %s@." msg;
      exit 1
  | ic ->
      let n = String.length Telemetry.Recorder.magic in
      let b = Bytes.create n in
      let len =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> input ic b 0 n)
      in
      len = n && String.equal (Bytes.sub_string b 0 n) Telemetry.Recorder.magic

let burst_cmd =
  let file =
    let doc =
      "Input trace: a binary flight recording written by --record-out, or an \
       NDJSON event trace written by --trace-out ($(b,-) reads NDJSON from \
       stdin). The format is detected from the file header."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let width =
    let doc =
      "Base bin width in seconds; dyadic timescales double from here. \
       Defaults to the paper's RTT bin."
    in
    Arg.(value & opt (some float) None & info [ "width" ] ~docv:"SECONDS" ~doc)
  in
  let origin =
    let doc = "Ignore arrivals before $(docv) simulated seconds (warm-up)." in
    Arg.(value & opt float 0. & info [ "origin" ] ~docv:"SECONDS" ~doc)
  in
  let levels =
    let doc = "Number of dyadic timescales to fold." in
    Arg.(
      value
      & opt int Telemetry.Burst.default_config.Telemetry.Burst.levels
      & info [ "levels" ] ~docv:"K" ~doc)
  in
  let link =
    let doc = "Link whose arrival process is analysed." in
    Arg.(value & opt string "bottleneck" & info [ "link" ] ~docv:"NAME" ~doc)
  in
  let all_packets =
    let doc = "Count pure ACKs too (default: data segments only)." in
    Arg.(value & flag & info [ "all-packets" ] ~doc)
  in
  let json =
    let doc = "Print the summary as a JSON document instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run file width origin levels link all_packets json out =
    let width =
      match width with
      | Some w -> w
      | None -> Burstcore.Config.rtt_prop_s Burstcore.Config.default
    in
    let burst =
      try Telemetry.Burst.create ~levels ~origin ~width ()
      with Invalid_argument msg ->
        Format.eprintf "burstsim: %s@." msg;
        exit 1
    in
    let osc = Telemetry.Burst.Osc.create () in
    let osc_fed = ref false in
    let last = ref origin in
    let feed t =
      Telemetry.Burst.observe burst t;
      if t > !last then last := t
    in
    if file <> "-" && looks_like_recording file then
      (* Recorded packet_arrival records carry the instantaneous queue
         depth, so the replay also drives the oscillation detector with
         per-arrival queue samples. *)
      iter_records (read_recording file)
        (fun _seg lookup ~lane:_ ~seq:_ words off ->
          if
            words.(off + 1) = Telemetry.Record.packet_arrival
            && String.equal (lookup words.(off + 6)) link
            && (all_packets || words.(off + 5) <> Telemetry.Record.no_seq)
          then begin
            let t = Telemetry.Record.time_of_tick words.(off) in
            feed t;
            if t >= origin then begin
              osc_fed := true;
              Telemetry.Burst.Osc.sample osc ~t
                (float_of_int words.(off + 7))
            end
          end)
    else begin
      (* NDJSON packet events have no queue-depth field, so only the
         arrival-count aggregator runs. *)
      let ic =
        if file = "-" then stdin
        else
          try open_in file
          with Sys_error msg ->
            Format.eprintf "burstsim: cannot read %s@." msg;
            exit 1
      in
      let jstr name j =
        match Burstcore.Json.member name j with
        | Some (Burstcore.Json.String s) -> Some s
        | _ -> None
      in
      let lineno = ref 0 in
      Fun.protect
        ~finally:(fun () -> if file <> "-" then close_in ic)
        (fun () ->
          try
            while true do
              let line = input_line ic in
              incr lineno;
              if String.length line > 0 then
                match Burstcore.Json.parse line with
                | Error msg ->
                    Format.eprintf "burstsim: %s:%d: %s@." file !lineno msg;
                    exit 1
                | Ok j ->
                    if
                      jstr "event" j = Some "packet"
                      && jstr "kind" j = Some "arrival"
                      && jstr "link" j = Some link
                      && (all_packets
                         || Burstcore.Json.member "seq" j
                            <> Some Burstcore.Json.Null)
                    then
                      Option.iter feed
                        (Option.bind
                           (Burstcore.Json.member "time" j)
                           Burstcore.Json.to_float)
            done
          with End_of_file -> ())
    end;
    if Telemetry.Burst.total burst = 0 then
      Format.eprintf
        "burstsim: no arrivals matched link %S (try --link or --all-packets)@."
        link;
    Telemetry.Burst.advance burst ~upto:!last;
    let osc = if !osc_fed then Some osc else None in
    let s = Telemetry.Burst.summary ?osc burst in
    with_query_out out (fun oc ->
        if json then
          output_string oc
            (Burstcore.Json.to_string (Telemetry.Burst.summary_to_json s) ^ "\n")
        else begin
          let ppf = Format.formatter_of_out_channel oc in
          Format.fprintf ppf "%a@." Telemetry.Burst.pp_summary s;
          Format.pp_print_flush ppf ()
        end)
  in
  Cmd.v
    (Cmd.info "burst"
       ~doc:
         "Replay a recorded trace (binary flight recording or NDJSON event \
          stream) through the streaming multi-timescale burstiness \
          aggregator: per-scale c.o.v. and index of dispersion, the wavelet \
          logscale diagram with a Hurst slope, and — for flight recordings, \
          which carry per-arrival queue depths — the queue-oscillation \
          detector.")
    Term.(
      const run $ file $ width $ origin $ levels $ link $ all_packets $ json
      $ query_out)

(* ------------------------------------------------------------------ *)
(* selfsim — extension: heavy-tailed sources vs Poisson                *)

let selfsim_cmd =
  let run duration seed fast =
    let cfg = base_config ~duration ~seed ~fast in
    Burstcore.Selfsim.report std cfg
  in
  Cmd.v
    (Cmd.info "selfsim"
       ~doc:
         "Extension: Hurst estimates for aggregated Poisson vs Pareto-on/off \
          traffic, connecting the paper to the self-similarity literature.")
    Term.(const run $ duration $ seed $ fast)

(* ------------------------------------------------------------------ *)
(* sync — extension: congestion-control synchronization               *)

let sync_cmd =
  let run duration seed fast clients_list =
    let cfg = base_config ~duration ~seed ~fast in
    let ns =
      match clients_list with Some ns -> ns | None -> [ 20; 30; 40; 50; 60 ]
    in
    Burstcore.Sync.report std cfg ns;
    Format.fprintf std "@.";
    Burstcore.Sync.desync_ablation std cfg ~clients:50
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:
         "Extension: synchronization index of the TCP streams' congestion           decisions, plus the desynchronization ablation.")
    Term.(const run $ duration $ seed $ fast $ clients_list)

(* ------------------------------------------------------------------ *)
(* fluid — fluid approximation vs packet simulation                   *)

let fluid_cmd =
  let run duration seed fast clients_list =
    let cfg = base_config ~duration ~seed ~fast in
    let flows = match clients_list with Some ns -> ns | None -> [ 4; 8; 16 ] in
    Burstcore.Fluid_compare.report std cfg flows
  in
  Cmd.v
    (Cmd.info "fluid"
       ~doc:
         "Extension: compare the Misra-Gong-Towsley Reno fluid model and           Bonald's Vegas equilibrium (the paper's reference [1] technique)           against greedy-flow packet simulations.")
    Term.(const run $ duration $ seed $ fast $ clients_list)

(* ------------------------------------------------------------------ *)
(* export — machine-readable sweep results                            *)

let export_cmd =
  let format =
    let doc = "Output format: json or csv." in
    Arg.(value & opt (enum [ ("json", `Json); ("csv", `Csv) ]) `Json
        & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out =
    let doc = "Output file." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run format out duration seed fast clients_list jobs tele =
    let cfg = base_config ~duration ~seed ~fast in
    let counts = sweep_counts ~fast ~clients_list in
    let sweep =
      with_jobs ~jobs @@ fun pool ->
      with_telemetry ~label:"export"
        ~total_runs:(n_paper_series * List.length counts)
        ~jobs tele
        (fun probe notify ->
          Burstcore.Figures.run_sweep ?pool ?probe ~notify ~progress cfg counts)
    in
    let contents =
      match format with
      | `Json -> Burstcore.Json.to_string (Burstcore.Export.sweep_to_json cfg sweep)
      | `Csv -> Burstcore.Export.sweep_to_csv sweep
    in
    Burstcore.Export.write_file out contents;
    Format.eprintf "wrote %s@." out;
    write_burst_out tele (sweep_metrics sweep)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Run the paper sweep and write the results as JSON or CSV.")
    Term.(
      const run $ format $ out $ duration $ seed $ fast $ clients_list $ jobs
      $ tele_term)

(* ------------------------------------------------------------------ *)
(* parking — multi-hop fairness experiment                            *)

let parking_cmd =
  let run duration seed fast =
    let cfg = base_config ~duration ~seed ~fast in
    Burstcore.Parking_lot.report std cfg
  in
  Cmd.v
    (Cmd.info "parking"
       ~doc:
         "Extension: parking-lot topology — one long flow crossing several           bottleneck hops against per-hop cross traffic.")
    Term.(const run $ duration $ seed $ fast)

(* ------------------------------------------------------------------ *)
(* twoway — bidirectional traffic / ACK compression                   *)

let twoway_cmd =
  let run duration seed fast clients_list =
    let cfg = base_config ~duration ~seed ~fast in
    let n = match clients_list with Some (n :: _) -> n | _ -> 30 in
    Burstcore.Twoway.report std (Burstcore.Config.with_clients cfg n)
  in
  Cmd.v
    (Cmd.info "twoway"
       ~doc:
         "Extension: add reverse-direction data flows so forward ACKs queue           behind them (ACK compression) and measure the forward burstiness.")
    Term.(const run $ duration $ seed $ fast $ clients_list)

(* ------------------------------------------------------------------ *)
(* report-check — validate a --telemetry report file                   *)

let report_check_cmd =
  let file =
    let doc = "Report file written by --telemetry=FILE." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let kind =
    let doc =
      "Report schema to check: $(b,telemetry) for a --telemetry=FILE report, \
       $(b,alloc) for the BENCH_alloc.json allocation-budget sweep, \
       $(b,flows) for the BENCH_flows.json flow-scaling sweep, \
       $(b,bench-telemetry) for the BENCH_telemetry.json overhead report, \
       $(b,burst) for the BENCH_burst.json burstiness-observability report, \
       $(b,parallel) for the BENCH_parallel.json parallelism report (sweep \
       fan-out and single-run sharded PDES), \
       $(b,hybrid) for the BENCH_hybrid.json hybrid fluid/packet report."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("telemetry", `Telemetry);
               ("alloc", `Alloc);
               ("flows", `Flows);
               ("bench-telemetry", `Bench_telemetry);
               ("burst", `Burst);
               ("parallel", `Parallel);
               ("hybrid", `Hybrid);
             ])
          `Telemetry
      & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let run kind file =
    let ic =
      try open_in file
      with Sys_error msg ->
        Format.eprintf "burstsim: cannot read %s@." msg;
        exit 1
    in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let validate, what =
      match kind with
      | `Telemetry -> (Telemetry.Report.validate, "telemetry report")
      | `Alloc -> (Telemetry.Report.validate_alloc, "alloc report")
      | `Flows -> (Telemetry.Report.validate_flows, "flows report")
      | `Bench_telemetry ->
          (Telemetry.Report.validate_bench_telemetry, "bench-telemetry report")
      | `Burst -> (Telemetry.Report.validate_burst, "burst report")
      | `Parallel -> (Telemetry.Report.validate_parallel, "parallel report")
      | `Hybrid -> (Telemetry.Report.validate_hybrid, "hybrid report")
    in
    match Result.bind (Burstcore.Json.parse contents) validate with
    | Ok () -> print_endline (what ^ " ok")
    | Error msg ->
        Format.eprintf "%s: invalid %s: %s@." file what msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "report-check"
       ~doc:
         "Validate a JSON report: a --telemetry=FILE run report, with \
          --kind=alloc the BENCH_alloc.json allocation sweep, with \
          --kind=flows the BENCH_flows.json flow-scaling sweep, with \
          --kind=bench-telemetry the BENCH_telemetry.json overhead report, \
          with --kind=burst the BENCH_burst.json burstiness report, with \
          --kind=parallel the BENCH_parallel.json parallelism report, or \
          with --kind=hybrid the BENCH_hybrid.json hybrid fluid/packet \
          report (all used by 'make check').")
    Term.(const run $ kind $ file)

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "burstsim" ~version:"1.8.0"
       ~doc:
         "Reproduction of 'On the Burstiness of the TCP Congestion-Control \
          Mechanism in a Distributed Computing System' (ICDCS 2000).")
    [ table1_cmd; fig_cmd; all_cmd; run_cmd; trace_cmd; burst_cmd; selfsim_cmd; sync_cmd; fluid_cmd; parking_cmd; twoway_cmd; export_cmd; report_check_cmd ]

let () = exit (Cmd.eval main)
