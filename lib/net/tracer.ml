module Time = Sim_engine.Time

type kind = Arrive | Drop | Deliver

type event = {
  time : float;
  kind : kind;
  link : string;
  flow : int;
  seq : int option;
  size_bytes : int;
  uid : int;
}

type t = { mutable data : event array; mutable size : int }

let sentinel =
  { time = 0.; kind = Arrive; link = ""; flow = 0; seq = None; size_bytes = 0; uid = 0 }

let create ?(capacity_hint = 1024) () =
  { data = Array.make (Stdlib.max 16 capacity_hint) sentinel; size = 0 }

let push t e =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (2 * cap) sentinel in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- e;
  t.size <- t.size + 1

let record t pool kind link now h =
  push t
    {
      time = Time.to_sec now;
      kind;
      link;
      flow = Packet_pool.flow pool h;
      seq = Packet_pool.seq_opt pool h;
      size_bytes = Packet_pool.size_bytes pool h;
      uid = Packet_pool.uid pool h;
    }

let attach t pool link =
  let name = Link.name link in
  Link.on_arrival link (fun now h -> record t pool Arrive name now h);
  Link.on_drop link (fun now h -> record t pool Drop name now h);
  Link.on_depart link (fun now h -> record t pool Deliver name now h)

let attach_bus t bus =
  ignore
    (Telemetry.Event_bus.subscribe bus (function
      | Telemetry.Event_bus.Packet p ->
          let kind =
            match p.kind with
            | Telemetry.Event_bus.Arrival -> Arrive
            | Telemetry.Event_bus.Drop -> Drop
            | Telemetry.Event_bus.Depart -> Deliver
          in
          push t
            {
              time = p.time;
              kind;
              link = p.link;
              flow = p.flow;
              seq = p.seq;
              size_bytes = p.size_bytes;
              uid = p.uid;
            }
      | Telemetry.Event_bus.Tcp _ | Telemetry.Event_bus.Queue _
      | Telemetry.Event_bus.Custom _ ->
          ()))

let length t = t.size

let events t = Array.sub t.data 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let kind_char = function Arrive -> '+' | Drop -> 'd' | Deliver -> 'r'

let pp_event ppf e =
  let seq = match e.seq with Some s -> Printf.sprintf "seq=%d" s | None -> "ack" in
  Format.fprintf ppf "%c %.6f %s flow=%d %s %dB" (kind_char e.kind) e.time e.link
    e.flow seq e.size_bytes

let output t oc =
  let ppf = Format.formatter_of_out_channel oc in
  iter (fun e -> Format.fprintf ppf "%a@." pp_event e) t;
  Format.pp_print_flush ppf ()

let per_flow_counts t kind =
  let counts = Hashtbl.create 16 in
  iter
    (fun e ->
      if e.kind = kind then
        Hashtbl.replace counts e.flow
          (1 + Option.value (Hashtbl.find_opt counts e.flow) ~default:0))
    t;
  counts

let delivered_bytes_between t ~link t0 t1 =
  let total = ref 0 in
  iter
    (fun e ->
      if e.kind = Deliver && e.link = link && e.time >= t0 && e.time < t1 then
        total := !total + e.size_bytes)
    t;
  !total

let drops_of_flow t flow =
  let acc = ref [] in
  iter (fun e -> if e.kind = Drop && e.flow = flow then acc := e :: !acc) t;
  List.rev !acc
