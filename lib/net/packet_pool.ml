module Time = Sim_engine.Time

(* Slot layout mirrors Event_queue: parallel arrays indexed by slot, a
   free stack, and a per-slot generation whose low bits are packed into
   the handle. The flags word holds the payload kind and every boolean:

     bits 0-1  kind: 0 = free slot, 1 = Tcp_data, 2 = Tcp_ack, 3 = Udp_data
     bit  2    ecn_capable
     bit  3    ecn_ce
     bit  4    is_retransmit (data)
     bit  5    ece           (ack)

   SACK block lists are the only non-int field; they live in a side
   table that is [[]] for all but the rare SACK-carrying ACK, and are
   cleared on free so the blocks do not outlive the packet. *)

let gen_bits = 30

let gen_mask = (1 lsl gen_bits) - 1

let kind_data = 1

let kind_ack = 2

let kind_udp = 3

let f_ecn_capable = 1 lsl 2

let f_ecn_ce = 1 lsl 3

let f_retransmit = 1 lsl 4

let f_ece = 1 lsl 5

type handle = int

type kind = Tcp_data | Tcp_ack | Udp_data

type t = {
  mutable cap : int; (* slab capacity; all per-slot arrays share it *)
  mutable uid : int array;
  mutable flow : int array;
  mutable src : int array;
  mutable dst : int array;
  mutable size : int array;
  mutable word : int array; (* data/UDP seq, or cumulative ack *)
  mutable sent : Time.t array; (* transport emission time, ticks *)
  mutable flags : int array;
  mutable gen : int array; (* per-slot recycle count *)
  mutable sack : (int * int) list array; (* side table; almost always [] *)
  mutable free : int array; (* stack of recycled slots *)
  mutable free_top : int;
  mutable fresh : int; (* next never-used slot *)
  mutable next_uid : int;
  mutable uid_source : (int -> int) option;
      (* [Some f]: uids come from [f flow] instead of [next_uid]. A
         sharded run makes uids a pure function of per-flow history so
         they do not depend on cross-flow allocation interleaving. *)
  mutable live : int;
  mutable hwm : int;
}

let nil : handle = -1

let is_nil h = h < 0

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Packet_pool.create: capacity < 1";
  {
    cap = capacity;
    uid = Array.make capacity 0;
    flow = Array.make capacity 0;
    src = Array.make capacity 0;
    dst = Array.make capacity 0;
    size = Array.make capacity 0;
    word = Array.make capacity 0;
    sent = Array.make capacity Time.zero;
    flags = Array.make capacity 0;
    gen = Array.make capacity 0;
    sack = Array.make capacity [];
    free = Array.make capacity 0;
    free_top = 0;
    fresh = 0;
    next_uid = 0;
    uid_source = None;
    live = 0;
    hwm = 0;
  }

let set_uid_source t f = t.uid_source <- f

(* ------------------------------------------------------------------ *)
(* Slab bookkeeping *)

let grow t =
  let ncap = 2 * t.cap in
  let extend a fill =
    let na = Array.make ncap fill in
    Array.blit a 0 na 0 t.cap;
    na
  in
  t.uid <- extend t.uid 0;
  t.flow <- extend t.flow 0;
  t.src <- extend t.src 0;
  t.dst <- extend t.dst 0;
  t.size <- extend t.size 0;
  t.word <- extend t.word 0;
  t.sent <- extend t.sent Time.zero;
  t.flags <- extend t.flags 0;
  t.gen <- extend t.gen 0;
  t.sack <- extend t.sack [];
  t.free <- extend t.free 0;
  t.cap <- ncap

let alloc_slot t =
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.fresh = t.cap then grow t;
      let slot = t.fresh in
      t.fresh <- t.fresh + 1;
      slot
    end
  in
  t.live <- t.live + 1;
  if t.live > t.hwm then t.hwm <- t.live;
  slot

let pack slot g = (slot lsl gen_bits) lor (g land gen_mask)

let stale () = invalid_arg "Packet_pool: stale or invalid packet handle"

(* Generation check on every access: the whole point of the pool's
   handles is that use-after-free is loud, not silently corrupting. *)
let slot_of t h =
  let slot = h lsr gen_bits in
  if
    h < 0
    || slot >= t.fresh
    || t.gen.(slot) land gen_mask <> h land gen_mask
    || t.flags.(slot) land 3 = 0
  then stale ();
  slot

(* ------------------------------------------------------------------ *)
(* Allocation and release *)

let fill t slot ~flow ~src ~dst ~size_bytes ~sent_at ~word ~flags =
  if size_bytes <= 0 then begin
    (* Undo the slot claim so a rejected alloc does not leak. *)
    t.live <- t.live - 1;
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    invalid_arg "Packet_pool: non-positive size"
  end;
  (match t.uid_source with
  | None ->
      t.uid.(slot) <- t.next_uid;
      t.next_uid <- t.next_uid + 1
  | Some f -> t.uid.(slot) <- f flow);
  t.flow.(slot) <- flow;
  t.src.(slot) <- src;
  t.dst.(slot) <- dst;
  t.size.(slot) <- size_bytes;
  t.word.(slot) <- word;
  t.sent.(slot) <- sent_at;
  t.flags.(slot) <- flags;
  pack slot t.gen.(slot)

let alloc_data t ?(ecn_capable = false) ~flow ~src ~dst ~size_bytes ~sent_at ~seq
    ~is_retransmit () =
  let slot = alloc_slot t in
  let flags =
    kind_data
    lor (if ecn_capable then f_ecn_capable else 0)
    lor if is_retransmit then f_retransmit else 0
  in
  fill t slot ~flow ~src ~dst ~size_bytes ~sent_at ~word:seq ~flags

let alloc_ack t ?(ecn_capable = false) ~flow ~src ~dst ~size_bytes ~sent_at ~ack
    ~ece ~sack () =
  let slot = alloc_slot t in
  let flags =
    kind_ack
    lor (if ecn_capable then f_ecn_capable else 0)
    lor if ece then f_ece else 0
  in
  let h = fill t slot ~flow ~src ~dst ~size_bytes ~sent_at ~word:ack ~flags in
  if sack <> [] then t.sack.(slot) <- sack;
  h

let alloc_udp t ~flow ~src ~dst ~size_bytes ~sent_at ~seq () =
  let slot = alloc_slot t in
  fill t slot ~flow ~src ~dst ~size_bytes ~sent_at ~word:seq ~flags:kind_udp

(* Rehydrate a packet shipped from another pool (a PDES shard boundary):
   every field, including the uid and the raw flags word, is the
   sender's, so the packet is indistinguishable from one that stayed in
   a single pool for its whole life. *)
let import t ~uid ~flow ~src ~dst ~size_bytes ~sent_at ~word ~flags ~sack =
  if flags land 3 = 0 then invalid_arg "Packet_pool.import: free-slot flags";
  let slot = alloc_slot t in
  if size_bytes <= 0 then begin
    t.live <- t.live - 1;
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    invalid_arg "Packet_pool: non-positive size"
  end;
  t.uid.(slot) <- uid;
  t.flow.(slot) <- flow;
  t.src.(slot) <- src;
  t.dst.(slot) <- dst;
  t.size.(slot) <- size_bytes;
  t.word.(slot) <- word;
  t.sent.(slot) <- sent_at;
  t.flags.(slot) <- flags;
  if sack <> [] then t.sack.(slot) <- sack;
  pack slot t.gen.(slot)

let free t h =
  let slot = slot_of t h in
  (* Bumping the generation is what invalidates every outstanding handle
     to this slot; zeroing the kind bits catches even a handle that
     survives a full 2^30 generation wrap. Dropping the SACK list lets
     its blocks be collected. *)
  t.gen.(slot) <- t.gen.(slot) + 1;
  t.flags.(slot) <- 0;
  if t.sack.(slot) <> [] then t.sack.(slot) <- [];
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

(* ------------------------------------------------------------------ *)
(* Field access *)

let uid t h = t.uid.(slot_of t h)

let flow t h = t.flow.(slot_of t h)

let src t h = t.src.(slot_of t h)

let dst t h = t.dst.(slot_of t h)

let size_bytes t h = t.size.(slot_of t h)

let sent_at t h = t.sent.(slot_of t h)

let ecn_capable t h = t.flags.(slot_of t h) land f_ecn_capable <> 0

let ecn_ce t h = t.flags.(slot_of t h) land f_ecn_ce <> 0

let set_ecn_ce t h =
  let slot = slot_of t h in
  t.flags.(slot) <- t.flags.(slot) lor f_ecn_ce

let kind t h =
  match t.flags.(slot_of t h) land 3 with
  | 1 -> Tcp_data
  | 2 -> Tcp_ack
  | _ -> Udp_data

let is_data t h = t.flags.(slot_of t h) land 3 <> kind_ack

let is_retransmit t h = t.flags.(slot_of t h) land f_retransmit <> 0

(* One validated load for the router's per-forward recorder check. *)
let is_retransmitted_data t h =
  let f = t.flags.(slot_of t h) in
  f land 3 <> kind_ack && f land f_retransmit <> 0

let seq t h = t.word.(slot_of t h)

let ack = seq

let slot_exn = slot_of

let uid_at t slot = Array.unsafe_get t.uid slot

let flow_at t slot = Array.unsafe_get t.flow slot

let size_bytes_at t slot = Array.unsafe_get t.size slot

let data_seq_at t slot ~default =
  if Array.unsafe_get t.flags slot land 3 <> kind_ack then
    Array.unsafe_get t.word slot
  else default

let seq_opt t h =
  let slot = slot_of t h in
  if t.flags.(slot) land 3 = kind_ack then None else Some t.word.(slot)

let ece t h = t.flags.(slot_of t h) land f_ece <> 0

let sack t h = t.sack.(slot_of t h)

let flags_word t h = t.flags.(slot_of t h)

let word t h = t.word.(slot_of t h)

(* ------------------------------------------------------------------ *)
(* Accounting *)

let live t = t.live

let high_water_mark t = t.hwm

let allocated t = t.next_uid

let pp t ppf h =
  let slot = slot_of t h in
  let describe =
    match t.flags.(slot) land 3 with
    | 1 ->
        Printf.sprintf "data(seq=%d%s)" t.word.(slot)
          (if t.flags.(slot) land f_retransmit <> 0 then ",rtx" else "")
    | 2 ->
        let blocks =
          match t.sack.(slot) with
          | [] -> ""
          | bs ->
              ","
              ^ String.concat "+"
                  (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) bs)
        in
        Printf.sprintf "ack(%d%s%s)" t.word.(slot)
          (if t.flags.(slot) land f_ece <> 0 then ",ece" else "")
          blocks
    | _ -> Printf.sprintf "udp(seq=%d)" t.word.(slot)
  in
  Format.fprintf ppf "#%d flow=%d %d->%d %s %dB" t.uid.(slot) t.flow.(slot)
    t.src.(slot) t.dst.(slot) describe t.size.(slot)
