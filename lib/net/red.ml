type params = {
  min_th : float;
  max_th : float;
  max_p : float;
  w_q : float;
  capacity : int;
  idle_packet_time : float;
  ecn_mark : bool;
  adaptive : bool;
}

let default_params ~capacity ~min_th ~max_th =
  {
    min_th;
    max_th;
    max_p = 0.02;
    w_q = 0.002;
    capacity;
    idle_packet_time = 1500. *. 8. /. 5e6;
    ecn_mark = false;
    adaptive = false;
  }

type t = {
  p : params;
  q : Packet_pool.handle Ring.t;
  pool : Packet_pool.t;
  rng : Sim_engine.Rng.t;
  bus : Telemetry.Event_bus.t option;
  rlane : Telemetry.Recorder.lane option;
  rsid : int;
  name : string;
  mutable avg : float;
  mutable count : int; (* arrivals since the last early drop; -1 = below min_th *)
  mutable idle_since : float; (* when the queue last went empty; nan = busy *)
  mutable max_p : float; (* live value; scaled by the adaptive mode *)
  mutable marks : int;
  mutable last_adapt : float; (* adaptive max_p moves at most every 0.5 s *)
  mutable hwm : int;
  mutable vq : float; (* virtual background backlog (hybrid engine), packets *)
}

let create ?bus ?recorder ?(name = "red") ~rng ~pool p =
  if p.min_th <= 0. || p.max_th <= p.min_th then invalid_arg "Red.create: bad thresholds";
  if p.max_p <= 0. || p.max_p > 1. then invalid_arg "Red.create: bad max_p";
  if p.w_q <= 0. || p.w_q > 1. then invalid_arg "Red.create: bad w_q";
  if p.capacity < 1 then invalid_arg "Red.create: bad capacity";
  let rlane = Option.map (fun r -> Telemetry.Recorder.lane r 0) recorder in
  let rsid =
    match recorder with
    | None -> 0
    | Some r -> Telemetry.Recorder.intern r name
  in
  {
    p;
    q = Ring.create ();
    pool;
    rng;
    bus;
    rlane;
    rsid;
    name;
    avg = 0.;
    count = -1;
    idle_since = 0.;
    max_p = p.max_p;
    marks = 0;
    last_adapt = 0.;
    hwm = 0;
    vq = 0.;
  }

let update_avg t now =
  let qlen = float_of_int (Ring.length t.q) in
  if qlen = 0. && t.vq = 0. && not (Float.is_nan t.idle_since) then begin
    (* Age the average over the idle period as if [m] small packets had
       departed (FJ93 §4). *)
    let idle = Stdlib.max 0. (now -. t.idle_since) in
    let m = idle /. t.p.idle_packet_time in
    t.avg <- t.avg *. ((1. -. t.p.w_q) ** m);
    t.idle_since <- Float.nan
  end;
  (* [vq] is 0. outside the hybrid engine, and [qlen +. 0.] is
     float-identical to [qlen], so the pure-packet stream is untouched. *)
  t.avg <- ((1. -. t.p.w_q) *. t.avg) +. (t.p.w_q *. (qlen +. t.vq));
  (* Self-Configuring RED: steer max_p so the average stays in band,
     adjusting at most once per half second so one congestion episode does
     not slam max_p to a rail. *)
  if t.p.adaptive && now -. t.last_adapt >= 0.5 then begin
    if t.avg < t.p.min_th then begin
      t.max_p <- Stdlib.max 1e-4 (t.max_p /. 3.);
      t.last_adapt <- now
    end
    else if t.avg > t.p.max_th then begin
      t.max_p <- Stdlib.min 0.5 (t.max_p *. 2.);
      t.last_adapt <- now
    end
  end

let accept t h =
  Ring.push t.q h;
  if Ring.length t.q > t.hwm then t.hwm <- Ring.length t.q;
  t.idle_since <- Float.nan;
  `Enqueued

(* Narrate the drop/mark decision: link-level drop counts cannot tell a
   forced drop from an early one, or see marks at all. *)
let emit t now tick kind rkind h =
  (match t.bus with
  | None -> ()
  | Some bus ->
      Telemetry.Event_bus.publish bus
        (Telemetry.Event_bus.Queue
           {
             time = now;
             kind;
             queue = t.name;
             flow = Packet_pool.flow t.pool h;
             avg = t.avg;
           }));
  match t.rlane with
  | None -> ()
  | Some lane ->
      (* The average rides as exact IEEE-754 bits so decoding reproduces
         the bus event byte for byte. *)
      Telemetry.Recorder.record lane ~tick ~kind:rkind
        ~flow:(Packet_pool.flow t.pool h)
        ~a:(Packet_pool.uid t.pool h)
        ~b:(Telemetry.Record.float_hi t.avg)
        ~c:(Telemetry.Record.float_lo t.avg)
        ~sid:t.rsid
        ~depth:(Ring.length t.q)

let enqueue t ~now h =
  let tick = Sim_engine.Time.to_ns now in
  let now = Sim_engine.Time.to_sec now in
  update_avg t now;
  if Ring.length t.q >= t.p.capacity then begin
    (* Physical overflow: forced drop. *)
    t.count <- 0;
    emit t now tick Telemetry.Event_bus.Forced_drop
      Telemetry.Record.queue_forced_drop h;
    `Dropped
  end
  else if t.avg < t.p.min_th then begin
    t.count <- -1;
    accept t h
  end
  else if t.avg >= t.p.max_th then begin
    t.count <- 0;
    emit t now tick Telemetry.Event_bus.Forced_drop
      Telemetry.Record.queue_forced_drop h;
    `Dropped
  end
  else begin
    t.count <- t.count + 1;
    let pb = t.max_p *. (t.avg -. t.p.min_th) /. (t.p.max_th -. t.p.min_th) in
    let denom = 1. -. (float_of_int t.count *. pb) in
    let pa = if denom <= 0. then 1. else pb /. denom in
    if Sim_engine.Rng.bool t.rng (Stdlib.min 1. pa) then begin
      t.count <- 0;
      if t.p.ecn_mark && Packet_pool.ecn_capable t.pool h then begin
        (* Signal congestion without losing the packet. *)
        Packet_pool.set_ecn_ce t.pool h;
        t.marks <- t.marks + 1;
        emit t now tick Telemetry.Event_bus.Ecn_mark
          Telemetry.Record.queue_ecn_mark h;
        accept t h
      end
      else begin
        emit t now tick Telemetry.Event_bus.Early_drop
          Telemetry.Record.queue_early_drop h;
        `Dropped
      end
    end
    else accept t h
  end

let dequeue t ~now =
  if Ring.is_empty t.q then Packet_pool.nil
  else begin
    let h = Ring.pop_exn t.q in
    if Ring.is_empty t.q then t.idle_since <- Sim_engine.Time.to_sec now;
    h
  end

let set_virtual_queue t v = t.vq <- Stdlib.max 0. v

let virtual_update t ~arrivals:m =
  (* The EWMA pole tracks the arrival rate: with only K of N flows
     physical, the average would respond N/K times too slowly. Fold in
     the [m] background arrivals the fluid model says happened this
     quantum, each sampling the combined (physical + virtual) depth —
     the closed form of [m] successive [update_avg] samples at a frozen
     depth. Deterministic; no RNG draw. *)
  if m > 0. then begin
    let depth = float_of_int (Ring.length t.q) +. t.vq in
    let keep = (1. -. t.p.w_q) ** m in
    t.avg <- (t.avg *. keep) +. (depth *. (1. -. keep));
    t.idle_since <- Float.nan
  end

let length t = Ring.length t.q

let avg t = t.avg

let marks t = t.marks

let current_max_p t = t.max_p

let high_water_mark t = t.hwm
