(** Static-route packet forwarding.

    The gateway in the paper's dumbbell is a router with one route per
    client (the reverse direction) plus a default route onto the bottleneck
    link. Forwarding passes handle ownership straight to the outgoing
    link; the router itself never frees. *)

type t

val create :
  ?recorder:Telemetry.Recorder.t -> name:string -> pool:Packet_pool.t -> unit -> t
(** When [recorder] is given, retransmitted data segments forwarded by
    the router write a [router_rtx_forward] lifecycle record stamped
    with the segment's send time. *)

val add_route : t -> dst:int -> Link.t -> unit
(** Packets addressed to node [dst] are forwarded on the given link.
    @raise Invalid_argument if a route for [dst] already exists. *)

val set_default : t -> Link.t -> unit
(** Route for destinations with no explicit entry. *)

val receive : t -> Packet_pool.handle -> unit
(** Forward a packet. @raise Failure if no route matches. *)

val forwarded : t -> int
