(** A simplex store-and-forward link with an output queue.

    Packets sent on the link enter the queueing discipline; the link drains
    the queue at its bandwidth (serialization delay) and delivers each
    packet [delay] seconds after its serialization completes (propagation
    pipeline, as in ns). A full-duplex link is a pair of these. *)

type t

val create :
  Sim_engine.Scheduler.t ->
  name:string ->
  bandwidth:Units.bandwidth ->
  delay:Sim_engine.Time.span ->
  queue:Queue_disc.t ->
  deliver:(Packet.t -> unit) ->
  t
(** [deliver] is invoked at the receiving end of the link. *)

val send : t -> Packet.t -> unit
(** Offer a packet to the link's queue; may drop per the discipline. *)

val queue_length : t -> int

val queue_high_water_mark : t -> int
(** Peak queue occupancy (packets) seen so far. *)

(** {2 Instrumentation}

    Listeners observe, in order: every arrival (before the drop decision),
    every drop, and every departure (delivery at the far end). *)

val on_arrival : t -> (Sim_engine.Time.t -> Packet.t -> unit) -> unit
val on_drop : t -> (Sim_engine.Time.t -> Packet.t -> unit) -> unit
val on_depart : t -> (Sim_engine.Time.t -> Packet.t -> unit) -> unit

val arrivals : t -> int
val drops : t -> int
val departures : t -> int
val bytes_delivered : t -> int

val name : t -> string

val publish : t -> Telemetry.Event_bus.t -> unit
(** Mirror this link's arrival/drop/departure events onto the bus as
    [Packet] events tagged with the link's name. *)
