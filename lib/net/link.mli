(** A simplex store-and-forward link with an output queue.

    Packets sent on the link enter the queueing discipline; the link drains
    the queue at its bandwidth (serialization delay) and delivers each
    packet [delay] seconds after its serialization completes (propagation
    pipeline, as in ns). A full-duplex link is a pair of these.

    Packets are {!Packet_pool.handle}s. The link {e owns every drop}: a
    packet the discipline refuses (or an SFQ eviction victim) is freed
    here, after the drop listeners have observed it. Delivered packets
    pass to [deliver], whose callee takes ownership. *)

type t

val create :
  Sim_engine.Scheduler.t ->
  name:string ->
  bandwidth:Units.bandwidth ->
  delay:Sim_engine.Time.span ->
  queue:Queue_disc.t ->
  pool:Packet_pool.t ->
  deliver:(Packet_pool.handle -> unit) ->
  t
(** [deliver] is invoked at the receiving end of the link and takes
    ownership of the handle. *)

val send : t -> Packet_pool.handle -> unit
(** Offer a packet to the link's queue; may drop (and then free) per the
    discipline. *)

val set_handoff : t -> (Sim_engine.Time.t -> Packet_pool.handle -> unit) -> unit
(** Turn the link into a PDES shard-boundary half-link: the propagation
    leg is not simulated here. Instead of scheduling a local delivery,
    each packet is handed to the callback at serialization end together
    with its computed arrival time ([now + delay]); the callback takes
    ownership (typically: copy the fields into a cross-domain ring and
    free). [deliver] is never invoked. Departure listeners still fire,
    stamped with the arrival time, exactly as they would at the far
    end. *)

val set_bg_slowdown : t -> float -> unit
(** Hybrid-engine hook: scale every subsequent serialization time by
    this factor (>= 1.), modelling the share of the line rate consumed
    by fluid background traffic ([capacity / foreground_share]). At the
    default [1.] the transmission path is bit-identical to a link
    without the hook.
    @raise Invalid_argument if the factor is below 1 or not finite. *)

val bg_slowdown : t -> float
(** The current serialization-time multiplier (1. unless the hybrid
    engine set one). *)

val queue_length : t -> int

val queue_disc : t -> Queue_disc.t
(** The link's queue discipline — e.g. for reading the RED average
    ({!Queue_disc.avg_queue}) as an oscillation-detector signal. *)

val queue_high_water_mark : t -> int
(** Peak queue occupancy (packets) seen so far. *)

val reclaim : t -> unit
(** Free every packet still queued or in flight on this link — the
    end-of-run sweep that lets the pool's live count reach zero when the
    horizon cut the simulation mid-transfer. *)

(** {2 Instrumentation}

    Listeners observe, in order: every arrival (before the drop decision),
    every drop, and every departure (delivery at the far end). *)

val on_arrival : t -> (Sim_engine.Time.t -> Packet_pool.handle -> unit) -> unit
val on_drop : t -> (Sim_engine.Time.t -> Packet_pool.handle -> unit) -> unit
val on_depart : t -> (Sim_engine.Time.t -> Packet_pool.handle -> unit) -> unit

val arrivals : t -> int
val drops : t -> int
val departures : t -> int
val bytes_delivered : t -> int

val name : t -> string

val publish : t -> Telemetry.Event_bus.t -> unit
(** Mirror this link's arrival/drop/departure events onto the bus as
    [Packet] events tagged with the link's name. *)

val record : t -> Telemetry.Recorder.t -> unit
(** The binary twin of {!publish}: write a fixed-width flight-recorder
    record (with the instantaneous queue depth) at the same three hook
    sites. Allocation-free per event. *)
