type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

let droptail ~capacity = Droptail (Droptail.create ~capacity)

let red ~rng params = Red (Red.create ~rng params)

let sfq ?buckets ~capacity () = Sfq (Sfq.create ?buckets ~capacity ())

let enqueue t ~now p =
  match t with
  | Droptail q -> (Droptail.enqueue q p :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet.t ])
  | Red q -> (Red.enqueue q ~now p :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet.t ])
  | Sfq q -> Sfq.enqueue q p

let dequeue t ~now =
  match t with
  | Droptail q -> Droptail.dequeue q
  | Red q -> Red.dequeue q ~now
  | Sfq q -> Sfq.dequeue q

let length t =
  match t with
  | Droptail q -> Droptail.length q
  | Red q -> Red.length q
  | Sfq q -> Sfq.length q
