type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

let droptail ~capacity = Droptail (Droptail.create ~capacity)

let red ?bus ?name ~rng ~pool params = Red (Red.create ?bus ?name ~rng ~pool params)

let sfq ?buckets ~pool ~capacity () = Sfq (Sfq.create ?buckets ~pool ~capacity ())

let enqueue t ~now h =
  match t with
  | Droptail q ->
      (Droptail.enqueue q h
        :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ])
  | Red q ->
      (Red.enqueue q ~now h
        :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ])
  | Sfq q -> Sfq.enqueue q h

let dequeue t ~now =
  match t with
  | Droptail q -> Droptail.dequeue q
  | Red q -> Red.dequeue q ~now
  | Sfq q -> Sfq.dequeue q

let length t =
  match t with
  | Droptail q -> Droptail.length q
  | Red q -> Red.length q
  | Sfq q -> Sfq.length q

let high_water_mark t =
  match t with
  | Droptail q -> Droptail.high_water_mark q
  | Red q -> Red.high_water_mark q
  | Sfq q -> Sfq.high_water_mark q
