type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

let droptail ~capacity = Droptail (Droptail.create ~capacity)

let red ?bus ?recorder ?name ~rng ~pool params =
  Red (Red.create ?bus ?recorder ?name ~rng ~pool params)

let sfq ?buckets ~pool ~capacity () = Sfq (Sfq.create ?buckets ~pool ~capacity ())

(* Wire the flight recorder to the discipline's own decision points
   (RED takes its recorder at construction). *)
let set_recorder t ~recorder ~pool ~name =
  match t with
  | Droptail q -> Droptail.set_recorder q ~recorder ~pool ~name
  | Sfq q -> Sfq.set_recorder q ~recorder ~name
  | Red _ -> ()

let enqueue t ~now h =
  match t with
  | Droptail q ->
      (Droptail.enqueue ~now:(Sim_engine.Time.to_ns now) q h
        :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ])
  | Red q ->
      (Red.enqueue q ~now h
        :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ])
  | Sfq q -> Sfq.enqueue ~now:(Sim_engine.Time.to_ns now) q h

let dequeue t ~now =
  match t with
  | Droptail q -> Droptail.dequeue q
  | Red q -> Red.dequeue q ~now
  | Sfq q -> Sfq.dequeue q

let length t =
  match t with
  | Droptail q -> Droptail.length q
  | Red q -> Red.length q
  | Sfq q -> Sfq.length q

let high_water_mark t =
  match t with
  | Droptail q -> Droptail.high_water_mark q
  | Red q -> Red.high_water_mark q
  | Sfq q -> Sfq.high_water_mark q

let avg_queue t =
  match t with
  | Red q -> Some (Red.avg q)
  | Droptail q -> Droptail.avg q
  | Sfq q -> Sfq.avg q

let enable_avg t ~w_q =
  match t with
  | Red _ -> () (* RED's EWMA is always on *)
  | Droptail q -> Droptail.enable_avg q ~w_q
  | Sfq q -> Sfq.enable_avg q ~w_q

let set_virtual_queue t v =
  match t with
  | Red q -> Red.set_virtual_queue q v
  | Droptail _ | Sfq _ -> ()

let virtual_update t ~arrivals =
  match t with
  | Red q -> Red.virtual_update q ~arrivals
  | Droptail _ | Sfq _ -> ()
