type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

let droptail ~capacity = Droptail (Droptail.create ~capacity)

let red ?bus ?name ~rng params = Red (Red.create ?bus ?name ~rng params)

let sfq ?buckets ~capacity () = Sfq (Sfq.create ?buckets ~capacity ())

let enqueue t ~now p =
  match t with
  | Droptail q -> (Droptail.enqueue q p :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet.t ])
  | Red q -> (Red.enqueue q ~now p :> [ `Enqueued | `Dropped | `Enqueued_dropping of Packet.t ])
  | Sfq q -> Sfq.enqueue q p

let dequeue t ~now =
  match t with
  | Droptail q -> Droptail.dequeue q
  | Red q -> Red.dequeue q ~now
  | Sfq q -> Sfq.dequeue q

let length t =
  match t with
  | Droptail q -> Droptail.length q
  | Red q -> Red.length q
  | Sfq q -> Sfq.length q

let high_water_mark t =
  match t with
  | Droptail q -> Droptail.high_water_mark q
  | Red q -> Red.high_water_mark q
  | Sfq q -> Sfq.high_water_mark q
