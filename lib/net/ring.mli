(** A growable circular FIFO for hot paths.

    [Stdlib.Queue] allocates a 3-word cell per [push]; on the simulator's
    per-packet paths that is measurable GC traffic. A ring keeps its
    elements in a flat array that doubles on overflow, so the steady
    state allocates nothing. The array is first sized on the first
    {!push} (which supplies the fill element), and a popped slot retains
    its element until the slot is reused — bounded retention, not a
    leak. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail; amortised O(1), allocation-free except when the
    backing array doubles. *)

val pop_exn : 'a t -> 'a
(** Remove and return the head.
    @raise Invalid_argument when empty. *)

val peek_exn : 'a t -> 'a
(** Return the head without removing it.
    @raise Invalid_argument when empty. *)

val pop_opt : 'a t -> 'a option
(** Allocating convenience for non-hot callers. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Head-to-tail iteration, no removal. *)
