(** Stochastic Fairness Queueing (McKenney 1990).

    Flows are hashed into a fixed set of buckets served round-robin, so no
    single flow can monopolize the gateway and — relevant to the paper —
    flows no longer observe loss at the same instants, which should break
    the congestion-decision synchronization §3.2 blames for Reno's
    burstiness. On overflow the packet at the head of the longest bucket
    is discarded (penalizing the heaviest flow); the arriving packet is
    then admitted unless its own bucket is the longest. *)

type t

val create :
  ?buckets:int -> ?perturbation:int -> pool:Packet_pool.t -> capacity:int -> unit -> t
(** [buckets] defaults to 16; [perturbation] salts the flow hash;
    packets are handles into [pool].
    @raise Invalid_argument if [capacity < 1] or [buckets < 1]. *)

val set_recorder : t -> recorder:Telemetry.Recorder.t -> name:string -> unit
(** Wire a flight recorder: drop decisions (including push-out victims)
    write a [queue_forced_drop] record tagged with [name], carrying the
    total occupancy. *)

val enqueue :
  ?now:int ->
  t ->
  Packet_pool.handle ->
  [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ]
(** [`Enqueued_dropping victim]: the arriving packet was admitted but
    [victim] (from the longest bucket) was discarded to make room. The
    victim is not freed here — the link owns the drop. [now] is the
    integer-nanosecond tick stamped on recorder records. *)

val dequeue : t -> Packet_pool.handle
(** Round-robin across non-empty buckets; {!Packet_pool.nil} when
    empty. *)

val length : t -> int

val bucket_of_flow : t -> int -> int
(** Which bucket a flow hashes to (for tests). *)

val occupancy : t -> int array
(** Per-bucket queue lengths. *)

val high_water_mark : t -> int
(** Peak total occupancy (packets across all buckets) seen so far. *)

val enable_avg : t -> w_q:float -> unit
(** Turn on a smoothed total-occupancy estimate with RED's EWMA
    semantics: each arrival samples the pre-enqueue total with weight
    [w_q]. Off by default.
    @raise Invalid_argument unless [0 < w_q <= 1]. *)

val avg : t -> float option
(** The smoothed occupancy estimate, or [None] unless {!enable_avg} was
    called. *)
