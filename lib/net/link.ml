module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

type t = {
  sched : Scheduler.t;
  name : string;
  bandwidth : Units.bandwidth;
  delay : Time.span;
  queue : Queue_disc.t;
  pool : Packet_pool.t;
  deliver : Packet_pool.handle -> unit;
  mutable busy : bool;
  in_flight : Packet_pool.handle Ring.t;
  (* Packets serializing or propagating, in serialization order. The two
     continuations below are allocated once per link instead of once per
     packet: serialization completions and deliveries each fire in FIFO
     order (a constant propagation delay after strictly increasing
     serialization finish times), so the head of [in_flight] is always
     the packet the next delivery event is for. *)
  mutable on_tx_done : unit -> unit;
  mutable on_deliver : unit -> unit;
  (* PDES shard boundaries: when set, the propagation leg is not
     simulated here — at serialization end the head packet is handed to
     the callback with its computed arrival time (now + delay), and the
     owner of the far end schedules the delivery in its own domain. *)
  mutable handoff : (Time.t -> Packet_pool.handle -> unit) option;
  (* Hybrid engine: serialization-time multiplier (>= 1.) modelling the
     share of the line rate consumed by fluid background traffic. At the
     default 1. the guard below keeps the pure-packet path bit-identical. *)
  mutable bg_slowdown : float;
  (* Listener lists are stored newest-first so registration is O(1);
     [notify] walks them back-to-front to keep registration order. *)
  mutable arrival_listeners : (Time.t -> Packet_pool.handle -> unit) list;
  mutable drop_listeners : (Time.t -> Packet_pool.handle -> unit) list;
  mutable depart_listeners : (Time.t -> Packet_pool.handle -> unit) list;
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_delivered : int;
}

let rec notify listeners now h =
  match listeners with
  | [] -> ()
  | f :: rest ->
      notify rest now h;
      f now h

(* Serialize the head-of-line packet, then pipeline: delivery happens
   [delay] after serialization ends, while the next packet serializes.
   The continuations are the link's preallocated [on_tx_done] and
   [on_deliver]; the packet travels via [in_flight] rather than being
   captured in a fresh closure per transmission. *)
let rec try_transmit t =
  if not t.busy then begin
    let h = Queue_disc.dequeue t.queue ~now:(Scheduler.now t.sched) in
    if not (Packet_pool.is_nil h) then begin
      t.busy <- true;
      Ring.push t.in_flight h;
      let tx =
        Units.transmission_time t.bandwidth ~bytes:(Packet_pool.size_bytes t.pool h)
      in
      let tx = if t.bg_slowdown = 1. then tx else Time.mul tx t.bg_slowdown in
      ignore (Scheduler.after t.sched tx t.on_tx_done)
    end
  end

and tx_done t =
  t.busy <- false;
  (match t.handoff with
  | None -> ignore (Scheduler.after t.sched t.delay t.on_deliver)
  | Some f -> handoff_head t f);
  try_transmit t

(* Departure accounting and listeners fire exactly as [deliver_head]
   would at the far end, stamped with the arrival time, so bottleneck
   delay statistics are identical whichever side simulates the
   propagation leg. *)
and handoff_head t f =
  let h = Ring.pop_exn t.in_flight in
  t.departures <- t.departures + 1;
  t.bytes_delivered <- t.bytes_delivered + Packet_pool.size_bytes t.pool h;
  let arrival = Time.add (Scheduler.now t.sched) t.delay in
  notify t.depart_listeners arrival h;
  f arrival h

and deliver_head t =
  let h = Ring.pop_exn t.in_flight in
  t.departures <- t.departures + 1;
  t.bytes_delivered <- t.bytes_delivered + Packet_pool.size_bytes t.pool h;
  notify t.depart_listeners (Scheduler.now t.sched) h;
  t.deliver h

let create sched ~name ~bandwidth ~delay ~queue ~pool ~deliver =
  let t =
    {
      sched;
      name;
      bandwidth;
      delay;
      queue;
      pool;
      deliver;
      busy = false;
      in_flight = Ring.create ();
      on_tx_done = ignore;
      on_deliver = ignore;
      handoff = None;
      bg_slowdown = 1.;
      arrival_listeners = [];
      drop_listeners = [];
      depart_listeners = [];
      arrivals = 0;
      drops = 0;
      departures = 0;
      bytes_delivered = 0;
    }
  in
  t.on_tx_done <- (fun () -> tx_done t);
  t.on_deliver <- (fun () -> deliver_head t);
  t

(* The link owns every drop: the packet is freed here, after the drop
   listeners have seen it, so monitors and tracers read live fields. *)
let send t h =
  let now = Scheduler.now t.sched in
  t.arrivals <- t.arrivals + 1;
  notify t.arrival_listeners now h;
  match Queue_disc.enqueue t.queue ~now h with
  | `Dropped ->
      t.drops <- t.drops + 1;
      notify t.drop_listeners now h;
      Packet_pool.free t.pool h
  | `Enqueued -> try_transmit t
  | `Enqueued_dropping victim ->
      (* SFQ admitted the arrival but pushed out another flow's packet. *)
      t.drops <- t.drops + 1;
      notify t.drop_listeners now victim;
      Packet_pool.free t.pool victim;
      try_transmit t

let set_handoff t f = t.handoff <- Some f

let set_bg_slowdown t f =
  if not (Float.is_finite f) || f < 1. then
    invalid_arg "Link.set_bg_slowdown: factor < 1";
  t.bg_slowdown <- f

let bg_slowdown t = t.bg_slowdown

let queue_length t = Queue_disc.length t.queue

let queue_disc t = t.queue

let queue_high_water_mark t = Queue_disc.high_water_mark t.queue

let on_arrival t f = t.arrival_listeners <- f :: t.arrival_listeners

let on_drop t f = t.drop_listeners <- f :: t.drop_listeners

let on_depart t f = t.depart_listeners <- f :: t.depart_listeners

let arrivals t = t.arrivals

let drops t = t.drops

let departures t = t.departures

let bytes_delivered t = t.bytes_delivered

let name t = t.name

let reclaim t =
  let rec drain () =
    let h = Queue_disc.dequeue t.queue ~now:(Scheduler.now t.sched) in
    if not (Packet_pool.is_nil h) then begin
      Packet_pool.free t.pool h;
      drain ()
    end
  in
  drain ();
  while not (Ring.is_empty t.in_flight) do
    Packet_pool.free t.pool (Ring.pop_exn t.in_flight)
  done;
  t.busy <- false

let publish t bus =
  let packet_event kind now h =
    Telemetry.Event_bus.publish bus
      (Telemetry.Event_bus.Packet
         {
           time = Time.to_sec now;
           kind;
           link = t.name;
           flow = Packet_pool.flow t.pool h;
           seq = Packet_pool.seq_opt t.pool h;
           size_bytes = Packet_pool.size_bytes t.pool h;
           uid = Packet_pool.uid t.pool h;
         })
  in
  on_arrival t (packet_event Telemetry.Event_bus.Arrival);
  on_drop t (packet_event Telemetry.Event_bus.Drop);
  on_depart t (packet_event Telemetry.Event_bus.Depart)

(* The binary twin of [publish]: the same three hook sites writing
   fixed-width records instead of bus events, so a recorded stream
   decodes to exactly the NDJSON the tracer would have produced. The
   listeners only do integer loads and stores. *)
let record t recorder =
  let lane = Telemetry.Recorder.lane recorder 0 in
  let sid = Telemetry.Recorder.intern recorder t.name in
  let pool = t.pool in
  (* Eta-expanded per-hook listeners: a partially-applied closure would
     route every call through the generic currying path, and these three
     fire for most events of a recorded run. *)
  let packet_record kind now h =
    let slot = Packet_pool.slot_exn pool h in
    Telemetry.Recorder.record lane ~tick:(Time.to_ns now) ~kind
      ~flow:(Packet_pool.flow_at pool slot)
      ~a:(Packet_pool.uid_at pool slot)
      ~b:(Packet_pool.size_bytes_at pool slot)
      ~c:(Packet_pool.data_seq_at pool slot ~default:Telemetry.Record.no_seq)
      ~sid
      ~depth:(Queue_disc.length t.queue)
  in
  on_arrival t (fun now h -> packet_record Telemetry.Record.packet_arrival now h);
  on_drop t (fun now h -> packet_record Telemetry.Record.packet_drop now h);
  on_depart t (fun now h -> packet_record Telemetry.Record.packet_depart now h)
