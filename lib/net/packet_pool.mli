(** Pooled packets: a struct-of-arrays slab with generation-guarded
    handles.

    Every in-flight packet lives in one {e slot} of a pool — its fields
    spread over parallel [int] arrays (uid, flow, src, dst, size,
    sequence-or-ack word, sent-at ticks) plus one packed flags word for
    the booleans and the payload kind. Transports, queue discs and links
    pass a {!handle} — a single immediate [int] packing
    [(slot, generation)] exactly like [Sim_engine.Event_queue] — so the
    per-packet datapath neither allocates nor touches the write barrier.
    The rare SACK block lists ride in a side table indexed by slot.

    Ownership is linear: whoever removes a packet from the datapath — a
    dropping queue disc via its link, or the terminal {!Node} — must
    {!free} it, which recycles the slot through a free list and bumps
    its generation. Using a handle after its slot was freed (or
    recycled) raises [Invalid_argument] from every accessor: a loud
    generation-check failure instead of silent corruption.

    Sequence numbers count packets (1 packet = 1 MSS), as in ns. *)

type t
(** A pool; one per independent simulation. *)

type handle = int
(** Immediate (slot, generation) pair; never [nil] when returned by an
    allocator. *)

val nil : handle
(** A handle no allocator returns; every accessor rejects it. Use as the
    "no packet" sentinel where an [option] would allocate. *)

val is_nil : handle -> bool

val create : ?capacity:int -> unit -> t
(** [capacity] (default 256) pre-sizes the slab; it grows by doubling. *)

(** {2 Allocation and release} *)

val alloc_data :
  t ->
  ?ecn_capable:bool ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  sent_at:Sim_engine.Time.t ->
  seq:int ->
  is_retransmit:bool ->
  unit ->
  handle
(** One MSS of TCP payload with (packet-granular) sequence number.
    @raise Invalid_argument on non-positive [size_bytes]. *)

val alloc_ack :
  t ->
  ?ecn_capable:bool ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  sent_at:Sim_engine.Time.t ->
  ack:int ->
  ece:bool ->
  sack:(int * int) list ->
  unit ->
  handle
(** Cumulative ACK: [ack] is the next expected sequence number; [ece]
    echoes an ECN congestion-experienced mark back to the sender
    (RFC 3168, simplified: no CWR handshake); [sack] lists up to four
    [(first, last_exclusive)] blocks of out-of-order data the receiver
    holds (RFC 2018), empty when SACK is off. *)

val alloc_udp :
  t ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  sent_at:Sim_engine.Time.t ->
  seq:int ->
  unit ->
  handle

val import :
  t ->
  uid:int ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  sent_at:Sim_engine.Time.t ->
  word:int ->
  flags:int ->
  sack:(int * int) list ->
  handle
(** Rehydrate a packet shipped from another pool across a PDES shard
    boundary: [uid], the raw [flags] word (from {!flags_word}) and every
    other field are taken verbatim, so the imported packet is
    indistinguishable from one allocated here. @raise Invalid_argument
    when [flags] has empty kind bits or [size_bytes] is non-positive. *)

val set_uid_source : t -> (int -> int) option -> unit
(** [set_uid_source t (Some f)] makes allocators stamp packets with
    [f flow] instead of the pool-global allocation counter. A sharded
    run installs per-flow counters so uids are a pure function of
    per-flow history — independent of how allocations from different
    flows interleave within a shard. [None] (the default) restores the
    global counter. *)

val free : t -> handle -> unit
(** Return the slot to the free list and invalidate every outstanding
    handle to it. @raise Invalid_argument if already freed (stale). *)

(** {2 Field access}

    All accessors validate the handle's generation and raise
    [Invalid_argument] on a stale, freed or [nil] handle. *)

val uid : t -> handle -> int
(** Unique per pool; allocation order. *)

val flow : t -> handle -> int
val src : t -> handle -> int
val dst : t -> handle -> int
val size_bytes : t -> handle -> int
val sent_at : t -> handle -> Sim_engine.Time.t

val ecn_capable : t -> handle -> bool
val ecn_ce : t -> handle -> bool
val set_ecn_ce : t -> handle -> unit
(** Congestion experienced — set by a marking queue. *)

type kind = Tcp_data | Tcp_ack | Udp_data

val kind : t -> handle -> kind
val is_data : t -> handle -> bool
(** True for [Tcp_data] and [Udp_data]. *)

val is_retransmit : t -> handle -> bool

val is_retransmitted_data : t -> handle -> bool
(** [is_data && is_retransmit] in a single validated load — the router
    asks this of every forwarded packet when a recorder is wired. *)

val seq : t -> handle -> int
(** The sequence-or-ack word: data/UDP sequence number, or the
    cumulative ack of a [Tcp_ack]. *)

val ack : t -> handle -> int
(** Synonym for {!seq}, read on ACKs. *)

val seq_opt : t -> handle -> int option
(** [Some] data sequence number, [None] for ACKs — the tracer/telemetry
    convention inherited from the record representation. *)

val ece : t -> handle -> bool
val sack : t -> handle -> (int * int) list

val flags_word : t -> handle -> int
(** The raw packed flags word (kind bits + booleans), for shipping a
    packet across a shard boundary via {!import}. *)

val word : t -> handle -> int
(** The raw sequence-or-ack word, kind-agnostic — {!seq} and {!ack}
    without the interpretation. *)

(** {2 Batched field reads}

    The flight recorder reads four fields per packet hook; validating
    the handle once and reading the rest unchecked keeps the recorded
    hot path under the overhead budget. [slot_exn] performs the full
    generation check of the plain accessors; the [_at] readers trust
    the returned slot and must only ever be fed one. *)

val slot_exn : t -> handle -> int
(** The handle's slot, after the same staleness check as every plain
    accessor. @raise Invalid_argument on a stale or [nil] handle. *)

val uid_at : t -> int -> int

val flow_at : t -> int -> int

val size_bytes_at : t -> int -> int

val data_seq_at : t -> int -> default:int -> int
(** The data/UDP sequence number, or [default] for an ACK — the
    unchecked twin of {!seq_opt}. *)

(** {2 Accounting} *)

val live : t -> int
(** Currently allocated packets — 0 after a leak-free run reclaims. *)

val high_water_mark : t -> int
(** Peak simultaneous live packets: the steady-state working set. *)

val allocated : t -> int
(** Total allocations ever (= the next packet's uid). *)

val pp : t -> Format.formatter -> handle -> unit
