(** Simulated packets.

    A packet carries its transport-level payload as a variant; the network
    layer only looks at [size_bytes], [src] and [dst]. Sequence numbers
    count packets (1 packet = 1 MSS of payload), as in ns. *)

type payload =
  | Tcp_data of { seq : int; is_retransmit : bool }
      (** One MSS of TCP payload with (packet-granular) sequence number. *)
  | Tcp_ack of { ack : int; ece : bool; sack : (int * int) list }
      (** Cumulative ACK: [ack] is the next expected sequence number;
          [ece] echoes an ECN congestion-experienced mark back to the
          sender (RFC 3168, simplified: no CWR handshake); [sack] lists up
          to four [(first, last_exclusive)] blocks of out-of-order data the
          receiver holds (RFC 2018), empty when SACK is off. *)
  | Udp_data of { seq : int }

type t = {
  uid : int;  (** Unique per simulation; creation order. *)
  flow : int;  (** Connection/flow identifier. *)
  src : int;  (** Source node id. *)
  dst : int;  (** Destination node id. *)
  size_bytes : int;
  sent_at : Sim_engine.Time.t;  (** When the transport emitted it. *)
  ecn_capable : bool;  (** sender supports ECN: queues may mark not drop *)
  mutable ecn_ce : bool;  (** congestion experienced — set by a marking queue *)
  payload : payload;
}

type factory
(** Allocates unique packet ids for one simulation run. *)

val factory : unit -> factory

val make :
  factory ->
  ?ecn_capable:bool ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  sent_at:Sim_engine.Time.t ->
  payload ->
  t

val is_data : t -> bool
(** True for [Tcp_data] and [Udp_data]. *)

val is_retransmit : t -> bool

val seq : t -> int option
(** The data sequence number, if any. *)

val pp : Format.formatter -> t -> unit
