type payload =
  | Tcp_data of { seq : int; is_retransmit : bool }
  | Tcp_ack of { ack : int; ece : bool; sack : (int * int) list }
  | Udp_data of { seq : int }

type t = {
  uid : int;
  flow : int;
  src : int;
  dst : int;
  size_bytes : int;
  sent_at : Sim_engine.Time.t;
  ecn_capable : bool;
  mutable ecn_ce : bool;
  payload : payload;
}

type factory = { mutable next_uid : int }

let factory () = { next_uid = 0 }

let make f ?(ecn_capable = false) ~flow ~src ~dst ~size_bytes ~sent_at payload =
  if size_bytes <= 0 then invalid_arg "Packet.make: non-positive size";
  let uid = f.next_uid in
  f.next_uid <- f.next_uid + 1;
  { uid; flow; src; dst; size_bytes; sent_at; ecn_capable; ecn_ce = false; payload }

let is_data p =
  match p.payload with Tcp_data _ | Udp_data _ -> true | Tcp_ack _ -> false

let is_retransmit p =
  match p.payload with
  | Tcp_data { is_retransmit; _ } -> is_retransmit
  | Tcp_ack _ | Udp_data _ -> false

let seq p =
  match p.payload with
  | Tcp_data { seq; _ } | Udp_data { seq } -> Some seq
  | Tcp_ack _ -> None

let pp ppf p =
  let kind =
    match p.payload with
    | Tcp_data { seq; is_retransmit } ->
        Printf.sprintf "data(seq=%d%s)" seq (if is_retransmit then ",rtx" else "")
    | Tcp_ack { ack; ece; sack } ->
        let blocks =
          match sack with
          | [] -> ""
          | bs ->
              ","
              ^ String.concat "+"
                  (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) bs)
        in
        Printf.sprintf "ack(%d%s%s)" ack (if ece then ",ece" else "") blocks
    | Udp_data { seq } -> Printf.sprintf "udp(seq=%d)" seq
  in
  Format.fprintf ppf "#%d flow=%d %d->%d %s %dB" p.uid p.flow p.src p.dst kind
    p.size_bytes
