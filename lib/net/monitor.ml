module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

let arrival_binner ?(data_only = true) pool link ~origin ~width =
  let binned = Netstats.Binned.create ~origin ~width () in
  Link.on_arrival link (fun now h ->
      if (not data_only) || Packet_pool.is_data pool h then
        Netstats.Binned.record binned (Time.to_sec now));
  binned

(* Streaming twin of [arrival_binner]: the same events, folded straight
   into a dyadic aggregator instead of a stored bin array. Gated by the
   caller (only wired when a probe asked for burst telemetry), so runs
   without a subscriber pay nothing. *)
let arrival_burst ?(data_only = true) pool link burst =
  Link.on_arrival link (fun now h ->
      if (not data_only) || Packet_pool.is_data pool h then
        (* observe_tick keeps the tick->seconds conversion internal and
           unboxed; [Burst.observe (Time.to_sec now)] would box a float
           per arrival. *)
        Telemetry.Burst.observe_tick burst (Time.to_ns now))

(* Periodic feed for the oscillation detector. [signal] defaults to the
   instantaneous queue length; pass e.g. the RED average
   ([Queue_disc.avg_queue]) for an already-smoothed signal. Samples
   before [from] (the warm-up) are skipped but the timer keeps its
   cadence from time zero, so sample times are deterministic. *)
let osc_sampler ?signal sched link osc ~every ~from ~until =
  let signal =
    match signal with
    | Some f -> f
    | None -> fun () -> float_of_int (Link.queue_length link)
  in
  let rec tick () =
    let now = Scheduler.now sched in
    if Time.(now <= until) then begin
      if Time.to_sec now >= from then
        Telemetry.Burst.Osc.sample osc ~t:(Time.to_sec now) (signal ());
      ignore (Scheduler.after sched every tick)
    end
  in
  ignore (Scheduler.after sched Time.zero tick)

let queue_sampler sched link ~every ~until =
  let series = Netstats.Series.create () in
  let rec tick () =
    let now = Scheduler.now sched in
    if Time.(now <= until) then begin
      Netstats.Series.add series (Time.to_sec now)
        (float_of_int (Link.queue_length link));
      ignore (Scheduler.after sched every tick)
    end
  in
  ignore (Scheduler.after sched Time.zero tick);
  series

let drop_times link =
  let series = Netstats.Series.create () in
  Link.on_drop link (fun now _ -> Netstats.Series.add series (Time.to_sec now) 1.);
  series

let drop_run_recorder link =
  let runs = ref [] and run = ref 0 and dropped_since_arrival = ref false in
  Link.on_arrival link (fun _ _ ->
      (* The previous arrival was accepted: any open run has ended. *)
      if (not !dropped_since_arrival) && !run > 0 then begin
        runs := !run :: !runs;
        run := 0
      end;
      dropped_since_arrival := false);
  Link.on_drop link (fun _ _ ->
      incr run;
      dropped_since_arrival := true);
  fun () ->
    let all = if !run > 0 then !run :: !runs else !runs in
    List.rev all
