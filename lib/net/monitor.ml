module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

let arrival_binner ?(data_only = true) pool link ~origin ~width =
  let binned = Netstats.Binned.create ~origin ~width () in
  Link.on_arrival link (fun now h ->
      if (not data_only) || Packet_pool.is_data pool h then
        Netstats.Binned.record binned (Time.to_sec now));
  binned

let queue_sampler sched link ~every ~until =
  let series = Netstats.Series.create () in
  let rec tick () =
    let now = Scheduler.now sched in
    if Time.(now <= until) then begin
      Netstats.Series.add series (Time.to_sec now)
        (float_of_int (Link.queue_length link));
      ignore (Scheduler.after sched every tick)
    end
  in
  ignore (Scheduler.after sched Time.zero tick);
  series

let drop_times link =
  let series = Netstats.Series.create () in
  Link.on_drop link (fun now _ -> Netstats.Series.add series (Time.to_sec now) 1.);
  series

let drop_run_recorder link =
  let runs = ref [] and run = ref 0 and dropped_since_arrival = ref false in
  Link.on_arrival link (fun _ _ ->
      (* The previous arrival was accepted: any open run has ended. *)
      if (not !dropped_since_arrival) && !run > 0 then begin
        runs := !run :: !runs;
        run := 0
      end;
      dropped_since_arrival := false);
  Link.on_drop link (fun _ _ ->
      incr run;
      dropped_since_arrival := true);
  fun () ->
    let all = if !run > 0 then !run :: !runs else !runs in
    List.rev all
