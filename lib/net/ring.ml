(* A growable circular FIFO. Unlike [Stdlib.Queue] (one 3-word cell per
   push) the steady state allocates nothing: elements live in a flat
   array that doubles on overflow. The backing array starts empty and is
   first sized on the first push, which also supplies the fill element —
   so no dummy value and no [Obj.magic]. A popped slot keeps its pointer
   until the slot is reused; for packet-sized elements that bounded
   retention is irrelevant. *)

type 'a t = {
  mutable buf : 'a array; (* [||] until the first push *)
  mutable head : int; (* index of the next element to pop *)
  mutable len : int;
}

let create () = { buf = [||]; head = 0; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.buf in
  let nbuf = Array.make (Stdlib.max 8 (2 * cap)) x in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- nbuf;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t x;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1

let pop_exn t =
  if t.len = 0 then invalid_arg "Ring.pop_exn: empty";
  let x = t.buf.(t.head) in
  t.head <- (t.head + 1) mod Array.length t.buf;
  t.len <- t.len - 1;
  x

let peek_exn t =
  if t.len = 0 then invalid_arg "Ring.peek_exn: empty";
  t.buf.(t.head)

let pop_opt t = if t.len = 0 then None else Some (pop_exn t)

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done
