(** Measurement taps over links.

    Monitors observe without perturbing: they subscribe to link events and
    sample queue lengths on a timer. The paper's central measurement — the
    per-RTT count of packets arriving at the gateway — is [arrival_binner]
    attached to the bottleneck link. *)

val arrival_binner :
  ?data_only:bool ->
  Packet_pool.t ->
  Link.t ->
  origin:float ->
  width:float ->
  Netstats.Binned.t
(** Counts packets arriving at the link (before the drop decision) into
    bins of [width] seconds starting at [origin]. [data_only] (default
    true) counts only data packets, not ACKs. *)

val arrival_burst :
  ?data_only:bool ->
  Packet_pool.t ->
  Link.t ->
  Telemetry.Burst.t ->
  unit
(** Streaming twin of {!arrival_binner}: folds the same arrival stream
    into a {!Telemetry.Burst} dyadic aggregator instead of a stored bin
    array — O(log T) state instead of O(horizon). [data_only] (default
    true) counts only data packets. *)

val osc_sampler :
  ?signal:(unit -> float) ->
  Sim_engine.Scheduler.t ->
  Link.t ->
  Telemetry.Burst.Osc.t ->
  every:Sim_engine.Time.span ->
  from:float ->
  until:Sim_engine.Time.t ->
  unit
(** Feeds the oscillation detector every [every] until [until],
    skipping samples before [from] seconds (warm-up). [signal] defaults
    to the link's instantaneous queue length; pass
    [Queue_disc.avg_queue] output for RED's smoothed average instead. *)

val queue_sampler :
  Sim_engine.Scheduler.t ->
  Link.t ->
  every:Sim_engine.Time.span ->
  until:Sim_engine.Time.t ->
  Netstats.Series.t
(** Samples the link's queue length every [every] until [until]. *)

val drop_times : Link.t -> Netstats.Series.t
(** Records (time, 1.) for every drop at the link. *)

val drop_run_recorder : Link.t -> unit -> int list
(** Tracks maximal runs of consecutive (in arrival order) drops at the
    link — the "large sequences of packet losses" of the paper's §3.4.
    The returned thunk yields all completed runs plus any run still open,
    most recent last. *)
