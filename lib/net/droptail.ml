type t = { q : Packet.t Queue.t; capacity : int; mutable hwm : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  { q = Queue.create (); capacity; hwm = 0 }

let enqueue t p =
  if Queue.length t.q >= t.capacity then `Dropped
  else begin
    Queue.push p t.q;
    if Queue.length t.q > t.hwm then t.hwm <- Queue.length t.q;
    `Enqueued
  end

let dequeue t = Queue.take_opt t.q

let length t = Queue.length t.q

let capacity t = t.capacity

let high_water_mark t = t.hwm
