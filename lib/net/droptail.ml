type t = { q : Packet.t Ring.t; capacity : int; mutable hwm : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  { q = Ring.create (); capacity; hwm = 0 }

let enqueue t p =
  if Ring.length t.q >= t.capacity then `Dropped
  else begin
    Ring.push t.q p;
    if Ring.length t.q > t.hwm then t.hwm <- Ring.length t.q;
    `Enqueued
  end

let dequeue t = Ring.pop_opt t.q

let length t = Ring.length t.q

let capacity t = t.capacity

let high_water_mark t = t.hwm
