type t = { q : Packet_pool.handle Ring.t; capacity : int; mutable hwm : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  { q = Ring.create (); capacity; hwm = 0 }

let enqueue t h =
  if Ring.length t.q >= t.capacity then `Dropped
  else begin
    Ring.push t.q h;
    if Ring.length t.q > t.hwm then t.hwm <- Ring.length t.q;
    `Enqueued
  end

let dequeue t = if Ring.is_empty t.q then Packet_pool.nil else Ring.pop_exn t.q

let length t = Ring.length t.q

let capacity t = t.capacity

let high_water_mark t = t.hwm
