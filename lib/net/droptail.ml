type t = {
  q : Packet_pool.handle Ring.t;
  capacity : int;
  mutable hwm : int;
  (* Optional flight-recorder wiring (set post-construction): records
     the discipline's forced-drop decisions with queue-name attribution,
     which link-level drop counts cannot provide. *)
  mutable rlane : Telemetry.Recorder.lane option;
  mutable rsid : int;
  mutable rpool : Packet_pool.t option;
  (* Optional smoothed-occupancy estimate (RED [w_q] semantics, sampled
     per arrival). A flat float array — [|avg; w_q|] — so the per-arrival
     update is an unboxed store, not a boxed-float mutation. [w_q = 0.]
     means disabled — the default, so the hot path pays one float
     compare. *)
  ewma : float array;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  {
    q = Ring.create ();
    capacity;
    hwm = 0;
    rlane = None;
    rsid = 0;
    rpool = None;
    ewma = Array.make 2 0.;
  }

let enable_avg t ~w_q =
  if w_q <= 0. || w_q > 1. then invalid_arg "Droptail.enable_avg: bad w_q";
  t.ewma.(1) <- w_q

let avg t = if t.ewma.(1) > 0. then Some t.ewma.(0) else None

let set_recorder t ~recorder ~pool ~name =
  t.rlane <- Some (Telemetry.Recorder.lane recorder 0);
  t.rsid <- Telemetry.Recorder.intern recorder name;
  t.rpool <- Some pool

let record_drop t now h =
  match (t.rlane, t.rpool) with
  | Some lane, Some pool ->
      (* The queue "average" of a drop-tail gateway is its instantaneous
         length. *)
      let bits = Telemetry.Record.bits_of_nonneg_int (Ring.length t.q) in
      Telemetry.Recorder.record lane ~tick:now
        ~kind:Telemetry.Record.queue_forced_drop
        ~flow:(Packet_pool.flow pool h) ~a:(Packet_pool.uid pool h)
        ~b:(bits lsr 32) ~c:(bits land 0xFFFF_FFFF)
        ~sid:t.rsid ~depth:(Ring.length t.q)
  | _ -> ()

let enqueue ?(now = 0) t h =
  let w_q = t.ewma.(1) in
  if w_q > 0. then
    t.ewma.(0) <-
      ((1. -. w_q) *. t.ewma.(0))
      +. (w_q *. float_of_int (Ring.length t.q));
  if Ring.length t.q >= t.capacity then begin
    record_drop t now h;
    `Dropped
  end
  else begin
    Ring.push t.q h;
    if Ring.length t.q > t.hwm then t.hwm <- Ring.length t.q;
    `Enqueued
  end

let dequeue t = if Ring.is_empty t.q then Packet_pool.nil else Ring.pop_exn t.q

let length t = Ring.length t.q

let capacity t = t.capacity

let high_water_mark t = t.hwm
