type t = { q : Packet.t Queue.t; capacity : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Droptail.create: capacity < 1";
  { q = Queue.create (); capacity }

let enqueue t p =
  if Queue.length t.q >= t.capacity then `Dropped
  else begin
    Queue.push p t.q;
    `Enqueued
  end

let dequeue t = Queue.take_opt t.q

let length t = Queue.length t.q

let capacity t = t.capacity
