(* Struct-of-arrays slab for per-flow connection state — the flow-level
   twin of {!Packet_pool}. A row is [ints_per_flow] machine words in one
   flat [int array] plus [floats_per_flow] unboxed doubles in one flat
   [float array]; a flow is a generation-checked immediate handle, so
   allocating a flow costs O(row words) of zeroing and no heap blocks at
   all, and freeing it recycles the row through a free stack.

   Liveness rides on generation parity: a slot's generation is bumped on
   {e both} alloc and free, so odd = live, even = free, and a single
   compare in [slot_of] catches stale handles and double-frees without a
   separate occupancy array. *)

(* Handle layout mirrors Packet_pool/Event_queue: generation in the low
   [gen_bits] bits, slot index above. Parity halves the effective
   generation space to 2^29 alloc/free cycles per slot — still far past
   anything a run performs. *)
let gen_bits = 30

let gen_mask = (1 lsl gen_bits) - 1

type handle = int

let nil : handle = -1

type t = {
  ints_per_flow : int;
  floats_per_flow : int;
  mutable cap : int;
  mutable ints : int array; (* cap * ints_per_flow, row-major *)
  mutable floats : float array; (* cap * floats_per_flow, row-major *)
  mutable gen : int array; (* odd = live, even = free *)
  mutable free : int array; (* stack of recycled slots *)
  mutable free_top : int;
  mutable fresh : int; (* next never-used slot *)
  mutable live : int;
  mutable hwm : int;
  mutable growths : int;
}

let create ?(capacity = 16) ~ints_per_flow ~floats_per_flow () =
  if capacity < 1 then invalid_arg "Flow_table.create: capacity < 1";
  if ints_per_flow < 1 then invalid_arg "Flow_table.create: ints_per_flow < 1";
  if floats_per_flow < 0 then
    invalid_arg "Flow_table.create: floats_per_flow < 0";
  {
    ints_per_flow;
    floats_per_flow;
    cap = capacity;
    ints = Array.make (capacity * ints_per_flow) 0;
    floats = Array.make (Stdlib.max 1 (capacity * floats_per_flow)) 0.;
    gen = Array.make capacity 0;
    free = Array.make capacity 0;
    free_top = 0;
    fresh = 0;
    live = 0;
    hwm = 0;
    growths = 0;
  }

let live t = t.live

let high_water_mark t = t.hwm

let capacity t = t.cap

let growth_count t = t.growths

let ints_per_flow t = t.ints_per_flow

let floats_per_flow t = t.floats_per_flow

(* Row words plus the two bookkeeping words every slot carries (its
   generation and its free-stack cell). *)
let words_per_flow t = t.ints_per_flow + t.floats_per_flow + 2

let bytes_per_flow t = 8 * words_per_flow t

let footprint_bytes t = 8 * t.cap * words_per_flow t

let ints t = t.ints

let floats t = t.floats

let grow t =
  let ncap = 2 * t.cap in
  let extend a fill n =
    let na = Array.make n fill in
    Array.blit a 0 na 0 (Array.length a);
    na
  in
  t.ints <- extend t.ints 0 (ncap * t.ints_per_flow);
  if t.floats_per_flow > 0 then
    t.floats <- extend t.floats 0. (ncap * t.floats_per_flow);
  t.gen <- extend t.gen 0 ncap;
  t.free <- extend t.free 0 ncap;
  t.cap <- ncap;
  t.growths <- t.growths + 1

let stale () = invalid_arg "Flow_table: stale or freed flow handle"

let pack slot g = (slot lsl gen_bits) lor (g land gen_mask)

(* Validate and unpack: the slot must have been handed out ([< fresh]),
   its stored generation must match the handle's, and that generation
   must be odd (live). *)
let slot_of t h =
  if h < 0 then stale ();
  let slot = h lsr gen_bits in
  if slot >= t.fresh then stale ();
  let g = t.gen.(slot) in
  if g land gen_mask <> h land gen_mask || g land 1 = 0 then stale ();
  slot

let is_live t h =
  h >= 0
  &&
  let slot = h lsr gen_bits in
  slot < t.fresh
  &&
  let g = t.gen.(slot) in
  g land gen_mask = h land gen_mask && g land 1 = 1

let handle_of_slot t slot =
  if slot < 0 || slot >= t.fresh || t.gen.(slot) land 1 = 0 then
    invalid_arg "Flow_table.handle_of_slot: free slot";
  pack slot t.gen.(slot)

let alloc t =
  let slot =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.fresh = t.cap then grow t;
      let s = t.fresh in
      t.fresh <- t.fresh + 1;
      s
    end
  in
  Array.fill t.ints (slot * t.ints_per_flow) t.ints_per_flow 0;
  if t.floats_per_flow > 0 then
    Array.fill t.floats (slot * t.floats_per_flow) t.floats_per_flow 0.;
  t.gen.(slot) <- t.gen.(slot) + 1 (* even -> odd: live *);
  t.live <- t.live + 1;
  if t.live > t.hwm then t.hwm <- t.live;
  pack slot t.gen.(slot)

let free t h =
  let slot = slot_of t h in
  t.gen.(slot) <- t.gen.(slot) + 1 (* odd -> even: free *);
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

(* Scalar accessors for cold paths; hot paths read [ints]/[floats] once
   and index rows directly. *)
let get_int t h i =
  let slot = slot_of t h in
  t.ints.((slot * t.ints_per_flow) + i)

let set_int t h i v =
  let slot = slot_of t h in
  t.ints.((slot * t.ints_per_flow) + i) <- v

let get_float t h i =
  let slot = slot_of t h in
  t.floats.((slot * t.floats_per_flow) + i)

let set_float t h i v =
  let slot = slot_of t h in
  t.floats.((slot * t.floats_per_flow) + i) <- v

let iter_live t f =
  for slot = 0 to t.fresh - 1 do
    if t.gen.(slot) land 1 = 1 then f slot
  done
