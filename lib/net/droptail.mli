(** FIFO drop-tail queue with a packet-count capacity.

    This is the paper's baseline gateway discipline: arrivals beyond the
    buffer size [B] are dropped. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val enqueue : t -> Packet.t -> [ `Enqueued | `Dropped ]

val dequeue : t -> Packet.t option

val length : t -> int

val capacity : t -> int

val high_water_mark : t -> int
(** Peak queue occupancy (packets) seen so far. *)
