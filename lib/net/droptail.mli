(** FIFO drop-tail queue with a packet-count capacity.

    This is the paper's baseline gateway discipline: arrivals beyond the
    buffer size [B] are dropped. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val enqueue : t -> Packet_pool.handle -> [ `Enqueued | `Dropped ]

val dequeue : t -> Packet_pool.handle
(** The head handle, or {!Packet_pool.nil} when empty. *)

val length : t -> int

val capacity : t -> int

val high_water_mark : t -> int
(** Peak queue occupancy (packets) seen so far. *)
