(** FIFO drop-tail queue with a packet-count capacity.

    This is the paper's baseline gateway discipline: arrivals beyond the
    buffer size [B] are dropped. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val set_recorder :
  t -> recorder:Telemetry.Recorder.t -> pool:Packet_pool.t -> name:string -> unit
(** Wire a flight recorder: forced-drop decisions write a
    [queue_forced_drop] record tagged with [name], carrying the
    instantaneous queue length. *)

val enqueue : ?now:int -> t -> Packet_pool.handle -> [ `Enqueued | `Dropped ]
(** [now] is the integer-nanosecond tick stamped on recorder records
    (defaults to 0 when no recorder is wired). *)

val dequeue : t -> Packet_pool.handle
(** The head handle, or {!Packet_pool.nil} when empty. *)

val length : t -> int

val capacity : t -> int

val high_water_mark : t -> int
(** Peak queue occupancy (packets) seen so far. *)

val enable_avg : t -> w_q:float -> unit
(** Turn on a smoothed occupancy estimate with RED's EWMA semantics:
    each arrival samples the pre-enqueue queue length with weight [w_q].
    Off by default (one float compare on the hot path).
    @raise Invalid_argument unless [0 < w_q <= 1]. *)

val avg : t -> float option
(** The smoothed occupancy estimate, or [None] unless {!enable_avg} was
    called. *)
