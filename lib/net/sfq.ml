(* Buckets need head access (service and longest-queue drop) and tail
   insertion: the standard Queue does both. *)
type t = {
  buckets : Packet.t Queue.t array;
  capacity : int;
  perturbation : int;
  mutable total : int;
  mutable next : int; (* round-robin service pointer *)
  mutable hwm : int;
}

let create ?(buckets = 16) ?(perturbation = 0) ~capacity () =
  if capacity < 1 then invalid_arg "Sfq.create: capacity < 1";
  if buckets < 1 then invalid_arg "Sfq.create: buckets < 1";
  {
    buckets = Array.init buckets (fun _ -> Queue.create ());
    capacity;
    perturbation;
    total = 0;
    next = 0;
    hwm = 0;
  }

let bucket_of_flow t flow =
  Hashtbl.hash (flow, t.perturbation) mod Array.length t.buckets

let longest_bucket t =
  let best = ref 0 and best_len = ref (-1) in
  Array.iteri
    (fun i q ->
      if Queue.length q > !best_len then begin
        best := i;
        best_len := Queue.length q
      end)
    t.buckets;
  !best

let enqueue t p =
  let idx = bucket_of_flow t p.Packet.flow in
  if t.total < t.capacity then begin
    Queue.push p t.buckets.(idx);
    t.total <- t.total + 1;
    if t.total > t.hwm then t.hwm <- t.total;
    `Enqueued
  end
  else begin
    let longest = longest_bucket t in
    if longest = idx then `Dropped
    else begin
      let victim = Queue.pop t.buckets.(longest) in
      Queue.push p t.buckets.(idx);
      `Enqueued_dropping victim
    end
  end

let dequeue t =
  let n = Array.length t.buckets in
  let rec scan tried =
    if tried = n then None
    else begin
      let idx = (t.next + tried) mod n in
      match Queue.take_opt t.buckets.(idx) with
      | Some p ->
          t.total <- t.total - 1;
          (* Resume after this bucket next time. *)
          t.next <- (idx + 1) mod n;
          Some p
      | None -> scan (tried + 1)
    end
  in
  scan 0

let length t = t.total

let occupancy t = Array.map Queue.length t.buckets

let high_water_mark t = t.hwm
