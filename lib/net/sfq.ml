(* Buckets need head access (service and longest-queue drop) and tail
   insertion; rings do both without a per-push cell. *)
type t = {
  buckets : Packet_pool.handle Ring.t array;
  pool : Packet_pool.t;
  capacity : int;
  perturbation : int;
  mutable total : int;
  mutable next : int; (* round-robin service pointer *)
  mutable hwm : int;
  (* Optional flight-recorder wiring (set post-construction): records
     the discipline's drop decisions — including push-out victims, which
     only SFQ produces — with queue-name attribution. *)
  mutable rlane : Telemetry.Recorder.lane option;
  mutable rsid : int;
  (* Optional smoothed-occupancy estimate (RED [w_q] semantics, sampled
     per arrival over the total occupancy). Flat [|avg; w_q|] array so
     the per-arrival update stays unboxed; [w_q = 0.] = disabled. *)
  ewma : float array;
}

let create ?(buckets = 16) ?(perturbation = 0) ~pool ~capacity () =
  if capacity < 1 then invalid_arg "Sfq.create: capacity < 1";
  if buckets < 1 then invalid_arg "Sfq.create: buckets < 1";
  {
    buckets = Array.init buckets (fun _ -> Ring.create ());
    pool;
    capacity;
    perturbation;
    total = 0;
    next = 0;
    hwm = 0;
    rlane = None;
    rsid = 0;
    ewma = Array.make 2 0.;
  }

let enable_avg t ~w_q =
  if w_q <= 0. || w_q > 1. then invalid_arg "Sfq.enable_avg: bad w_q";
  t.ewma.(1) <- w_q

let avg t = if t.ewma.(1) > 0. then Some t.ewma.(0) else None

let set_recorder t ~recorder ~name =
  t.rlane <- Some (Telemetry.Recorder.lane recorder 0);
  t.rsid <- Telemetry.Recorder.intern recorder name

let record_drop t now h =
  match t.rlane with
  | None -> ()
  | Some lane ->
      let bits = Telemetry.Record.bits_of_nonneg_int t.total in
      Telemetry.Recorder.record lane ~tick:now
        ~kind:Telemetry.Record.queue_forced_drop
        ~flow:(Packet_pool.flow t.pool h) ~a:(Packet_pool.uid t.pool h)
        ~b:(bits lsr 32) ~c:(bits land 0xFFFF_FFFF)
        ~sid:t.rsid ~depth:t.total

let bucket_of_flow t flow =
  Hashtbl.hash (flow, t.perturbation) mod Array.length t.buckets

let longest_bucket t =
  let best = ref 0 and best_len = ref (-1) in
  Array.iteri
    (fun i q ->
      if Ring.length q > !best_len then begin
        best := i;
        best_len := Ring.length q
      end)
    t.buckets;
  !best

let enqueue ?(now = 0) t h =
  let w_q = t.ewma.(1) in
  if w_q > 0. then
    t.ewma.(0) <-
      ((1. -. w_q) *. t.ewma.(0)) +. (w_q *. float_of_int t.total);
  let idx = bucket_of_flow t (Packet_pool.flow t.pool h) in
  if t.total < t.capacity then begin
    Ring.push t.buckets.(idx) h;
    t.total <- t.total + 1;
    if t.total > t.hwm then t.hwm <- t.total;
    `Enqueued
  end
  else begin
    let longest = longest_bucket t in
    if longest = idx then begin
      record_drop t now h;
      `Dropped
    end
    else begin
      let victim = Ring.pop_exn t.buckets.(longest) in
      record_drop t now victim;
      Ring.push t.buckets.(idx) h;
      `Enqueued_dropping victim
    end
  end

let dequeue t =
  let n = Array.length t.buckets in
  let rec scan tried =
    if tried = n then Packet_pool.nil
    else begin
      let idx = (t.next + tried) mod n in
      if Ring.is_empty t.buckets.(idx) then scan (tried + 1)
      else begin
        let h = Ring.pop_exn t.buckets.(idx) in
        t.total <- t.total - 1;
        (* Resume after this bucket next time. *)
        t.next <- (idx + 1) mod n;
        h
      end
    end
  in
  scan 0

let length t = t.total

let occupancy t = Array.map Ring.length t.buckets

let high_water_mark t = t.hwm
