type t = { id : int; mutable handler : Packet.t -> unit; mutable received : int }

let create ~id = { id; handler = ignore; received = 0 }

let id t = t.id

let set_handler t f = t.handler <- f

let receive t p =
  t.received <- t.received + 1;
  t.handler p

let received t = t.received
