type t = {
  id : int;
  pool : Packet_pool.t;
  mutable handler : Packet_pool.handle -> unit;
  mutable received : int;
}

let create ~id ~pool = { id; pool; handler = ignore; received = 0 }

let id t = t.id

let set_handler t f = t.handler <- f

(* The node is the packet's sink: the handler reads whatever fields it
   needs, then the slot goes back to the pool. *)
let receive t h =
  t.received <- t.received + 1;
  t.handler h;
  Packet_pool.free t.pool h

let received t = t.received
