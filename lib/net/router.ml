type t = {
  name : string;
  pool : Packet_pool.t;
  routes : (int, Link.t) Hashtbl.t;
  mutable default : Link.t option;
  mutable forwarded : int;
  (* Optional flight-recorder wiring: retransmitted data segments
     passing through the router write a lifecycle record, surfacing the
     recovery traffic the paper's burstiness analysis cares about. *)
  mutable rlane : Telemetry.Recorder.lane option;
  mutable rsid : int;
}

let create ?recorder ~name ~pool () =
  let rlane = Option.map (fun r -> Telemetry.Recorder.lane r 0) recorder in
  let rsid =
    match recorder with None -> 0 | Some r -> Telemetry.Recorder.intern r name
  in
  {
    name;
    pool;
    routes = Hashtbl.create 16;
    default = None;
    forwarded = 0;
    rlane;
    rsid;
  }

let add_route t ~dst link =
  if Hashtbl.mem t.routes dst then
    invalid_arg (Printf.sprintf "Router.add_route(%s): duplicate route for %d" t.name dst);
  Hashtbl.add t.routes dst link

let set_default t link = t.default <- Some link

let record_rtx t h =
  match t.rlane with
  | None -> ()
  | Some lane ->
      if Packet_pool.is_retransmitted_data t.pool h then
        Telemetry.Recorder.record lane
          ~tick:(Sim_engine.Time.to_ns (Packet_pool.sent_at t.pool h))
          ~kind:Telemetry.Record.router_rtx_forward
          ~flow:(Packet_pool.flow t.pool h)
          ~a:(Packet_pool.uid t.pool h)
          ~b:(Packet_pool.dst t.pool h)
          ~c:(Packet_pool.seq t.pool h)
          ~sid:t.rsid ~depth:0

let receive t h =
  t.forwarded <- t.forwarded + 1;
  record_rtx t h;
  match Hashtbl.find_opt t.routes (Packet_pool.dst t.pool h) with
  | Some link -> Link.send link h
  | None -> (
      match t.default with
      | Some link -> Link.send link h
      | None ->
          failwith
            (Printf.sprintf "Router %s: no route for destination %d" t.name
               (Packet_pool.dst t.pool h)))

let forwarded t = t.forwarded
