type t = {
  name : string;
  pool : Packet_pool.t;
  routes : (int, Link.t) Hashtbl.t;
  mutable default : Link.t option;
  mutable forwarded : int;
}

let create ~name ~pool =
  { name; pool; routes = Hashtbl.create 16; default = None; forwarded = 0 }

let add_route t ~dst link =
  if Hashtbl.mem t.routes dst then
    invalid_arg (Printf.sprintf "Router.add_route(%s): duplicate route for %d" t.name dst);
  Hashtbl.add t.routes dst link

let set_default t link = t.default <- Some link

let receive t h =
  t.forwarded <- t.forwarded + 1;
  match Hashtbl.find_opt t.routes (Packet_pool.dst t.pool h) with
  | Some link -> Link.send link h
  | None -> (
      match t.default with
      | Some link -> Link.send link h
      | None ->
          failwith
            (Printf.sprintf "Router %s: no route for destination %d" t.name
               (Packet_pool.dst t.pool h)))

let forwarded t = t.forwarded
