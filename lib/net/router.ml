type t = {
  name : string;
  routes : (int, Link.t) Hashtbl.t;
  mutable default : Link.t option;
  mutable forwarded : int;
}

let create ~name = { name; routes = Hashtbl.create 16; default = None; forwarded = 0 }

let add_route t ~dst link =
  if Hashtbl.mem t.routes dst then
    invalid_arg (Printf.sprintf "Router.add_route(%s): duplicate route for %d" t.name dst);
  Hashtbl.add t.routes dst link

let set_default t link = t.default <- Some link

let receive t p =
  t.forwarded <- t.forwarded + 1;
  match Hashtbl.find_opt t.routes p.Packet.dst with
  | Some link -> Link.send link p
  | None -> (
      match t.default with
      | Some link -> Link.send link p
      | None ->
          failwith
            (Printf.sprintf "Router %s: no route for destination %d" t.name
               p.Packet.dst))

let forwarded t = t.forwarded
