(** Bandwidth and transmission-time arithmetic. *)

type bandwidth = private float
(** Bits per second. *)

val bps : float -> bandwidth
(** @raise Invalid_argument if non-positive or not finite. *)

val kbps : float -> bandwidth
val mbps : float -> bandwidth
val gbps : float -> bandwidth

val to_bps : bandwidth -> float

val transmission_time : bandwidth -> bytes:int -> Sim_engine.Time.span
(** Serialization delay of [bytes] at the given rate. *)

val bytes_per_sec : bandwidth -> float

val pp_bandwidth : Format.formatter -> bandwidth -> unit
