(** Random Early Detection gateway queue (Floyd & Jacobson 1993).

    Maintains an exponentially weighted moving average of the instantaneous
    queue length. Below [min_th] all arrivals are queued; between [min_th]
    and [max_th] arrivals are dropped with a probability that rises linearly
    to [max_p] (spread out with the count mechanism of the original paper);
    at or above [max_th] every arrival is dropped. A physical [capacity]
    bounds the real queue as well. *)

type params = {
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : float;  (** drop probability at [max_th] *)
  w_q : float;  (** EWMA weight, e.g. 0.002 *)
  capacity : int;  (** physical buffer, packets *)
  idle_packet_time : float;
      (** seconds a typical packet takes to transmit; used to age the
          average across idle periods *)
  ecn_mark : bool;
      (** mark ECN-capable packets instead of early-dropping them
          (RFC 3168); forced drops (avg >= max_th or physical overflow)
          still drop *)
  adaptive : bool;
      (** Self-Configuring RED (Feng, Kandlur, Saha & Shin, INFOCOM '99 —
          reference [5] of the paper): scale [max_p] down by 3 whenever the
          average falls below [min_th] and up by 2 whenever it exceeds
          [max_th], keeping the average inside the target band *)
}

val default_params : capacity:int -> min_th:float -> max_th:float -> params
(** ns defaults for the remaining fields: [max_p = 0.02], [w_q = 0.002],
    [idle_packet_time] for a 1500-byte packet at 5 Mbps, [ecn_mark] and
    [adaptive] off. *)

type t

val create :
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?name:string ->
  rng:Sim_engine.Rng.t ->
  pool:Packet_pool.t ->
  params ->
  t
(** Packets are handles into [pool]. When [bus] is given, every internal
    decision — early drop, forced drop (overflow or [avg >= max_th]),
    ECN mark — publishes a [Queue] event tagged with [name] (default
    ["red"]) carrying the average-queue estimate at the decision. When
    [recorder] is given, the same decisions also write binary
    flight-recorder records (with the average as exact IEEE-754 bits, so
    decoding reproduces the bus event byte for byte). *)

val enqueue :
  t -> now:Sim_engine.Time.t -> Packet_pool.handle -> [ `Enqueued | `Dropped ]
(** In [ecn_mark] mode an early "drop" of an ECN-capable packet instead
    sets its CE bit and enqueues it. A [`Dropped] packet is {e not}
    freed here: the link owns the drop and frees after notifying its
    listeners. *)

val dequeue : t -> now:Sim_engine.Time.t -> Packet_pool.handle
(** The head handle, or {!Packet_pool.nil} when empty. *)

val length : t -> int

val avg : t -> float
(** Current average queue estimate (for tests and monitoring). *)

val set_virtual_queue : t -> float -> unit
(** Hybrid-engine hook: set the virtual background backlog (packets,
    clamped at 0). While non-zero it is added to every average-queue
    sample and suppresses idle aging; at 0 (the default) behaviour is
    bit-identical to plain RED. *)

val virtual_update : t -> arrivals:float -> unit
(** Hybrid-engine hook: fold [arrivals] fluid background arrivals into
    the average — the closed form of that many EWMA samples at the
    current combined (physical + virtual) depth. Keeps the EWMA pole
    tracking the {e total} arrival rate when only the foreground flows
    are physical. Deterministic (no RNG); a no-op when [arrivals <= 0]. *)

val marks : t -> int
(** Packets CE-marked so far (always 0 unless [ecn_mark]). *)

val current_max_p : t -> float
(** The live [max_p] (changes over time under [adaptive]). *)

val high_water_mark : t -> int
(** Peak physical queue occupancy (packets) seen so far. *)
