(** Struct-of-arrays slab for per-flow connection state.

    The flow-level twin of {!Packet_pool}: a flow's scalar state lives as
    one row of a flat [int array] plus one row of a flat unboxed
    [float array], identified by a generation-checked immediate handle.
    Allocating a flow zeroes its row and allocates no heap blocks;
    freeing recycles the row through a free stack and invalidates every
    outstanding handle to it. At N = 10^5 flows this replaces 10^5
    closure-rich records (and their GC pressure) with two arrays.

    The table fixes the row shape — [ints_per_flow]/[floats_per_flow] —
    at creation; the {e meaning} of each cell belongs to the component
    that owns the table (the TCP sender and receiver engines define
    their layouts in [Transport.Flow_layout]). *)

type t

type handle
(** Identifies a live flow. Immediate (an [int]), so storing or passing
    one costs no heap. Stale handles — freed, double-freed, or recycled
    slots — are detected by a generation check and raise
    [Invalid_argument]. *)

val nil : handle
(** Sentinel that is never live; {!slot_of} on it raises. *)

val create : ?capacity:int -> ints_per_flow:int -> floats_per_flow:int -> unit -> t
(** [capacity] (default 16) pre-sizes the slab; pass the flow count of
    the run so steady state never doubles. [floats_per_flow] may be 0.
    @raise Invalid_argument on non-positive [capacity]/[ints_per_flow]. *)

val alloc : t -> handle
(** Claim a slot; its int row and float row are zero-filled. *)

val free : t -> handle -> unit
(** Release the flow. Any handle to it (including [h] itself) is stale
    afterwards. @raise Invalid_argument if [h] is already stale. *)

val slot_of : t -> handle -> int
(** The row index behind a live handle — multiply by
    {!ints_per_flow}/{!floats_per_flow} to index {!ints}/{!floats}.
    @raise Invalid_argument if the handle is stale or freed. *)

val is_live : t -> handle -> bool

val handle_of_slot : t -> int -> handle
(** Re-derive the current handle of a live slot (used by keyed timer
    callbacks that carry the slot as their immediate key).
    @raise Invalid_argument if the slot is free. *)

(** {2 Row access}

    Hot paths fetch the arrays once per event and index
    [slot * per_flow + field] directly; the arrays are only replaced by
    a capacity doubling, which can happen solely inside {!alloc}. *)

val ints : t -> int array

val floats : t -> float array

val get_int : t -> handle -> int -> int

val set_int : t -> handle -> int -> int -> unit

val get_float : t -> handle -> int -> float

val set_float : t -> handle -> int -> float -> unit

val iter_live : t -> (int -> unit) -> unit
(** Apply to every live slot, in slot order. *)

(** {2 Accounting} *)

val live : t -> int
(** Flows currently allocated; the run-end leak check asserts 0. *)

val high_water_mark : t -> int

val capacity : t -> int

val growth_count : t -> int
(** Capacity doublings since creation; 0 means the pre-size held. *)

val ints_per_flow : t -> int

val floats_per_flow : t -> int

val words_per_flow : t -> int
(** Row words plus the 2 bookkeeping words (generation + free-stack
    cell) each slot carries. *)

val bytes_per_flow : t -> int
(** [8 * words_per_flow] — the memory-budget figure the flows bench
    gates (≤ 512 B summed over sender + receiver tables). *)

val footprint_bytes : t -> int
(** Total bytes across the whole slab at current capacity. *)
