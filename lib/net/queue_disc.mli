(** A gateway queueing discipline: drop-tail FIFO, RED, or SFQ.

    The closed variant keeps link code free of functors while still letting
    tests pattern-match on the concrete discipline. Queued packets are
    {!Packet_pool.handle}s; the discipline never frees them — ownership
    of a dropped packet stays with the link. *)

type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

val droptail : capacity:int -> t

val red :
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?name:string ->
  rng:Sim_engine.Rng.t ->
  pool:Packet_pool.t ->
  Red.params ->
  t

val sfq : ?buckets:int -> pool:Packet_pool.t -> capacity:int -> unit -> t

val set_recorder :
  t -> recorder:Telemetry.Recorder.t -> pool:Packet_pool.t -> name:string -> unit
(** Wire the flight recorder to the discipline's own drop decisions
    (drop-tail and SFQ; RED takes its recorder at construction and this
    is a no-op for it). *)

val enqueue :
  t ->
  now:Sim_engine.Time.t ->
  Packet_pool.handle ->
  [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ]
(** [`Enqueued_dropping victim] (SFQ only): the arrival was admitted at
    the cost of discarding [victim] from another queue. *)

val avg_queue : t -> float option
(** RED's EWMA average queue (the smoothed signal its drop decisions
    see); [None] for disciplines without one. A feed for the
    oscillation detector ({!Telemetry.Burst.Osc}). *)

val dequeue : t -> now:Sim_engine.Time.t -> Packet_pool.handle
(** The head handle, or {!Packet_pool.nil} when empty. *)

val length : t -> int

val high_water_mark : t -> int
(** Peak occupancy (packets) seen so far, whatever the discipline. *)
