(** A gateway queueing discipline: drop-tail FIFO, RED, or SFQ.

    The closed variant keeps link code free of functors while still letting
    tests pattern-match on the concrete discipline. Queued packets are
    {!Packet_pool.handle}s; the discipline never frees them — ownership
    of a dropped packet stays with the link. *)

type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

val droptail : capacity:int -> t

val red :
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?name:string ->
  rng:Sim_engine.Rng.t ->
  pool:Packet_pool.t ->
  Red.params ->
  t

val sfq : ?buckets:int -> pool:Packet_pool.t -> capacity:int -> unit -> t

val set_recorder :
  t -> recorder:Telemetry.Recorder.t -> pool:Packet_pool.t -> name:string -> unit
(** Wire the flight recorder to the discipline's own drop decisions
    (drop-tail and SFQ; RED takes its recorder at construction and this
    is a no-op for it). *)

val enqueue :
  t ->
  now:Sim_engine.Time.t ->
  Packet_pool.handle ->
  [ `Enqueued | `Dropped | `Enqueued_dropping of Packet_pool.handle ]
(** [`Enqueued_dropping victim] (SFQ only): the arrival was admitted at
    the cost of discarding [victim] from another queue. *)

val avg_queue : t -> float option
(** The discipline's EWMA average queue: RED's always-on estimate (the
    smoothed signal its drop decisions see), or the optional estimate
    {!enable_avg} turns on for drop-tail and SFQ; [None] when no
    estimate is live. A feed for the oscillation detector
    ({!Telemetry.Burst.Osc}). *)

val enable_avg : t -> w_q:float -> unit
(** Turn on the optional smoothed-occupancy estimate for drop-tail and
    SFQ (RED's is always on; no-op there). Same [w_q] semantics as
    RED's EWMA: each arrival samples the pre-enqueue occupancy. *)

val set_virtual_queue : t -> float -> unit
(** Hybrid-engine hook: publish the fluid background backlog (packets)
    into the discipline. RED folds it into every average-queue sample;
    a no-op for disciplines without an arrival-coupled average. *)

val virtual_update : t -> arrivals:float -> unit
(** Hybrid-engine hook: fold that many fluid background arrivals into
    RED's average (closed-form EWMA catch-up, deterministic); a no-op
    for other disciplines. *)

val dequeue : t -> now:Sim_engine.Time.t -> Packet_pool.handle
(** The head handle, or {!Packet_pool.nil} when empty. *)

val length : t -> int

val high_water_mark : t -> int
(** Peak occupancy (packets) seen so far, whatever the discipline. *)
