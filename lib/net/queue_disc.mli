(** A gateway queueing discipline: drop-tail FIFO, RED, or SFQ.

    The closed variant keeps link code free of functors while still letting
    tests pattern-match on the concrete discipline. *)

type t = Droptail of Droptail.t | Red of Red.t | Sfq of Sfq.t

val droptail : capacity:int -> t

val red :
  ?bus:Telemetry.Event_bus.t -> ?name:string -> rng:Sim_engine.Rng.t -> Red.params -> t

val sfq : ?buckets:int -> capacity:int -> unit -> t

val enqueue :
  t ->
  now:Sim_engine.Time.t ->
  Packet.t ->
  [ `Enqueued | `Dropped | `Enqueued_dropping of Packet.t ]
(** [`Enqueued_dropping victim] (SFQ only): the arrival was admitted at
    the cost of discarding [victim] from another queue. *)

val dequeue : t -> now:Sim_engine.Time.t -> Packet.t option

val length : t -> int

val high_water_mark : t -> int
(** Peak occupancy (packets) seen so far, whatever the discipline. *)
