type bandwidth = float

let bps b =
  if not (Float.is_finite b) || b <= 0. then invalid_arg "Units.bps: non-positive";
  b

let kbps k = bps (k *. 1e3)

let mbps m = bps (m *. 1e6)

let gbps g = bps (g *. 1e9)

let to_bps b = b

let transmission_time b ~bytes =
  if bytes < 0 then invalid_arg "Units.transmission_time: negative size";
  Sim_engine.Time.of_sec (float_of_int (8 * bytes) /. b)

let bytes_per_sec b = b /. 8.

let pp_bandwidth ppf b = Format.fprintf ppf "%.3gMbps" (b /. 1e6)
