type bandwidth = float

let bps b =
  if not (Float.is_finite b) || b <= 0. then invalid_arg "Units.bps: non-positive";
  b

let kbps k = bps (k *. 1e3)

let mbps m = bps (m *. 1e6)

let gbps g = bps (g *. 1e9)

let to_bps b = b

let transmission_time b ~bytes =
  if bytes < 0 then invalid_arg "Units.transmission_time: negative size";
  (* [Time.of_sec]'s rounding, inlined so the seconds value never crosses
     a call boundary (a boxed float per packet transmission otherwise).
     Bandwidths are validated finite-positive at construction, so the
     of_sec range check reduces to the of_ns non-negativity check. *)
  let s = float_of_int (8 * bytes) /. b in
  Sim_engine.Time.of_ns (int_of_float (Float.round (s *. 1e9)))

let bytes_per_sec b = b /. 8.

let pp_bandwidth ppf b = Format.fprintf ppf "%.3gMbps" (b /. 1e6)
