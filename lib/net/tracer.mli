(** ns-style packet event traces.

    A tracer subscribes to link events and records one row per event, in
    event order: arrivals at the queue ([`Arrive]), drops ([`Drop]) and
    deliveries at the far end ([`Deliver]). The text format is close to
    the classic ns trace so existing habits (and awk one-liners) carry
    over:

    {v
    + 12.345678 bottleneck flow=3 seq=127 1500B
    d 12.345678 bottleneck flow=5 seq=96 1500B
    r 12.847312 bottleneck flow=3 seq=127 1500B
    v} *)

type kind = Arrive | Drop | Deliver

type event = {
  time : float;
  kind : kind;
  link : string;
  flow : int;
  seq : int option;
  size_bytes : int;
  uid : int;
}

type t

val create : ?capacity_hint:int -> unit -> t

val attach : t -> Packet_pool.t -> Link.t -> unit
(** Start recording this link's events; a tracer may watch many links. *)

val attach_bus : t -> Telemetry.Event_bus.t -> unit
(** Record every [Packet] event published on the bus (other event kinds
    are ignored); equivalent to {!attach} when links publish there. *)

val length : t -> int

val events : t -> event array
(** All events recorded so far, in order. *)

val iter : (event -> unit) -> t -> unit

val output : t -> out_channel -> unit
(** Write the textual trace. *)

val pp_event : Format.formatter -> event -> unit

(** {2 Analysis} *)

val per_flow_counts : t -> kind -> (int, int) Hashtbl.t
(** Events of one kind per flow id. *)

val delivered_bytes_between : t -> link:string -> float -> float -> int
(** Bytes delivered on [link] in the half-open interval. *)

val drops_of_flow : t -> int -> event list
