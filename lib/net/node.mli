(** Network endpoints.

    A node is an addressable endpoint whose handler consumes packets
    delivered by an incoming link; transports register themselves as
    handlers. The node is a packet {e sink}: after the handler returns,
    {!receive} frees the handle back to the pool — handlers must not
    retain it. *)

type t

val create : id:int -> pool:Packet_pool.t -> t

val id : t -> int

val set_handler : t -> (Packet_pool.handle -> unit) -> unit
(** Replaces the current handler. The default handler ignores packets. *)

val receive : t -> Packet_pool.handle -> unit
(** Run the handler, then free the packet. *)

val received : t -> int
(** Total packets this node's handler has been given. *)
