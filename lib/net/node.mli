(** Network endpoints.

    A node is an addressable endpoint whose handler consumes packets
    delivered by an incoming link; transports register themselves as
    handlers. *)

type t

val create : id:int -> t

val id : t -> int

val set_handler : t -> (Packet.t -> unit) -> unit
(** Replaces the current handler. The default handler ignores packets. *)

val receive : t -> Packet.t -> unit

val received : t -> int
(** Total packets this node's handler has been given. *)
