(** Correlation between series.

    The paper's central mechanism is that TCP Reno introduces "a high
    level of dependency between the congestion-control decisions of each
    of the TCP streams" (§3.2): flows recognize congestion simultaneously
    and halve their windows together. Pairwise correlation of per-flow
    per-RTT transmission counts quantifies that dependency directly. *)

val pearson : float array -> float array -> float
(** Sample Pearson correlation coefficient in [\[-1, 1\]]. Returns 0 when
    either series is constant.
    @raise Invalid_argument on length mismatch or fewer than 2 samples. *)

val mean_pairwise : float array array -> float
(** Average of [pearson] over all unordered pairs of rows — the
    synchronization index of a set of flows. 0 for independent flows,
    1 for perfectly synchronized ones.
    @raise Invalid_argument with fewer than 2 rows. *)

val cross_correlation : float array -> float array -> int -> float array
(** [cross_correlation xs ys max_lag] gives the correlation of [xs(t)]
    with [ys(t+k)] for k in [0 .. max_lag] (computed over the overlap).
    Peaks at k > 0 reveal lagged coupling (one flow reacting to another's
    loss a round-trip later). *)
