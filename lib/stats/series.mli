(** An append-only time series of [(time, value)] samples.

    Used for congestion-window traces (Figures 5–12) and queue-length
    sampling. Samples must be appended in non-decreasing time order. *)

type t

val create : unit -> t

val add : t -> float -> float -> unit
(** [add t time value].
    @raise Invalid_argument if [time] precedes the last sample. *)

val length : t -> int

val times : t -> float array
val values : t -> float array

val iter : (float -> float -> unit) -> t -> unit

val value_summary : t -> Summary.t
(** Summary over the values. @raise Invalid_argument when empty. *)

val resample : t -> dt:float -> upto:float -> float array
(** Zero-order hold resampling: the value in effect at each multiple of
    [dt] in [\[0, upto)]. Samples before the first observation take the
    first observed value. Requires a non-empty series. *)

val between : t -> float -> float -> (float * float) list
(** Samples with [t0 <= time < t1], in order. *)
