(** Fixed-width histogram over floats. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Requires [lo < hi] and [bins > 0]. Values outside [\[lo, hi)] are
    counted in under/overflow buckets. *)

val add : t -> float -> unit

val count : t -> int
(** Total values added, including under/overflow. *)

val bin_counts : t -> int array

val underflow : t -> int
val overflow : t -> int

val merge_into : into:t -> t -> unit
(** Adds [src]'s bin, underflow and overflow counts into [into], as if
    every value had been {!add}ed to [into] directly.
    @raise Invalid_argument if the two layouts ([lo], [hi], bin count)
    differ. *)

val bin_edges : t -> float array
(** [bins + 1] edges. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering, one bar per bin. *)
