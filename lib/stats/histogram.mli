(** Fixed-width histogram over floats, with linear or logarithmic
    bucket spacing. *)

type scale = Linear | Log

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Linear spacing. Requires [lo < hi] and [bins > 0]. Values outside
    [\[lo, hi)] are counted in under/overflow buckets. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Logarithmic spacing: bin [i] covers
    [\[lo*(hi/lo)^(i/bins), lo*(hi/lo)^((i+1)/bins))]. Requires
    [0 < lo < hi] and [bins > 0]. *)

val create_like : t -> t
(** A fresh, empty histogram with the same layout (scale, bounds and
    bin count) as the argument. *)

val scale : t -> scale

val add : t -> float -> unit

val count : t -> int
(** Total values added, including under/overflow. *)

val bin_counts : t -> int array

val underflow : t -> int
val overflow : t -> int

val merge_into : into:t -> t -> unit
(** Adds [src]'s bin, underflow and overflow counts into [into], as if
    every value had been {!add}ed to [into] directly.
    @raise Invalid_argument if the two layouts (scale, [lo], [hi], bin
    count) differ. *)

val bin_edges : t -> float array
(** [bins + 1] edges; for [Log] histograms the first and last edge are
    exactly [lo] and [hi]. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering, one bar per bin. *)
