type t = {
  q : float;
  heights : float array; (* marker heights, 5 *)
  positions : float array; (* actual marker positions, 5 *)
  desired : float array; (* desired marker positions *)
  increments : float array; (* desired position increments per sample *)
  mutable n : int;
}

let create ~q =
  if q <= 0. || q >= 1. then invalid_arg "P2_quantile.create: q outside (0,1)";
  {
    q;
    heights = Array.make 5 0.;
    positions = [| 1.; 2.; 3.; 4.; 5. |];
    desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
    increments = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
    n = 0;
  }

let count t = t.n

(* Piecewise-parabolic prediction of marker i moved by d in {-1,+1}. *)
let parabolic t i d =
  let h = t.heights and p = t.positions in
  h.(i)
  +. d
     /. (p.(i + 1) -. p.(i - 1))
     *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
        +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1))))

let linear t i d =
  let h = t.heights and p = t.positions in
  h.(i) +. (d *. (h.(i + int_of_float d) -. h.(i)) /. (p.(i + int_of_float d) -. p.(i)))

let add t x =
  t.n <- t.n + 1;
  if t.n <= 5 then begin
    t.heights.(t.n - 1) <- x;
    if t.n = 5 then Array.sort Float.compare t.heights
  end
  else begin
    let h = t.heights and p = t.positions in
    (* Find the cell and update extreme markers. *)
    let k =
      if x < h.(0) then begin
        h.(0) <- x;
        0
      end
      else if x >= h.(4) then begin
        h.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < h.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      p.(i) <- p.(i) +. 1.
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust the three middle markers if they lag their desired spot. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. p.(i) in
      if
        (d >= 1. && p.(i + 1) -. p.(i) > 1.)
        || (d <= -1. && p.(i - 1) -. p.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let h' =
          if t.heights.(i - 1) < candidate && candidate < t.heights.(i + 1) then
            candidate
          else linear t i d
        in
        t.heights.(i) <- h';
        p.(i) <- p.(i) +. d
      end
    done
  end

let quantile t =
  if t.n = 0 then invalid_arg "P2_quantile.quantile: no samples";
  if t.n >= 5 then t.heights.(2)
  else begin
    let sorted = Array.sub t.heights 0 t.n in
    Array.sort Float.compare sorted;
    let pos = t.q *. float_of_int (t.n - 1) in
    sorted.(int_of_float (Float.round pos))
  end
