(* Aggregate [xs] into non-overlapping blocks of [m], averaging each block. *)
let aggregate xs m =
  let n = Array.length xs / m in
  Array.init n (fun i ->
      let s = ref 0. in
      for j = 0 to m - 1 do
        s := !s +. xs.((i * m) + j)
      done;
      !s /. float_of_int m)

let variance xs =
  let n = Array.length xs in
  let fn = float_of_int n in
  let mean = Array.fold_left ( +. ) 0. xs /. fn in
  Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fn

(* Geometrically spaced aggregation scales from 1 up to n/min_blocks. *)
let scales n min_blocks =
  let rec next acc m =
    if n / m < min_blocks then List.rev acc
    else begin
      let m' = Stdlib.max (m + 1) (int_of_float (float_of_int m *. 1.5)) in
      next (m :: acc) m'
    end
  in
  next [] 1

let aggregated_variance ?(min_blocks = 8) xs =
  let n = Array.length xs in
  if n < 4 * min_blocks then invalid_arg "Hurst.aggregated_variance: series too short";
  let ms = scales n min_blocks in
  let pts = List.map (fun m -> (float_of_int m, variance (aggregate xs m))) ms in
  let mxs = Array.of_list (List.map fst pts) in
  let mys = Array.of_list (List.map snd pts) in
  Regression.ols_loglog mxs mys

(* R/S statistic of one block. *)
let rs_block xs off len =
  let flen = float_of_int len in
  let mean = ref 0. in
  for i = 0 to len - 1 do
    mean := !mean +. xs.(off + i)
  done;
  let mean = !mean /. flen in
  let cum = ref 0. and lo = ref 0. and hi = ref 0. and ss = ref 0. in
  for i = 0 to len - 1 do
    let d = xs.(off + i) -. mean in
    cum := !cum +. d;
    if !cum < !lo then lo := !cum;
    if !cum > !hi then hi := !cum;
    ss := !ss +. (d *. d)
  done;
  let r = !hi -. !lo in
  let s = sqrt (!ss /. flen) in
  if s = 0. then None else Some (r /. s)

let rescaled_range ?(min_block = 8) xs =
  let n = Array.length xs in
  if n < 4 * min_block then invalid_arg "Hurst.rescaled_range: series too short";
  let rec block_sizes acc len =
    if len > n / 2 then List.rev acc
    else block_sizes (len :: acc) (Stdlib.max (len + 1) (len * 3 / 2))
  in
  let sizes = block_sizes [] min_block in
  let pts =
    List.filter_map
      (fun len ->
        let blocks = n / len in
        let vals =
          List.filter_map (fun b -> rs_block xs (b * len) len) (List.init blocks Fun.id)
        in
        match vals with
        | [] -> None
        | _ ->
            let avg = List.fold_left ( +. ) 0. vals /. float_of_int (List.length vals) in
            Some (float_of_int len, avg))
      sizes
  in
  let lxs = Array.of_list (List.map fst pts) in
  let lys = Array.of_list (List.map snd pts) in
  Regression.ols_loglog lxs lys

let periodogram ?(low_fraction = 0.1) xs =
  if Array.length xs < 64 then invalid_arg "Hurst.periodogram: series too short";
  if low_fraction <= 0. || low_fraction > 1. then
    invalid_arg "Hurst.periodogram: bad low_fraction";
  let spectrum = Fft.power_spectrum xs in
  let half = Array.length spectrum in
  let keep = Stdlib.max 8 (int_of_float (float_of_int half *. low_fraction)) in
  let keep = Stdlib.min keep (half - 1) in
  (* Skip k = 0 (the mean) and fit the lowest frequencies. *)
  let freqs = Array.init keep (fun i -> float_of_int (i + 1) /. float_of_int half) in
  let power = Array.init keep (fun i -> spectrum.(i + 1)) in
  Regression.ols_loglog freqs power

let clamp01 h = Stdlib.max 0. (Stdlib.min 1. h)

let estimate_variance_time xs =
  let fit = aggregated_variance xs in
  clamp01 (1. +. (fit.Regression.slope /. 2.))

let estimate_rs xs =
  let fit = rescaled_range xs in
  clamp01 fit.Regression.slope

let estimate_periodogram xs =
  let fit = periodogram xs in
  clamp01 ((1. -. fit.Regression.slope) /. 2.)
