type fit = { slope : float; intercept : float; r2 : float }

let ols xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Regression.ols: length mismatch";
  if n < 2 then invalid_arg "Regression.ols: need at least 2 points";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0. xs and sy = Array.fold_left ( +. ) 0. ys in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0. then invalid_arg "Regression.ols: all x equal";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if !syy = 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r2 }

let ols_loglog xs ys =
  let pts =
    List.filter_map
      (fun i ->
        if xs.(i) > 0. && ys.(i) > 0. then Some (log10 xs.(i), log10 ys.(i))
        else None)
      (List.init (Array.length xs) Fun.id)
  in
  let lx = Array.of_list (List.map fst pts) in
  let ly = Array.of_list (List.map snd pts) in
  ols lx ly
