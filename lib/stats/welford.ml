type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let mean t = if t.n = 0 then 0. else t.mean

let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let variance_population t = if t.n = 0 then 0. else t.m2 /. float_of_int t.n

let std t = sqrt (variance t)

let min t =
  if t.n = 0 then invalid_arg "Welford.min: empty";
  t.min

let max t =
  if t.n = 0 then invalid_arg "Welford.max: empty";
  t.max

let sum t = t.mean *. float_of_int t.n

let cov t =
  let m = mean t in
  if m = 0. then 0. else std t /. m

(* Chan et al. parallel-merge formulas. *)
let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    { n; mean; m2; min = Stdlib.min a.min b.min; max = Stdlib.max a.max b.max }
  end

let merge_into ~into src =
  let m = merge into src in
  into.n <- m.n;
  into.mean <- m.mean;
  into.m2 <- m.m2;
  into.min <- m.min;
  into.max <- m.max
