(** Ordinary least-squares line fitting.

    Used by the Hurst estimators, which are slopes of log-log plots. *)

type fit = { slope : float; intercept : float; r2 : float }

val ols : float array -> float array -> fit
(** [ols xs ys] fits [y = slope*x + intercept].
    @raise Invalid_argument if lengths differ or fewer than 2 points. *)

val ols_loglog : float array -> float array -> fit
(** OLS on [(log10 x, log10 y)]; points with non-positive coordinates are
    dropped. @raise Invalid_argument if fewer than 2 usable points. *)
