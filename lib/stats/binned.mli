(** Fixed-width time-binned event counting.

    The paper measures burstiness as the c.o.v. of the number of packets
    arriving at the gateway in each round-trip propagation delay (§2.2).
    A [Binned.t] counts events into consecutive bins of that width, starting
    at a configurable origin (so a warm-up period can be excluded). *)

type t

val create : origin:float -> width:float -> unit -> t
(** Bins are [\[origin + k*width, origin + (k+1)*width)]. Events before
    [origin] are ignored. Requires [width > 0]. *)

val record : t -> float -> unit
(** [record t at] counts one event at time [at] (seconds). Events may
    arrive in any order; bins are kept sparse-dense in an array. *)

val record_many : t -> float -> int -> unit

val counts : t -> upto:float -> float array
(** Per-bin counts for all complete bins ending at or before [upto],
    including empty bins. *)

val num_complete_bins : t -> upto:float -> int

val total : t -> int
(** Total events recorded (including any in the final partial bin). *)
