type t = {
  origin : float;
  width : float;
  mutable bins : int array;
  mutable max_bin : int; (* highest bin index touched, -1 when none *)
  mutable total : int;
}

let create ~origin ~width () =
  if width <= 0. then invalid_arg "Binned.create: width <= 0";
  { origin; width; bins = Array.make 64 0; max_bin = -1; total = 0 }

let ensure t idx =
  let cap = Array.length t.bins in
  if idx >= cap then begin
    let ncap = Stdlib.max (idx + 1) (2 * cap) in
    let nbins = Array.make ncap 0 in
    Array.blit t.bins 0 nbins 0 cap;
    t.bins <- nbins
  end

let record_many t at n =
  if at >= t.origin then begin
    let idx = int_of_float ((at -. t.origin) /. t.width) in
    ensure t idx;
    t.bins.(idx) <- t.bins.(idx) + n;
    if idx > t.max_bin then t.max_bin <- idx;
    t.total <- t.total + n
  end

let record t at = record_many t at 1

let num_complete_bins t ~upto =
  if upto <= t.origin then 0
  else int_of_float (floor ((upto -. t.origin) /. t.width))

let counts t ~upto =
  let n = num_complete_bins t ~upto in
  Array.init n (fun i -> if i < Array.length t.bins then float_of_int t.bins.(i) else 0.)

let total t = t.total
