type t = {
  mutable times : float array;
  mutable values : float array;
  mutable size : int;
}

let create () = { times = [||]; values = [||]; size = 0 }

let ensure t =
  let cap = Array.length t.times in
  if t.size = cap then begin
    let ncap = Stdlib.max 64 (2 * cap) in
    let nt = Array.make ncap 0. and nv = Array.make ncap 0. in
    Array.blit t.times 0 nt 0 t.size;
    Array.blit t.values 0 nv 0 t.size;
    t.times <- nt;
    t.values <- nv
  end

let add t time value =
  if t.size > 0 && time < t.times.(t.size - 1) then
    invalid_arg "Series.add: time went backwards";
  ensure t;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let length t = t.size

let times t = Array.sub t.times 0 t.size

let values t = Array.sub t.values 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.times.(i) t.values.(i)
  done

let value_summary t =
  if t.size = 0 then invalid_arg "Series.value_summary: empty";
  Summary.of_array (values t)

let resample t ~dt ~upto =
  if t.size = 0 then invalid_arg "Series.resample: empty";
  if dt <= 0. then invalid_arg "Series.resample: dt <= 0";
  let n = int_of_float (floor (upto /. dt)) in
  let out = Array.make (Stdlib.max n 0) 0. in
  let j = ref 0 in
  for i = 0 to n - 1 do
    let at = float_of_int i *. dt in
    while !j + 1 < t.size && t.times.(!j + 1) <= at do
      incr j
    done;
    (* Zero-order hold: before the first sample, use the first value. *)
    out.(i) <- (if t.times.(!j) <= at || !j = 0 then t.values.(!j) else t.values.(0))
  done;
  out

let between t t0 t1 =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    if t.times.(i) >= t0 && t.times.(i) < t1 then
      acc := (t.times.(i), t.values.(i)) :: !acc
  done;
  !acc
