(** Closed-form queueing-theory baselines.

    §2.2 of the paper frames statistical multiplexing in terms of how
    concentrated the arrival process is; classical queueing formulas give
    the gateway's expected behaviour when arrivals really are Poisson.
    The simulator is validated against M/D/1 (Poisson arrivals,
    deterministic service — exactly a UDP dumbbell with fixed-size
    packets) in the test suite.

    All functions take the utilization [rho = lambda / mu] and require
    [0 <= rho < 1]. Queue lengths count waiting customers plus the one in
    service. *)

val mm1_mean_queue : rho:float -> float
(** Mean number in an M/M/1 system: [rho / (1 - rho)]. *)

val mm1_mean_wait : rho:float -> service_time:float -> float
(** Mean sojourn time (wait + service). *)

val mm1_p_occupancy_exceeds : rho:float -> int -> float
(** P(more than n in the system) = [rho^(n+1)]. *)

val md1_mean_queue : rho:float -> float
(** Mean number in an M/D/1 system (Pollaczek–Khinchine):
    [rho + rho^2 / (2 (1 - rho))]. *)

val md1_mean_wait : rho:float -> service_time:float -> float

val mg1_mean_queue : rho:float -> service_cv2:float -> float
(** General M/G/1 via Pollaczek–Khinchine with squared coefficient of
    variation of service time [service_cv2] (0 = deterministic,
    1 = exponential). *)

val erlang_b : servers:int -> offered_load:float -> float
(** Blocking probability of M/M/c/c (Erlang B), computed with the stable
    recurrence. [offered_load] is in Erlangs; requires [servers >= 1]. *)
