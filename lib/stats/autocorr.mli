(** Sample autocorrelation of a series.

    Long-range-dependent (self-similar) traffic shows slowly decaying
    autocorrelations; the paper's context experiments use this to contrast
    TCP-modulated traffic with the aggregated Poisson baseline. *)

val acf : float array -> int -> float array
(** [acf xs max_lag] returns autocorrelations at lags [0 .. max_lag]
    (biased estimator, normalized so lag 0 is 1). A constant series yields
    1 at lag 0 and 0 elsewhere.
    @raise Invalid_argument if the series is shorter than [max_lag + 1] or
    [max_lag < 0]. *)

val at_lag : float array -> int -> float
(** Single-lag convenience wrapper over {!acf}. *)
