let block_sums xs m =
  let n = Array.length xs / m in
  Array.init n (fun i ->
      let s = ref 0. in
      for j = 0 to m - 1 do
        s := !s +. xs.((i * m) + j)
      done;
      !s)

let idc xs m =
  if m < 1 then invalid_arg "Dispersion.idc: m < 1";
  let blocks = block_sums xs m in
  if Array.length blocks < 2 then invalid_arg "Dispersion.idc: too few blocks";
  let s = Summary.of_array blocks in
  if s.Summary.mean = 0. then invalid_arg "Dispersion.idc: zero mean";
  s.Summary.variance /. s.Summary.mean

(* Every requested block size yields a row: [None] marks scales the
   series cannot support (too few blocks, zero mean) instead of
   silently vanishing from the profile. *)
let idc_profile xs ms =
  List.map
    (fun m ->
      match idc xs m with
      | v -> (m, Some v)
      | exception Invalid_argument _ -> (m, None))
    ms
