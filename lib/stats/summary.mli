(** Descriptive statistics of a complete sample. *)

type t = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance *)
  std : float;
  cov : float;  (** coefficient of variation, std/mean (0 if mean = 0) *)
  min : float;
  max : float;
  sum : float;
}

val of_array : float array -> t
(** @raise Invalid_argument on an empty array. *)

val of_list : float list -> t

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0,1\]], linear interpolation between order
    statistics. Sorts a copy; O(n log n).
    @raise Invalid_argument on an empty array or [q] outside [\[0,1\]]. *)

val median : float array -> float

val pp : Format.formatter -> t -> unit
