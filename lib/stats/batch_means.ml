type interval = {
  point : float;
  mean_of_batches : float;
  std_error : float;
  half_width_95 : float;
  batches : int;
}

(* Two-sided 0.975 Student-t quantiles for small degrees of freedom. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_quantile_975 ~df =
  if df < 1 then invalid_arg "Batch_means.t_quantile_975: df < 1";
  if df <= Array.length t_table then t_table.(df - 1) else 1.96

let analyze ?(batches = 10) ~f xs =
  let n = Array.length xs in
  if batches < 2 then invalid_arg "Batch_means.analyze: need >= 2 batches";
  let per = n / batches in
  if per < 2 then invalid_arg "Batch_means.analyze: fewer than 2 observations per batch";
  let w = Welford.create () in
  for b = 0 to batches - 1 do
    Welford.add w (f (Array.sub xs (b * per) per))
  done;
  let std_error = Welford.std w /. sqrt (float_of_int batches) in
  {
    point = f xs;
    mean_of_batches = Welford.mean w;
    std_error;
    half_width_95 = t_quantile_975 ~df:(batches - 1) *. std_error;
    batches;
  }

let cov_of xs = (Summary.of_array xs).Summary.cov

let cov_interval ?batches xs = analyze ?batches ~f:cov_of xs
