let acf xs max_lag =
  let n = Array.length xs in
  if max_lag < 0 then invalid_arg "Autocorr.acf: negative lag";
  if n < max_lag + 1 then invalid_arg "Autocorr.acf: series too short";
  let fn = float_of_int n in
  let mean = Array.fold_left ( +. ) 0. xs /. fn in
  let c0 =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. fn
  in
  Array.init (max_lag + 1) (fun k ->
      if k = 0 then 1.
      else if c0 = 0. then 0.
      else begin
        let s = ref 0. in
        for i = 0 to n - 1 - k do
          s := !s +. ((xs.(i) -. mean) *. (xs.(i + k) -. mean))
        done;
        !s /. fn /. c0
      end)

let at_lag xs k = (acf xs k).(k)
