(** Online mean and variance (Welford's algorithm).

    Numerically stable single-pass accumulation of count, mean, variance,
    min and max. This is the workhorse behind every per-run statistic in
    the experiment harness. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0 for an empty accumulator. *)

val variance : t -> float
(** Unbiased sample variance (divides by [n-1]); 0 when [n < 2]. *)

val variance_population : t -> float
(** Population variance (divides by [n]); 0 when [n = 0]. *)

val std : t -> float

val min : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val max : t -> float
(** @raise Invalid_argument on an empty accumulator. *)

val sum : t -> float

val cov : t -> float
(** Coefficient of variation, [std /. mean] (sample std). 0 when the mean
    is 0. This is the paper's burstiness metric (§2.2). *)

val merge : t -> t -> t
(** Combines two accumulators as if all samples were added to one. *)

val merge_into : into:t -> t -> unit
(** In-place {!merge}: folds [src] into [into], leaving [src] untouched. *)
