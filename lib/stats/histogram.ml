type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  (* Cached [log lo] and [log hi -. log lo] for the Log fast path; both
     are 0. for Linear histograms. *)
  log_lo : float;
  log_span : float;
  bins : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  {
    scale = Linear;
    lo;
    hi;
    log_lo = 0.;
    log_span = 0.;
    bins = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let create_log ~lo ~hi ~bins =
  if not (lo > 0.) then invalid_arg "Histogram.create_log: lo <= 0";
  if not (lo < hi) then invalid_arg "Histogram.create_log: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create_log: bins <= 0";
  let log_lo = log lo in
  {
    scale = Log;
    lo;
    hi;
    log_lo;
    log_span = log hi -. log_lo;
    bins = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let create_like t =
  {
    t with
    bins = Array.make (Array.length t.bins) 0;
    under = 0;
    over = 0;
    total = 0;
  }

let scale t = t.scale

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let nbins = Array.length t.bins in
    let frac =
      match t.scale with
      | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
      | Log -> (log x -. t.log_lo) /. t.log_span
    in
    let idx = int_of_float (frac *. float_of_int nbins) in
    let idx = Stdlib.max 0 (Stdlib.min idx (nbins - 1)) in
    t.bins.(idx) <- t.bins.(idx) + 1
  end

let count t = t.total

let bin_counts t = Array.copy t.bins

let underflow t = t.under

let overflow t = t.over

let merge_into ~into src =
  if
    into.scale <> src.scale || into.lo <> src.lo || into.hi <> src.hi
    || Array.length into.bins <> Array.length src.bins
  then invalid_arg "Histogram.merge_into: bucket layouts differ";
  Array.iteri (fun i c -> into.bins.(i) <- into.bins.(i) + c) src.bins;
  into.under <- into.under + src.under;
  into.over <- into.over + src.over;
  into.total <- into.total + src.total

let bin_edges t =
  let nbins = Array.length t.bins in
  match t.scale with
  | Linear ->
      let w = (t.hi -. t.lo) /. float_of_int nbins in
      Array.init (nbins + 1) (fun i -> t.lo +. (float_of_int i *. w))
  | Log ->
      Array.init (nbins + 1) (fun i ->
          if i = 0 then t.lo
          else if i = nbins then t.hi
          else
            exp (t.log_lo +. (t.log_span *. float_of_int i /. float_of_int nbins)))

let pp ppf t =
  let maxc = Array.fold_left Stdlib.max 1 t.bins in
  let edges = bin_edges t in
  Array.iteri
    (fun i c ->
      let width = 40 * c / maxc in
      Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." edges.(i) edges.(i + 1) c
        (String.make width '#'))
    t.bins
