(** Batch-means output analysis for steady-state simulations.

    A single simulation run produces one autocorrelated series of per-bin
    observations; naive confidence intervals on it are wrong. The batch
    means method splits the series into [batches] contiguous batches,
    computes the statistic within each, and treats the batch values as
    approximately independent — the standard method for interval
    estimation from one long DES run (Law & Kelton ch. 9). *)

type interval = {
  point : float;  (** statistic over the whole series *)
  mean_of_batches : float;
  std_error : float;  (** of the batch means *)
  half_width_95 : float;  (** Student-t 95 % half width *)
  batches : int;
}

val analyze :
  ?batches:int -> f:(float array -> float) -> float array -> interval
(** [analyze ~f xs] with [batches] contiguous batches (default 10).
    @raise Invalid_argument if there are fewer than 2 observations per
    batch or fewer than 2 batches. *)

val cov_interval : ?batches:int -> float array -> interval
(** Batch-means interval for the coefficient of variation — the paper's
    burstiness statistic with honest error bars from one run. *)

val t_quantile_975 : df:int -> float
(** Two-sided 95 % Student-t quantile, exact to three decimals for
    df <= 30, asymptotic 1.96 beyond. *)
