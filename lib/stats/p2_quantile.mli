(** Online quantile estimation (the P² algorithm, Jain & Chlamtac 1985).

    Tracks a single quantile in O(1) memory using five markers with
    piecewise-parabolic adjustment — the right tool for per-packet delay
    percentiles over millions of packets where storing samples is out of
    the question. Accuracy is typically within a fraction of a percent of
    the exact order statistic for smooth distributions. *)

type t

val create : q:float -> t
(** Track the [q]-quantile, [0 < q < 1]. *)

val add : t -> float -> unit

val count : t -> int

val quantile : t -> float
(** Current estimate. Before five observations have arrived, falls back
    to the exact quantile of the samples seen so far.
    @raise Invalid_argument when no sample has been added. *)
