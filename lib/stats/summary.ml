type t = {
  count : int;
  mean : float;
  variance : float;
  std : float;
  cov : float;
  min : float;
  max : float;
  sum : float;
}

let of_array xs =
  if Array.length xs = 0 then invalid_arg "Summary.of_array: empty";
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  {
    count = Welford.count w;
    mean = Welford.mean w;
    variance = Welford.variance w;
    std = Welford.std w;
    cov = Welford.cov w;
    min = Welford.min w;
    max = Welford.max w;
    sum = Welford.sum w;
  }

let of_list xs = of_array (Array.of_list xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Summary.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = quantile xs 0.5

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g std=%.4g cov=%.4g min=%.4g max=%.4g"
    t.count t.mean t.std t.cov t.min t.max
