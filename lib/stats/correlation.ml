let moments xs =
  let n = Array.length xs in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
  (mean, var)

let pearson xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Correlation.pearson: length mismatch";
  if n < 2 then invalid_arg "Correlation.pearson: need at least 2 samples";
  let mx, vx = moments xs and my, vy = moments ys in
  if vx = 0. || vy = 0. then 0.
  else begin
    let cov = ref 0. in
    for i = 0 to n - 1 do
      cov := !cov +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !cov /. sqrt (vx *. vy)
  end

let mean_pairwise rows =
  let k = Array.length rows in
  if k < 2 then invalid_arg "Correlation.mean_pairwise: need at least 2 rows";
  let total = ref 0. and pairs = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      total := !total +. pearson rows.(i) rows.(j);
      incr pairs
    done
  done;
  !total /. float_of_int !pairs

let cross_correlation xs ys max_lag =
  if max_lag < 0 then invalid_arg "Correlation.cross_correlation: negative lag";
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Correlation.cross_correlation: length mismatch";
  if n < max_lag + 2 then invalid_arg "Correlation.cross_correlation: series too short";
  Array.init (max_lag + 1) (fun k ->
      let len = n - k in
      let a = Array.sub xs 0 len in
      let b = Array.sub ys k len in
      pearson a b)
