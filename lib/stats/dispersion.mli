(** Index-of-dispersion measures for count series.

    The index of dispersion for counts (IDC) at timescale [m] is
    [Var(X^(m)) / E(X^(m))] where [X^(m)] sums the series over blocks of
    [m]. A Poisson process has IDC = 1 at every scale; burstier-than-Poisson
    traffic has IDC > 1 growing with scale. Complements the c.o.v. metric. *)

val idc : float array -> int -> float
(** [idc xs m] for block size [m >= 1].
    @raise Invalid_argument if the blocked series has < 2 blocks or the
    blocked mean is 0. *)

val idc_profile : float array -> int list -> (int * float option) list
(** IDC across several block sizes, one row per requested size. A block
    size the series cannot support (fewer than 2 blocks, zero blocked
    mean) yields [None] rather than silently disappearing, so callers
    can tell "scale missing" from "scale computed". *)
