(** Radix-2 fast Fourier transform.

    Just enough signal processing for the periodogram Hurst estimator:
    an in-place iterative Cooley–Tukey FFT over power-of-two-length
    complex arrays, plus helpers for real inputs. *)

val transform : Complex.t array -> unit
(** In-place forward DFT. @raise Invalid_argument if the length is not a
    power of two (length 0 is rejected; length 1 is a no-op). *)

val inverse : Complex.t array -> unit
(** In-place inverse DFT (includes the 1/n scaling). *)

val of_real : float array -> Complex.t array

val power_spectrum : float array -> float array
(** [power_spectrum xs] pads [xs] with its mean to the next power of two,
    removes the mean, transforms, and returns |X_k|^2 / n for
    k = 0 .. n/2 - 1 (the one-sided spectrum). *)

val next_pow2 : int -> int
