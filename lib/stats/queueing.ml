let check_rho rho =
  if rho < 0. || rho >= 1. then invalid_arg "Queueing: rho outside [0, 1)"

let mm1_mean_queue ~rho =
  check_rho rho;
  rho /. (1. -. rho)

let mm1_mean_wait ~rho ~service_time =
  check_rho rho;
  if service_time <= 0. then invalid_arg "Queueing.mm1_mean_wait: bad service time";
  service_time /. (1. -. rho)

let mm1_p_occupancy_exceeds ~rho n =
  check_rho rho;
  if n < 0 then invalid_arg "Queueing.mm1_p_occupancy_exceeds: negative n";
  rho ** float_of_int (n + 1)

let mg1_mean_queue ~rho ~service_cv2 =
  check_rho rho;
  if service_cv2 < 0. then invalid_arg "Queueing.mg1_mean_queue: negative cv^2";
  (* Pollaczek-Khinchine: L = rho + rho^2 (1 + cv^2) / (2 (1 - rho)) *)
  rho +. (rho *. rho *. (1. +. service_cv2) /. (2. *. (1. -. rho)))

let md1_mean_queue ~rho = mg1_mean_queue ~rho ~service_cv2:0.

let md1_mean_wait ~rho ~service_time =
  check_rho rho;
  if service_time <= 0. then invalid_arg "Queueing.md1_mean_wait: bad service time";
  (* W = S + rho S / (2 (1 - rho)) *)
  service_time *. (1. +. (rho /. (2. *. (1. -. rho))))

let erlang_b ~servers ~offered_load =
  if servers < 1 then invalid_arg "Queueing.erlang_b: servers < 1";
  if offered_load < 0. then invalid_arg "Queueing.erlang_b: negative load";
  let b = ref 1. in
  for c = 1 to servers do
    let fc = float_of_int c in
    b := offered_load *. !b /. (fc +. (offered_load *. !b))
  done;
  !b
