let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

(* Bit-reversal permutation followed by iterative butterflies. *)
let transform_gen ~sign a =
  let n = Array.length a in
  if not (is_pow2 n) then invalid_arg "Fft.transform: length not a power of two";
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tmp = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- tmp
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2. *. Float.pi /. float_of_int !len in
    let wlen = { Complex.re = cos ang; im = sin ang } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = 0 to (!len / 2) - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + (!len / 2)) !w in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + (!len / 2)) <- Complex.sub u v;
        w := Complex.mul !w wlen
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let transform a = transform_gen ~sign:(-1.) a

let inverse a =
  transform_gen ~sign:1. a;
  let n = float_of_int (Array.length a) in
  Array.iteri
    (fun i v -> a.(i) <- { Complex.re = v.Complex.re /. n; im = v.Complex.im /. n })
    a

let of_real xs = Array.map (fun x -> { Complex.re = x; im = 0. }) xs

let power_spectrum xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fft.power_spectrum: empty";
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let padded = next_pow2 n in
  let a =
    Array.init padded (fun i ->
        let v = if i < n then xs.(i) -. mean else 0. in
        { Complex.re = v; im = 0. })
  in
  transform a;
  Array.init (padded / 2) (fun k ->
      let c = a.(k) in
      ((c.Complex.re *. c.Complex.re) +. (c.Complex.im *. c.Complex.im))
      /. float_of_int padded)
