(** Hurst-parameter estimators for count series.

    The self-similarity literature the paper critiques ([LTWW94], [PF95])
    characterizes burstiness by the Hurst parameter H: H = 0.5 for
    short-range-dependent traffic, H -> 1 for strongly self-similar traffic.
    Two classic estimators are provided; both operate on an equally spaced
    count series (e.g. packets per 10 ms bin). *)

val aggregated_variance : ?min_blocks:int -> float array -> Regression.fit
(** Variance–time method: aggregate the series at scales m, fit
    [log Var(X^(m))] vs [log m]; the slope is [2H - 2], so
    [H = 1 + slope/2]. Requires at least [4 * min_blocks] samples
    (default [min_blocks = 8]). *)

val rescaled_range : ?min_block:int -> float array -> Regression.fit
(** R/S method: fit [log E(R/S)(n)] vs [log n]; the slope is H directly.
    [min_block] is the smallest block size used (default 8). *)

val estimate_variance_time : float array -> float
(** [1 + slope/2] from {!aggregated_variance}, clamped to [\[0, 1\]]. *)

val estimate_rs : float array -> float
(** Slope from {!rescaled_range}, clamped to [\[0, 1\]]. *)

val periodogram : ?low_fraction:float -> float array -> Regression.fit
(** Periodogram method: a long-range-dependent series has spectral density
    [f(l) ~ c l^(1-2H)] near zero frequency, so the log–log slope of the
    periodogram over the lowest [low_fraction] of frequencies (default
    0.1) is [1 - 2H]. Requires at least 64 samples. *)

val estimate_periodogram : float array -> float
(** [(1 - slope)/2] from {!periodogram}, clamped to [\[0, 1\]]. *)
