(** A hierarchical timer wheel over integer items.

    The wheel holds opaque [int] items (the event queue's slab slots),
    each tagged with a nanosecond firing time, in a hierarchy of rings:
    level 0 buckets spans of one {e quantum} (2{^quantum_bits} ns),
    each higher level buckets spans [2^slot_bits] times coarser. Insert
    and removal are O(1) list pushes; a lazily-advanced cursor expires
    level-0 buckets and {e cascades} higher-level buckets downward as
    their start boundary is crossed.

    The wheel is deliberately {e not} an ordered queue: {!advance}
    hands back every item due by [upto_ns] — possibly up to one quantum
    early, and in no particular order within a bucket. The caller
    (see {!Event_queue}) re-inserts flushed items into its comparison
    heap, so observable firing order is decided there; the wheel only
    absorbs the schedule/cancel churn of the many timers that never
    fire (RTO re-arms, pacing gaps, delayed ACKs).

    Items whose delay from the cursor exceeds {!horizon_ns}, or whose
    time is within one quantum (due "now"), are rejected by {!add} and
    must be kept in the caller's fallback ordering structure. *)

type t

val create :
  ?quantum_bits:int -> ?slot_bits:int -> ?levels:int -> ?capacity:int -> unit -> t
(** Defaults: [quantum_bits = 20] (a ~1.05 ms quantum), [slot_bits = 6]
    (64 buckets per level), [levels = 4] — an addressable horizon of
    2{^44} ns, about 4.9 simulated hours, far beyond the 64 s maximum
    RTO backoff. [capacity] pre-sizes the per-item link arrays; it must
    cover the caller's slab (see {!ensure_capacity}).
    @raise Invalid_argument on non-positive parameters or a horizon
    beyond 2{^60} ns. *)

val count : t -> int
(** Items currently parked in the wheel. *)

val cursor_ns : t -> int
(** The expiry frontier: every bucket starting before this time has
    been flushed. Advances monotonically. *)

val quantum_ns : t -> int

val horizon_ns : t -> int
(** Width of the addressable window above the cursor. *)

val ensure_capacity : t -> int -> unit
(** Grow the per-item arrays so items in [0, n) are addressable. *)

val add : t -> item:int -> time_ns:int -> bool
(** [add t ~item ~time_ns] parks [item] to be flushed when the cursor
    reaches its bucket. Returns [false] — without storing anything — if
    the time is within one quantum of the cursor (the caller should
    treat it as due), at or past the addressable horizon, or beyond the
    wheel's absolute ceiling. [item] must not already be in the wheel. *)

val advance : t -> upto_ns:int -> flush:(int -> unit) -> unit
(** Move the cursor to just past [upto_ns], calling [flush] on every
    item whose time is [<= upto_ns] (bucket granularity: items sharing
    the final bucket may be flushed up to one quantum early). [flush]
    must not re-enter the wheel. Cost is amortised: the cursor jumps
    directly between occupied bucket boundaries. *)
