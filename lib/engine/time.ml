(* Time is an integer count of nanoseconds. An OCaml [int] is immediate
   (unboxed everywhere: record fields, arrays, closures), so event
   timestamps cost no heap words and comparing two times is one integer
   compare — both on the hottest path in the simulator. Range checks
   happen at construction ([of_sec] and friends); arithmetic afterwards
   is raw [int] arithmetic. *)

type t = int

type span = t

let ns_per_sec = 1_000_000_000.

let zero = 0

let never = max_int

(* Largest representable tick, kept one below [never] so the sentinel
   stays distinguishable. 2^62 - 2 ns is roughly 146 years of simulated
   time — far beyond any run. *)
let max_ticks = max_int - 1

let of_sec s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Time.of_sec: negative or non-finite";
  let ticks = Float.round (s *. ns_per_sec) in
  if ticks > float_of_int max_ticks then
    invalid_arg "Time.of_sec: beyond the 146-year tick horizon";
  int_of_float ticks

let to_sec t = float_of_int t /. ns_per_sec

let of_ns n =
  if n < 0 then invalid_arg "Time.of_ns: negative";
  n

let to_ns t = t

let of_ms ms = of_sec (ms /. 1e3)

let of_us us = of_sec (us /. 1e6)

let add t d = t + d

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result";
  a - b

let mul d k =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Time.mul: negative or non-finite factor";
  int_of_float (Float.round (float_of_int d *. k))

let compare = Int.compare

let equal = Int.equal

let ( < ) (a : t) b = a < b

let ( <= ) (a : t) b = a <= b

let ( > ) (a : t) b = a > b

let ( >= ) (a : t) b = a >= b

let min (a : t) b = Stdlib.min a b

let max (a : t) b = Stdlib.max a b

let pp ppf t = Format.fprintf ppf "%.6fs" (to_sec t)
