type t = float

type span = t

let zero = 0.

let never = infinity

let of_sec s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Time.of_sec: negative or non-finite";
  s

let to_sec t = t

let of_ms ms = of_sec (ms /. 1e3)

let of_us us = of_sec (us /. 1e6)

let add t d = t +. d

let diff a b =
  if b > a then invalid_arg "Time.diff: negative result";
  a -. b

let mul d k =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg "Time.mul: negative or non-finite factor";
  d *. k

let compare = Float.compare

let equal = Float.equal

let ( < ) (a : t) b = a < b

let ( <= ) (a : t) b = a <= b

let ( > ) (a : t) b = a > b

let ( >= ) (a : t) b = a >= b

let min (a : t) b = Stdlib.min a b

let max (a : t) b = Stdlib.max a b

let pp ppf t = Format.fprintf ppf "%.6fs" t
