(* SplitMix-style mixing on the native 63-bit [int]. OCaml [int]
   arithmetic wraps modulo 2^63 and ints are immediate, so a [bits] call
   touches no heap at all — the previous [Int64] implementation boxed
   roughly six intermediates per draw, and the generator fires once per
   Poisson interarrival, per RED drop decision and per start stagger.

   The constants are the SplitMix64 ones truncated to fit an OCaml int
   literal (62 bits), kept odd so the multiplies stay bijective modulo
   2^63. This is a distinct stream from the old Int64 generator; the
   golden vectors in test/test_engine.ml pin the new one. *)

type t = { mutable state : int }

let golden_gamma = 0x1E3779B97F4A7C15

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x34D049BB133111EB in
  z lxor (z lsr 31)

let create ~seed = { state = mix (Int64.to_int seed) }

let bits t =
  t.state <- t.state + golden_gamma;
  mix t.state

let bits64 t = Int64.of_int (bits t)

let split t = { state = bits t }

let split_named t label =
  let h = Hashtbl.hash label in
  { state = mix (t.state lxor h) }

(* 53 uniform mantissa bits out of the 63 available, as in the standard
   doubles-from-random-bits recipe. *)
let float t = float_of_int (bits t lsr 10) *. 0x1.0p-53

let float_range t lo hi =
  if not (lo < hi) then invalid_arg "Rng.float_range: lo >= hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n <= 0";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     n << 2^62, and determinism matters more than perfect uniformity. *)
  (bits t lsr 1) mod n

let bool t p =
  if p < 0. || p > 1. then invalid_arg "Rng.bool: p outside [0,1]";
  float t < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1. -. float t in
  -.mean *. log u

(* Same draw as [exponential] followed by [Time.of_sec]'s rounding, fused
   into one function so the intermediate float never crosses a call
   boundary (which would box it — no flambda). The [float] body is
   inlined for the same reason. Must stay bit-identical to
   [Time.of_sec (exponential t ~mean)]. *)
let exponential_ns t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential_ns: mean <= 0";
  let u = 1. -. (float_of_int (bits t lsr 10) *. 0x1.0p-53) in
  let x = -.mean *. log u in
  int_of_float (Float.round (x *. 1_000_000_000.))

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: non-positive parameter";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let gaussian t ~mean ~std =
  if std < 0. then invalid_arg "Rng.gaussian: std < 0";
  let u1 = 1. -. float t in
  let u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))
