type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixing (Steele, Lea & Flood, OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let split_named t label =
  let h = Hashtbl.hash label in
  { state = mix64 (Int64.logxor t.state (Int64.of_int h)) }

(* 53 uniform mantissa bits, as in standard doubles-from-int64 recipes. *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  if not (lo < hi) then invalid_arg "Rng.float_range: lo >= hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n <= 0";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     n << 2^64, and determinism matters more than perfect uniformity. *)
  let v = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t p =
  if p < 0. || p > 1. then invalid_arg "Rng.bool: p outside [0,1]";
  float t < p

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1. -. float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: non-positive parameter";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let gaussian t ~mean ~std =
  if std < 0. then invalid_arg "Rng.gaussian: std < 0";
  let u1 = 1. -. float t in
  let u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))
