(** The discrete-event simulation loop.

    A scheduler owns a virtual clock and an {!Event_queue}. Simulation
    components capture the scheduler and call {!after}/{!at} to register
    future work; {!run} advances the clock from event to event. *)

type t

type handle = Event_queue.handle

val nil : handle
(** Sentinel meaning "no event". Components that re-arm a timer per
    packet keep a [handle] field initialised to [nil] instead of a
    [handle option] — an immediate int where the option would allocate
    on every re-arm. *)

val is_nil : handle -> bool

val create : ?queue_capacity:int -> unit -> t
(** [queue_capacity] pre-sizes the event queue (see
    {!Event_queue.create}); pass the expected peak pending-event count
    to avoid growth copies in long runs. *)

val now : t -> Time.t
(** Current virtual time. *)

val at : t -> Time.t -> (unit -> unit) -> handle
(** [at t when_ action] schedules [action] at absolute time [when_].
    @raise Invalid_argument if [when_] is in the past. *)

val after : t -> Time.span -> (unit -> unit) -> handle
(** [after t delay action] schedules [action] [delay] from now. *)

val at_keyed : t -> Time.t -> (int -> unit) -> int -> handle
(** [at_keyed t when_ f key] schedules the application [f key] — a
    shared callback plus an immediate identity — so components with
    many instances re-arm timers without allocating a closure per arm
    (see {!Event_queue.schedule_keyed}).
    @raise Invalid_argument if [when_] is past or [key] is [min_int]. *)

val after_keyed : t -> Time.span -> (int -> unit) -> int -> handle

val cancel : t -> handle -> unit

val stop : t -> unit
(** Makes {!run} return after the event being processed completes. *)

val set_instrument :
  t -> on_run_start:(Time.t -> unit) -> on_run_end:(Time.t -> int -> unit) -> unit
(** Observe drain boundaries: [on_run_start clock] fires when {!run} is
    entered, [on_run_end clock fired] when it returns (with the final
    clock and the number of events fired by that drain). Called once per
    {!run}, never per event. Defaults are no-ops. *)

val run : ?until:Time.t -> t -> unit
(** Processes events in time order until the queue is empty, {!stop} is
    called, or the next event is later than [until]. When stopped by
    [until], the clock is advanced to exactly [until]. *)

val events_processed : t -> int
(** Total events fired so far; useful for instrumentation and tests. *)

val pending : t -> int
(** Live events still queued. *)

val queue_high_water_mark : t -> int
(** Peak number of live events ever queued at once. *)

val queue_capacity : t -> int
(** Current event-slab capacity (see {!Event_queue.capacity}). *)

val queue_growths : t -> int
(** Event-slab capacity doublings since creation; [0] means the
    [queue_capacity] hint covered the whole run. *)

val queue_wheel_parked : t -> int
(** Schedules absorbed by the timer wheel rather than the heap. *)
