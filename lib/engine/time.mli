(** Simulation time.

    Time is a non-negative count of virtual {e nanoseconds} since the
    start of the simulation, represented as a native [int]. An OCaml
    [int] is immediate, so times are never boxed — an event timestamp
    costs zero heap words and {!compare} is a single integer compare.
    The type stays abstract so code cannot accidentally mix times with
    other numeric quantities (rates, sizes, ...).

    Resolution is 1 ns; [of_sec]/[of_ms]/[of_us] round to the nearest
    tick. The representable horizon is [2^62 - 2] ns, about 146 years
    of simulated time. Range validation happens at construction only;
    {!add}, {!diff} and comparisons are raw integer operations. *)

type t
(** A point in virtual time, in nanosecond ticks. *)

type span = t
(** A duration. Durations and absolute times share the representation but
    the two names document intent in signatures. *)

val zero : t

val never : t
(** A time later than every constructible time ({!of_sec} rejects
    values beyond the tick horizon), for "no horizon" comparisons. Do
    not do arithmetic with it. *)

val of_sec : float -> t
(** [of_sec s] is the time [s] seconds after the origin, rounded to the
    nearest nanosecond. Raises [Invalid_argument] if [s] is negative,
    not finite, or beyond the tick horizon. *)

val to_sec : t -> float

val of_ms : float -> t
val of_us : float -> t

val of_ns : int -> t
(** [of_ns n] is exactly [n] ticks. Raises [Invalid_argument] if [n] is
    negative. Exact — no rounding — so tests can pin tick values. *)

val to_ns : t -> int
(** Exact tick count; the inverse of {!of_ns}. *)

val add : t -> span -> t

val diff : t -> t -> span
(** [diff a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val mul : span -> float -> span
(** [mul d k] scales duration [d] by a non-negative factor [k], rounding
    to the nearest tick. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as seconds with microsecond precision, e.g. ["12.345678s"]. *)
