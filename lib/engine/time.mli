(** Simulation time.

    Time is a non-negative number of virtual seconds since the start of the
    simulation. It is kept abstract so that code cannot accidentally mix
    times with other floating-point quantities (rates, sizes, ...). *)

type t
(** A point in virtual time, in seconds. *)

type span = t
(** A duration. Durations and absolute times share the representation but
    the two names document intent in signatures. *)

val zero : t

val never : t
(** A time later than every constructible time ({!of_sec} rejects
    non-finite inputs), for "no horizon" comparisons. Do not do
    arithmetic with it. *)

val of_sec : float -> t
(** [of_sec s] is the time [s] seconds after the origin. Raises
    [Invalid_argument] if [s] is negative or not finite. *)

val to_sec : t -> float

val of_ms : float -> t
val of_us : float -> t

val add : t -> span -> t

val diff : t -> t -> span
(** [diff a b] is [a - b]. Raises [Invalid_argument] if [b > a]. *)

val mul : span -> float -> span
(** [mul d k] scales duration [d] by a non-negative factor [k]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as seconds with microsecond precision, e.g. ["12.345678s"]. *)
