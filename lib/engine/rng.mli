(** Deterministic pseudo-random numbers for simulation.

    The generator is SplitMix-style mixing over the native 63-bit [int]:
    fast, allocation-free (ints are immediate; the previous [Int64]
    implementation boxed every intermediate), statistically solid for
    simulation purposes, and — crucially — {e splittable}, so each
    simulated component can own an independent stream derived
    deterministically from one master seed. Two runs with the same seed
    produce identical event sequences.

    The stream changed when the generator moved from [Int64] to native
    [int] arithmetic (the mixing constants are truncated to 62-bit
    literals); golden vectors for the current stream are pinned in the
    engine test suite. *)

type t

val create : seed:int64 -> t
(** The seed is accepted as [int64] for API stability; it is folded into
    the native 63-bit state (the top bit of the seed is ignored). *)

val split : t -> t
(** A new generator whose stream is independent of (and deterministically
    derived from) the parent's current state. Advances the parent. *)

val split_named : t -> string -> t
(** Like {!split} but mixes in a label, so the derived stream depends on the
    label and not on the order of [split] calls. Does not advance the
    parent. *)

val bits : t -> int
(** Next 63 random bits as a native int (may be negative when the top
    bit is set). The primitive every other draw is built on; allocates
    nothing. *)

val bits64 : t -> int64
(** {!bits} sign-extended to [int64]; kept for tests and external
    consumers that want a fixed-width value. Boxes its result. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi]: uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t n]: uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. Requires [0 <= p <= 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. Requires [mean > 0]. *)

val exponential_ns : t -> mean:float -> int
(** [exponential_ns t ~mean] draws the same variate as {!exponential}
    (the [mean] is in seconds) and returns it rounded to integer
    nanoseconds, bit-identical to [Time.of_sec (exponential t ~mean)]
    but without boxing the intermediate float. Requires [mean > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto distributed: [P(X > x) = (scale/x)^shape] for [x >= scale].
    Requires [shape > 0] and [scale > 0]. *)

val gaussian : t -> mean:float -> std:float -> float
(** Normally distributed (Box–Muller). Requires [std >= 0]. *)
