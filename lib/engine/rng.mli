(** Deterministic pseudo-random numbers for simulation.

    The generator is SplitMix64: fast, statistically solid for simulation
    purposes, and — crucially — {e splittable}, so each simulated component
    can own an independent stream derived deterministically from one master
    seed. Two runs with the same seed produce identical event sequences. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** A new generator whose stream is independent of (and deterministically
    derived from) the parent's current state. Advances the parent. *)

val split_named : t -> string -> t
(** Like {!split} but mixes in a label, so the derived stream depends on the
    label and not on the order of [split] calls. Does not advance the
    parent. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi]: uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t n]: uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. Requires [0 <= p <= 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. Requires [mean > 0]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto distributed: [P(X > x) = (scale/x)^shape] for [x >= scale].
    Requires [shape > 0] and [scale > 0]. *)

val gaussian : t -> mean:float -> std:float -> float
(** Normally distributed (Box–Muller). Requires [std >= 0]. *)
