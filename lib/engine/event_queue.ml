(* The pending-event set, stored as a slab of parallel arrays plus a
   binary min-heap of slot indices. Nothing on the schedule/pop cycle
   allocates once the slab has warmed up:

   - a scheduled event occupies a {e slot} — its time, sequence number,
     generation and action live in parallel arrays, not in a per-event
     record;
   - popped and cancelled slots are recycled through a free stack;
   - a handle is a single immediate [int] packing (slot, generation), so
     returning one from [schedule] costs nothing and a stale handle —
     one whose slot has since been recycled — is recognised by its
     generation and ignored by [cancel]/[is_pending].

   Cancellation stays lazy: a cancelled slot remains in the heap and is
   skipped (and only then recycled) when it surfaces. Slots popped by
   [pop_if_before] are recycled {e deferred} — at the next queue
   operation — so the caller can still read [time_of]/[action_of]
   without the slot being reused under it. *)

(* A handle packs the generation in the low [gen_bits] bits and the slot
   index above them. Generations wrap at 2^30, so mistaking a stale
   handle for a live one takes a slot recycled exactly 2^30 times
   between taking and using the handle. *)
let gen_bits = 30

let gen_mask = (1 lsl gen_bits) - 1

type handle = int

type t = {
  mutable cap : int; (* slab capacity; all arrays below share it *)
  mutable at : Time.t array; (* per-slot scheduled time *)
  mutable seq : int array; (* per-slot schedule order; FIFO tie-break *)
  mutable gen : int array; (* per-slot recycle count *)
  mutable act : (unit -> unit) array;
  mutable dead : bool array; (* fired or cancelled *)
  mutable heap : int array; (* min-heap of slots, ordered by (at, seq) *)
  mutable heap_size : int;
  mutable free : int array; (* stack of recycled slots *)
  mutable free_top : int;
  mutable fresh : int; (* next never-used slot *)
  mutable deferred : int; (* slot awaiting recycle after pop_if_before *)
  mutable next_seq : int;
  mutable live : int;
  mutable hwm : int;
}

let nop () = ()

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Event_queue.create: capacity < 1";
  {
    cap = capacity;
    at = Array.make capacity Time.zero;
    seq = Array.make capacity 0;
    gen = Array.make capacity 0;
    act = Array.make capacity nop;
    dead = Array.make capacity true;
    heap = Array.make capacity 0;
    heap_size = 0;
    free = Array.make capacity 0;
    free_top = 0;
    fresh = 0;
    deferred = -1;
    next_seq = 0;
    live = 0;
    hwm = 0;
  }

let length q = q.live

let is_empty q = q.live = 0

let high_water_mark q = q.hwm

(* ------------------------------------------------------------------ *)
(* Slab bookkeeping *)

let grow q =
  let ncap = 2 * q.cap in
  let extend a fill =
    let na = Array.make ncap fill in
    Array.blit a 0 na 0 q.cap;
    na
  in
  q.at <- extend q.at Time.zero;
  q.seq <- extend q.seq 0;
  q.gen <- extend q.gen 0;
  q.act <- extend q.act nop;
  q.dead <- extend q.dead true;
  q.heap <- extend q.heap 0;
  q.free <- extend q.free 0;
  q.cap <- ncap

(* Put [slot] back on the free stack; bumping the generation is what
   invalidates every handle to the slot's previous occupant. Dropping
   the action reference matters too: it is what lets a fired event's
   closure (and whatever it captured) be collected. *)
let recycle q slot =
  q.gen.(slot) <- q.gen.(slot) + 1;
  q.act.(slot) <- nop;
  q.free.(q.free_top) <- slot;
  q.free_top <- q.free_top + 1

let flush_deferred q =
  if q.deferred >= 0 then begin
    recycle q q.deferred;
    q.deferred <- -1
  end

let alloc_slot q =
  if q.free_top > 0 then begin
    q.free_top <- q.free_top - 1;
    q.free.(q.free_top)
  end
  else begin
    if q.fresh = q.cap then grow q;
    let slot = q.fresh in
    q.fresh <- q.fresh + 1;
    slot
  end

(* ------------------------------------------------------------------ *)
(* Slot heap, ordered by (time, seq) *)

let lt q a b =
  let c = Time.compare q.at.(a) q.at.(b) in
  if c <> 0 then c < 0 else q.seq.(a) < q.seq.(b)

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < q.heap_size && lt q q.heap.(l) q.heap.(i) then l else i in
  let smallest =
    if r < q.heap_size && lt q q.heap.(r) q.heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(smallest);
    q.heap.(smallest) <- tmp;
    sift_down q smallest
  end

let heap_push q slot =
  q.heap.(q.heap_size) <- slot;
  q.heap_size <- q.heap_size + 1;
  sift_up q (q.heap_size - 1)

let heap_drop_top q =
  q.heap_size <- q.heap_size - 1;
  if q.heap_size > 0 then begin
    q.heap.(0) <- q.heap.(q.heap_size);
    sift_down q 0
  end

(* ------------------------------------------------------------------ *)
(* Public operations *)

let pack slot g = (slot lsl gen_bits) lor (g land gen_mask)

let slot_of h = h lsr gen_bits

let schedule q when_ action =
  flush_deferred q;
  let slot = alloc_slot q in
  q.at.(slot) <- when_;
  q.seq.(slot) <- q.next_seq;
  q.act.(slot) <- action;
  q.dead.(slot) <- false;
  q.next_seq <- q.next_seq + 1;
  q.live <- q.live + 1;
  if q.live > q.hwm then q.hwm <- q.live;
  heap_push q slot;
  pack slot q.gen.(slot)

let valid q h =
  h >= 0
  &&
  let slot = slot_of h in
  slot < q.fresh && q.gen.(slot) land gen_mask = h land gen_mask

let cancel q h =
  if valid q h then begin
    let slot = slot_of h in
    if not q.dead.(slot) then begin
      q.dead.(slot) <- true;
      q.live <- q.live - 1
    end
  end

let is_pending q h = valid q h && not q.dead.(slot_of h)

(* Drop dead slots sitting at the top of the heap; they leave the heap
   here and only here, so recycling them is immediate and safe. *)
let rec skim q =
  if q.heap_size > 0 then begin
    let slot = q.heap.(0) in
    if q.dead.(slot) then begin
      heap_drop_top q;
      recycle q slot;
      skim q
    end
  end

let next_time q =
  flush_deferred q;
  skim q;
  if q.heap_size = 0 then None else Some q.at.(q.heap.(0))

let pop q =
  flush_deferred q;
  skim q;
  if q.heap_size = 0 then None
  else begin
    let slot = q.heap.(0) in
    heap_drop_top q;
    q.dead.(slot) <- true;
    q.live <- q.live - 1;
    let time = q.at.(slot) and action = q.act.(slot) in
    recycle q slot;
    Some (time, action)
  end

(* ------------------------------------------------------------------ *)
(* Allocation-free drain path (the scheduler's inner loop) *)

let nil : handle = -1

let is_nil h = h < 0

let time_of q h = q.at.(slot_of h)

let action_of q h = q.act.(slot_of h)

let rec pop_if_before q horizon =
  flush_deferred q;
  if q.heap_size = 0 then nil
  else begin
    let slot = q.heap.(0) in
    if q.dead.(slot) then begin
      heap_drop_top q;
      recycle q slot;
      pop_if_before q horizon
    end
    else if Time.(q.at.(slot) > horizon) then nil
    else begin
      heap_drop_top q;
      q.dead.(slot) <- true;
      q.live <- q.live - 1;
      (* Recycle at the next queue operation, not now: the caller still
         reads [time_of]/[action_of] through the returned handle. *)
      q.deferred <- slot;
      pack slot q.gen.(slot)
    end
  end
