type entry = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = entry

module H = Heap.Make (struct
  type t = entry

  let compare a b =
    let c = Time.compare a.at b.at in
    if c <> 0 then c else Int.compare a.seq b.seq
end)

type t = {
  heap : H.t;
  mutable next_seq : int;
  mutable live : int;
  mutable hwm : int;
}

let create ?capacity () =
  { heap = H.create ?capacity (); next_seq = 0; live = 0; hwm = 0 }

let length q = q.live

let is_empty q = q.live = 0

let high_water_mark q = q.hwm

let schedule q at action =
  let entry = { at; seq = q.next_seq; action; cancelled = false } in
  q.next_seq <- q.next_seq + 1;
  q.live <- q.live + 1;
  if q.live > q.hwm then q.hwm <- q.live;
  H.push q.heap entry;
  entry

let cancel q handle =
  if not handle.cancelled then begin
    handle.cancelled <- true;
    q.live <- q.live - 1
  end

let is_pending handle = not handle.cancelled

(* Drop cancelled entries sitting at the top of the heap. *)
let rec skim q =
  match H.peek q.heap with
  | Some e when e.cancelled ->
      ignore (H.pop q.heap);
      skim q
  | _ -> ()

let next_time q =
  skim q;
  match H.peek q.heap with Some e -> Some e.at | None -> None

let pop q =
  skim q;
  match H.pop q.heap with
  | None -> None
  | Some e ->
      e.cancelled <- true;
      q.live <- q.live - 1;
      Some (e.at, e.action)

(* ------------------------------------------------------------------ *)
(* Allocation-free drain path (the scheduler's inner loop) *)

let nil = { at = Time.zero; seq = -1; action = ignore; cancelled = true }

let is_nil h = h == nil

let time_of h = h.at

let action_of h = h.action

let rec pop_if_before q horizon =
  if H.is_empty q.heap then nil
  else begin
    let e = H.top_exn q.heap in
    if e.cancelled then begin
      H.drop_top q.heap;
      pop_if_before q horizon
    end
    else if Time.(e.at > horizon) then nil
    else begin
      H.drop_top q.heap;
      e.cancelled <- true;
      q.live <- q.live - 1;
      e
    end
  end
