(* The pending-event set, stored as a slab of parallel arrays plus a
   binary min-heap of slot indices. Nothing on the schedule/pop cycle
   allocates once the slab has warmed up:

   - a scheduled event occupies a {e slot} — its time, sequence number,
     generation and action live in parallel arrays, not in a per-event
     record;
   - popped and cancelled slots are recycled through a free stack;
   - a handle is a single immediate [int] packing (slot, generation), so
     returning one from [schedule] costs nothing and a stale handle —
     one whose slot has since been recycled — is recognised by its
     generation and ignored by [cancel]/[is_pending].

   Cancellation stays lazy: a cancelled slot remains in the heap and is
   skipped (and only then recycled) when it surfaces. Slots popped by
   [pop_if_before] are recycled {e deferred} — at the next queue
   operation — so the caller can still read [time_of]/[action_of]
   without the slot being reused under it.

   Far-out events — timers, mostly: RTOs, pacing gaps, delayed ACKs —
   are parked in a hierarchical {!Timer_wheel} instead of the heap, so
   scheduling them is O(1) instead of O(log heap). The wheel is purely
   a staging area: before any pop, [ready] advances it to the pop
   frontier and every due slot is flushed {e into the heap}, which
   still decides firing order by (time, seq). Observable behaviour is
   therefore bit-identical to a heap-only queue; the wheel only absorbs
   the churn of timers that are cancelled or re-armed long before they
   fire (a cancelled wheel slot is recycled when the cursor passes its
   bucket, the same lazy discipline as a cancelled heap slot). *)

(* A handle packs the generation in the low [gen_bits] bits and the slot
   index above them. Generations wrap at 2^30, so mistaking a stale
   handle for a live one takes a slot recycled exactly 2^30 times
   between taking and using the handle. *)
let gen_bits = 30

let gen_mask = (1 lsl gen_bits) - 1

type handle = int

type t = {
  mutable cap : int; (* slab capacity; all arrays below share it *)
  mutable at : Time.t array; (* per-slot scheduled time *)
  mutable seq : int array; (* per-slot schedule order; FIFO tie-break *)
  mutable gen : int array; (* per-slot recycle count *)
  mutable act : (unit -> unit) array;
  mutable kact : (int -> unit) array; (* keyed action; see [schedule_keyed] *)
  mutable karg : int array; (* keyed argument; [no_key] = plain action *)
  mutable dead : bool array; (* fired or cancelled *)
  mutable heap : int array; (* min-heap of slots, ordered by (at, seq) *)
  mutable heap_size : int;
  mutable free : int array; (* stack of recycled slots *)
  mutable free_top : int;
  mutable fresh : int; (* next never-used slot *)
  mutable deferred : int; (* slot awaiting recycle after pop_if_before *)
  mutable next_seq : int;
  mutable live : int;
  mutable hwm : int;
  wheel : Timer_wheel.t;
  mutable wflush : int -> unit; (* wheel->heap flusher, built once *)
  mutable wheel_parked : int; (* schedules absorbed by the wheel *)
  mutable growths : int; (* slab doublings since creation *)
}

let nop () = ()

let knop (_ : int) = ()

(* [karg] sentinel marking a slot whose action is the plain closure in
   [act]. [min_int] cannot collide with any packed flow/slot key. *)
let no_key = min_int

let length q = q.live

let is_empty q = q.live = 0

let high_water_mark q = q.hwm

let capacity q = q.cap

let growth_count q = q.growths

let wheel_parked q = q.wheel_parked

(* ------------------------------------------------------------------ *)
(* Slab bookkeeping *)

let grow q =
  let ncap = 2 * q.cap in
  let extend a fill =
    let na = Array.make ncap fill in
    Array.blit a 0 na 0 q.cap;
    na
  in
  q.at <- extend q.at Time.zero;
  q.seq <- extend q.seq 0;
  q.gen <- extend q.gen 0;
  q.act <- extend q.act nop;
  q.kact <- extend q.kact knop;
  q.karg <- extend q.karg no_key;
  q.dead <- extend q.dead true;
  q.heap <- extend q.heap 0;
  q.free <- extend q.free 0;
  q.cap <- ncap;
  q.growths <- q.growths + 1;
  Timer_wheel.ensure_capacity q.wheel ncap

(* Put [slot] back on the free stack; bumping the generation is what
   invalidates every handle to the slot's previous occupant. Dropping
   the action reference matters too: it is what lets a fired event's
   closure (and whatever it captured) be collected. *)
let recycle q slot =
  q.gen.(slot) <- q.gen.(slot) + 1;
  q.act.(slot) <- nop;
  q.kact.(slot) <- knop;
  q.karg.(slot) <- no_key;
  q.free.(q.free_top) <- slot;
  q.free_top <- q.free_top + 1

let flush_deferred q =
  if q.deferred >= 0 then begin
    recycle q q.deferred;
    q.deferred <- -1
  end

let alloc_slot q =
  if q.free_top > 0 then begin
    q.free_top <- q.free_top - 1;
    q.free.(q.free_top)
  end
  else begin
    if q.fresh = q.cap then grow q;
    let slot = q.fresh in
    q.fresh <- q.fresh + 1;
    slot
  end

(* ------------------------------------------------------------------ *)
(* Slot heap, ordered by (time, seq) *)

let lt q a b =
  let c = Time.compare q.at.(a) q.at.(b) in
  if c <> 0 then c < 0 else q.seq.(a) < q.seq.(b)

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < q.heap_size && lt q q.heap.(l) q.heap.(i) then l else i in
  let smallest =
    if r < q.heap_size && lt q q.heap.(r) q.heap.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(smallest);
    q.heap.(smallest) <- tmp;
    sift_down q smallest
  end

let heap_push q slot =
  q.heap.(q.heap_size) <- slot;
  q.heap_size <- q.heap_size + 1;
  sift_up q (q.heap_size - 1)

let heap_drop_top q =
  q.heap_size <- q.heap_size - 1;
  if q.heap_size > 0 then begin
    q.heap.(0) <- q.heap.(q.heap_size);
    sift_down q 0
  end

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Event_queue.create: capacity < 1";
  let q =
    {
      cap = capacity;
      at = Array.make capacity Time.zero;
      seq = Array.make capacity 0;
      gen = Array.make capacity 0;
      act = Array.make capacity nop;
      kact = Array.make capacity knop;
      karg = Array.make capacity no_key;
      dead = Array.make capacity true;
      heap = Array.make capacity 0;
      heap_size = 0;
      free = Array.make capacity 0;
      free_top = 0;
      fresh = 0;
      deferred = -1;
      next_seq = 0;
      live = 0;
      hwm = 0;
      wheel = Timer_wheel.create ~capacity ();
      wflush = ignore;
      wheel_parked = 0;
      growths = 0;
    }
  in
  (* A due wheel slot either joins the heap (live) or is recycled on
     the spot (cancelled while parked) — the wheel-side analogue of
     [skim]'s lazy-cancel recycling. *)
  q.wflush <-
    (fun slot -> if q.dead.(slot) then recycle q slot else heap_push q slot);
  q

(* ------------------------------------------------------------------ *)
(* Wheel staging *)

(* Drop dead slots sitting at the top of the heap; they leave the heap
   here and only here, so recycling them is immediate and safe. *)
let rec skim q =
  if q.heap_size > 0 then begin
    let slot = q.heap.(0) in
    if q.dead.(slot) then begin
      heap_drop_top q;
      recycle q slot;
      skim q
    end
  end

(* Advance the wheel far enough that the heap top is the true earliest
   live event among everything due by [limit_ns]: flush wheel slots
   into the heap up to min(limit, live heap top). When the heap is
   empty the wheel is drained one full horizon — which covers every
   parked slot — so the next event surfaces. Each [advance] strictly
   raises the cursor (or empties the wheel), so this terminates. *)
let rec ready q limit_ns =
  skim q;
  if Timer_wheel.count q.wheel > 0 then begin
    let top_ns =
      if q.heap_size = 0 then
        Timer_wheel.cursor_ns q.wheel + Timer_wheel.horizon_ns q.wheel
      else Time.to_ns q.at.(q.heap.(0))
    in
    let target = if limit_ns < top_ns then limit_ns else top_ns in
    if Timer_wheel.cursor_ns q.wheel <= target then begin
      Timer_wheel.advance q.wheel ~upto_ns:target ~flush:q.wflush;
      ready q limit_ns
    end
  end

(* ------------------------------------------------------------------ *)
(* Public operations *)

let pack slot g = (slot lsl gen_bits) lor (g land gen_mask)

let slot_of h = h lsr gen_bits

(* Claim a slot at [when_]: into the wheel if far enough out, else the
   heap. The caller fills the action fields. *)
let enqueue q when_ =
  flush_deferred q;
  let slot = alloc_slot q in
  q.at.(slot) <- when_;
  q.seq.(slot) <- q.next_seq;
  q.dead.(slot) <- false;
  q.next_seq <- q.next_seq + 1;
  q.live <- q.live + 1;
  if q.live > q.hwm then q.hwm <- q.live;
  if Timer_wheel.add q.wheel ~item:slot ~time_ns:(Time.to_ns when_) then
    q.wheel_parked <- q.wheel_parked + 1
  else heap_push q slot;
  slot

let schedule q when_ action =
  let slot = enqueue q when_ in
  q.act.(slot) <- action;
  pack slot q.gen.(slot)

let schedule_keyed q when_ f key =
  if key = no_key then invalid_arg "Event_queue.schedule_keyed: reserved key";
  let slot = enqueue q when_ in
  q.kact.(slot) <- f;
  q.karg.(slot) <- key;
  pack slot q.gen.(slot)

let valid q h =
  h >= 0
  &&
  let slot = slot_of h in
  slot < q.fresh && q.gen.(slot) land gen_mask = h land gen_mask

let cancel q h =
  if valid q h then begin
    let slot = slot_of h in
    if not q.dead.(slot) then begin
      q.dead.(slot) <- true;
      q.live <- q.live - 1
    end
  end

let is_pending q h = valid q h && not q.dead.(slot_of h)

let next_time q =
  flush_deferred q;
  ready q max_int;
  if q.heap_size = 0 then None else Some q.at.(q.heap.(0))

let action_closure q slot =
  if q.karg.(slot) = no_key then q.act.(slot)
  else begin
    let f = q.kact.(slot) and key = q.karg.(slot) in
    fun () -> f key
  end

let pop q =
  flush_deferred q;
  ready q max_int;
  if q.heap_size = 0 then None
  else begin
    let slot = q.heap.(0) in
    heap_drop_top q;
    q.dead.(slot) <- true;
    q.live <- q.live - 1;
    let time = q.at.(slot) and action = action_closure q slot in
    recycle q slot;
    Some (time, action)
  end

(* ------------------------------------------------------------------ *)
(* Allocation-free drain path (the scheduler's inner loop) *)

let nil : handle = -1

let is_nil h = h < 0

let time_of q h = q.at.(slot_of h)

let action_of q h = q.act.(slot_of h)

(* Run the popped event's action without materialising a closure for
   keyed slots. Must be called before the next queue operation (the
   slot is recycled deferred, like [time_of]/[action_of]). *)
let fire q h =
  let slot = slot_of h in
  let key = q.karg.(slot) in
  if key = no_key then q.act.(slot) () else q.kact.(slot) key

(* Handles are immediate ints (slot, generation packed); exposing the
   coercion lets slab-of-arrays components (the flow table) store timer
   handles in flat [int array] rows instead of boxed fields. *)
let int_of_handle (h : handle) : int = h

let handle_of_int (i : int) : handle = i

let pop_if_before q horizon =
  flush_deferred q;
  ready q (Time.to_ns horizon);
  if q.heap_size = 0 then nil
  else begin
    let slot = q.heap.(0) in
    if Time.(q.at.(slot) > horizon) then nil
    else begin
      heap_drop_top q;
      q.dead.(slot) <- true;
      q.live <- q.live - 1;
      (* Recycle at the next queue operation, not now: the caller still
         reads [time_of]/[fire] through the returned handle. *)
      q.deferred <- slot;
      pack slot q.gen.(slot)
    end
  end
