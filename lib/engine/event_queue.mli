(** A time-ordered queue of pending simulation events.

    Events scheduled for the same instant fire in scheduling order (FIFO
    within a timestamp), which makes runs deterministic. Cancellation is
    lazy: a cancelled event stays in the heap but is skipped on pop.

    The queue is built for an allocation-free inner loop: events live in
    a slab of parallel arrays, popped and cancelled slots are recycled
    through a free list, and a {!handle} is an immediate integer packing
    the slot with a generation counter — so steady-state
    [schedule]/[pop_if_before] cycles allocate nothing, and a stale
    handle (whose slot was recycled for a newer event) is recognised and
    ignored by {!cancel} and {!is_pending}.

    Far-out events are parked in a hierarchical {!Timer_wheel} (O(1)
    schedule/cancel) and flushed into the comparison heap before they
    can surface, so observable pop order — (time, then scheduling
    order) — is identical to a heap-only queue. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. Immediate (an
    [int] under the hood): keeping or dropping one costs no heap.
    Handles are guarded by a 30-bit generation counter, so a stale
    handle is only ever mistaken for a live one if its slot is recycled
    exactly [2^30] times between taking and using it. *)

val create : ?capacity:int -> unit -> t
(** [capacity] pre-sizes the slab and heap (default 64) so a run whose
    peak pending-event count is known — or was measured by telemetry's
    high-water mark — never pays for array doubling. *)

val length : t -> int
(** Number of live (non-cancelled) events still queued. *)

val is_empty : t -> bool

val high_water_mark : t -> int
(** Peak number of live events ever queued at once. Lazily cancelled
    events stop counting as soon as they are cancelled. *)

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to fire at time [at].
    Allocates nothing when a recycled slot is available. *)

val schedule_keyed : t -> Time.t -> (int -> unit) -> int -> handle
(** [schedule_keyed q at f key] enqueues the application [f key].
    Components with many instances (one TCP flow among 10^5) share one
    [f] and pass their identity as [key], so re-arming a timer stores
    two words instead of capturing a fresh closure per arm.
    @raise Invalid_argument if [key = min_int] (reserved). *)

val cancel : t -> handle -> unit
(** Cancels the event; a no-op if it already fired, was cancelled, or
    the handle is stale. *)

val is_pending : t -> handle -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Removes and returns the earliest live event. *)

(** {2 Allocation-free drain}

    {!pop} allocates an option and a pair per event; on the simulator's
    hot loop (one call per event, millions per run) that is measurable
    GC traffic. {!pop_if_before} instead returns the event's handle —
    {!nil} when there is nothing to run — so draining the queue
    allocates nothing. *)

val nil : handle
(** Sentinel meaning "no event"; compare with {!is_nil}. *)

val is_nil : handle -> bool

val int_of_handle : handle -> int
(** The handle's immediate representation, for storing in flat
    [int array] state rows (struct-of-arrays components). Round-trips
    through {!handle_of_int}; {!nil} is representable. *)

val handle_of_int : int -> handle
(** Inverse of {!int_of_handle}. Only meaningful on values produced by
    {!int_of_handle}. *)

val pop_if_before : t -> Time.t -> handle
(** [pop_if_before q horizon] removes and returns the earliest live
    event whose time is [<= horizon], or {!nil} when the queue is empty
    or the earliest event lies beyond the horizon (it stays queued).
    The returned handle is readable via {!time_of}/{!action_of} only
    until the next operation on [q] (its slot is then recycled); read
    both before running the action. *)

val time_of : t -> handle -> Time.t
(** Scheduled time of a handle just returned by {!pop_if_before}. *)

val action_of : t -> handle -> unit -> unit
(** Action of a handle just returned by {!pop_if_before}. For a slot
    scheduled with {!schedule_keyed} this returns a fresh closure; the
    drain loop should use {!fire} instead. *)

val fire : t -> handle -> unit
(** Run the action of a handle just returned by {!pop_if_before},
    dispatching keyed actions without materialising a closure. Call
    before the next operation on the queue (same lifetime rule as
    {!time_of}). *)

(** {2 Introspection}

    Capacity plumbing for pre-sizing: a run that knows its flow count
    sizes the slab once and asserts {!growth_count} stayed zero. *)

val capacity : t -> int
(** Current slab capacity (slots). *)

val growth_count : t -> int
(** Number of capacity doublings since creation; [0] means the initial
    [capacity] was never exceeded. *)

val wheel_parked : t -> int
(** Schedules absorbed by the timer wheel (vs. pushed straight onto the
    heap); a measure of how much heap churn the wheel saved. *)
