(** A time-ordered queue of pending simulation events.

    Events scheduled for the same instant fire in scheduling order (FIFO
    within a timestamp), which makes runs deterministic. Cancellation is
    lazy: a cancelled event stays in the heap but is skipped on pop.

    The queue is built for an allocation-free inner loop: events live in
    a slab of parallel arrays, popped and cancelled slots are recycled
    through a free list, and a {!handle} is an immediate integer packing
    the slot with a generation counter — so steady-state
    [schedule]/[pop_if_before] cycles allocate nothing, and a stale
    handle (whose slot was recycled for a newer event) is recognised and
    ignored by {!cancel} and {!is_pending}. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. Immediate (an
    [int] under the hood): keeping or dropping one costs no heap.
    Handles are guarded by a 30-bit generation counter, so a stale
    handle is only ever mistaken for a live one if its slot is recycled
    exactly [2^30] times between taking and using it. *)

val create : ?capacity:int -> unit -> t
(** [capacity] pre-sizes the slab and heap (default 64) so a run whose
    peak pending-event count is known — or was measured by telemetry's
    high-water mark — never pays for array doubling. *)

val length : t -> int
(** Number of live (non-cancelled) events still queued. *)

val is_empty : t -> bool

val high_water_mark : t -> int
(** Peak number of live events ever queued at once. Lazily cancelled
    events stop counting as soon as they are cancelled. *)

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to fire at time [at].
    Allocates nothing when a recycled slot is available. *)

val cancel : t -> handle -> unit
(** Cancels the event; a no-op if it already fired, was cancelled, or
    the handle is stale. *)

val is_pending : t -> handle -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Removes and returns the earliest live event. *)

(** {2 Allocation-free drain}

    {!pop} allocates an option and a pair per event; on the simulator's
    hot loop (one call per event, millions per run) that is measurable
    GC traffic. {!pop_if_before} instead returns the event's handle —
    {!nil} when there is nothing to run — so draining the queue
    allocates nothing. *)

val nil : handle
(** Sentinel meaning "no event"; compare with {!is_nil}. *)

val is_nil : handle -> bool

val pop_if_before : t -> Time.t -> handle
(** [pop_if_before q horizon] removes and returns the earliest live
    event whose time is [<= horizon], or {!nil} when the queue is empty
    or the earliest event lies beyond the horizon (it stays queued).
    The returned handle is readable via {!time_of}/{!action_of} only
    until the next operation on [q] (its slot is then recycled); read
    both before running the action. *)

val time_of : t -> handle -> Time.t
(** Scheduled time of a handle just returned by {!pop_if_before}. *)

val action_of : t -> handle -> unit -> unit
(** Action of a handle just returned by {!pop_if_before}. *)
