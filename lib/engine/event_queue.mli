(** A time-ordered queue of pending simulation events.

    Events scheduled for the same instant fire in scheduling order (FIFO
    within a timestamp), which makes runs deterministic. Cancellation is
    lazy: a cancelled event stays in the heap but is skipped on pop. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : ?capacity:int -> unit -> t
(** [capacity] pre-sizes the backing heap (default 64) so a run whose
    peak pending-event count is known — or was measured by telemetry's
    high-water mark — never pays for array doubling. *)

val length : t -> int
(** Number of live (non-cancelled) events still queued. *)

val is_empty : t -> bool

val high_water_mark : t -> int
(** Peak number of live events ever queued at once. Lazily cancelled
    events stop counting as soon as they are cancelled. *)

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to fire at time [at]. *)

val cancel : t -> handle -> unit
(** Cancels the event; a no-op if it already fired or was cancelled. *)

val is_pending : handle -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Removes and returns the earliest live event. *)

(** {2 Allocation-free drain}

    {!pop} allocates an option and a pair per event; on the simulator's
    hot loop (one call per event, millions per run) that is measurable
    GC traffic. {!pop_if_before} instead returns the internal entry
    itself — {!nil} when there is nothing to run — so draining the
    queue allocates nothing. *)

val nil : handle
(** Sentinel meaning "no event"; compare with {!is_nil}. *)

val is_nil : handle -> bool

val pop_if_before : t -> Time.t -> handle
(** [pop_if_before q horizon] removes and returns the earliest live
    event whose time is [<= horizon], or {!nil} when the queue is empty
    or the earliest event lies beyond the horizon (it stays queued). *)

val time_of : handle -> Time.t
(** Scheduled time of a handle returned by {!pop_if_before}. *)

val action_of : handle -> unit -> unit
(** Action of a handle returned by {!pop_if_before}. *)
