(** A time-ordered queue of pending simulation events.

    Events scheduled for the same instant fire in scheduling order (FIFO
    within a timestamp), which makes runs deterministic. Cancellation is
    lazy: a cancelled event stays in the heap but is skipped on pop. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> t

val length : t -> int
(** Number of live (non-cancelled) events still queued. *)

val is_empty : t -> bool

val high_water_mark : t -> int
(** Peak number of live events ever queued at once. Lazily cancelled
    events stop counting as soon as they are cancelled. *)

val schedule : t -> Time.t -> (unit -> unit) -> handle
(** [schedule q at action] enqueues [action] to fire at time [at]. *)

val cancel : t -> handle -> unit
(** Cancels the event; a no-op if it already fired or was cancelled. *)

val is_pending : handle -> bool

val next_time : t -> Time.t option
(** Timestamp of the earliest live event. *)

val pop : t -> (Time.t * (unit -> unit)) option
(** Removes and returns the earliest live event. *)
