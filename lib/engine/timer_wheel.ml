(* Hierarchy layout: level [l] buckets cover [quantum * 2^(slot_bits*l)]
   nanoseconds each, and a bucket's index is taken from the {e absolute}
   bits of the item's time — [(time lsr shift l) land mask] — not from
   an offset relative to the cursor. Absolute indexing is what makes
   lazy advancing cheap: crossing an {e empty} bucket boundary requires
   no bookkeeping at all, so the cursor teleports directly between
   occupied boundaries instead of stepping one quantum at a time.

   Buckets are LIFO singly-linked lists threaded through [next]; an
   item's firing time is kept in [times] so cascading can re-place it.
   Per-level item counts let [next_boundary] skip empty levels. *)

type t = {
  qb : int; (* log2 quantum, ns *)
  sb : int; (* log2 buckets per level *)
  levels : int;
  spl : int; (* buckets per level *)
  mask : int;
  horizon : int; (* quantum * spl^levels *)
  heads : int array; (* levels * spl bucket heads; -1 = empty *)
  lcount : int array; (* items parked per level *)
  mutable next : int array; (* per-item bucket link; -1 = end *)
  mutable times : int array; (* per-item firing time, ns *)
  mutable cap : int;
  mutable cursor : int; (* quantum-aligned expiry frontier *)
  mutable count : int;
}

(* Times at or beyond this never enter the wheel, which keeps every
   boundary computation (cursor + horizon, bucket starts) far from
   [max_int] overflow. 2^60 ns is ~36 simulated years. *)
let ceiling = max_int lsr 2

let create ?(quantum_bits = 20) ?(slot_bits = 6) ?(levels = 4) ?(capacity = 64) ()
    =
  if quantum_bits < 1 || slot_bits < 1 || levels < 1 || capacity < 1 then
    invalid_arg "Timer_wheel.create: non-positive parameter";
  if quantum_bits + (slot_bits * levels) > 60 then
    invalid_arg "Timer_wheel.create: horizon beyond 2^60 ns";
  let spl = 1 lsl slot_bits in
  {
    qb = quantum_bits;
    sb = slot_bits;
    levels;
    spl;
    mask = spl - 1;
    horizon = 1 lsl (quantum_bits + (slot_bits * levels));
    heads = Array.make (levels * spl) (-1);
    lcount = Array.make levels 0;
    next = Array.make capacity (-1);
    times = Array.make capacity 0;
    cap = capacity;
    cursor = 0;
    count = 0;
  }

let count t = t.count

let cursor_ns t = t.cursor

let quantum_ns t = 1 lsl t.qb

let horizon_ns t = t.horizon

let ensure_capacity t n =
  if n > t.cap then begin
    let ncap = max n (2 * t.cap) in
    let extend a fill =
      let na = Array.make ncap fill in
      Array.blit a 0 na 0 t.cap;
      na
    in
    t.next <- extend t.next (-1);
    t.times <- extend t.times 0;
    t.cap <- ncap
  end

let shift t l = t.qb + (l * t.sb)

(* Park [item] in the finest-grained level whose ring spans its delay.
   Requires [cursor <= time < cursor + horizon]. A delay in the ring's
   final, wrap-around bucket can land in (or just behind) the cursor's
   own bucket; that only means the item is flushed one ring-lap early —
   harmless, since the caller orders flushed items itself. *)
let place t item time =
  let d = time - t.cursor in
  let rec level l =
    if d < 1 lsl (shift t (l + 1)) then l else level (l + 1)
  in
  let l = level 0 in
  let bucket = (l * t.spl) + ((time lsr shift t l) land t.mask) in
  t.times.(item) <- time;
  t.next.(item) <- t.heads.(bucket);
  t.heads.(bucket) <- item;
  t.lcount.(l) <- t.lcount.(l) + 1

let add t ~item ~time_ns =
  if
    time_ns < t.cursor + (1 lsl t.qb)
    || time_ns - t.cursor >= t.horizon
    || time_ns >= ceiling
  then false
  else begin
    place t item time_ns;
    t.count <- t.count + 1;
    true
  end

(* Drain one bucket, handing every item to [k]. *)
let drain t bucket l k =
  let item = ref t.heads.(bucket) in
  if !item >= 0 then begin
    t.heads.(bucket) <- -1;
    while !item >= 0 do
      let it = !item in
      item := t.next.(it);
      t.next.(it) <- -1;
      t.lcount.(l) <- t.lcount.(l) - 1;
      k it
    done
  end

(* The earliest future bucket-start among all occupied buckets: for a
   bucket [j] at level [l], the next time the cursor enters it is
   [(cur + ((j - cur_idx) mod spl)) * span] where [cur] is the cursor's
   absolute bucket number at that level. The cursor's own bucket is
   skipped — at level 0 it has just been drained, and at higher levels
   it was cascaded when entered (an in-window item can never be placed
   there, only a wrap-around one, which is due a lap later anyway). *)
let next_boundary t =
  let best = ref max_int in
  for l = 0 to t.levels - 1 do
    if t.lcount.(l) > 0 then begin
      let sh = shift t l in
      let cur = t.cursor lsr sh in
      let idx = cur land t.mask in
      let base = l * t.spl in
      for j = 0 to t.spl - 1 do
        if j <> idx && t.heads.(base + j) >= 0 then begin
          let b = (cur + ((j - idx) land t.mask)) lsl sh in
          if b < !best then best := b
        end
      done
    end
  done;
  !best

(* The cursor sits on boundary [b]. Cascade every level whose bucket
   also starts at [b], top level first, re-placing items one level
   finer: a level-3 bucket spills into the level-2 bucket being
   entered, which spills into level 1, and so on down to level 0, whose
   bucket the caller drains next. Run at every loop entry (not just
   after a jump): a previous [advance] may have parked the cursor
   exactly on an occupied boundary it never entered. Idempotent —
   already-cascaded buckets are empty. *)
let cascade t replace =
  let b = t.cursor in
  for l = t.levels - 1 downto 1 do
    if t.lcount.(l) > 0 && b land ((1 lsl shift t l) - 1) = 0 then begin
      let bucket = (l * t.spl) + ((b lsr shift t l) land t.mask) in
      drain t bucket l replace
    end
  done

let advance t ~upto_ns ~flush =
  let upto = if upto_ns > ceiling then ceiling else upto_ns in
  let continue = ref true in
  (* Both callbacks are built once per [advance], not per iteration. *)
  let replace it = place t it t.times.(it) in
  let expire it =
    t.count <- t.count - 1;
    flush it
  in
  while !continue && t.count > 0 && t.cursor <= upto do
    cascade t replace;
    (* Expire the cursor's level-0 bucket. *)
    drain t ((t.cursor lsr t.qb) land t.mask) 0 expire;
    if t.count = 0 then
      (* Leave the cursor where the last work was; it only needs to
         track the flush frontier loosely (far-behind cursors just make
         [add] place items in coarser levels). *)
      continue := false
    else begin
      let b = next_boundary t in
      if b > upto then begin
        (* Nothing further is due; park just past [upto] so the next
           [advance] resumes from the frontier. *)
        t.cursor <- ((upto lsr t.qb) + 1) lsl t.qb;
        continue := false
      end
      else t.cursor <- b
    end
  done
