type handle = Event_queue.handle

type t = {
  queue : Event_queue.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable fired : int;
}

let create () =
  { queue = Event_queue.create (); clock = Time.zero; stopped = false; fired = 0 }

let now t = t.clock

let at t when_ action =
  if Time.(when_ < t.clock) then invalid_arg "Scheduler.at: time in the past";
  Event_queue.schedule t.queue when_ action

let after t delay action = at t (Time.add t.clock delay) action

let cancel t handle = Event_queue.cancel t.queue handle

let stop t = t.stopped <- true

let run ?until t =
  t.stopped <- false;
  let horizon_reached at =
    match until with None -> false | Some u -> Time.(at > u)
  in
  let rec loop () =
    if t.stopped then ()
    else
      match Event_queue.next_time t.queue with
      | None -> ()
      | Some at when horizon_reached at -> ()
      | Some _ -> (
          match Event_queue.pop t.queue with
          | None -> ()
          | Some (at, action) ->
              t.clock <- at;
              t.fired <- t.fired + 1;
              action ();
              loop ())
  in
  loop ();
  match until with
  | Some u when (not t.stopped) && Time.(t.clock < u) -> t.clock <- u
  | _ -> ()

let events_processed t = t.fired

let pending t = Event_queue.length t.queue

let queue_high_water_mark t = Event_queue.high_water_mark t.queue
