type handle = Event_queue.handle

let nil = Event_queue.nil

let is_nil = Event_queue.is_nil

type t = {
  queue : Event_queue.t;
  mutable clock : Time.t;
  mutable stopped : bool;
  mutable fired : int;
  (* Drain-boundary instrumentation: called once per [run], not per
     event, so arbitrary observers (the flight recorder's run markers)
     cost nothing on the datapath. *)
  mutable on_run_start : Time.t -> unit;
  mutable on_run_end : Time.t -> int -> unit;
}

let create ?queue_capacity () =
  {
    queue = Event_queue.create ?capacity:queue_capacity ();
    clock = Time.zero;
    stopped = false;
    fired = 0;
    on_run_start = ignore;
    on_run_end = (fun _ _ -> ());
  }

let now t = t.clock

let at t when_ action =
  if Time.(when_ < t.clock) then invalid_arg "Scheduler.at: time in the past";
  Event_queue.schedule t.queue when_ action

let after t delay action = at t (Time.add t.clock delay) action

let at_keyed t when_ f key =
  if Time.(when_ < t.clock) then
    invalid_arg "Scheduler.at_keyed: time in the past";
  Event_queue.schedule_keyed t.queue when_ f key

let after_keyed t delay f key = at_keyed t (Time.add t.clock delay) f key

let cancel t handle = Event_queue.cancel t.queue handle

let stop t = t.stopped <- true

let set_instrument t ~on_run_start ~on_run_end =
  t.on_run_start <- on_run_start;
  t.on_run_end <- on_run_end

let run ?until t =
  t.stopped <- false;
  t.on_run_start t.clock;
  let fired_before = t.fired in
  (* The allocation-free drain: one [pop_if_before] per event, no
     option/pair boxes (see Event_queue). *)
  let horizon = match until with Some u -> u | None -> Time.never in
  let rec loop () =
    if not t.stopped then begin
      let e = Event_queue.pop_if_before t.queue horizon in
      if not (Event_queue.is_nil e) then begin
        t.clock <- Event_queue.time_of t.queue e;
        t.fired <- t.fired + 1;
        Event_queue.fire t.queue e;
        loop ()
      end
    end
  in
  loop ();
  (match until with
  | Some u when (not t.stopped) && Time.(t.clock < u) -> t.clock <- u
  | _ -> ());
  t.on_run_end t.clock (t.fired - fired_before)

let events_processed t = t.fired

let pending t = Event_queue.length t.queue

let queue_high_water_mark t = Event_queue.high_water_mark t.queue

let queue_capacity t = Event_queue.capacity t.queue

let queue_growths t = Event_queue.growth_count t.queue

let queue_wheel_parked t = Event_queue.wheel_parked t.queue
