(** A resizable binary min-heap.

    The heap is imperative and monomorphic in its element type via a functor
    over an ordered type. Used as the backing store of {!Event_queue}. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty heap. [capacity] is an initial size hint (default 64). *)

  val length : t -> int
  val is_empty : t -> bool

  val push : t -> Elt.t -> unit

  val peek : t -> Elt.t option
  (** Smallest element, without removing it. *)

  val pop : t -> Elt.t option
  (** Removes and returns the smallest element. *)

  val pop_exn : t -> Elt.t
  (** @raise Invalid_argument on an empty heap. *)

  val clear : t -> unit

  val iter : (Elt.t -> unit) -> t -> unit
  (** Iterates in unspecified order. *)

  val to_sorted_list : t -> Elt.t list
  (** Non-destructive: the heap contents in ascending order. O(n log n). *)
end
