(** A resizable binary min-heap.

    The heap is imperative and monomorphic in its element type via a functor
    over an ordered type. Used as the backing store of {!Event_queue}. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh empty heap. [capacity] is the size of the backing array's
      first allocation (default 64), made lazily at the first {!push};
      pass the expected peak to avoid doubling-and-copying on the way
      up. @raise Invalid_argument when [capacity < 1]. *)

  val length : t -> int
  val is_empty : t -> bool

  val capacity : t -> int
  (** Current backing-array size; 0 until the first {!push}. *)

  val push : t -> Elt.t -> unit

  val peek : t -> Elt.t option
  (** Smallest element, without removing it. *)

  val top_exn : t -> Elt.t
  (** Smallest element without the option box — the allocation-free
      sibling of {!peek} for hot loops.
      @raise Invalid_argument on an empty heap. *)

  val drop_top : t -> unit
  (** Remove the smallest element (no-op when empty) without allocating
      the [option] that {!pop} returns. *)

  val pop : t -> Elt.t option
  (** Removes and returns the smallest element. *)

  val pop_exn : t -> Elt.t
  (** @raise Invalid_argument on an empty heap. *)

  val clear : t -> unit

  val iter : (Elt.t -> unit) -> t -> unit
  (** Iterates in unspecified order. *)

  val to_sorted_list : t -> Elt.t list
  (** Non-destructive: the heap contents in ascending order. O(n log n). *)
end
