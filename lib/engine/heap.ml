module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Elt : ORDERED) = struct
  type t = {
    mutable data : Elt.t array;
    (* [data.(0 .. size-1)] is a binary min-heap; slots beyond [size] hold
       stale elements kept only to satisfy the array type. The backing
       array cannot be allocated before the first push (there is no
       [Elt.t] witness), so the capacity hint is kept aside and honoured
       by the first [grow]. *)
    mutable size : int;
    capacity_hint : int;
  }

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Heap.create: capacity < 1";
    { data = [||]; size = 0; capacity_hint = capacity }

  let length h = h.size

  let is_empty h = h.size = 0

  let capacity h = Array.length h.data

  let grow h elt =
    let cap = Array.length h.data in
    if h.size = cap then begin
      let ncap = if cap = 0 then h.capacity_hint else 2 * cap in
      let ndata = Array.make ncap elt in
      Array.blit h.data 0 ndata 0 h.size;
      h.data <- ndata
    end

  let rec sift_up data i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Elt.compare data.(i) data.(parent) < 0 then begin
        let tmp = data.(i) in
        data.(i) <- data.(parent);
        data.(parent) <- tmp;
        sift_up data parent
      end
    end

  let rec sift_down data size i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < size && Elt.compare data.(l) data.(i) < 0 then l else i in
    let smallest =
      if r < size && Elt.compare data.(r) data.(smallest) < 0 then r else smallest
    in
    if smallest <> i then begin
      let tmp = data.(i) in
      data.(i) <- data.(smallest);
      data.(smallest) <- tmp;
      sift_down data size smallest
    end

  let push h elt =
    grow h elt;
    h.data.(h.size) <- elt;
    h.size <- h.size + 1;
    sift_up h.data (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let top_exn h =
    if h.size = 0 then invalid_arg "Heap.top_exn: empty heap";
    h.data.(0)

  let drop_top h =
    if h.size > 0 then begin
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        sift_down h.data h.size 0
      end
    end

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        h.data.(0) <- h.data.(h.size);
        sift_down h.data h.size 0
      end;
      Some top
    end

  let pop_exn h =
    match pop h with
    | Some e -> e
    | None -> invalid_arg "Heap.pop_exn: empty heap"

  let clear h = h.size <- 0

  let iter f h =
    for i = 0 to h.size - 1 do
      f h.data.(i)
    done

  let to_sorted_list h =
    let copy =
      { data = Array.sub h.data 0 h.size; size = h.size; capacity_hint = h.capacity_hint }
    in
    let rec drain acc =
      match pop copy with None -> List.rev acc | Some e -> drain (e :: acc)
    in
    drain []
end
