let handle ~initial_ssthresh ~max_window =
  let w = { Cc.cwnd = 1.; ssthresh = initial_ssthresh } in
  {
    Cc.name = "newreno";
    cwnd = (fun () -> w.Cc.cwnd);
    ssthresh = (fun () -> w.Cc.ssthresh);
    in_slow_start = (fun () -> Cc.window_in_slow_start w);
    on_new_ack =
      (fun info -> Cc.slow_start_and_avoidance w ~max_window info.Cc.newly_acked);
    enter_recovery =
      (fun ~flight ~now:_ ->
        w.Cc.ssthresh <- Cc.halve_flight ~flight;
        w.Cc.cwnd <- w.Cc.ssthresh +. 3.);
    dup_ack_inflate =
      (fun () ->
        let c = w.Cc.cwnd +. 1. in
        w.Cc.cwnd <- (if c > max_window then max_window else c));
    on_partial_ack =
      (fun info ->
        (* Deflate by the amount acknowledged, then inflate by one for the
           retransmission the engine performs (RFC 2582 §3 step 5). *)
        let c = w.Cc.cwnd -. float_of_int info.Cc.newly_acked +. 1. in
        w.Cc.cwnd <- (if c < 1. then 1. else c));
    on_full_ack = (fun _ -> w.Cc.cwnd <- w.Cc.ssthresh);
    on_timeout =
      (fun ~flight ~now:_ ->
        w.Cc.ssthresh <- Cc.halve_flight ~flight;
        w.Cc.cwnd <- 1.);
    on_ecn =
      (fun ~flight ~now:_ ->
        w.Cc.ssthresh <- Cc.halve_flight ~flight;
        w.Cc.cwnd <- w.Cc.ssthresh);
    uses_fast_recovery = true;
    partial_ack_stays = true;
  }
