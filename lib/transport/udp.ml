module Scheduler = Sim_engine.Scheduler
module Packet = Netsim.Packet

type sender = {
  sched : Scheduler.t;
  factory : Packet.factory;
  flow : int;
  src : int;
  dst : int;
  size_bytes : int;
  transmit : Packet.t -> unit;
  mutable next_seq : int;
}

let create_sender sched ~factory ~flow ~src ~dst ~size_bytes ~transmit =
  { sched; factory; flow; src; dst; size_bytes; transmit; next_seq = 0 }

let write t n =
  if n < 0 then invalid_arg "Udp.write: negative count";
  for _ = 1 to n do
    let p =
      Packet.make t.factory ~flow:t.flow ~src:t.src ~dst:t.dst
        ~size_bytes:t.size_bytes ~sent_at:(Scheduler.now t.sched)
        (Packet.Udp_data { seq = t.next_seq })
    in
    t.next_seq <- t.next_seq + 1;
    t.transmit p
  done

let sent t = t.next_seq

type receiver = { mutable received : int }

let create_receiver () = { received = 0 }

let handle_packet t p =
  match p.Packet.payload with
  | Packet.Udp_data _ -> t.received <- t.received + 1
  | Packet.Tcp_data _ | Packet.Tcp_ack _ -> ()

let received t = t.received
