module Scheduler = Sim_engine.Scheduler
module Pool = Netsim.Packet_pool

type sender = {
  sched : Scheduler.t;
  pool : Pool.t;
  flow : int;
  src : int;
  dst : int;
  size_bytes : int;
  transmit : Pool.handle -> unit;
  mutable next_seq : int;
}

let create_sender sched ~pool ~flow ~src ~dst ~size_bytes ~transmit =
  { sched; pool; flow; src; dst; size_bytes; transmit; next_seq = 0 }

let write t n =
  if n < 0 then invalid_arg "Udp.write: negative count";
  for _ = 1 to n do
    let p =
      Pool.alloc_udp t.pool ~flow:t.flow ~src:t.src ~dst:t.dst
        ~size_bytes:t.size_bytes ~sent_at:(Scheduler.now t.sched) ~seq:t.next_seq
        ()
    in
    t.next_seq <- t.next_seq + 1;
    t.transmit p
  done

let sent t = t.next_seq

type receiver = { rpool : Pool.t; mutable received : int }

let create_receiver ~pool () = { rpool = pool; received = 0 }

let handle_packet t h =
  match Pool.kind t.rpool h with
  | Pool.Udp_data -> t.received <- t.received + 1
  | Pool.Tcp_data | Pool.Tcp_ack -> ()

let received t = t.received
