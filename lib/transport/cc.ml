type ack_info = {
  mutable ack : int;
  mutable newly_acked : int;
  mutable rtt_ns : int;
  mutable flight_before : int;
}

let make_ack_info () = { ack = 0; newly_acked = 0; rtt_ns = -1; flight_before = 0 }

type handle = {
  name : string;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  (* Immediate-typed phase query for the flight recorder: the float
     closures above return boxed floats, so per-ACK phase tracking goes
     through this bool instead to stay allocation-free. *)
  in_slow_start : unit -> bool;
  on_new_ack : ack_info -> unit;
  enter_recovery : flight:int -> now:float -> unit;
  dup_ack_inflate : unit -> unit;
  on_partial_ack : ack_info -> unit;
  on_full_ack : ack_info -> unit;
  on_timeout : flight:int -> now:float -> unit;
  on_ecn : flight:int -> now:float -> unit;
  uses_fast_recovery : bool;
  partial_ack_stays : bool;
}

type window = { mutable cwnd : float; mutable ssthresh : float }

(* Both field reads feed straight into the comparison, so this neither
   boxes nor allocates. *)
let window_in_slow_start w = w.cwnd < w.ssthresh

let slow_start_and_avoidance w ~max_window newly_acked =
  for _ = 1 to newly_acked do
    if w.cwnd < w.ssthresh then w.cwnd <- w.cwnd +. 1.
    else w.cwnd <- w.cwnd +. (1. /. w.cwnd)
  done;
  if w.cwnd > max_window then w.cwnd <- max_window

let halve_flight ~flight =
  let half = float_of_int flight /. 2. in
  if half > 2. then half else 2.
