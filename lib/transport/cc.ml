module L = Flow_layout

type ack_info = {
  mutable ack : int;
  mutable newly_acked : int;
  mutable rtt_ns : int;
  mutable flight_before : int;
}

let make_ack_info () = { ack = 0; newly_acked = 0; rtt_ns = -1; flight_before = 0 }

(* ------------------------------------------------------------------ *)
(* Variants over flow-table rows *)

type variant = Reno | Newreno | Tahoe | Vegas | Sack

type vegas_params = { alpha : float; beta : float; gamma : float }

let default_vegas = { alpha = 1.; beta = 3.; gamma = 1. }

type ctx = { variant : variant; max_window : float; vp : vegas_params }

let make_ctx ?(vegas = default_vegas) ~max_window variant =
  if vegas.alpha <= 0. || vegas.beta < vegas.alpha || vegas.gamma <= 0. then
    invalid_arg "Cc.make_ctx: bad alpha/beta/gamma";
  { variant; max_window; vp = vegas }

let name_of = function
  | Reno -> "reno"
  | Newreno -> "newreno"
  | Tahoe -> "tahoe"
  | Vegas -> "vegas"
  | Sack -> "sack"

let floats_per_flow = function
  | Vegas -> L.vegas_floats
  | Reno | Newreno | Tahoe | Sack -> L.sender_floats

let uses_fast_recovery = function
  | Tahoe -> false
  | Reno | Newreno | Vegas | Sack -> true

let partial_ack_stays = function
  | Newreno | Sack -> true
  | Reno | Tahoe | Vegas -> false

(* All policy below mutates only the float row [fs] at base [fb]; every
   store is an unboxed double into a flat array, so the per-ACK path
   allocates nothing. *)

let init ctx fs fb ~initial_ssthresh =
  (match ctx.variant with
  | Vegas ->
      fs.(fb + L.f_cwnd) <- 2.;
      fs.(fb + L.f_base_rtt) <- infinity;
      fs.(fb + L.f_vss) <- 1.;
      fs.(fb + L.f_vgrow) <- 1.
  | Reno | Newreno | Tahoe | Sack -> fs.(fb + L.f_cwnd) <- 1.);
  fs.(fb + L.f_ssthresh) <- initial_ssthresh

let cwnd (fs : float array) fb = fs.(fb + L.f_cwnd)

let ssthresh (fs : float array) fb = fs.(fb + L.f_ssthresh)

(* Both reads feed straight into the comparison — neither boxes. Vegas's
   published query is the same [cwnd < ssthresh], not its internal
   slow-start flag. *)
let in_slow_start (fs : float array) fb = fs.(fb + L.f_cwnd) < fs.(fb + L.f_ssthresh)

let halve_flight ~flight =
  let half = float_of_int flight /. 2. in
  if half > 2. then half else 2.

(* Standard per-ACK growth: +1 per segment below ssthresh, +1/cwnd per
   segment above, clamped to the advertised window. *)
let grow_aimd ctx (fs : float array) fb newly_acked =
  for _ = 1 to newly_acked do
    if fs.(fb + L.f_cwnd) < fs.(fb + L.f_ssthresh) then
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_cwnd) +. 1.
    else fs.(fb + L.f_cwnd) <- fs.(fb + L.f_cwnd) +. (1. /. fs.(fb + L.f_cwnd))
  done;
  if fs.(fb + L.f_cwnd) > ctx.max_window then fs.(fb + L.f_cwnd) <- ctx.max_window

(* Vegas clamps into [2, max_window]. *)
let vclamp ctx v =
  let v = if v > ctx.max_window then ctx.max_window else v in
  if v < 2. then 2. else v

let vegas_end_of_epoch ctx (fs : float array) fb (info : ack_info) =
  let rtt =
    if fs.(fb + L.f_epoch_n) > 0. then
      fs.(fb + L.f_epoch_sum) /. fs.(fb + L.f_epoch_n)
    else fs.(fb + L.f_base_rtt)
  in
  if Float.is_finite fs.(fb + L.f_base_rtt) && rtt > 0. then begin
    let diff = fs.(fb + L.f_cwnd) *. (1. -. (fs.(fb + L.f_base_rtt) /. rtt)) in
    if fs.(fb + L.f_vss) <> 0. then begin
      if diff > ctx.vp.gamma then begin
        (* Leave slow start with a 1/8 decrease (Brakmo §4.3). *)
        fs.(fb + L.f_vss) <- 0.;
        fs.(fb + L.f_cwnd) <- vclamp ctx (fs.(fb + L.f_cwnd) *. 0.875)
      end
      else fs.(fb + L.f_vgrow) <- (if fs.(fb + L.f_vgrow) <> 0. then 0. else 1.)
    end
    else if diff < ctx.vp.alpha then
      fs.(fb + L.f_cwnd) <- vclamp ctx (fs.(fb + L.f_cwnd) +. 1.)
    else if diff > ctx.vp.beta then
      fs.(fb + L.f_cwnd) <- vclamp ctx (fs.(fb + L.f_cwnd) -. 1.)
  end;
  fs.(fb + L.f_epoch_sum) <- 0.;
  fs.(fb + L.f_epoch_n) <- 0.;
  (* Next epoch ends when everything now outstanding has been ACKed. *)
  fs.(fb + L.f_epoch_mark) <- float_of_int (info.ack + info.flight_before)

let vegas_on_new_ack ctx (fs : float array) fb (info : ack_info) =
  if info.rtt_ns >= 0 then begin
    let rtt = float_of_int info.rtt_ns *. 1e-9 in
    if rtt < fs.(fb + L.f_base_rtt) then fs.(fb + L.f_base_rtt) <- rtt;
    fs.(fb + L.f_epoch_sum) <- fs.(fb + L.f_epoch_sum) +. rtt;
    fs.(fb + L.f_epoch_n) <- fs.(fb + L.f_epoch_n) +. 1.
  end;
  (* Exponential growth happens per-ACK but only during "grow" epochs. *)
  if fs.(fb + L.f_vss) <> 0. && fs.(fb + L.f_vgrow) <> 0. then begin
    let c = fs.(fb + L.f_cwnd) +. float_of_int info.newly_acked in
    fs.(fb + L.f_cwnd) <- (if c > ctx.max_window then ctx.max_window else c)
  end;
  if float_of_int info.ack > fs.(fb + L.f_epoch_mark) then
    vegas_end_of_epoch ctx fs fb info

let on_new_ack ctx fs fb (info : ack_info) =
  match ctx.variant with
  | Reno | Newreno | Tahoe | Sack -> grow_aimd ctx fs fb info.newly_acked
  | Vegas -> vegas_on_new_ack ctx fs fb info

let enter_recovery ctx (fs : float array) fb ~flight ~now:(_ : float) =
  match ctx.variant with
  | Reno | Newreno ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      (* Window inflation: ssthresh + the 3 dup ACKs already seen. *)
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh) +. 3.
  | Tahoe ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- 1.
  | Sack ->
      (* No inflation: the engine's pipe accounting admits new segments. *)
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh)
  | Vegas ->
      fs.(fb + L.f_vss) <- 0.;
      (* Gentler decrease than Reno: 3/4 of the window. *)
      let s = fs.(fb + L.f_cwnd) *. 0.75 in
      fs.(fb + L.f_ssthresh) <- (if s < 2. then 2. else s);
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh) +. 3.

let dup_ack_inflate ctx (fs : float array) fb =
  match ctx.variant with
  | Reno | Newreno | Vegas ->
      let c = fs.(fb + L.f_cwnd) +. 1. in
      fs.(fb + L.f_cwnd) <- (if c > ctx.max_window then ctx.max_window else c)
  | Tahoe | Sack -> ()

let on_partial_ack ctx (fs : float array) fb (info : ack_info) =
  match ctx.variant with
  | Newreno ->
      (* Deflate by the amount acknowledged, then inflate by one for the
         retransmission the engine performs (RFC 2582 §3 step 5). *)
      let c = fs.(fb + L.f_cwnd) -. float_of_int info.newly_acked +. 1. in
      fs.(fb + L.f_cwnd) <- (if c < 1. then 1. else c)
  | Reno | Tahoe | Vegas | Sack -> ()

let on_full_ack ctx (fs : float array) fb (_ : ack_info) =
  match ctx.variant with
  | Reno | Newreno | Vegas -> fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh)
  | Tahoe | Sack -> ()

let on_timeout ctx (fs : float array) fb ~flight ~now:(_ : float) =
  match ctx.variant with
  | Reno | Newreno | Tahoe | Sack ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- 1.
  | Vegas ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- 2.;
      fs.(fb + L.f_vss) <- 1.;
      fs.(fb + L.f_vgrow) <- 1.

let on_ecn ctx (fs : float array) fb ~flight ~now:(_ : float) =
  match ctx.variant with
  | Reno | Newreno ->
      (* Halve as for a loss, but no segment is missing (RFC 3168). *)
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh)
  | Tahoe ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- 1.
  | Sack ->
      fs.(fb + L.f_ssthresh) <- halve_flight ~flight;
      fs.(fb + L.f_cwnd) <- fs.(fb + L.f_ssthresh)
  | Vegas ->
      (* Same gentle decrease Vegas uses for a detected loss. *)
      fs.(fb + L.f_vss) <- 0.;
      let c = fs.(fb + L.f_cwnd) *. 0.75 in
      fs.(fb + L.f_cwnd) <- (if c < 2. then 2. else c)

(* ------------------------------------------------------------------ *)
(* Closure handles (standalone/back-compat view) *)

type handle = {
  name : string;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  in_slow_start : unit -> bool;
  on_new_ack : ack_info -> unit;
  enter_recovery : flight:int -> now:float -> unit;
  dup_ack_inflate : unit -> unit;
  on_partial_ack : ack_info -> unit;
  on_full_ack : ack_info -> unit;
  on_timeout : flight:int -> now:float -> unit;
  on_ecn : flight:int -> now:float -> unit;
  uses_fast_recovery : bool;
  partial_ack_stays : bool;
}

(* A handle is the table policy run over a private single-row float
   array — one implementation, two views. *)
let handle_of ?vegas ~initial_ssthresh ~max_window variant =
  let ctx = make_ctx ?vegas ~max_window variant in
  let fs = Array.make (floats_per_flow variant) 0. in
  init ctx fs 0 ~initial_ssthresh;
  {
    name = name_of variant;
    cwnd = (fun () -> fs.(L.f_cwnd));
    ssthresh = (fun () -> fs.(L.f_ssthresh));
    in_slow_start = (fun () -> fs.(L.f_cwnd) < fs.(L.f_ssthresh));
    on_new_ack = (fun info -> on_new_ack ctx fs 0 info);
    enter_recovery = (fun ~flight ~now -> enter_recovery ctx fs 0 ~flight ~now);
    dup_ack_inflate = (fun () -> dup_ack_inflate ctx fs 0);
    on_partial_ack = (fun info -> on_partial_ack ctx fs 0 info);
    on_full_ack = (fun info -> on_full_ack ctx fs 0 info);
    on_timeout = (fun ~flight ~now -> on_timeout ctx fs 0 ~flight ~now);
    on_ecn = (fun ~flight ~now -> on_ecn ctx fs 0 ~flight ~now);
    uses_fast_recovery = uses_fast_recovery variant;
    partial_ack_stays = partial_ack_stays variant;
  }

(* ------------------------------------------------------------------ *)
(* Legacy helpers kept for standalone windows in tests *)

type window = { mutable cwnd : float; mutable ssthresh : float }

let window_in_slow_start w = w.cwnd < w.ssthresh

let slow_start_and_avoidance w ~max_window newly_acked =
  for _ = 1 to newly_acked do
    if w.cwnd < w.ssthresh then w.cwnd <- w.cwnd +. 1.
    else w.cwnd <- w.cwnd +. (1. /. w.cwnd)
  done;
  if w.cwnd > max_window then w.cwnd <- max_window
