type ack_info = {
  ack : int;
  newly_acked : int;
  rtt_sample : float option;
  flight_before : int;
  now : float;
}

type handle = {
  name : string;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  on_new_ack : ack_info -> unit;
  enter_recovery : flight:int -> now:float -> unit;
  dup_ack_inflate : unit -> unit;
  on_partial_ack : ack_info -> unit;
  on_full_ack : ack_info -> unit;
  on_timeout : flight:int -> now:float -> unit;
  on_ecn : flight:int -> now:float -> unit;
  uses_fast_recovery : bool;
  partial_ack_stays : bool;
}

let slow_start_and_avoidance ~cwnd ~ssthresh ~max_window newly_acked =
  for _ = 1 to newly_acked do
    if !cwnd < !ssthresh then cwnd := !cwnd +. 1.
    else cwnd := !cwnd +. (1. /. !cwnd)
  done;
  if !cwnd > max_window then cwnd := max_window

let halve_flight ~flight = Stdlib.max (float_of_int flight /. 2.) 2.
