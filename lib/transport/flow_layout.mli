(** Row layouts for the TCP sender/receiver flow tables.

    Each value is an index into a flow's int row or float row in a
    {!Netsim.Flow_table} (see that module for the slab itself). The
    engine, the congestion-control policies and the RTO estimator all
    address state through these, so the layout is defined exactly once.

    Sender int row: [sender_ints] fixed cells, then the aux region —
    [seq_table_size] send-time cells and two [bitset_words]-sized
    bitsets (SACK scoreboard, retransmitted-in-recovery). Sender float
    row: [sender_floats] cells, extended to [vegas_floats] for Vegas.
    Receiver int row: [receiver_ints] cells plus one bitset. *)

(** {2 Sender ints} *)

val si_flow : int

val si_src : int

val si_dst : int

val si_next_seq : int

val si_snd_una : int

val si_max_sent : int

val si_app_submitted : int

val si_dup_acks : int

val si_recover : int

val si_high_sacked : int

val si_flags : int

val si_last_paced : int

val si_rto_timer : int

val si_pace_timer : int

val si_sacked : int

val si_ecn_reactions : int

val si_segments_sent : int

val si_retransmits : int

val si_timeouts : int

val si_fast_retransmits : int

val si_dup_acks_stat : int

val si_acks_received : int

val si_segments_acked : int

val sender_ints : int
(** Fixed int cells per sender row (the aux region follows). *)

(** {2 Sender flag bits ([si_flags])} *)

val fl_in_recovery : int

val fl_timed_out : int

val fl_trace : int

val fl_have_rtt : int

val fl_phase_shift : int
(** Lifecycle phase is stored as [phase + 1] (0 = none) in
    [fl_phase_mask] bits starting here. *)

val fl_phase_mask : int

(** {2 Float cells} *)

val f_cwnd : int

val f_ssthresh : int

val f_srtt : int

val f_rttvar : int

val f_backoff : int

val f_ecn_holdoff : int

val sender_floats : int
(** Float cells for Tahoe/Reno/NewReno/SACK rows. *)

val f_base_rtt : int

val f_epoch_sum : int

val f_epoch_n : int

val f_epoch_mark : int

val f_vss : int

val f_vgrow : int

val vegas_floats : int
(** Float cells for Vegas rows (epoch estimator appended). *)

(** {2 Receiver ints} *)

val ri_flow : int

val ri_src : int

val ri_dst : int

val ri_expected : int

val ri_unacked : int

val ri_delack_timer : int

val ri_acks_sent : int

val ri_duplicates : int

val ri_flags : int

val ri_ooo_count : int

val receiver_ints : int

val rfl_pending_ece : int

(** {2 Aux sizing} *)

val next_pow2 : int -> int
(** Smallest power of two >= n, at least 16. *)

val seq_table_size : adv_window:int -> int
(** Direct-mapped sequence-table size: [next_pow2 (adv_window + 4)],
    collision-free for the [<= adv_window + 2] live-sequence span. *)

val bitset_words : int -> int
(** Words for an [n]-bit bitset at 32 bits per word. *)
