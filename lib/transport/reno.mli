(** TCP Reno congestion control.

    Tahoe plus fast recovery: on the third duplicate ACK, [ssthresh] and
    [cwnd] drop to half the flight, the window inflates by one for every
    further duplicate ACK (packets have left the network), and the first
    new ACK deflates the window back to [ssthresh] and exits recovery. A
    retransmission timeout restarts slow start from [cwnd = 1]. This is the
    paper's primary protagonist (§2.1, §3.2). *)

val handle : initial_ssthresh:float -> max_window:float -> Cc.handle
