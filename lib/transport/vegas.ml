type params = Cc.vegas_params = { alpha : float; beta : float; gamma : float }

let default_params = Cc.default_vegas

let handle ?(params = default_params) ~initial_ssthresh ~max_window () =
  Cc.handle_of ~vegas:params ~initial_ssthresh ~max_window Cc.Vegas
