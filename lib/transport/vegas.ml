type params = { alpha : float; beta : float; gamma : float }

let default_params = { alpha = 1.; beta = 3.; gamma = 1. }

(* All-float record: the compiler keeps the fields flat, so the per-ACK
   stores below do not box.  Mixing these with the ints/bools in [state]
   would force every float store through the heap (no flambda). *)
type fstate = {
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable base_rtt : float; (* min RTT seen; infinity until first sample *)
  mutable epoch_rtt_sum : float;
}

type state = {
  p : params;
  max_window : float;
  f : fstate;
  mutable slow_start : bool;
  mutable grow_epoch : bool; (* slow start doubles only every other RTT *)
  mutable epoch_rtt_n : int;
  mutable epoch_mark : int; (* epoch ends when the cumulative ACK passes it *)
}

let clamp st v =
  let v = if v > st.max_window then st.max_window else v in
  if v < 2. then 2. else v

let end_of_epoch st (info : Cc.ack_info) =
  let rtt =
    if st.epoch_rtt_n > 0 then st.f.epoch_rtt_sum /. float_of_int st.epoch_rtt_n
    else st.f.base_rtt
  in
  if Float.is_finite st.f.base_rtt && rtt > 0. then begin
    let diff = st.f.cwnd *. (1. -. (st.f.base_rtt /. rtt)) in
    if st.slow_start then begin
      if diff > st.p.gamma then begin
        (* Leave slow start with a 1/8 decrease (Brakmo §4.3). *)
        st.slow_start <- false;
        st.f.cwnd <- clamp st (st.f.cwnd *. 0.875)
      end
      else st.grow_epoch <- not st.grow_epoch
    end
    else if diff < st.p.alpha then st.f.cwnd <- clamp st (st.f.cwnd +. 1.)
    else if diff > st.p.beta then st.f.cwnd <- clamp st (st.f.cwnd -. 1.)
  end;
  st.f.epoch_rtt_sum <- 0.;
  st.epoch_rtt_n <- 0;
  (* Next epoch ends when everything now outstanding has been ACKed. *)
  st.epoch_mark <- info.Cc.ack + info.Cc.flight_before

let on_new_ack st (info : Cc.ack_info) =
  if info.Cc.rtt_ns >= 0 then begin
    let rtt = float_of_int info.Cc.rtt_ns *. 1e-9 in
    if rtt < st.f.base_rtt then st.f.base_rtt <- rtt;
    st.f.epoch_rtt_sum <- st.f.epoch_rtt_sum +. rtt;
    st.epoch_rtt_n <- st.epoch_rtt_n + 1
  end;
  (* Exponential growth happens per-ACK but only during "grow" epochs. *)
  if st.slow_start && st.grow_epoch then begin
    let c = st.f.cwnd +. float_of_int info.Cc.newly_acked in
    st.f.cwnd <- (if c > st.max_window then st.max_window else c)
  end;
  if info.Cc.ack > st.epoch_mark then end_of_epoch st info

let handle ?(params = default_params) ~initial_ssthresh ~max_window () =
  if params.alpha <= 0. || params.beta < params.alpha || params.gamma <= 0. then
    invalid_arg "Vegas.handle: bad alpha/beta/gamma";
  let st =
    {
      p = params;
      max_window;
      f =
        {
          cwnd = 2.;
          ssthresh = initial_ssthresh;
          base_rtt = infinity;
          epoch_rtt_sum = 0.;
        };
      slow_start = true;
      grow_epoch = true;
      epoch_rtt_n = 0;
      epoch_mark = 0;
    }
  in
  {
    Cc.name = "vegas";
    cwnd = (fun () -> st.f.cwnd);
    ssthresh = (fun () -> st.f.ssthresh);
    in_slow_start = (fun () -> st.f.cwnd < st.f.ssthresh);
    on_new_ack = (fun info -> on_new_ack st info);
    enter_recovery =
      (fun ~flight:_ ~now:_ ->
        st.slow_start <- false;
        (* Gentler decrease than Reno: 3/4 of the window. *)
        let s = st.f.cwnd *. 0.75 in
        st.f.ssthresh <- (if s < 2. then 2. else s);
        st.f.cwnd <- st.f.ssthresh +. 3.);
    dup_ack_inflate =
      (fun () ->
        let c = st.f.cwnd +. 1. in
        st.f.cwnd <- (if c > max_window then max_window else c));
    on_partial_ack = (fun _ -> ());
    on_full_ack = (fun _ -> st.f.cwnd <- st.f.ssthresh);
    on_timeout =
      (fun ~flight ~now:_ ->
        st.f.ssthresh <- Cc.halve_flight ~flight;
        st.f.cwnd <- 2.;
        st.slow_start <- true;
        st.grow_epoch <- true);
    on_ecn =
      (fun ~flight:_ ~now:_ ->
        (* Same gentle decrease Vegas uses for a detected loss. *)
        st.slow_start <- false;
        let c = st.f.cwnd *. 0.75 in
        st.f.cwnd <- (if c < 2. then 2. else c));
    uses_fast_recovery = true;
    partial_ack_stays = false;
  }
