type params = { alpha : float; beta : float; gamma : float }

let default_params = { alpha = 1.; beta = 3.; gamma = 1. }

type state = {
  p : params;
  max_window : float;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable slow_start : bool;
  mutable grow_epoch : bool; (* slow start doubles only every other RTT *)
  mutable base_rtt : float; (* min RTT seen; infinity until first sample *)
  mutable epoch_rtt_sum : float;
  mutable epoch_rtt_n : int;
  mutable epoch_mark : int; (* epoch ends when the cumulative ACK passes it *)
}

let clamp st v = Stdlib.max 2. (Stdlib.min st.max_window v)

let end_of_epoch st (info : Cc.ack_info) =
  let rtt =
    if st.epoch_rtt_n > 0 then st.epoch_rtt_sum /. float_of_int st.epoch_rtt_n
    else st.base_rtt
  in
  if Float.is_finite st.base_rtt && rtt > 0. then begin
    let diff = st.cwnd *. (1. -. (st.base_rtt /. rtt)) in
    if st.slow_start then begin
      if diff > st.p.gamma then begin
        (* Leave slow start with a 1/8 decrease (Brakmo §4.3). *)
        st.slow_start <- false;
        st.cwnd <- clamp st (st.cwnd *. 0.875)
      end
      else st.grow_epoch <- not st.grow_epoch
    end
    else if diff < st.p.alpha then st.cwnd <- clamp st (st.cwnd +. 1.)
    else if diff > st.p.beta then st.cwnd <- clamp st (st.cwnd -. 1.)
  end;
  st.epoch_rtt_sum <- 0.;
  st.epoch_rtt_n <- 0;
  (* Next epoch ends when everything now outstanding has been ACKed. *)
  st.epoch_mark <- info.Cc.ack + info.Cc.flight_before

let on_new_ack st (info : Cc.ack_info) =
  (match info.Cc.rtt_sample with
  | Some rtt ->
      if rtt < st.base_rtt then st.base_rtt <- rtt;
      st.epoch_rtt_sum <- st.epoch_rtt_sum +. rtt;
      st.epoch_rtt_n <- st.epoch_rtt_n + 1
  | None -> ());
  (* Exponential growth happens per-ACK but only during "grow" epochs. *)
  if st.slow_start && st.grow_epoch then
    st.cwnd <- Stdlib.min st.max_window (st.cwnd +. float_of_int info.Cc.newly_acked);
  if info.Cc.ack > st.epoch_mark then end_of_epoch st info

let handle ?(params = default_params) ~initial_ssthresh ~max_window () =
  if params.alpha <= 0. || params.beta < params.alpha || params.gamma <= 0. then
    invalid_arg "Vegas.handle: bad alpha/beta/gamma";
  let st =
    {
      p = params;
      max_window;
      cwnd = 2.;
      ssthresh = initial_ssthresh;
      slow_start = true;
      grow_epoch = true;
      base_rtt = infinity;
      epoch_rtt_sum = 0.;
      epoch_rtt_n = 0;
      epoch_mark = 0;
    }
  in
  {
    Cc.name = "vegas";
    cwnd = (fun () -> st.cwnd);
    ssthresh = (fun () -> st.ssthresh);
    on_new_ack = (fun info -> on_new_ack st info);
    enter_recovery =
      (fun ~flight:_ ~now:_ ->
        st.slow_start <- false;
        (* Gentler decrease than Reno: 3/4 of the window. *)
        st.ssthresh <- Stdlib.max (st.cwnd *. 0.75) 2.;
        st.cwnd <- st.ssthresh +. 3.);
    dup_ack_inflate = (fun () -> st.cwnd <- Stdlib.min (st.cwnd +. 1.) max_window);
    on_partial_ack = (fun _ -> ());
    on_full_ack = (fun _ -> st.cwnd <- st.ssthresh);
    on_timeout =
      (fun ~flight ~now:_ ->
        st.ssthresh <- Cc.halve_flight ~flight;
        st.cwnd <- 2.;
        st.slow_start <- true;
        st.grow_epoch <- true);
    on_ecn =
      (fun ~flight:_ ~now:_ ->
        (* Same gentle decrease Vegas uses for a detected loss. *)
        st.slow_start <- false;
        st.cwnd <- Stdlib.max (st.cwnd *. 0.75) 2.);
    uses_fast_recovery = true;
    partial_ack_stays = false;
  }
