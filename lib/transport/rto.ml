type params = {
  granularity : float;
  min_rto : float;
  max_rto : float;
  initial_rto : float;
}

let default_params =
  { granularity = 0.1; min_rto = 1.0; max_rto = 64.0; initial_rto = 3.0 }

type t = {
  p : params;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable backoff_factor : float;
}

let create p =
  if p.granularity <= 0. || p.min_rto <= 0. || p.max_rto < p.min_rto then
    invalid_arg "Rto.create: bad params";
  { p; srtt = 0.; rttvar = 0.; have_sample = false; backoff_factor = 1. }

let quantize t sample = Float.round (sample /. t.p.granularity) *. t.p.granularity

let observe t sample =
  if sample < 0. then invalid_arg "Rto.observe: negative sample";
  let m = quantize t sample in
  if not t.have_sample then begin
    (* RFC 6298 initialization. *)
    t.srtt <- m;
    t.rttvar <- m /. 2.;
    t.have_sample <- true
  end
  else begin
    (* alpha = 1/8, beta = 1/4 *)
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. m));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. m)
  end;
  t.backoff_factor <- 1.

let rto t =
  let base =
    if not t.have_sample then t.p.initial_rto
    else t.srtt +. Stdlib.max t.p.granularity (4. *. t.rttvar)
  in
  Stdlib.min t.p.max_rto (Stdlib.max t.p.min_rto (base *. t.backoff_factor))

let backoff t = t.backoff_factor <- Stdlib.min (t.backoff_factor *. 2.) 64.

let reset_backoff t = t.backoff_factor <- 1.

let srtt t = if t.have_sample then Some t.srtt else None

let rttvar t = if t.have_sample then Some t.rttvar else None
