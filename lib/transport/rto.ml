type params = {
  granularity : float;
  min_rto : float;
  max_rto : float;
  initial_rto : float;
}

let default_params =
  { granularity = 0.1; min_rto = 1.0; max_rto = 64.0; initial_rto = 3.0 }

(* The estimator floats live in a flat float array rather than mutable
   record fields: stores into a mixed record box the float every time,
   and [observe]/[rto] run once per ACK. Indices below. *)
let i_srtt = 0

let i_rttvar = 1

let i_backoff = 2

type t = { p : params; s : float array; mutable have_sample : bool }

let create p =
  if p.granularity <= 0. || p.min_rto <= 0. || p.max_rto < p.min_rto then
    invalid_arg "Rto.create: bad params";
  { p; s = [| 0.; 0.; 1. |]; have_sample = false }

(* [observe] and [observe_ns] share this body textually: a shared helper
   taking the sample as a float argument would box it at every call
   (no cross-function float unboxing without flambda). *)
let observe t sample =
  if sample < 0. then invalid_arg "Rto.observe: negative sample";
  let m = Float.round (sample /. t.p.granularity) *. t.p.granularity in
  if not t.have_sample then begin
    (* RFC 6298 initialization. *)
    t.s.(i_srtt) <- m;
    t.s.(i_rttvar) <- m /. 2.;
    t.have_sample <- true
  end
  else begin
    (* alpha = 1/8, beta = 1/4 *)
    t.s.(i_rttvar) <-
      (0.75 *. t.s.(i_rttvar)) +. (0.25 *. Float.abs (t.s.(i_srtt) -. m));
    t.s.(i_srtt) <- (0.875 *. t.s.(i_srtt)) +. (0.125 *. m)
  end;
  t.s.(i_backoff) <- 1.

let observe_ns t ns =
  if ns < 0 then invalid_arg "Rto.observe_ns: negative sample";
  let sample = float_of_int ns *. 1e-9 in
  let m = Float.round (sample /. t.p.granularity) *. t.p.granularity in
  if not t.have_sample then begin
    t.s.(i_srtt) <- m;
    t.s.(i_rttvar) <- m /. 2.;
    t.have_sample <- true
  end
  else begin
    t.s.(i_rttvar) <-
      (0.75 *. t.s.(i_rttvar)) +. (0.25 *. Float.abs (t.s.(i_srtt) -. m));
    t.s.(i_srtt) <- (0.875 *. t.s.(i_srtt)) +. (0.125 *. m)
  end;
  t.s.(i_backoff) <- 1.

(* Explicit comparisons instead of the polymorphic [Stdlib.min]/[max]:
   no value here is ever NaN, and the polymorphic versions box both
   operands on every call. *)
let rto_seconds t =
  let base =
    if not t.have_sample then t.p.initial_rto
    else begin
      let spread = 4. *. t.s.(i_rttvar) in
      let spread = if spread < t.p.granularity then t.p.granularity else spread in
      t.s.(i_srtt) +. spread
    end
  in
  let v = base *. t.s.(i_backoff) in
  let v = if v < t.p.min_rto then t.p.min_rto else v in
  if v > t.p.max_rto then t.p.max_rto else v

let rto t = rto_seconds t

(* Same computation, ns result, body repeated so the intermediate float
   never crosses a call boundary (which would box it). The tick count
   matches [Time.of_sec (rto t)] bit for bit. *)
let rto_ns t =
  let base =
    if not t.have_sample then t.p.initial_rto
    else begin
      let spread = 4. *. t.s.(i_rttvar) in
      let spread = if spread < t.p.granularity then t.p.granularity else spread in
      t.s.(i_srtt) +. spread
    end
  in
  let v = base *. t.s.(i_backoff) in
  let v = if v < t.p.min_rto then t.p.min_rto else v in
  let v = if v > t.p.max_rto then t.p.max_rto else v in
  int_of_float (Float.round (v *. 1e9))

let backoff t =
  let b = t.s.(i_backoff) *. 2. in
  t.s.(i_backoff) <- (if b > 64. then 64. else b)

let reset_backoff t = t.s.(i_backoff) <- 1.

let srtt t = if t.have_sample then Some t.s.(i_srtt) else None

let rttvar t = if t.have_sample then Some t.s.(i_rttvar) else None

(* ------------------------------------------------------------------ *)
(* Flow-table entry points: the same estimator over a row of the sender
   table's float region ([Flow_layout.f_srtt]/[f_rttvar]/[f_backoff] at
   base [fb]). The caller owns the have-sample bit (a flag in its int
   row) and passes it in; each body repeats the math above verbatim so
   the results stay bit-identical and no float crosses a call boundary. *)

module L = Flow_layout

let observe_ns_at p (fs : float array) fb ~first ns =
  if ns < 0 then invalid_arg "Rto.observe_ns_at: negative sample";
  let sample = float_of_int ns *. 1e-9 in
  let m = Float.round (sample /. p.granularity) *. p.granularity in
  if first then begin
    fs.(fb + L.f_srtt) <- m;
    fs.(fb + L.f_rttvar) <- m /. 2.
  end
  else begin
    fs.(fb + L.f_rttvar) <-
      (0.75 *. fs.(fb + L.f_rttvar))
      +. (0.25 *. Float.abs (fs.(fb + L.f_srtt) -. m));
    fs.(fb + L.f_srtt) <- (0.875 *. fs.(fb + L.f_srtt)) +. (0.125 *. m)
  end;
  fs.(fb + L.f_backoff) <- 1.

let rto_ns_at p (fs : float array) fb ~have_sample =
  let base =
    if not have_sample then p.initial_rto
    else begin
      let spread = 4. *. fs.(fb + L.f_rttvar) in
      let spread = if spread < p.granularity then p.granularity else spread in
      fs.(fb + L.f_srtt) +. spread
    end
  in
  let v = base *. fs.(fb + L.f_backoff) in
  let v = if v < p.min_rto then p.min_rto else v in
  let v = if v > p.max_rto then p.max_rto else v in
  int_of_float (Float.round (v *. 1e9))

let backoff_at (fs : float array) fb =
  let b = fs.(fb + L.f_backoff) *. 2. in
  fs.(fb + L.f_backoff) <- (if b > 64. then 64. else b)

let reset_backoff_at (fs : float array) fb = fs.(fb + L.f_backoff) <- 1.

let init_at (fs : float array) fb = fs.(fb + L.f_backoff) <- 1.
