(** Per-connection TCP counters.

    Figure 13 of the paper plots the ratio of timeouts to duplicate ACKs;
    both counters live here, along with everything needed for throughput
    and retransmission accounting. *)

type t = {
  mutable segments_sent : int;  (** data segments put on the wire *)
  mutable retransmits : int;  (** of which retransmissions *)
  mutable timeouts : int;  (** RTO expirations *)
  mutable fast_retransmits : int;  (** third-dup-ACK retransmissions *)
  mutable dup_acks : int;  (** duplicate ACKs received *)
  mutable acks_received : int;  (** total ACK packets *)
  mutable segments_acked : int;  (** cumulative segments acknowledged *)
}

val create : unit -> t

val timeout_dupack_ratio : t -> float
(** [timeouts / dup_acks]; 0 when no duplicate ACK was seen. *)

val pp : Format.formatter -> t -> unit

val add : t -> t -> t
(** Field-wise sum (for aggregating over clients). *)
