let handle ~initial_ssthresh ~max_window =
  let w = { Cc.cwnd = 1.; ssthresh = initial_ssthresh } in
  let loss ~flight =
    w.Cc.ssthresh <- Cc.halve_flight ~flight;
    w.Cc.cwnd <- 1.
  in
  {
    Cc.name = "tahoe";
    cwnd = (fun () -> w.Cc.cwnd);
    ssthresh = (fun () -> w.Cc.ssthresh);
    in_slow_start = (fun () -> Cc.window_in_slow_start w);
    on_new_ack =
      (fun info -> Cc.slow_start_and_avoidance w ~max_window info.Cc.newly_acked);
    enter_recovery = (fun ~flight ~now:_ -> loss ~flight);
    dup_ack_inflate = ignore;
    on_partial_ack = (fun _ -> ());
    on_full_ack = (fun _ -> ());
    on_timeout = (fun ~flight ~now:_ -> loss ~flight);
    on_ecn = (fun ~flight ~now:_ -> loss ~flight);
    uses_fast_recovery = false;
    partial_ack_stays = false;
  }
