let handle ~initial_ssthresh ~max_window =
  Cc.handle_of ~initial_ssthresh ~max_window Cc.Tahoe
