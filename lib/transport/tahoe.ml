let handle ~initial_ssthresh ~max_window =
  let cwnd = ref 1. and ssthresh = ref initial_ssthresh in
  let loss ~flight =
    ssthresh := Cc.halve_flight ~flight;
    cwnd := 1.
  in
  {
    Cc.name = "tahoe";
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> !ssthresh);
    on_new_ack =
      (fun info ->
        Cc.slow_start_and_avoidance ~cwnd ~ssthresh ~max_window info.Cc.newly_acked);
    enter_recovery = (fun ~flight ~now:_ -> loss ~flight);
    dup_ack_inflate = ignore;
    on_partial_ack = (fun _ -> ());
    on_full_ack = (fun _ -> ());
    on_timeout = (fun ~flight ~now:_ -> loss ~flight);
    on_ecn = (fun ~flight ~now:_ -> loss ~flight);
    uses_fast_recovery = false;
    partial_ack_stays = false;
  }
