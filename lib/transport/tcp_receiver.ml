module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Eq = Sim_engine.Event_queue
module Pool = Netsim.Packet_pool
module Ft = Netsim.Flow_table
module L = Flow_layout

let delack_delay = Time.of_ms 200.

(* Per-flow state is one int row of a {!Netsim.Flow_table}
   ({!Flow_layout} receiver cells) plus a bitset recording buffered
   out-of-order sequences over the same [seq land mask] addressing the
   sender uses: live sequences span less than the reassembly window, so
   the direct-mapped bit is collision-free. *)
type group = {
  sched : Scheduler.t;
  pool : Pool.t;
  table : Ft.t;
  ack_bytes : int;
  delayed_ack : bool;
  sack : bool;
  st_size : int;
  st_mask : int;
  row_ints : int;
  transmit : flow:int -> Pool.handle -> unit;
  (* Lifecycle-only flight-recorder lane: out-of-order buffering and
     duplicate discards. [None] in parity mode so the binary stream
     stays byte-identical to the live NDJSON tracer. *)
  rlane : Telemetry.Recorder.lane option;
  (* Preallocated keyed 200 ms timer action: arming per flight of
     segments builds no closure. *)
  mutable on_delack : int -> unit;
}

type t = { g : group; h : Ft.handle }

let nil_i = Eq.int_of_handle Scheduler.nil

let bit_mem (iv : int array) base idx =
  iv.(base + (idx lsr 5)) land (1 lsl (idx land 31)) <> 0

let bit_set (iv : int array) base idx =
  let w = base + (idx lsr 5) in
  iv.(w) <- iv.(w) lor (1 lsl (idx land 31))

let bit_clear (iv : int array) base idx =
  let w = base + (idx lsr 5) in
  iv.(w) <- iv.(w) land lnot (1 lsl (idx land 31))

let cancel_delack g slot =
  let iv = Ft.ints g.table in
  let ti = (slot * g.row_ints) + L.ri_delack_timer in
  if iv.(ti) <> nil_i then begin
    Scheduler.cancel g.sched (Eq.handle_of_int iv.(ti));
    iv.(ti) <- nil_i
  end

(* RFC 2018: report the out-of-order data as up to four contiguous
   [(first, last_exclusive)] blocks — the lowest four, which the
   sender's scoreboard cares about most. The ascending scan over the
   reassembly window visits each buffered sequence once and stops as
   soon as every buffered sequence is accounted for. *)
let sack_blocks g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let total = iv.(b + L.ri_ooo_count) in
  if (not g.sack) || total = 0 then []
  else begin
    let expected = iv.(b + L.ri_expected) in
    let blocks = ref [] in
    let nblocks = ref 0 in
    let found = ref 0 in
    let first = ref (-1) in
    let d = ref 1 in
    while !d < g.st_size && !found < total && !nblocks < 4 do
      let seq = expected + !d in
      if bit_mem iv (b + L.receiver_ints) (seq land g.st_mask) then begin
        incr found;
        if !first < 0 then first := seq
      end
      else if !first >= 0 then begin
        blocks := (!first, seq) :: !blocks;
        incr nblocks;
        first := -1
      end;
      incr d
    done;
    if !first >= 0 && !nblocks < 4 then
      blocks := (!first, expected + !d) :: !blocks;
    List.rev !blocks
  end

let send_ack g slot =
  cancel_delack g slot;
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  iv.(b + L.ri_unacked) <- 0;
  iv.(b + L.ri_acks_sent) <- iv.(b + L.ri_acks_sent) + 1;
  let ece = iv.(b + L.ri_flags) land L.rfl_pending_ece <> 0 in
  iv.(b + L.ri_flags) <- iv.(b + L.ri_flags) land lnot L.rfl_pending_ece;
  let p =
    Pool.alloc_ack g.pool ~flow:iv.(b + L.ri_flow) ~src:iv.(b + L.ri_src)
      ~dst:iv.(b + L.ri_dst) ~size_bytes:g.ack_bytes
      ~sent_at:(Scheduler.now g.sched)
      ~ack:iv.(b + L.ri_expected) ~ece ~sack:(sack_blocks g slot) ()
  in
  g.transmit ~flow:iv.(b + L.ri_flow) p

let create_group ?(sack = false) ?recorder ?(capacity = 16) sched ~pool
    ~ack_bytes ~delayed_ack ~adv_window ~transmit =
  if adv_window < 1 then
    invalid_arg "Tcp_receiver.create_group: adv_window < 1";
  let rlane =
    match recorder with
    | Some r when Telemetry.Recorder.lifecycle r ->
        Some (Telemetry.Recorder.lane r 0)
    | _ -> None
  in
  let st_size = L.seq_table_size ~adv_window in
  let row_ints = L.receiver_ints + L.bitset_words st_size in
  let g =
    {
      sched;
      pool;
      table = Ft.create ~capacity ~ints_per_flow:row_ints ~floats_per_flow:0 ();
      ack_bytes;
      delayed_ack;
      sack;
      st_size;
      st_mask = st_size - 1;
      row_ints;
      transmit;
      rlane;
      on_delack = ignore;
    }
  in
  g.on_delack <-
    (fun slot ->
      (Ft.ints g.table).((slot * g.row_ints) + L.ri_delack_timer) <- nil_i;
      send_ack g slot);
  g

let attach g ~flow ~src ~dst () =
  let h = Ft.alloc g.table in
  let slot = Ft.slot_of g.table h in
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  iv.(b + L.ri_flow) <- flow;
  iv.(b + L.ri_src) <- src;
  iv.(b + L.ri_dst) <- dst;
  iv.(b + L.ri_delack_timer) <- nil_i;
  { g; h }

let detach t =
  let slot = Ft.slot_of t.g.table t.h in
  cancel_delack t.g slot;
  Ft.free t.g.table t.h

let table g = g.table

let group t = t.g

let schedule_delack g slot =
  let iv = Ft.ints g.table in
  let ti = (slot * g.row_ints) + L.ri_delack_timer in
  if iv.(ti) = nil_i then
    iv.(ti) <-
      Eq.int_of_handle
        (Scheduler.after_keyed g.sched delack_delay g.on_delack slot)

let record_rcv g slot kind seq =
  match g.rlane with
  | None -> ()
  | Some lane ->
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now g.sched))
        ~kind
        ~flow:(Ft.ints g.table).((slot * g.row_ints) + L.ri_flow)
        ~a:seq ~b:0 ~c:0 ~sid:0 ~depth:0

let on_in_order g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  iv.(b + L.ri_expected) <- iv.(b + L.ri_expected) + 1;
  (* Pull any buffered continuation forward. *)
  let continue = ref true in
  while !continue do
    let e = iv.(b + L.ri_expected) in
    if
      iv.(b + L.ri_ooo_count) > 0
      && bit_mem iv (b + L.receiver_ints) (e land g.st_mask)
    then begin
      bit_clear iv (b + L.receiver_ints) (e land g.st_mask);
      iv.(b + L.ri_ooo_count) <- iv.(b + L.ri_ooo_count) - 1;
      iv.(b + L.ri_expected) <- e + 1
    end
    else continue := false
  done;
  if not g.delayed_ack then send_ack g slot
  else begin
    iv.(b + L.ri_unacked) <- iv.(b + L.ri_unacked) + 1;
    if iv.(b + L.ri_unacked) >= 2 then send_ack g slot
    else schedule_delack g slot
  end

let handle_packet_slot g slot h =
  match Pool.kind g.pool h with
  | Pool.Tcp_data ->
      let iv = Ft.ints g.table in
      let b = slot * g.row_ints in
      if Pool.ecn_ce g.pool h then
        iv.(b + L.ri_flags) <- iv.(b + L.ri_flags) lor L.rfl_pending_ece;
      let seq = Pool.seq g.pool h in
      let expected = iv.(b + L.ri_expected) in
      if seq = expected then on_in_order g slot
      else if seq > expected then begin
        (* The sender's window keeps live sequences inside the
           reassembly window; anything further is a wiring bug, and the
           direct-mapped bit would silently alias. *)
        if seq - expected >= g.st_size then
          invalid_arg "Tcp_receiver: sequence beyond reassembly window";
        if bit_mem iv (b + L.receiver_ints) (seq land g.st_mask) then begin
          iv.(b + L.ri_duplicates) <- iv.(b + L.ri_duplicates) + 1;
          record_rcv g slot Telemetry.Record.rcv_duplicate seq
        end
        else begin
          bit_set iv (b + L.receiver_ints) (seq land g.st_mask);
          iv.(b + L.ri_ooo_count) <- iv.(b + L.ri_ooo_count) + 1;
          record_rcv g slot Telemetry.Record.rcv_out_of_order seq
        end;
        (* Out-of-order arrival: ACK immediately (duplicate ACK). *)
        send_ack g slot
      end
      else begin
        iv.(b + L.ri_duplicates) <- iv.(b + L.ri_duplicates) + 1;
        record_rcv g slot Telemetry.Record.rcv_duplicate seq;
        send_ack g slot
      end
  | Pool.Tcp_ack | Pool.Udp_data -> ()

(* ------------------------------------------------------------------ *)
(* Single-flow view *)

let create ?(sack = false) ?recorder sched ~pool ~flow ~src ~dst ~ack_bytes
    ~delayed_ack ~adv_window ~transmit =
  let g =
    create_group ~sack ?recorder ~capacity:1 sched ~pool ~ack_bytes
      ~delayed_ack ~adv_window
      ~transmit:(fun ~flow:_ p -> transmit p)
  in
  attach g ~flow ~src ~dst ()

let slot t = Ft.slot_of t.g.table t.h

let handle_packet t h = handle_packet_slot t.g (slot t) h

let delivered t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.ri_expected)

let expected t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.ri_expected)

let acks_sent t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.ri_acks_sent)

let duplicates_discarded t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.ri_duplicates)
