module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Pool = Netsim.Packet_pool

let delack_delay = Time.of_ms 200.

type t = {
  sched : Scheduler.t;
  pool : Pool.t;
  flow : int;
  src : int;
  dst : int;
  ack_bytes : int;
  delayed_ack : bool;
  sack : bool;
  transmit : Pool.handle -> unit;
  (* Lifecycle-only flight-recorder lane: out-of-order buffering and
     duplicate discards. [None] in parity mode so the binary stream
     stays byte-identical to the live NDJSON tracer. *)
  rlane : Telemetry.Recorder.lane option;
  out_of_order : (int, unit) Hashtbl.t;
  mutable expected : int;
  mutable unacked_segments : int; (* in-order segments not yet ACKed *)
  (* [Scheduler.nil] = unarmed; the action is preallocated so arming the
     200 ms timer per flight of segments builds no closure. *)
  mutable delack_timer : Scheduler.handle;
  mutable on_delack : unit -> unit;
  mutable acks_sent : int;
  mutable duplicates : int;
  mutable pending_ece : bool; (* a CE-marked segment arrived; echo it *)
}

let cancel_delack t =
  if not (Scheduler.is_nil t.delack_timer) then begin
    Scheduler.cancel t.sched t.delack_timer;
    t.delack_timer <- Scheduler.nil
  end

(* RFC 2018: report the out-of-order data as up to four contiguous
   [(first, last_exclusive)] blocks. *)
let sack_blocks t =
  if (not t.sack) || Hashtbl.length t.out_of_order = 0 then []
  else begin
    let seqs =
      List.sort Int.compare (Hashtbl.fold (fun s () acc -> s :: acc) t.out_of_order [])
    in
    let blocks =
      List.fold_left
        (fun acc seq ->
          match acc with
          | (first, last) :: rest when seq = last -> (first, seq + 1) :: rest
          | _ -> (seq, seq + 1) :: acc)
        [] seqs
    in
    (* Most recently possible blocks first is unnecessary here; keep the
       lowest four, which the sender's scoreboard cares about most. *)
    List.filteri (fun i _ -> i < 4) (List.rev blocks)
  end

let send_ack t =
  cancel_delack t;
  t.unacked_segments <- 0;
  t.acks_sent <- t.acks_sent + 1;
  let ece = t.pending_ece in
  t.pending_ece <- false;
  let p =
    Pool.alloc_ack t.pool ~flow:t.flow ~src:t.src ~dst:t.dst
      ~size_bytes:t.ack_bytes ~sent_at:(Scheduler.now t.sched) ~ack:t.expected
      ~ece ~sack:(sack_blocks t) ()
  in
  t.transmit p

let create ?(sack = false) ?recorder sched ~pool ~flow ~src ~dst ~ack_bytes
    ~delayed_ack ~transmit =
  let rlane =
    match recorder with
    | Some r when Telemetry.Recorder.lifecycle r ->
        Some (Telemetry.Recorder.lane r 0)
    | _ -> None
  in
  let t =
    {
      sched;
      pool;
      flow;
      src;
      dst;
      ack_bytes;
      delayed_ack;
      sack;
      transmit;
      rlane;
      out_of_order = Hashtbl.create 16;
      expected = 0;
      unacked_segments = 0;
      delack_timer = Scheduler.nil;
      on_delack = ignore;
      acks_sent = 0;
      duplicates = 0;
      pending_ece = false;
    }
  in
  t.on_delack <-
    (fun () ->
      t.delack_timer <- Scheduler.nil;
      send_ack t);
  t

let schedule_delack t =
  if Scheduler.is_nil t.delack_timer then
    t.delack_timer <- Scheduler.after t.sched delack_delay t.on_delack

let record_rcv t kind seq =
  match t.rlane with
  | None -> ()
  | Some lane ->
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now t.sched))
        ~kind ~flow:t.flow ~a:seq ~b:0 ~c:0 ~sid:0 ~depth:0

let on_in_order t =
  t.expected <- t.expected + 1;
  (* Pull any buffered continuation forward. *)
  let continue = ref true in
  while !continue do
    if Hashtbl.mem t.out_of_order t.expected then begin
      Hashtbl.remove t.out_of_order t.expected;
      t.expected <- t.expected + 1
    end
    else continue := false
  done;
  if not t.delayed_ack then send_ack t
  else begin
    t.unacked_segments <- t.unacked_segments + 1;
    if t.unacked_segments >= 2 then send_ack t else schedule_delack t
  end

let handle_packet t h =
  match Pool.kind t.pool h with
  | Pool.Tcp_data ->
      if Pool.ecn_ce t.pool h then t.pending_ece <- true;
      let seq = Pool.seq t.pool h in
      if seq = t.expected then on_in_order t
      else if seq > t.expected then begin
        if Hashtbl.mem t.out_of_order seq then begin
          t.duplicates <- t.duplicates + 1;
          record_rcv t Telemetry.Record.rcv_duplicate seq
        end
        else begin
          Hashtbl.replace t.out_of_order seq ();
          record_rcv t Telemetry.Record.rcv_out_of_order seq
        end;
        (* Out-of-order arrival: ACK immediately (duplicate ACK). *)
        send_ack t
      end
      else begin
        t.duplicates <- t.duplicates + 1;
        record_rcv t Telemetry.Record.rcv_duplicate seq;
        send_ack t
      end
  | Pool.Tcp_ack | Pool.Udp_data -> ()

let delivered t = t.expected

let expected t = t.expected

let acks_sent t = t.acks_sent

let duplicates_discarded t = t.duplicates
