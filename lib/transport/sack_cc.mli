(** Congestion control for SACK-based recovery (RFC 3517 style).

    Multiplicative decrease like Reno, but no window inflation during
    recovery: the engine's pipe estimate (outstanding minus SACKed)
    replaces it, and partial ACKs keep the connection in recovery until
    the recovery point is passed. *)

val handle : initial_ssthresh:float -> max_window:float -> Cc.handle
