let handle ~initial_ssthresh ~max_window =
  let cwnd = ref 1. and ssthresh = ref initial_ssthresh in
  {
    Cc.name = "reno";
    cwnd = (fun () -> !cwnd);
    ssthresh = (fun () -> !ssthresh);
    on_new_ack =
      (fun info ->
        Cc.slow_start_and_avoidance ~cwnd ~ssthresh ~max_window info.Cc.newly_acked);
    enter_recovery =
      (fun ~flight ~now:_ ->
        ssthresh := Cc.halve_flight ~flight;
        (* Window inflation: ssthresh + the 3 dup ACKs already seen. *)
        cwnd := !ssthresh +. 3.);
    dup_ack_inflate = (fun () -> cwnd := Stdlib.min (!cwnd +. 1.) max_window);
    on_partial_ack = (fun _ -> ());
    on_full_ack = (fun _ -> cwnd := !ssthresh);
    on_timeout =
      (fun ~flight ~now:_ ->
        ssthresh := Cc.halve_flight ~flight;
        cwnd := 1.);
    on_ecn =
      (fun ~flight ~now:_ ->
        (* Halve as for a loss, but no segment is missing (RFC 3168). *)
        ssthresh := Cc.halve_flight ~flight;
        cwnd := !ssthresh);
    uses_fast_recovery = true;
    partial_ack_stays = false;
  }
