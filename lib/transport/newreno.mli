(** TCP NewReno congestion control (RFC 2582-style partial-ACK handling).

    Like Reno, but a partial ACK (one that advances the window without
    reaching the recovery point) retransmits the next hole, deflates the
    window by the amount acknowledged, and keeps the connection in fast
    recovery — avoiding Reno's stall when several segments from one window
    are lost. Provided as an ablation point beyond the paper's variants. *)

val handle : initial_ssthresh:float -> max_window:float -> Cc.handle
