(* Row layouts for the TCP sender/receiver flow tables
   ({!Netsim.Flow_table}). One module owns every index so the engine
   (Tcp_sender/Tcp_receiver), the congestion-control policies (Cc) and
   the RTO estimator (Rto) agree on where each field lives without
   threading records around.

   A sender row is [sender_ints] fixed int cells followed by a
   variable-size aux region (send-time table + two bitsets, sized from
   the advertised window), and [sender_floats] (or [vegas_floats])
   unboxed float cells. A receiver row is [receiver_ints] int cells
   followed by one bitset. *)

(* ------------------------------------------------------------------ *)
(* Sender int cells *)

let si_flow = 0

let si_src = 1

let si_dst = 2

let si_next_seq = 3 (* next new segment to put on the wire *)

let si_snd_una = 4 (* lowest unacknowledged sequence *)

let si_max_sent = 5 (* 1 + highest sequence ever transmitted *)

let si_app_submitted = 6

let si_dup_acks = 7

let si_recover = 8 (* highest seq outstanding when recovery began *)

let si_high_sacked = 9 (* highest sequence the receiver has SACKed; -1 none *)

let si_flags = 10 (* bit salad; see fl_* below *)

let si_last_paced = 11 (* tick of last paced send; Time.never until first *)

let si_rto_timer = 12 (* Scheduler.handle as int; nil = unarmed *)

let si_pace_timer = 13

let si_sacked = 14 (* live scoreboard population (for the pipe estimate) *)

let si_ecn_reactions = 15

(* Tcp_stats counters *)

let si_segments_sent = 16

let si_retransmits = 17

let si_timeouts = 18

let si_fast_retransmits = 19

let si_dup_acks_stat = 20

let si_acks_received = 21

let si_segments_acked = 22

let sender_ints = 23

(* Sender flag bits (si_flags) *)

let fl_in_recovery = 1

let fl_timed_out = 2 (* post-timeout hole; cleared by the next new ACK *)

let fl_trace = 4 (* this flow records a (time, cwnd) trace *)

let fl_have_rtt = 8 (* the RTO estimator has seen a sample *)

(* Last recorded lifecycle phase, stored as [phase + 1] (0 = none yet)
   in 3 bits above the booleans. *)
let fl_phase_shift = 4

let fl_phase_mask = 7

(* ------------------------------------------------------------------ *)
(* Float cells (both CC and RTO state; all variants share 0..5) *)

let f_cwnd = 0

let f_ssthresh = 1

let f_srtt = 2

let f_rttvar = 3

let f_backoff = 4 (* RTO multiplier: 1, 2, 4 ... 64 *)

let f_ecn_holdoff = 5 (* seconds; react to ECE at most once per RTT *)

let sender_floats = 6

(* Vegas appends its epoch estimator; the booleans live as 0./1. floats
   so every CC mutation touches one region. Counters and sequence marks
   stay exact as doubles far past any run length. *)

let f_base_rtt = 6 (* min RTT seen; infinity until first sample *)

let f_epoch_sum = 7

let f_epoch_n = 8

let f_epoch_mark = 9 (* epoch ends when the cumulative ACK passes it *)

let f_vss = 10 (* in Vegas slow start *)

let f_vgrow = 11 (* slow start doubles only every other RTT *)

let vegas_floats = 12

(* ------------------------------------------------------------------ *)
(* Receiver int cells *)

let ri_flow = 0

let ri_src = 1

let ri_dst = 2

let ri_expected = 3 (* next in-order sequence = cumulative ACK value *)

let ri_unacked = 4 (* in-order segments not yet ACKed *)

let ri_delack_timer = 5

let ri_acks_sent = 6

let ri_duplicates = 7

let ri_flags = 8

let ri_ooo_count = 9 (* population of the out-of-order bitset *)

let receiver_ints = 10

let rfl_pending_ece = 1 (* a CE-marked segment arrived; echo it *)

(* ------------------------------------------------------------------ *)
(* Aux sizing *)

let next_pow2 n =
  let rec go v = if v >= n then v else go (v * 2) in
  go 16

(* Live sequences span [snd_una, max_sent) <= adv_window + 2 (limited
   transmit); the +4 margin keeps direct-mapped [seq land mask]
   addressing collision-free. The receiver's out-of-order range obeys
   the same bound, so both sides share the sizing. *)
let seq_table_size ~adv_window = next_pow2 (adv_window + 4)

(* Bitsets pack 32 seqs per word: [1 lsl (i land 31)] never touches the
   OCaml int's sign bit. *)
let bitset_words n = (n + 31) / 32
