(** A trivial unreliable transport.

    UDP forwards each application packet to the network immediately, with
    no flow or congestion control — the paper's control case showing that
    aggregated Poisson traffic stays Poisson without TCP's modulation. *)

type sender

val create_sender :
  Sim_engine.Scheduler.t ->
  factory:Netsim.Packet.factory ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  transmit:(Netsim.Packet.t -> unit) ->
  sender

val write : sender -> int -> unit
(** Transmit [n] packets right now. *)

val sent : sender -> int

type receiver

val create_receiver : unit -> receiver

val handle_packet : receiver -> Netsim.Packet.t -> unit

val received : receiver -> int
