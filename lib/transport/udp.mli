(** A trivial unreliable transport.

    UDP forwards each application packet to the network immediately, with
    no flow or congestion control — the paper's control case showing that
    aggregated Poisson traffic stays Poisson without TCP's modulation. *)

type sender

val create_sender :
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  flow:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  transmit:(Netsim.Packet_pool.handle -> unit) ->
  sender

val write : sender -> int -> unit
(** Emit [n] datagrams immediately, sequence-numbered consecutively. *)

val sent : sender -> int

type receiver

val create_receiver : pool:Netsim.Packet_pool.t -> unit -> receiver

val handle_packet : receiver -> Netsim.Packet_pool.handle -> unit
(** Count an incoming datagram (non-UDP packets are ignored). The caller
    keeps ownership: the handle is read, never freed. *)

val received : receiver -> int
