(** The receiving half of a TCP connection.

    Reassembles segments, delivers them to the application in order, and
    generates cumulative ACKs — immediately for out-of-order or duplicate
    arrivals (producing the duplicate ACKs that drive fast retransmit), and
    either immediately or via the standard delayed-ACK rule (every second
    segment or a 200 ms timer) for in-order arrivals. The paper compares
    Reno with delayed ACKs on and off.

    Per-flow state is one int row of a struct-of-arrays
    {!Netsim.Flow_table} shared by a {!group} (see {!Tcp_sender} for the
    pattern); out-of-order buffering is a direct-mapped bitset over the
    reassembly window, so {!attach}ing a flow allocates nothing beyond
    its row. *)

type group
(** Shared state for a set of receiving flows with the same options. *)

type t
(** One flow: a group plus a generation-checked row handle. *)

val create_group :
  ?sack:bool ->
  ?recorder:Telemetry.Recorder.t ->
  ?capacity:int ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  ack_bytes:int ->
  delayed_ack:bool ->
  adv_window:int ->
  transmit:(flow:int -> Netsim.Packet_pool.handle -> unit) ->
  group
(** [sack] (default false) attaches RFC 2018 selective-acknowledgment
    blocks describing buffered out-of-order data to every ACK.
    [recorder] (lifecycle mode only) logs out-of-order buffering and
    duplicate discards to the flight recorder. [adv_window] sizes the
    reassembly window (it must match the senders' advertised window);
    a data segment beyond it raises [Invalid_argument]. [capacity]
    (default 16) pre-sizes the flow table.
    @raise Invalid_argument on [adv_window < 1]. *)

val attach : group -> flow:int -> src:int -> dst:int -> unit -> t
(** Claim a table row. [src] is the receiver's node (ACK source);
    [dst] the sender's. *)

val detach : t -> unit
(** Cancel the flow's delayed-ACK timer and release its row.
    @raise Invalid_argument if already detached. *)

val table : group -> Netsim.Flow_table.t
(** The group's flow table — live/leak accounting and bytes-per-flow. *)

val group : t -> group

val create :
  ?sack:bool ->
  ?recorder:Telemetry.Recorder.t ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  flow:int ->
  src:int ->
  dst:int ->
  ack_bytes:int ->
  delayed_ack:bool ->
  adv_window:int ->
  transmit:(Netsim.Packet_pool.handle -> unit) ->
  t
(** A single-flow group plus {!attach}: the one-connection view used by
    unit tests and small scenarios. *)

val handle_packet : t -> Netsim.Packet_pool.handle -> unit
(** Feed an incoming packet (TCP data; anything else is ignored). The
    caller keeps ownership: the handle is read, never freed. *)

val delivered : t -> int
(** Segments delivered to the application in order. *)

val expected : t -> int
(** Next in-order sequence number (= cumulative ACK value). *)

val acks_sent : t -> int

val duplicates_discarded : t -> int
(** Data segments received that were already delivered or buffered. *)
