(** The receiving half of a TCP connection.

    Reassembles segments, delivers them to the application in order, and
    generates cumulative ACKs — immediately for out-of-order or duplicate
    arrivals (producing the duplicate ACKs that drive fast retransmit), and
    either immediately or via the standard delayed-ACK rule (every second
    segment or a 200 ms timer) for in-order arrivals. The paper compares
    Reno with delayed ACKs on and off. *)

type t

val create :
  ?sack:bool ->
  ?recorder:Telemetry.Recorder.t ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  flow:int ->
  src:int ->
  dst:int ->
  ack_bytes:int ->
  delayed_ack:bool ->
  transmit:(Netsim.Packet_pool.handle -> unit) ->
  t
(** [src] is the receiver's node (ACK source); [dst] the sender's.
    [sack] (default false) attaches RFC 2018 selective-acknowledgment
    blocks describing buffered out-of-order data to every ACK.
    [recorder] (lifecycle mode only) logs out-of-order buffering and
    duplicate discards to the flight recorder. *)

val handle_packet : t -> Netsim.Packet_pool.handle -> unit
(** Feed an incoming packet (TCP data; anything else is ignored). The
    caller keeps ownership: the handle is read, never freed. *)

val delivered : t -> int
(** Segments delivered to the application in order. *)

val expected : t -> int
(** Next in-order sequence number (= cumulative ACK value). *)

val acks_sent : t -> int

val duplicates_discarded : t -> int
(** Data segments received that were already delivered or buffered. *)
