(** TCP Tahoe congestion control ([Jac88], pre-fast-recovery).

    Slow start and congestion avoidance with fast retransmit but no fast
    recovery: any loss indication (timeout or third duplicate ACK) sets
    [ssthresh] to half the flight and restarts slow start from [cwnd = 1]. *)

val handle : initial_ssthresh:float -> max_window:float -> Cc.handle
