(** Retransmission-timeout estimation (Jacobson/Karn).

    Maintains smoothed RTT and RTT variance from clean samples (Karn's rule:
    retransmitted segments are never sampled — enforced by the caller) and
    applies binary exponential backoff across successive timeouts. Samples
    are quantized to a clock granularity, as in BSD-derived stacks. *)

type params = {
  granularity : float;  (** timer tick, seconds (BSD: 0.5; ns: 0.1) *)
  min_rto : float;  (** lower bound, seconds *)
  max_rto : float;  (** upper bound, seconds *)
  initial_rto : float;  (** before the first sample *)
}

val default_params : params
(** granularity 0.1 s, min 1 s, max 64 s, initial 3 s. *)

type t

val create : params -> t

val observe : t -> float -> unit
(** Feed one clean RTT sample (seconds). Resets any backoff. *)

val observe_ns : t -> int -> unit
(** [observe] for a sample in integer nanoseconds — the hot-path entry:
    an immediate argument crosses the call unboxed, a float would not. *)

val rto : t -> float
(** Current timeout, including backoff, clamped to [\[min_rto, max_rto\]]. *)

val rto_ns : t -> int
(** [rto] in integer nanoseconds; equals [Time.to_ns (Time.of_sec (rto t))]
    without materialising the intermediate float. *)

val backoff : t -> unit
(** Doubles the timeout (cap at [max_rto]); call on each expiry. *)

val reset_backoff : t -> unit
(** Call when new data is acknowledged. *)

val srtt : t -> float option
(** Smoothed RTT, if any sample has been observed. *)

val rttvar : t -> float option

(** {2 Flow-table entry points}

    The same estimator run over a flow-table row's float region
    ([Flow_layout.f_srtt]/[f_rttvar]/[f_backoff] at base [fb]). The
    caller owns the have-sample bit (a flag in its int row): it passes
    [~first]/[~have_sample] and flips the flag itself after the first
    observation. Results are bit-identical to the standalone {!t}. *)

val init_at : float array -> int -> unit
(** Initialise a freshly-zeroed row (backoff multiplier 1). *)

val observe_ns_at : params -> float array -> int -> first:bool -> int -> unit
(** Feed one clean sample in integer nanoseconds; [first] means no
    sample has been observed yet. Resets any backoff.
    @raise Invalid_argument on a negative sample. *)

val rto_ns_at : params -> float array -> int -> have_sample:bool -> int
(** Current timeout in integer nanoseconds, including backoff. *)

val backoff_at : float array -> int -> unit

val reset_backoff_at : float array -> int -> unit
