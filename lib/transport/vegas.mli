(** TCP Vegas congestion control (Brakmo & Peterson 1995).

    Vegas estimates the number of its own packets queued in the network as
    [diff = cwnd * (1 - baseRTT/RTT)] once per RTT epoch and steers it into
    the band [\[alpha, beta\]]: linear increase below [alpha], linear
    decrease above [beta]. Slow start doubles only every other RTT and ends
    when [diff] exceeds [gamma]. Loss recovery is Reno-like but with a
    gentler (3/4) multiplicative decrease, and a timeout restarts from a
    window of 2. The paper uses [alpha = 1], [beta = 3], [gamma = 1]. *)

type params = Cc.vegas_params = {
  alpha : float;  (** lower queue-occupancy bound, packets *)
  beta : float;  (** upper queue-occupancy bound, packets *)
  gamma : float;  (** slow-start exit threshold, packets *)
}

val default_params : params
(** alpha 1, beta 3, gamma 1. *)

val handle : ?params:params -> initial_ssthresh:float -> max_window:float -> unit -> Cc.handle
