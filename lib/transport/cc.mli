(** The congestion-control seam between the TCP engine and its variants.

    The engine ({!Tcp}) owns segments, timers, ACK accounting and the
    recovery state machine; a [handle] owns [cwnd]/[ssthresh] policy and is
    poked on every relevant event. Variants (Tahoe, Reno, NewReno, Vegas)
    each provide a constructor returning a [handle] closed over their
    private state. Windows are in packets and may be fractional. *)

type ack_info = {
  mutable ack : int;  (** cumulative ACK: next expected sequence *)
  mutable newly_acked : int;  (** segments this ACK newly covers *)
  mutable rtt_ns : int;
      (** clean (Karn) RTT sample in integer nanoseconds; negative when
          this ACK carries no usable sample *)
  mutable flight_before : int;  (** outstanding segments before this ACK *)
}
(** Mutable and all-immediate on purpose: the engine keeps {e one}
    [ack_info] per connection and rewrites it for every ACK, so the
    per-ACK hot path allocates neither a record nor a boxed float.
    Variants must read the fields during the callback and copy what they
    need — the record is dead the moment the callback returns. *)

val make_ack_info : unit -> ack_info
(** A scratch [ack_info] (no sample, all counters zero). *)

type handle = {
  name : string;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  in_slow_start : unit -> bool;
  on_new_ack : ack_info -> unit;
      (** A cumulative ACK advancing the window, outside recovery. *)
  enter_recovery : flight:int -> now:float -> unit;
      (** Third duplicate ACK; the engine retransmits the head segment. *)
  dup_ack_inflate : unit -> unit;
      (** Each further duplicate ACK while in recovery. *)
  on_partial_ack : ack_info -> unit;
      (** In recovery, ACK advances but below the recovery point (only
          reached when [partial_ack_stays] is true). *)
  on_full_ack : ack_info -> unit;
      (** Recovery completes (deflate / resume normal growth). *)
  on_timeout : flight:int -> now:float -> unit;
  on_ecn : flight:int -> now:float -> unit;
      (** An ECN congestion-experienced echo arrived; reduce the window as
          for a loss, but nothing needs retransmitting. The engine rate-
          limits this to once per RTT. *)
  uses_fast_recovery : bool;
      (** False for Tahoe: after a fast retransmit the engine restarts from
          the ACK point in slow start rather than entering recovery. *)
  partial_ack_stays : bool;
      (** True for NewReno: partial ACKs retransmit the next hole and keep
          the connection in recovery until the recovery point is passed. *)
}

(** {2 Helpers shared by AIMD-family variants} *)

type window = { mutable cwnd : float; mutable ssthresh : float }
(** The AIMD pair shared by Tahoe/Reno/NewReno/SACK. All-float on
    purpose: the record is flat, so the per-ACK mutations store unboxed
    doubles ([float ref] cells would box on every assignment). *)

val window_in_slow_start : window -> bool
(** [cwnd < ssthresh] without boxing either float — use this (or an
    equivalent immediate-typed closure) to implement
    {!handle.in_slow_start}. *)

val slow_start_and_avoidance : window -> max_window:float -> int -> unit
(** Apply the standard per-ACK window growth for [newly_acked] segments:
    +1 per segment below ssthresh, +1/cwnd per segment above. *)

val halve_flight : flight:int -> float
(** [max (flight/2) 2] — the multiplicative-decrease target. *)
