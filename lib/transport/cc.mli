(** The congestion-control seam between the TCP engine and its variants.

    The engine ({!Tcp_sender}) owns segments, timers, ACK accounting and
    the recovery state machine; congestion policy owns [cwnd]/[ssthresh].
    Policy state lives in the float row of the flow table
    ({!Netsim.Flow_table}, laid out by {!Flow_layout}), and every
    operation below takes the float array plus the row's base offset —
    dispatching on an immediate {!variant} tag, so 10^5 flows share one
    policy implementation and zero closures. The classic closure
    {!handle} view survives as a shim over a private single-row array
    for standalone use (unit tests, one-off windows).

    Windows are in packets and may be fractional. *)

type ack_info = {
  mutable ack : int;  (** cumulative ACK: next expected sequence *)
  mutable newly_acked : int;  (** segments this ACK newly covers *)
  mutable rtt_ns : int;
      (** clean (Karn) RTT sample in integer nanoseconds; negative when
          this ACK carries no usable sample *)
  mutable flight_before : int;  (** outstanding segments before this ACK *)
}
(** Mutable and all-immediate on purpose: the engine keeps {e one}
    [ack_info] per sender group and rewrites it for every ACK, so the
    per-ACK hot path allocates neither a record nor a boxed float.
    Policies must read the fields during the callback and copy what they
    need — the record is dead the moment the callback returns. *)

val make_ack_info : unit -> ack_info
(** A scratch [ack_info] (no sample, all counters zero). *)

(** {2 Variants} *)

type variant = Reno | Newreno | Tahoe | Vegas | Sack

type vegas_params = { alpha : float; beta : float; gamma : float }
(** Vegas's queue-occupancy band and slow-start exit threshold,
    in packets. *)

val default_vegas : vegas_params
(** alpha 1, beta 3, gamma 1 (Brakmo & Peterson). *)

type ctx = { variant : variant; max_window : float; vp : vegas_params }
(** Per-group policy context: shared by every flow in a sender group. *)

val make_ctx : ?vegas:vegas_params -> max_window:float -> variant -> ctx
(** @raise Invalid_argument on a bad [alpha]/[beta]/[gamma]. *)

val name_of : variant -> string

val floats_per_flow : variant -> int
(** Float cells a row of this variant needs ({!Flow_layout.sender_floats}
    or {!Flow_layout.vegas_floats}). *)

val uses_fast_recovery : variant -> bool
(** False for Tahoe: after a fast retransmit the engine restarts from
    the ACK point in slow start rather than entering recovery. *)

val partial_ack_stays : variant -> bool
(** True for NewReno/SACK: partial ACKs keep the connection in recovery
    until the recovery point is passed. *)

(** {2 Table operations}

    All take the row's float array and base offset ([fs], [fb]) and
    mutate [cwnd]/[ssthresh]/variant state in place, allocation-free. *)

val init : ctx -> float array -> int -> initial_ssthresh:float -> unit
(** Initialise a freshly-zeroed row (cwnd 1, or 2 with base-RTT state
    for Vegas). *)

val cwnd : float array -> int -> float

val ssthresh : float array -> int -> float

val in_slow_start : float array -> int -> bool
(** [cwnd < ssthresh] without boxing either float. *)

val on_new_ack : ctx -> float array -> int -> ack_info -> unit
(** A cumulative ACK advancing the window, outside recovery. *)

val enter_recovery : ctx -> float array -> int -> flight:int -> now:float -> unit
(** Third duplicate ACK; the engine retransmits the head segment. *)

val dup_ack_inflate : ctx -> float array -> int -> unit
(** Each further duplicate ACK while in recovery. *)

val on_partial_ack : ctx -> float array -> int -> ack_info -> unit
(** In recovery, ACK advances but below the recovery point (only
    reached when {!partial_ack_stays} is true). *)

val on_full_ack : ctx -> float array -> int -> ack_info -> unit
(** Recovery completes (deflate / resume normal growth). *)

val on_timeout : ctx -> float array -> int -> flight:int -> now:float -> unit

val on_ecn : ctx -> float array -> int -> flight:int -> now:float -> unit
(** An ECN congestion-experienced echo arrived; reduce the window as
    for a loss, but nothing needs retransmitting. The engine rate-
    limits this to once per RTT. *)

(** {2 Closure handles}

    The pre-flow-table view: one heap record of closures over a private
    single-row float array, driven by exactly the table operations
    above. Constructed by the variant modules ({!Reno.handle} etc.). *)

type handle = {
  name : string;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  in_slow_start : unit -> bool;
  on_new_ack : ack_info -> unit;
  enter_recovery : flight:int -> now:float -> unit;
  dup_ack_inflate : unit -> unit;
  on_partial_ack : ack_info -> unit;
  on_full_ack : ack_info -> unit;
  on_timeout : flight:int -> now:float -> unit;
  on_ecn : flight:int -> now:float -> unit;
  uses_fast_recovery : bool;
  partial_ack_stays : bool;
}

val handle_of :
  ?vegas:vegas_params ->
  initial_ssthresh:float ->
  max_window:float ->
  variant ->
  handle

(** {2 Helpers shared by AIMD-family variants} *)

val halve_flight : flight:int -> float
(** [max (flight/2) 2] — the multiplicative-decrease target. *)

type window = { mutable cwnd : float; mutable ssthresh : float }
(** A standalone AIMD pair (flat all-float record), kept for tests that
    poke window arithmetic directly. *)

val window_in_slow_start : window -> bool

val slow_start_and_avoidance : window -> max_window:float -> int -> unit
(** Apply the standard per-ACK window growth for [newly_acked] segments:
    +1 per segment below ssthresh, +1/cwnd per segment above. *)
