(** The sending half of a TCP connection.

    Owns the send window, duplicate-ACK counting, fast-retransmit /
    fast-recovery state machine, retransmission timer (with Karn's rule)
    and go-back-N behaviour after a timeout — everything that is common to
    the congestion-control variants, which plug in as a {!Cc.variant}.

    Per-flow state lives in rows of a struct-of-arrays
    {!Netsim.Flow_table} shared by a {!group}: creating a group allocates
    the shared machinery (scheduler hooks, packet pool, CC context, two
    keyed timer callbacks) once, and {!attach}ing a flow claims one table
    row and allocates nothing else — which is what lets a single run
    carry 10^5 flows. A {!t} is a (group, generation-checked handle)
    pair; using one after {!detach} raises [Invalid_argument].

    The application submits segments with {!write} (1 segment = 1 MSS,
    matching the paper's one-packet-per-Poisson-arrival sources); segments
    queue in an unbounded send buffer until the window admits them, which
    is exactly the mechanism §3.2 blames for slow-start bursts. *)

type group
(** Shared state for a set of flows running the same variant and
    options over the same scheduler/pool. *)

type t
(** One flow: a group plus a generation-checked row handle. *)

val create_group :
  ?ecn_capable:bool ->
  ?sack:bool ->
  ?cwnd_validation:bool ->
  ?limited_transmit:bool ->
  ?pacing:bool ->
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?vegas:Cc.vegas_params ->
  ?initial_ssthresh:float ->
  ?max_window:float ->
  ?capacity:int ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  cc:Cc.variant ->
  rto_params:Rto.params ->
  mss_bytes:int ->
  adv_window:int ->
  transmit:(flow:int -> Netsim.Packet_pool.handle -> unit) ->
  group
(** [transmit ~flow p] injects a packet into the network (typically the
    flow's access link). [adv_window] is the receiver's static advertised
    window in packets; the effective window is [min cwnd adv_window].
    [initial_ssthresh] and [max_window] default to [float adv_window].
    [capacity] (default 16) pre-sizes the flow table; pass the run's flow
    count so attaching never doubles the slab.

    Options (all default false): [ecn_capable] flags outgoing segments as
    ECN-capable and makes senders honour ECE echoes (one window reduction
    per RTT, no retransmission). [sack] enables selective-repeat
    recovery: a scoreboard built from the receiver's SACK blocks decides
    which holes to retransmit, and sending during recovery is governed by
    the pipe estimate instead of window inflation (RFC 2018/3517,
    simplified) — pair with [cc:Cc.Sack]. [cwnd_validation] applies
    RFC 2861: the window only grows while it is actually the limiting
    factor. [limited_transmit] applies RFC 3042: the first two duplicate
    ACKs each release one new segment. [pacing] spreads new transmissions
    at srtt/cwnd intervals instead of ACK-clocked bursts
    (Aggarwal–Savage–Anderson); retransmissions are never paced.

    [bus] (default absent) publishes a [Tcp] event for every congestion
    decision: [Timeout], [Fast_retransmit] and [Ecn_reaction], each
    followed by a [Cwnd_cut] carrying the post-reaction window.
    @raise Invalid_argument on [adv_window < 1] or [mss_bytes < 1]. *)

val attach :
  group -> flow:int -> src:int -> dst:int -> ?trace_cwnd:bool -> unit -> t
(** Claim a table row for one flow. [trace_cwnd] (default false) records
    (time, cwnd) into {!cwnd_trace} at every window change — off unless a
    figure plots this sender, because the trace costs boxed floats per
    ACK. *)

val detach : t -> unit
(** Cancel the flow's timers and release its row; every [t] for this
    flow is stale afterwards. @raise Invalid_argument if already
    detached. *)

val table : group -> Netsim.Flow_table.t
(** The group's flow table — live/leak accounting and the bytes-per-flow
    figure the flows bench gates. *)

val group : t -> group

val create :
  ?ecn_capable:bool ->
  ?sack:bool ->
  ?cwnd_validation:bool ->
  ?limited_transmit:bool ->
  ?pacing:bool ->
  ?trace_cwnd:bool ->
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?vegas:Cc.vegas_params ->
  ?initial_ssthresh:float ->
  ?max_window:float ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  cc:Cc.variant ->
  rto_params:Rto.params ->
  flow:int ->
  src:int ->
  dst:int ->
  mss_bytes:int ->
  adv_window:int ->
  transmit:(Netsim.Packet_pool.handle -> unit) ->
  t
(** A single-flow group plus {!attach}: the one-connection view used by
    unit tests and small scenarios. *)

val write : t -> int -> unit
(** Submit [n] more segments from the application. *)

val handle_packet : t -> Netsim.Packet_pool.handle -> unit
(** Feed an incoming packet (ACKs; anything else is ignored). The
    caller keeps ownership: the handle is read, never freed. *)

val cwnd : t -> float
val ssthresh : t -> float

val flight : t -> int
(** Outstanding (sent but unacknowledged) segments. *)

val backlog : t -> int
(** Segments submitted by the application but not yet transmitted. *)

val snd_una : t -> int
(** Lowest unacknowledged sequence number. *)

val stats : t -> Tcp_stats.t
(** Materialised from the flow's counter cells — a fresh record per
    call, for cold reporting paths. *)

val cwnd_trace : t -> Netstats.Series.t
(** (time, cwnd) recorded at every window change — Figures 5–12.
    Empty unless the flow was attached with [trace_cwnd:true]. *)

val in_recovery : t -> bool

val cc_name : t -> string

val ecn_reactions : t -> int
(** How many times the sender reduced its window in response to ECE. *)
