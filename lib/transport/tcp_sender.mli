(** The sending half of a TCP connection.

    Owns the send window, duplicate-ACK counting, fast-retransmit /
    fast-recovery state machine, retransmission timer (with Karn's rule)
    and go-back-N behaviour after a timeout — everything that is common to
    the congestion-control variants, which plug in as a {!Cc.handle}.

    The application submits segments with {!write} (1 segment = 1 MSS,
    matching the paper's one-packet-per-Poisson-arrival sources); segments
    queue in an unbounded send buffer until the window admits them, which
    is exactly the mechanism §3.2 blames for slow-start bursts. *)

type t

val create :
  ?ecn_capable:bool ->
  ?sack:bool ->
  ?cwnd_validation:bool ->
  ?limited_transmit:bool ->
  ?pacing:bool ->
  ?trace_cwnd:bool ->
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  Sim_engine.Scheduler.t ->
  pool:Netsim.Packet_pool.t ->
  cc:Cc.handle ->
  rto_params:Rto.params ->
  flow:int ->
  src:int ->
  dst:int ->
  mss_bytes:int ->
  adv_window:int ->
  transmit:(Netsim.Packet_pool.handle -> unit) ->
  t
(** [transmit] injects a packet into the network (typically the access
    link). [adv_window] is the receiver's static advertised window in
    packets; the effective window is [min cwnd adv_window]. [ecn_capable]
    (default false) flags outgoing segments as ECN-capable and makes the
    sender honour ECE echoes (one window reduction per RTT, no
    retransmission). [sack] (default false) enables selective-repeat
    recovery: a scoreboard built from the receiver's SACK blocks decides
    which holes to retransmit, and sending during recovery is governed by
    the pipe estimate instead of window inflation (RFC 2018/3517,
    simplified). Pair with {!Sack_cc.handle}. [cwnd_validation] (default
    false) applies RFC 2861: the window only grows while it is actually
    the limiting factor, so application-limited flows do not accumulate
    unused window to burst with later. [limited_transmit] (default false)
    applies RFC 3042: the first two duplicate ACKs each release one new
    segment, improving loss recovery for small windows. [pacing] (default
    false) spreads new transmissions at srtt/cwnd intervals instead of
    ACK-clocked bursts (Aggarwal–Savage–Anderson TCP pacing);
    retransmissions are never paced. [trace_cwnd] (default false)
    records (time, cwnd) into {!cwnd_trace} at every window change —
    off unless a figure plots this sender, because the trace costs boxed
    floats per ACK. [bus] (default absent) publishes a
    [Tcp] event for every congestion decision: [Timeout],
    [Fast_retransmit] and [Ecn_reaction], each followed by a [Cwnd_cut]
    carrying the post-reaction window. *)

val write : t -> int -> unit
(** Submit [n] more segments from the application. *)

val handle_packet : t -> Netsim.Packet_pool.handle -> unit
(** Feed an incoming packet (ACKs; anything else is ignored). The
    caller keeps ownership: the handle is read, never freed. *)

val cwnd : t -> float
val ssthresh : t -> float

val flight : t -> int
(** Outstanding (sent but unacknowledged) segments. *)

val backlog : t -> int
(** Segments submitted by the application but not yet transmitted. *)

val snd_una : t -> int
(** Lowest unacknowledged sequence number. *)

val stats : t -> Tcp_stats.t

val cwnd_trace : t -> Netstats.Series.t
(** (time, cwnd) recorded at every window change — Figures 5–12.
    Empty unless the sender was created with [trace_cwnd:true]. *)

val in_recovery : t -> bool

val cc_name : t -> string

val ecn_reactions : t -> int
(** How many times the sender reduced its window in response to ECE. *)
