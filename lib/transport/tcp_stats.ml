type t = {
  mutable segments_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable dup_acks : int;
  mutable acks_received : int;
  mutable segments_acked : int;
}

let create () =
  {
    segments_sent = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    dup_acks = 0;
    acks_received = 0;
    segments_acked = 0;
  }

let timeout_dupack_ratio t =
  if t.dup_acks = 0 then 0. else float_of_int t.timeouts /. float_of_int t.dup_acks

let pp ppf t =
  Format.fprintf ppf
    "sent=%d rtx=%d timeouts=%d fast_rtx=%d dup_acks=%d acks=%d acked=%d"
    t.segments_sent t.retransmits t.timeouts t.fast_retransmits t.dup_acks
    t.acks_received t.segments_acked

let add a b =
  {
    segments_sent = a.segments_sent + b.segments_sent;
    retransmits = a.retransmits + b.retransmits;
    timeouts = a.timeouts + b.timeouts;
    fast_retransmits = a.fast_retransmits + b.fast_retransmits;
    dup_acks = a.dup_acks + b.dup_acks;
    acks_received = a.acks_received + b.acks_received;
    segments_acked = a.segments_acked + b.segments_acked;
  }
