module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Eq = Sim_engine.Event_queue
module Pool = Netsim.Packet_pool
module Ft = Netsim.Flow_table
module L = Flow_layout

(* All per-flow state lives in rows of a {!Netsim.Flow_table} (layout in
   {!Flow_layout}); a [group] holds everything the flows share — the
   scheduler, the packet pool, the CC/RTO parameters, the telemetry
   sinks, and exactly two keyed timer callbacks — so adding a flow
   allocates one table row and nothing else. A {!t} is a cheap
   (group, generation-checked handle) pair.

   The direct-mapped send-time cells are [lnot]-encoded when the segment
   was retransmitted: clean (non-negative) entries may be RTT-sampled
   (Karn's rule); [min_int] = empty. The SACK scoreboard (sequences the
   receiver reports holding, RFC 2018) and the retransmitted-in-recovery
   set (each hole resent once per recovery, RFC 3517-lite) are bitsets
   over the same [seq land mask] addressing. *)

type group = {
  sched : Scheduler.t;
  pool : Pool.t;
  table : Ft.t;
  ctx : Cc.ctx;
  name : string;
  uses_fast_recovery : bool;
  partial_ack_stays : bool;
  rto_p : Rto.params;
  initial_ssthresh : float;
  mss_bytes : int;
  adv_window : int;
  st_size : int;
  st_mask : int;
  sb_off : int; (* scoreboard bitset offset within the row *)
  rtx_off : int; (* retransmitted-in-recovery bitset offset *)
  row_ints : int;
  row_floats : int;
  ecn_capable : bool;
  sack_enabled : bool;
  cwnd_validation : bool;
  limited_transmit : bool;
  pacing : bool;
  bus : Telemetry.Event_bus.t option;
  rlane : Telemetry.Recorder.lane option;
  r_lifecycle : bool;
  transmit : flow:int -> Pool.handle -> unit;
  (* Rewritten in place for every ACK; see {!Cc.ack_info}. *)
  info : Cc.ack_info;
  (* Only flows a figure actually plots carry a trace; the shared empty
     series answers for everyone else. *)
  traces : (int, Netstats.Series.t) Hashtbl.t;
  empty_trace : Netstats.Series.t;
  (* The group's two preallocated timer actions, keyed by slot:
     re-arming per ACK must not build an option or a closure. *)
  mutable on_rto : int -> unit;
  mutable on_pace : int -> unit;
}

type t = { g : group; h : Ft.handle }

let nil_i = Eq.int_of_handle Scheduler.nil

let never_ns = Time.to_ns Time.never

let now_sec g = Time.to_sec (Scheduler.now g.sched)

(* ------------------------------------------------------------------ *)
(* Bitset cells: 32 seqs per word, [1 lsl (i land 31)] stays clear of
   the int's sign bit. *)

let bit_mem (iv : int array) base idx =
  iv.(base + (idx lsr 5)) land (1 lsl (idx land 31)) <> 0

(* Set; true when the bit was clear (population changed). *)
let bit_set (iv : int array) base idx =
  let w = base + (idx lsr 5) in
  let m = 1 lsl (idx land 31) in
  let old = iv.(w) in
  if old land m = 0 then begin
    iv.(w) <- old lor m;
    true
  end
  else false

(* Clear; true when the bit was set. *)
let bit_clear (iv : int array) base idx =
  let w = base + (idx lsr 5) in
  let m = 1 lsl (idx land 31) in
  let old = iv.(w) in
  if old land m <> 0 then begin
    iv.(w) <- old land lnot m;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Telemetry *)

(* The trace costs boxed floats per ACK, so it is recorded only for the
   clients a figure actually plots. *)
let record_cwnd g slot =
  let iv = Ft.ints g.table in
  if iv.((slot * g.row_ints) + L.si_flags) land L.fl_trace <> 0 then
    Netstats.Series.add
      (Hashtbl.find g.traces slot)
      (now_sec g)
      (Ft.floats g.table).((slot * g.row_floats) + L.f_cwnd)

(* Publish a congestion decision; [cwnd] is read after the reaction.
   [rkind] is the flight-recorder twin of [kind]: keeping both writes in
   one helper guarantees the binary stream and the bus agree on event
   order, which the byte-parity decode relies on. *)
let publish_tcp g slot kind rkind =
  let flow = (Ft.ints g.table).((slot * g.row_ints) + L.si_flow) in
  let fv = Ft.floats g.table in
  let fb = slot * g.row_floats in
  (match g.bus with
  | None -> ()
  | Some bus ->
      Telemetry.Event_bus.publish bus
        (Telemetry.Event_bus.Tcp
           { time = now_sec g; kind; flow; cwnd = fv.(fb + L.f_cwnd) }));
  match g.rlane with
  | None -> ()
  | Some lane ->
      let cwnd = fv.(fb + L.f_cwnd) in
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now g.sched))
        ~kind:rkind ~flow ~a:0
        ~b:(Telemetry.Record.float_hi cwnd)
        ~c:(Telemetry.Record.float_lo cwnd)
        ~sid:0 ~depth:0

(* Lifecycle phase spans. Recomputed per ACK while outside steady
   congestion avoidance, so every branch must stay allocation-free. *)
let compute_phase g slot =
  let flags = (Ft.ints g.table).((slot * g.row_ints) + L.si_flags) in
  if flags land L.fl_in_recovery <> 0 then Telemetry.Record.phase_recovery
  else if flags land L.fl_timed_out <> 0 then Telemetry.Record.phase_timeout
  else if Cc.in_slow_start (Ft.floats g.table) (slot * g.row_floats) then
    Telemetry.Record.phase_slow_start
  else Telemetry.Record.phase_cong_avoid

let note_phase g slot =
  match g.rlane with
  | Some lane when g.r_lifecycle ->
      let p = compute_phase g slot in
      let iv = Ft.ints g.table in
      let fi = (slot * g.row_ints) + L.si_flags in
      let prev = ((iv.(fi) lsr L.fl_phase_shift) land L.fl_phase_mask) - 1 in
      if p <> prev then begin
        iv.(fi) <-
          iv.(fi)
          land lnot (L.fl_phase_mask lsl L.fl_phase_shift)
          lor ((p + 1) lsl L.fl_phase_shift);
        let cwnd = (Ft.floats g.table).((slot * g.row_floats) + L.f_cwnd) in
        Telemetry.Recorder.record lane
          ~tick:(Time.to_ns (Scheduler.now g.sched))
          ~kind:Telemetry.Record.tcp_phase
          ~flow:iv.((slot * g.row_ints) + L.si_flow)
          ~a:p
          ~b:(Telemetry.Record.float_hi cwnd)
          ~c:(Telemetry.Record.float_lo cwnd)
          ~sid:0 ~depth:0
      end
  | _ -> ()

let record_rtt g slot rtt_ns =
  match g.rlane with
  | Some lane when g.r_lifecycle ->
      (* Integer payload only: this fires on every clean ACK and must
         not allocate. *)
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now g.sched))
        ~kind:Telemetry.Record.tcp_rtt
        ~flow:(Ft.ints g.table).((slot * g.row_ints) + L.si_flow)
        ~a:rtt_ns ~b:0 ~c:0 ~sid:0 ~depth:0
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Window accounting *)

let window g slot =
  let c = (Ft.floats g.table).((slot * g.row_floats) + L.f_cwnd) in
  let w = int_of_float c in
  let w = if w < g.adv_window then w else g.adv_window in
  if w < 1 then 1 else w

let gflight (iv : int array) b = iv.(b + L.si_next_seq) - iv.(b + L.si_snd_una)

let gbacklog (iv : int array) b =
  iv.(b + L.si_app_submitted) - iv.(b + L.si_next_seq)

(* Conservative estimate of data still in the network: outstanding minus
   what the receiver reports holding. *)
let gpipe (iv : int array) b = gflight iv b - iv.(b + L.si_sacked)

(* ------------------------------------------------------------------ *)
(* Timers and transmission *)

let cancel_rto g slot =
  let iv = Ft.ints g.table in
  let ti = (slot * g.row_ints) + L.si_rto_timer in
  if iv.(ti) <> nil_i then begin
    Scheduler.cancel g.sched (Eq.handle_of_int iv.(ti));
    iv.(ti) <- nil_i
  end

let cancel_pace g slot =
  let iv = Ft.ints g.table in
  let ti = (slot * g.row_ints) + L.si_pace_timer in
  if iv.(ti) <> nil_i then begin
    Scheduler.cancel g.sched (Eq.handle_of_int iv.(ti));
    iv.(ti) <- nil_i
  end

let rec arm_rto g slot =
  let iv = Ft.ints g.table in
  let ti = (slot * g.row_ints) + L.si_rto_timer in
  if iv.(ti) = nil_i then begin
    let have =
      iv.((slot * g.row_ints) + L.si_flags) land L.fl_have_rtt <> 0
    in
    let delay =
      Time.of_ns
        (Rto.rto_ns_at g.rto_p (Ft.floats g.table) (slot * g.row_floats)
           ~have_sample:have)
    in
    iv.(ti) <- Eq.int_of_handle (Scheduler.after_keyed g.sched delay g.on_rto slot)
  end

and restart_rto g slot =
  cancel_rto g slot;
  if gflight (Ft.ints g.table) (slot * g.row_ints) > 0 then arm_rto g slot

and send_segment g slot seq =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let is_retransmit = seq < iv.(b + L.si_max_sent) in
  let now = Scheduler.now g.sched in
  let p =
    Pool.alloc_data g.pool ~ecn_capable:g.ecn_capable ~flow:iv.(b + L.si_flow)
      ~src:iv.(b + L.si_src) ~dst:iv.(b + L.si_dst) ~size_bytes:g.mss_bytes
      ~sent_at:now ~seq ~is_retransmit ()
  in
  iv.(b + L.si_segments_sent) <- iv.(b + L.si_segments_sent) + 1;
  if is_retransmit then begin
    iv.(b + L.si_retransmits) <- iv.(b + L.si_retransmits) + 1;
    iv.(b + L.sender_ints + (seq land g.st_mask)) <- lnot (Time.to_ns now)
  end
  else begin
    iv.(b + L.sender_ints + (seq land g.st_mask)) <- Time.to_ns now;
    iv.(b + L.si_max_sent) <- seq + 1
  end;
  arm_rto g slot;
  g.transmit ~flow:iv.(b + L.si_flow) p

and try_send g slot = if g.pacing then pace_send g slot else burst_send g slot

and burst_send g slot =
  let b = slot * g.row_ints in
  let continue = ref true in
  while !continue do
    let iv = Ft.ints g.table in
    if gbacklog iv b > 0 && gflight iv b < window g slot then begin
      send_segment g slot iv.(b + L.si_next_seq);
      (Ft.ints g.table).(b + L.si_next_seq) <- iv.(b + L.si_next_seq) + 1
    end
    else continue := false
  done

(* Paced sending (Aggarwal, Savage & Anderson 2000): instead of releasing
   everything the window admits the instant an ACK arrives, new segments
   leave at intervals of srtt/cwnd, spreading each window over the round
   trip. Retransmissions bypass pacing. Before the first RTT sample the
   interval is zero and pacing degenerates to ACK clocking. *)
and pace_send g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  if iv.(b + L.si_pace_timer) = nil_i then begin
    if gbacklog iv b > 0 && gflight iv b < window g slot then begin
      let fv = Ft.floats g.table in
      let fb = slot * g.row_floats in
      let interval =
        if iv.(b + L.si_flags) land L.fl_have_rtt <> 0 then begin
          let c = fv.(fb + L.f_cwnd) in
          let c = if c > 1. then c else 1. in
          Time.of_sec (fv.(fb + L.f_srtt) /. c)
        end
        else Time.zero
      in
      let now = Scheduler.now g.sched in
      (* Compare in ticks, not re-derived float seconds: the armed
         timer fires at exactly [due], so the send below is taken. *)
      let due =
        if iv.(b + L.si_last_paced) = never_ns then now
        else Time.add (Time.of_ns iv.(b + L.si_last_paced)) interval
      in
      if Time.(due <= now) then begin
        iv.(b + L.si_last_paced) <- Time.to_ns now;
        send_segment g slot iv.(b + L.si_next_seq);
        (Ft.ints g.table).(b + L.si_next_seq) <- iv.(b + L.si_next_seq) + 1;
        pace_send g slot
      end
      else
        iv.(b + L.si_pace_timer) <-
          Eq.int_of_handle (Scheduler.at_keyed g.sched due g.on_pace slot)
    end
  end

(* During SACK recovery the window is governed by [pipe]: fill the lowest
   un-SACKed, not-yet-retransmitted holes first, then new data. A segment
   only counts as a hole when the receiver has SACKed something above it —
   segments above [high_sacked] may simply still be in flight. Returns
   [-1] when there is no hole (no option box on the recovery path). *)
and next_hole g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let rec scan seq =
    if seq >= iv.(b + L.si_max_sent) || seq > iv.(b + L.si_high_sacked) then -1
    else if
      bit_mem iv (b + g.sb_off) (seq land g.st_mask)
      || bit_mem iv (b + g.rtx_off) (seq land g.st_mask)
    then scan (seq + 1)
    else seq
  in
  scan iv.(b + L.si_snd_una)

and try_send_sack g slot =
  let b = slot * g.row_ints in
  let progress = ref true in
  while !progress && gpipe (Ft.ints g.table) b < window g slot do
    let hole = next_hole g slot in
    if hole >= 0 then begin
      ignore (bit_set (Ft.ints g.table) (b + g.rtx_off) (hole land g.st_mask));
      send_segment g slot hole
    end
    else begin
      let iv = Ft.ints g.table in
      if gbacklog iv b > 0 then begin
        send_segment g slot iv.(b + L.si_next_seq);
        (Ft.ints g.table).(b + L.si_next_seq) <- iv.(b + L.si_next_seq) + 1
      end
      else progress := false
    end
  done

and on_rto_fire g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  iv.(b + L.si_rto_timer) <- nil_i;
  if gflight iv b > 0 then begin
    let fv = Ft.floats g.table in
    let fb = slot * g.row_floats in
    iv.(b + L.si_timeouts) <- iv.(b + L.si_timeouts) + 1;
    Rto.backoff_at fv fb;
    Cc.on_timeout g.ctx fv fb ~flight:(gflight iv b) ~now:(now_sec g);
    publish_tcp g slot Telemetry.Event_bus.Timeout Telemetry.Record.tcp_timeout;
    publish_tcp g slot Telemetry.Event_bus.Cwnd_cut Telemetry.Record.tcp_cwnd_cut;
    iv.(b + L.si_flags) <-
      (iv.(b + L.si_flags) lor L.fl_timed_out) land lnot L.fl_in_recovery;
    iv.(b + L.si_dup_acks) <- 0;
    (* Pessimistic after a timeout: discard SACK state and go back. *)
    Array.fill iv (b + g.sb_off) (g.rtx_off - g.sb_off) 0;
    Array.fill iv (b + g.rtx_off) (g.rtx_off - g.sb_off) 0;
    iv.(b + L.si_sacked) <- 0;
    iv.(b + L.si_high_sacked) <- -1;
    (* Go-back-N: resend from the ACK point as the (now tiny) window
       allows; send_segment re-arms the timer with the backed-off RTO. *)
    iv.(b + L.si_next_seq) <- iv.(b + L.si_snd_una);
    try_send g slot;
    record_cwnd g slot;
    note_phase g slot
  end

(* Clean RTT sample for the segment [ack] covers, in integer ns;
   negative when the slot is empty or the segment was retransmitted. *)
let rtt_sample_ns g slot ack =
  let iv = Ft.ints g.table in
  let sent = iv.((slot * g.row_ints) + L.sender_ints + ((ack - 1) land g.st_mask)) in
  if sent >= 0 then Time.to_ns (Scheduler.now g.sched) - sent else -1

let forget_acked g slot ack =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  for seq = iv.(b + L.si_snd_una) to ack - 1 do
    iv.(b + L.sender_ints + (seq land g.st_mask)) <- min_int;
    if g.sack_enabled then begin
      if bit_clear iv (b + g.sb_off) (seq land g.st_mask) then
        iv.(b + L.si_sacked) <- iv.(b + L.si_sacked) - 1;
      ignore (bit_clear iv (b + g.rtx_off) (seq land g.st_mask))
    end
  done

let record_sack_blocks g slot blocks =
  if g.sack_enabled then begin
    let iv = Ft.ints g.table in
    let b = slot * g.row_ints in
    List.iter
      (fun (first, last) ->
        let lo = Stdlib.max first iv.(b + L.si_snd_una) in
        let hi = Stdlib.min last (iv.(b + L.si_max_sent)) - 1 in
        for seq = lo to hi do
          if bit_set iv (b + g.sb_off) (seq land g.st_mask) then
            iv.(b + L.si_sacked) <- iv.(b + L.si_sacked) + 1;
          if seq > iv.(b + L.si_high_sacked) then
            iv.(b + L.si_high_sacked) <- seq
        done)
      blocks
  end

let on_new_ack g slot ack =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let fv = Ft.floats g.table in
  let fb = slot * g.row_floats in
  let newly = ack - iv.(b + L.si_snd_una) in
  let flight_before = gflight iv b in
  (* RFC 2861 congestion-window validation: when the application (not the
     window) limited sending, do not grow a window that was never used.
     Reported as zero newly-acked segments so the AIMD rules stand still. *)
  let window_limited = flight_before >= window g slot in
  let growth_credit =
    if g.cwnd_validation && not window_limited then 0 else newly
  in
  let in_recovery = iv.(b + L.si_flags) land L.fl_in_recovery <> 0 in
  (* No sampling during recovery, even from never-retransmitted segments:
     their cumulative ACK was delayed by the hole in front of them, so the
     measurement reflects the loss episode, not the path (Karn's rule
     extended the way BSD's timed-segment scheme behaves in practice). *)
  let rtt_ns = if in_recovery then -1 else rtt_sample_ns g slot ack in
  if rtt_ns >= 0 then begin
    let first = iv.(b + L.si_flags) land L.fl_have_rtt = 0 in
    Rto.observe_ns_at g.rto_p fv fb ~first rtt_ns;
    if first then iv.(b + L.si_flags) <- iv.(b + L.si_flags) lor L.fl_have_rtt;
    record_rtt g slot rtt_ns
  end;
  iv.(b + L.si_flags) <- iv.(b + L.si_flags) land lnot L.fl_timed_out;
  forget_acked g slot ack;
  iv.(b + L.si_segments_acked) <- iv.(b + L.si_segments_acked) + newly;
  let info = g.info in
  info.Cc.ack <- ack;
  info.Cc.newly_acked <- growth_credit;
  info.Cc.rtt_ns <- rtt_ns;
  info.Cc.flight_before <- flight_before;
  iv.(b + L.si_snd_una) <- ack;
  if iv.(b + L.si_next_seq) < ack then iv.(b + L.si_next_seq) <- ack;
  if in_recovery then begin
    if ack > iv.(b + L.si_recover) then begin
      Cc.on_full_ack g.ctx fv fb info;
      iv.(b + L.si_flags) <- iv.(b + L.si_flags) land lnot L.fl_in_recovery;
      iv.(b + L.si_dup_acks) <- 0;
      Array.fill iv (b + g.rtx_off) (g.rtx_off - g.sb_off) 0
    end
    else if g.sack_enabled then begin
      Cc.on_partial_ack g.ctx fv fb info;
      (* The scoreboard decides what to resend; no blind head retransmit. *)
      try_send_sack g slot
    end
    else if g.partial_ack_stays then begin
      Cc.on_partial_ack g.ctx fv fb info;
      (* Retransmit the next hole immediately (NewReno). *)
      send_segment g slot iv.(b + L.si_snd_una)
    end
    else begin
      (* Classic Reno: any advancing ACK ends recovery. *)
      Cc.on_full_ack g.ctx fv fb info;
      iv.(b + L.si_flags) <- iv.(b + L.si_flags) land lnot L.fl_in_recovery;
      iv.(b + L.si_dup_acks) <- 0
    end
  end
  else begin
    Cc.on_new_ack g.ctx fv fb info;
    iv.(b + L.si_dup_acks) <- 0
  end;
  Rto.reset_backoff_at fv fb;
  restart_rto g slot;
  try_send g slot;
  record_cwnd g slot;
  (* In steady congestion avoidance an ACK cannot change the phase;
     everywhere else (slow start, recovery, post-timeout) it can. *)
  let prev =
    ((iv.(b + L.si_flags) lsr L.fl_phase_shift) land L.fl_phase_mask) - 1
  in
  if prev <> Telemetry.Record.phase_cong_avoid then note_phase g slot

let on_dup_ack g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let fv = Ft.floats g.table in
  let fb = slot * g.row_floats in
  iv.(b + L.si_dup_acks_stat) <- iv.(b + L.si_dup_acks_stat) + 1;
  if iv.(b + L.si_flags) land L.fl_in_recovery <> 0 then begin
    Cc.dup_ack_inflate g.ctx fv fb;
    if g.sack_enabled then try_send_sack g slot else try_send g slot
  end
  else begin
    iv.(b + L.si_dup_acks) <- iv.(b + L.si_dup_acks) + 1;
    (* RFC 3042 limited transmit: the first two duplicate ACKs release one
       new segment each (beyond cwnd by at most two), keeping enough data
       moving to reach the third duplicate instead of stalling into RTO. *)
    if
      g.limited_transmit
      && iv.(b + L.si_dup_acks) <= 2
      && gbacklog iv b > 0
      && gflight iv b < window g slot + 2
    then begin
      send_segment g slot iv.(b + L.si_next_seq);
      (Ft.ints g.table).(b + L.si_next_seq) <- iv.(b + L.si_next_seq) + 1
    end;
    if iv.(b + L.si_dup_acks) = 3 then begin
      iv.(b + L.si_fast_retransmits) <- iv.(b + L.si_fast_retransmits) + 1;
      Cc.enter_recovery g.ctx fv fb ~flight:(gflight iv b) ~now:(now_sec g);
      publish_tcp g slot Telemetry.Event_bus.Fast_retransmit
        Telemetry.Record.tcp_fast_retransmit;
      publish_tcp g slot Telemetry.Event_bus.Cwnd_cut
        Telemetry.Record.tcp_cwnd_cut;
      if g.uses_fast_recovery then begin
        iv.(b + L.si_flags) <- iv.(b + L.si_flags) lor L.fl_in_recovery;
        iv.(b + L.si_recover) <- iv.(b + L.si_max_sent) - 1
      end
      else
        (* Tahoe: restart from the ACK point in slow start. *)
        iv.(b + L.si_next_seq) <- iv.(b + L.si_snd_una) + 1;
      if g.sack_enabled then begin
        Array.fill iv (b + g.rtx_off) (g.rtx_off - g.sb_off) 0;
        (* The first retransmission is unconditional (RFC 6675 S5 step 4.1):
           pipe usually still exceeds the halved window here. *)
        let hole = next_hole g slot in
        let first = if hole >= 0 then hole else iv.(b + L.si_snd_una) in
        ignore (bit_set iv (b + g.rtx_off) (first land g.st_mask));
        send_segment g slot first;
        try_send_sack g slot
      end
      else begin
        send_segment g slot iv.(b + L.si_snd_una);
        try_send g slot
      end;
      restart_rto g slot;
      note_phase g slot
    end
  end;
  record_cwnd g slot

(* React to an ECE echo at most once per RTT: halving repeatedly within
   one window's feedback would over-correct (RFC 3168 §6.1.2 semantics). *)
let on_ece g slot =
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  let fv = Ft.floats g.table in
  let fb = slot * g.row_floats in
  let now = now_sec g in
  if
    now >= fv.(fb + L.f_ecn_holdoff)
    && gflight iv b > 0
    && iv.(b + L.si_flags) land L.fl_in_recovery = 0
  then begin
    iv.(b + L.si_ecn_reactions) <- iv.(b + L.si_ecn_reactions) + 1;
    Cc.on_ecn g.ctx fv fb ~flight:(gflight iv b) ~now;
    publish_tcp g slot Telemetry.Event_bus.Ecn_reaction
      Telemetry.Record.tcp_ecn_reaction;
    publish_tcp g slot Telemetry.Event_bus.Cwnd_cut
      Telemetry.Record.tcp_cwnd_cut;
    let rtt =
      if iv.(b + L.si_flags) land L.fl_have_rtt <> 0 then fv.(fb + L.f_srtt)
      else 1.0
    in
    fv.(fb + L.f_ecn_holdoff) <- now +. rtt;
    record_cwnd g slot;
    note_phase g slot
  end

let handle_packet_slot g slot h =
  match Pool.kind g.pool h with
  | Pool.Tcp_ack ->
      let iv = Ft.ints g.table in
      let b = slot * g.row_ints in
      iv.(b + L.si_acks_received) <- iv.(b + L.si_acks_received) + 1;
      if g.sack_enabled then record_sack_blocks g slot (Pool.sack g.pool h);
      if Pool.ece g.pool h then on_ece g slot;
      let ack = Pool.ack g.pool h in
      let iv = Ft.ints g.table in
      if ack > iv.(b + L.si_snd_una) then on_new_ack g slot ack
      else if ack = iv.(b + L.si_snd_una) && gflight iv b > 0 then
        on_dup_ack g slot
  | Pool.Tcp_data | Pool.Udp_data -> ()

(* ------------------------------------------------------------------ *)
(* Group lifecycle *)

let create_group ?(ecn_capable = false) ?(sack = false)
    ?(cwnd_validation = false) ?(limited_transmit = false) ?(pacing = false)
    ?bus ?recorder ?vegas ?initial_ssthresh ?max_window ?(capacity = 16) sched
    ~pool ~cc ~rto_params ~mss_bytes ~adv_window ~transmit =
  if adv_window < 1 then invalid_arg "Tcp_sender.create_group: adv_window < 1";
  if mss_bytes < 1 then invalid_arg "Tcp_sender.create_group: mss_bytes < 1";
  let max_window =
    match max_window with Some w -> w | None -> float_of_int adv_window
  in
  let initial_ssthresh =
    match initial_ssthresh with Some s -> s | None -> float_of_int adv_window
  in
  let ctx = Cc.make_ctx ?vegas ~max_window cc in
  let rlane = Option.map (fun r -> Telemetry.Recorder.lane r 0) recorder in
  let r_lifecycle =
    match recorder with
    | Some r -> Telemetry.Recorder.lifecycle r
    | None -> false
  in
  let st_size = L.seq_table_size ~adv_window in
  let sb_words = L.bitset_words st_size in
  let sb_off = L.sender_ints + st_size in
  let rtx_off = sb_off + sb_words in
  let row_ints = rtx_off + sb_words in
  let row_floats = Cc.floats_per_flow cc in
  let g =
    {
      sched;
      pool;
      table = Ft.create ~capacity ~ints_per_flow:row_ints
          ~floats_per_flow:row_floats ();
      ctx;
      name = Cc.name_of cc;
      uses_fast_recovery = Cc.uses_fast_recovery cc;
      partial_ack_stays = Cc.partial_ack_stays cc;
      rto_p = rto_params;
      initial_ssthresh;
      mss_bytes;
      adv_window;
      st_size;
      st_mask = st_size - 1;
      sb_off;
      rtx_off;
      row_ints;
      row_floats;
      ecn_capable;
      sack_enabled = sack;
      cwnd_validation;
      limited_transmit;
      pacing;
      bus;
      rlane;
      r_lifecycle;
      transmit;
      info = Cc.make_ack_info ();
      traces = Hashtbl.create 4;
      empty_trace = Netstats.Series.create ();
      on_rto = ignore;
      on_pace = ignore;
    }
  in
  g.on_rto <- (fun slot -> on_rto_fire g slot);
  g.on_pace <-
    (fun slot ->
      (Ft.ints g.table).((slot * g.row_ints) + L.si_pace_timer) <- nil_i;
      pace_send g slot);
  g

let attach g ~flow ~src ~dst ?(trace_cwnd = false) () =
  let h = Ft.alloc g.table in
  let slot = Ft.slot_of g.table h in
  let iv = Ft.ints g.table in
  let b = slot * g.row_ints in
  iv.(b + L.si_flow) <- flow;
  iv.(b + L.si_src) <- src;
  iv.(b + L.si_dst) <- dst;
  iv.(b + L.si_high_sacked) <- -1;
  iv.(b + L.si_last_paced) <- never_ns;
  iv.(b + L.si_rto_timer) <- nil_i;
  iv.(b + L.si_pace_timer) <- nil_i;
  Array.fill iv (b + L.sender_ints) g.st_size min_int;
  let fv = Ft.floats g.table in
  let fb = slot * g.row_floats in
  Cc.init g.ctx fv fb ~initial_ssthresh:g.initial_ssthresh;
  Rto.init_at fv fb;
  if trace_cwnd then begin
    iv.(b + L.si_flags) <- iv.(b + L.si_flags) lor L.fl_trace;
    Hashtbl.replace g.traces slot (Netstats.Series.create ())
  end;
  record_cwnd g slot;
  note_phase g slot;
  { g; h }

let detach t =
  let slot = Ft.slot_of t.g.table t.h in
  cancel_rto t.g slot;
  cancel_pace t.g slot;
  let iv = Ft.ints t.g.table in
  if iv.((slot * t.g.row_ints) + L.si_flags) land L.fl_trace <> 0 then
    Hashtbl.remove t.g.traces slot;
  Ft.free t.g.table t.h

let table g = g.table

let group t = t.g

(* ------------------------------------------------------------------ *)
(* Single-flow view *)

let create ?(ecn_capable = false) ?(sack = false) ?(cwnd_validation = false)
    ?(limited_transmit = false) ?(pacing = false) ?(trace_cwnd = false) ?bus
    ?recorder ?vegas ?initial_ssthresh ?max_window sched ~pool ~cc ~rto_params
    ~flow ~src ~dst ~mss_bytes ~adv_window ~transmit =
  let g =
    create_group ~ecn_capable ~sack ~cwnd_validation ~limited_transmit ~pacing
      ?bus ?recorder ?vegas ?initial_ssthresh ?max_window ~capacity:1 sched
      ~pool ~cc ~rto_params ~mss_bytes ~adv_window
      ~transmit:(fun ~flow:_ p -> transmit p)
  in
  attach g ~flow ~src ~dst ~trace_cwnd ()

let slot t = Ft.slot_of t.g.table t.h

let write t n =
  if n < 0 then invalid_arg "Tcp_sender.write: negative count";
  let s = slot t in
  let iv = Ft.ints t.g.table in
  let i = (s * t.g.row_ints) + L.si_app_submitted in
  iv.(i) <- iv.(i) + n;
  try_send t.g s

let handle_packet t h = handle_packet_slot t.g (slot t) h

let cwnd t = (Ft.floats t.g.table).((slot t * t.g.row_floats) + L.f_cwnd)

let ssthresh t = (Ft.floats t.g.table).((slot t * t.g.row_floats) + L.f_ssthresh)

let flight t = gflight (Ft.ints t.g.table) (slot t * t.g.row_ints)

let backlog t = gbacklog (Ft.ints t.g.table) (slot t * t.g.row_ints)

let snd_una t = (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.si_snd_una)

(* Materialised from the row's counter cells; one small record per call,
   only on cold reporting paths. *)
let stats t =
  let iv = Ft.ints t.g.table in
  let b = slot t * t.g.row_ints in
  {
    Tcp_stats.segments_sent = iv.(b + L.si_segments_sent);
    retransmits = iv.(b + L.si_retransmits);
    timeouts = iv.(b + L.si_timeouts);
    fast_retransmits = iv.(b + L.si_fast_retransmits);
    dup_acks = iv.(b + L.si_dup_acks_stat);
    acks_received = iv.(b + L.si_acks_received);
    segments_acked = iv.(b + L.si_segments_acked);
  }

let cwnd_trace t =
  let s = slot t in
  if
    (Ft.ints t.g.table).((s * t.g.row_ints) + L.si_flags) land L.fl_trace <> 0
  then Hashtbl.find t.g.traces s
  else t.g.empty_trace

let in_recovery t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.si_flags)
  land L.fl_in_recovery
  <> 0

let cc_name t = t.g.name

let ecn_reactions t =
  (Ft.ints t.g.table).((slot t * t.g.row_ints) + L.si_ecn_reactions)
