module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Pool = Netsim.Packet_pool

type t = {
  sched : Scheduler.t;
  pool : Pool.t;
  cc : Cc.handle;
  rto : Rto.t;
  flow : int;
  src : int;
  dst : int;
  mss_bytes : int;
  adv_window : int;
  ecn_capable : bool;
  sack_enabled : bool;
  cwnd_validation : bool;
  limited_transmit : bool;
  pacing : bool;
  trace_cwnd : bool;
  bus : Telemetry.Event_bus.t option;
  rlane : Telemetry.Recorder.lane option;
  r_lifecycle : bool;
  transmit : Pool.handle -> unit;
  stats : Tcp_stats.t;
  cwnd_trace : Netstats.Series.t;
  (* seq -> send time in ticks, [lnot]-encoded when the segment was
     retransmitted: clean (non-negative) entries may be RTT-sampled
     (Karn's rule). Live sequences span at most [adv_window + 2]
     (limited transmit), a sliding window — so a direct-mapped array
     indexed by [seq land st_mask] is collision-free and replaces the
     Hashtbl (one cons per segment) with two stores. [min_int] = empty. *)
  send_times : int array;
  st_mask : int;
  (* SACK scoreboard: sequences the receiver reports holding (RFC 2018),
     and sequences already retransmitted in the current recovery so each
     hole is resent once per recovery (RFC 3517-lite). *)
  scoreboard : (int, unit) Hashtbl.t;
  rtx_in_recovery : (int, unit) Hashtbl.t;
  (* Rewritten in place for every ACK; see {!Cc.ack_info}. *)
  info : Cc.ack_info;
  mutable high_sacked : int; (* highest sequence the receiver has SACKed *)
  mutable app_submitted : int;
  mutable next_seq : int; (* next new segment to put on the wire *)
  mutable max_sent : int; (* 1 + highest sequence ever transmitted *)
  mutable snd_una : int; (* lowest unacknowledged sequence *)
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int; (* highest seq outstanding when recovery began *)
  (* Timer handles use [Scheduler.nil] for "unarmed" and the actions are
     preallocated below: re-arming per ACK must not build an option or a
     closure. *)
  mutable rto_timer : Scheduler.handle;
  mutable on_rto : unit -> unit;
  mutable ecn_holdoff_until : float; (* react to ECE at most once per RTT *)
  mutable ecn_reactions : int;
  mutable pace_timer : Scheduler.handle;
  mutable on_pace : unit -> unit;
  mutable last_paced_send : Time.t; (* [Time.never] until the first paced send *)
  (* Flight-recorder phase tracking: the last recorded congestion phase
     (-1 = none yet) and whether the flow sits in the post-timeout hole
     (set on RTO fire, cleared by the next advancing ACK). *)
  mutable phase : int;
  mutable timed_out : bool;
}

let now_sec t = Time.to_sec (Scheduler.now t.sched)

(* The trace costs boxed floats per ACK, so it is recorded only for the
   clients a figure actually plots. *)
let record_cwnd t =
  if t.trace_cwnd then
    Netstats.Series.add t.cwnd_trace (now_sec t) (t.cc.Cc.cwnd ())

(* Publish a congestion decision; [cwnd] is read after the reaction.
   [rkind] is the flight-recorder twin of [kind]: keeping both writes in
   one helper guarantees the binary stream and the bus agree on event
   order, which the byte-parity decode relies on. *)
let publish_tcp t kind rkind =
  (match t.bus with
  | None -> ()
  | Some bus ->
      Telemetry.Event_bus.publish bus
        (Telemetry.Event_bus.Tcp
           { time = now_sec t; kind; flow = t.flow; cwnd = t.cc.Cc.cwnd () }));
  match t.rlane with
  | None -> ()
  | Some lane ->
      let cwnd = t.cc.Cc.cwnd () in
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now t.sched))
        ~kind:rkind ~flow:t.flow ~a:0
        ~b:(Telemetry.Record.float_hi cwnd)
        ~c:(Telemetry.Record.float_lo cwnd)
        ~sid:0 ~depth:0

(* Lifecycle phase spans. Recomputed per ACK while outside steady
   congestion avoidance, so every branch must stay allocation-free —
   [in_slow_start] is the CC's immediate-typed query, not the boxed
   [cwnd]/[ssthresh] closures. *)
let compute_phase t =
  if t.in_recovery then Telemetry.Record.phase_recovery
  else if t.timed_out then Telemetry.Record.phase_timeout
  else if t.cc.Cc.in_slow_start () then Telemetry.Record.phase_slow_start
  else Telemetry.Record.phase_cong_avoid

let note_phase t =
  match t.rlane with
  | Some lane when t.r_lifecycle ->
      let p = compute_phase t in
      if p <> t.phase then begin
        t.phase <- p;
        let cwnd = t.cc.Cc.cwnd () in
        Telemetry.Recorder.record lane
          ~tick:(Time.to_ns (Scheduler.now t.sched))
          ~kind:Telemetry.Record.tcp_phase ~flow:t.flow ~a:p
          ~b:(Telemetry.Record.float_hi cwnd)
          ~c:(Telemetry.Record.float_lo cwnd)
          ~sid:0 ~depth:0
      end
  | _ -> ()

let record_rtt t rtt_ns =
  match t.rlane with
  | Some lane when t.r_lifecycle ->
      (* Integer payload only: this fires on every clean ACK and must
         not allocate. *)
      Telemetry.Recorder.record lane
        ~tick:(Time.to_ns (Scheduler.now t.sched))
        ~kind:Telemetry.Record.tcp_rtt ~flow:t.flow ~a:rtt_ns ~b:0 ~c:0 ~sid:0
        ~depth:0
  | _ -> ()

let window t =
  Stdlib.max 1 (Stdlib.min (int_of_float (t.cc.Cc.cwnd ())) t.adv_window)

let flight t = t.next_seq - t.snd_una

let backlog t = t.app_submitted - t.next_seq

(* Conservative estimate of data still in the network: outstanding minus
   what the receiver reports holding. *)
let pipe t = flight t - Hashtbl.length t.scoreboard

let cancel_rto t =
  if not (Scheduler.is_nil t.rto_timer) then begin
    Scheduler.cancel t.sched t.rto_timer;
    t.rto_timer <- Scheduler.nil
  end

let rec arm_rto t =
  if Scheduler.is_nil t.rto_timer then begin
    let delay = Time.of_ns (Rto.rto_ns t.rto) in
    t.rto_timer <- Scheduler.after t.sched delay t.on_rto
  end

and restart_rto t =
  cancel_rto t;
  if flight t > 0 then arm_rto t

and send_segment t seq =
  let is_retransmit = seq < t.max_sent in
  let now = Scheduler.now t.sched in
  let p =
    Pool.alloc_data t.pool ~ecn_capable:t.ecn_capable ~flow:t.flow ~src:t.src
      ~dst:t.dst ~size_bytes:t.mss_bytes ~sent_at:now ~seq ~is_retransmit ()
  in
  t.stats.Tcp_stats.segments_sent <- t.stats.Tcp_stats.segments_sent + 1;
  if is_retransmit then begin
    t.stats.Tcp_stats.retransmits <- t.stats.Tcp_stats.retransmits + 1;
    t.send_times.(seq land t.st_mask) <- lnot (Time.to_ns now)
  end
  else begin
    t.send_times.(seq land t.st_mask) <- Time.to_ns now;
    t.max_sent <- seq + 1
  end;
  arm_rto t;
  t.transmit p

and try_send t = if t.pacing then pace_send t else burst_send t

and burst_send t =
  while backlog t > 0 && flight t < window t do
    send_segment t t.next_seq;
    t.next_seq <- t.next_seq + 1
  done

(* Paced sending (Aggarwal, Savage & Anderson 2000): instead of releasing
   everything the window admits the instant an ACK arrives, new segments
   leave at intervals of srtt/cwnd, spreading each window over the round
   trip. Retransmissions bypass pacing. Before the first RTT sample the
   interval is zero and pacing degenerates to ACK clocking. *)
and pace_send t =
  if Scheduler.is_nil t.pace_timer then begin
    if backlog t > 0 && flight t < window t then begin
      let interval =
        match Rto.srtt t.rto with
        | Some srtt -> Time.of_sec (srtt /. Stdlib.max 1. (t.cc.Cc.cwnd ()))
        | None -> Time.zero
      in
      let now = Scheduler.now t.sched in
      (* Compare in ticks, not re-derived float seconds: the armed
         timer fires at exactly [due], so the send below is taken. *)
      let due =
        if Time.compare t.last_paced_send Time.never = 0 then now
        else Time.add t.last_paced_send interval
      in
      if Time.(due <= now) then begin
        t.last_paced_send <- now;
        send_segment t t.next_seq;
        t.next_seq <- t.next_seq + 1;
        pace_send t
      end
      else t.pace_timer <- Scheduler.at t.sched due t.on_pace
    end
  end

(* During SACK recovery the window is governed by [pipe]: fill the lowest
   un-SACKed, not-yet-retransmitted holes first, then new data. A segment
   only counts as a hole when the receiver has SACKed something above it —
   segments above [high_sacked] may simply still be in flight. *)
and next_hole t =
  let rec scan seq =
    if seq >= t.max_sent || seq > t.high_sacked then None
    else if Hashtbl.mem t.scoreboard seq || Hashtbl.mem t.rtx_in_recovery seq then
      scan (seq + 1)
    else Some seq
  in
  scan t.snd_una

and try_send_sack t =
  let progress = ref true in
  while !progress && pipe t < window t do
    match next_hole t with
    | Some seq ->
        Hashtbl.replace t.rtx_in_recovery seq ();
        send_segment t seq
    | None ->
        if backlog t > 0 then begin
          send_segment t t.next_seq;
          t.next_seq <- t.next_seq + 1
        end
        else progress := false
  done

and on_rto_fire t =
  t.rto_timer <- Scheduler.nil;
  if flight t > 0 then begin
    t.stats.Tcp_stats.timeouts <- t.stats.Tcp_stats.timeouts + 1;
    Rto.backoff t.rto;
    t.cc.Cc.on_timeout ~flight:(flight t) ~now:(now_sec t);
    publish_tcp t Telemetry.Event_bus.Timeout Telemetry.Record.tcp_timeout;
    publish_tcp t Telemetry.Event_bus.Cwnd_cut Telemetry.Record.tcp_cwnd_cut;
    t.timed_out <- true;
    t.dup_acks <- 0;
    t.in_recovery <- false;
    (* Pessimistic after a timeout: discard SACK state and go back. *)
    Hashtbl.reset t.scoreboard;
    Hashtbl.reset t.rtx_in_recovery;
    t.high_sacked <- -1;
    (* Go-back-N: resend from the ACK point as the (now tiny) window
       allows; send_segment re-arms the timer with the backed-off RTO. *)
    t.next_seq <- t.snd_una;
    try_send t;
    record_cwnd t;
    note_phase t
  end

(* Clean RTT sample for the segment [ack] covers, in integer ns;
   negative when the slot is empty or the segment was retransmitted. *)
let rtt_sample_ns t ack =
  let sent = t.send_times.((ack - 1) land t.st_mask) in
  if sent >= 0 then Time.to_ns (Scheduler.now t.sched) - sent else -1

let forget_acked t ack =
  for seq = t.snd_una to ack - 1 do
    t.send_times.(seq land t.st_mask) <- min_int;
    if t.sack_enabled then begin
      Hashtbl.remove t.scoreboard seq;
      Hashtbl.remove t.rtx_in_recovery seq
    end
  done

let record_sack_blocks t blocks =
  if t.sack_enabled then
    List.iter
      (fun (first, last) ->
        for seq = Stdlib.max first t.snd_una to Stdlib.min last t.max_sent - 1 do
          Hashtbl.replace t.scoreboard seq ();
          if seq > t.high_sacked then t.high_sacked <- seq
        done)
      blocks

let on_new_ack t ack =
  let newly = ack - t.snd_una in
  let flight_before = flight t in
  (* RFC 2861 congestion-window validation: when the application (not the
     window) limited sending, do not grow a window that was never used.
     Reported as zero newly-acked segments so the AIMD rules stand still. *)
  let window_limited = flight_before >= window t in
  let growth_credit =
    if t.cwnd_validation && not window_limited then 0 else newly
  in
  (* No sampling during recovery, even from never-retransmitted segments:
     their cumulative ACK was delayed by the hole in front of them, so the
     measurement reflects the loss episode, not the path (Karn's rule
     extended the way BSD's timed-segment scheme behaves in practice). *)
  let rtt_ns = if t.in_recovery then -1 else rtt_sample_ns t ack in
  if rtt_ns >= 0 then begin
    Rto.observe_ns t.rto rtt_ns;
    record_rtt t rtt_ns
  end;
  t.timed_out <- false;
  forget_acked t ack;
  t.stats.Tcp_stats.segments_acked <- t.stats.Tcp_stats.segments_acked + newly;
  let info = t.info in
  info.Cc.ack <- ack;
  info.Cc.newly_acked <- growth_credit;
  info.Cc.rtt_ns <- rtt_ns;
  info.Cc.flight_before <- flight_before;
  t.snd_una <- ack;
  if t.next_seq < t.snd_una then t.next_seq <- t.snd_una;
  if t.in_recovery then begin
    if ack > t.recover then begin
      t.cc.Cc.on_full_ack info;
      t.in_recovery <- false;
      t.dup_acks <- 0;
      Hashtbl.reset t.rtx_in_recovery
    end
    else if t.sack_enabled then begin
      t.cc.Cc.on_partial_ack info;
      (* The scoreboard decides what to resend; no blind head retransmit. *)
      try_send_sack t
    end
    else if t.cc.Cc.partial_ack_stays then begin
      t.cc.Cc.on_partial_ack info;
      (* Retransmit the next hole immediately (NewReno). *)
      send_segment t t.snd_una
    end
    else begin
      (* Classic Reno: any advancing ACK ends recovery. *)
      t.cc.Cc.on_full_ack info;
      t.in_recovery <- false;
      t.dup_acks <- 0
    end
  end
  else begin
    t.cc.Cc.on_new_ack info;
    t.dup_acks <- 0
  end;
  Rto.reset_backoff t.rto;
  restart_rto t;
  try_send t;
  record_cwnd t;
  (* In steady congestion avoidance an ACK cannot change the phase;
     everywhere else (slow start, recovery, post-timeout) it can. *)
  if t.phase <> Telemetry.Record.phase_cong_avoid then note_phase t

let on_dup_ack t =
  t.stats.Tcp_stats.dup_acks <- t.stats.Tcp_stats.dup_acks + 1;
  if t.in_recovery then begin
    t.cc.Cc.dup_ack_inflate ();
    if t.sack_enabled then try_send_sack t else try_send t
  end
  else begin
    t.dup_acks <- t.dup_acks + 1;
    (* RFC 3042 limited transmit: the first two duplicate ACKs release one
       new segment each (beyond cwnd by at most two), keeping enough data
       moving to reach the third duplicate instead of stalling into RTO. *)
    if
      t.limited_transmit && t.dup_acks <= 2 && backlog t > 0
      && flight t < window t + 2
    then begin
      send_segment t t.next_seq;
      t.next_seq <- t.next_seq + 1
    end;
    if t.dup_acks = 3 then begin
      t.stats.Tcp_stats.fast_retransmits <- t.stats.Tcp_stats.fast_retransmits + 1;
      t.cc.Cc.enter_recovery ~flight:(flight t) ~now:(now_sec t);
      publish_tcp t Telemetry.Event_bus.Fast_retransmit
        Telemetry.Record.tcp_fast_retransmit;
      publish_tcp t Telemetry.Event_bus.Cwnd_cut Telemetry.Record.tcp_cwnd_cut;
      if t.cc.Cc.uses_fast_recovery then begin
        t.in_recovery <- true;
        t.recover <- t.max_sent - 1
      end
      else
        (* Tahoe: restart from the ACK point in slow start. *)
        t.next_seq <- t.snd_una + 1;
      if t.sack_enabled then begin
        Hashtbl.reset t.rtx_in_recovery;
        (* The first retransmission is unconditional (RFC 6675 S5 step 4.1):
           pipe usually still exceeds the halved window here. *)
        let first = Option.value (next_hole t) ~default:t.snd_una in
        Hashtbl.replace t.rtx_in_recovery first ();
        send_segment t first;
        try_send_sack t
      end
      else begin
        send_segment t t.snd_una;
        try_send t
      end;
      restart_rto t;
      note_phase t
    end
  end;
  record_cwnd t

(* React to an ECE echo at most once per RTT: halving repeatedly within
   one window's feedback would over-correct (RFC 3168 §6.1.2 semantics). *)
let on_ece t =
  let now = now_sec t in
  if now >= t.ecn_holdoff_until && flight t > 0 && not t.in_recovery then begin
    t.ecn_reactions <- t.ecn_reactions + 1;
    t.cc.Cc.on_ecn ~flight:(flight t) ~now;
    publish_tcp t Telemetry.Event_bus.Ecn_reaction
      Telemetry.Record.tcp_ecn_reaction;
    publish_tcp t Telemetry.Event_bus.Cwnd_cut Telemetry.Record.tcp_cwnd_cut;
    let rtt = Option.value (Rto.srtt t.rto) ~default:1.0 in
    t.ecn_holdoff_until <- now +. rtt;
    record_cwnd t;
    note_phase t
  end

let handle_packet t h =
  match Pool.kind t.pool h with
  | Pool.Tcp_ack ->
      t.stats.Tcp_stats.acks_received <- t.stats.Tcp_stats.acks_received + 1;
      if t.sack_enabled then record_sack_blocks t (Pool.sack t.pool h);
      if Pool.ece t.pool h then on_ece t;
      let ack = Pool.ack t.pool h in
      if ack > t.snd_una then on_new_ack t ack
      else if ack = t.snd_una && flight t > 0 then on_dup_ack t
  | Pool.Tcp_data | Pool.Udp_data -> ()

let next_pow2 n =
  let rec go v = if v >= n then v else go (v * 2) in
  go 16

let create ?(ecn_capable = false) ?(sack = false) ?(cwnd_validation = false)
    ?(limited_transmit = false) ?(pacing = false) ?(trace_cwnd = false) ?bus
    ?recorder sched ~pool ~cc ~rto_params ~flow ~src ~dst ~mss_bytes
    ~adv_window ~transmit =
  if adv_window < 1 then invalid_arg "Tcp_sender.create: adv_window < 1";
  if mss_bytes < 1 then invalid_arg "Tcp_sender.create: mss_bytes < 1";
  let rlane = Option.map (fun r -> Telemetry.Recorder.lane r 0) recorder in
  let r_lifecycle =
    match recorder with
    | Some r -> Telemetry.Recorder.lifecycle r
    | None -> false
  in
  (* Live sequences span [snd_una, max_sent) <= adv_window + 2; the +4
     margin keeps the direct-mapped table collision-free. *)
  let st_size = next_pow2 (adv_window + 4) in
  let t =
    {
      sched;
      pool;
      cc;
      rto = Rto.create rto_params;
      flow;
      src;
      dst;
      mss_bytes;
      adv_window;
      ecn_capable;
      sack_enabled = sack;
      cwnd_validation;
      limited_transmit;
      pacing;
      trace_cwnd;
      bus;
      rlane;
      r_lifecycle;
      transmit;
      stats = Tcp_stats.create ();
      cwnd_trace = Netstats.Series.create ();
      send_times = Array.make st_size min_int;
      st_mask = st_size - 1;
      scoreboard = Hashtbl.create 64;
      rtx_in_recovery = Hashtbl.create 16;
      info = Cc.make_ack_info ();
      high_sacked = -1;
      app_submitted = 0;
      next_seq = 0;
      max_sent = 0;
      snd_una = 0;
      dup_acks = 0;
      in_recovery = false;
      recover = 0;
      rto_timer = Scheduler.nil;
      on_rto = ignore;
      ecn_holdoff_until = 0.;
      ecn_reactions = 0;
      pace_timer = Scheduler.nil;
      on_pace = ignore;
      last_paced_send = Time.never;
      phase = -1;
      timed_out = false;
    }
  in
  t.on_rto <- (fun () -> on_rto_fire t);
  t.on_pace <-
    (fun () ->
      t.pace_timer <- Scheduler.nil;
      pace_send t);
  record_cwnd t;
  note_phase t;
  t

let write t n =
  if n < 0 then invalid_arg "Tcp_sender.write: negative count";
  t.app_submitted <- t.app_submitted + n;
  try_send t

let cwnd t = t.cc.Cc.cwnd ()

let ssthresh t = t.cc.Cc.ssthresh ()

let snd_una t = t.snd_una

let stats t = t.stats

let cwnd_trace t = t.cwnd_trace

let in_recovery t = t.in_recovery

let cc_name t = t.cc.Cc.name

let ecn_reactions t = t.ecn_reactions
