(** A fixed-size pool of OCaml 5 domains with an order-preserving map.

    The pool owns [domains - 1] worker domains plus the calling domain,
    which participates in every {!map}, so [create ~domains:1] spawns
    nothing and {!map} degrades to [List.map]. Work is distributed
    through a shared FIFO task queue: each list element becomes one task,
    workers pull the next task as they finish the last, and results are
    written into a slot fixed by the element's input position — so the
    returned list is always in input order no matter which domain ran
    which element, and a pure [f] makes [map] observationally identical
    to [List.map f].

    The pool is built for coarse tasks (whole simulation runs, tens of
    milliseconds and up); the per-task cost is a couple of mutex
    operations, so do not feed it per-packet work.

    A pool is not reentrant: call {!map} from one domain at a time, and
    never from inside a task running on the same pool. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] total domains ([domains - 1] workers).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], fanning the
    calls out across the pool's domains, and returns the results in
    input order. If any call raises, the first exception observed is
    re-raised in the caller after all in-flight tasks have finished;
    the remaining queued tasks still run. [f] must not touch mutable
    state shared between elements.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; the pool is unusable after. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)

(** A long-lived worker team with a reusable barrier, for SPMD phases.

    Where {!map} distributes independent tasks, a team runs {e one} body
    per rank across [domains] domains (rank 0 is the calling domain) and
    lets the bodies meet at {!Team.barrier} as many times as they like —
    the shape a windowed conservative PDES run needs: K domains
    simulating in lockstep time windows, rendezvousing twice per window,
    with no per-window domain spawns or task queues.

    Exceptions propagate mid-window: the first body to raise marks the
    team aborted and wakes every rank blocked in (or later entering)
    {!Team.barrier} with {!Team.Aborted}, so all ranks unwind promptly
    instead of deadlocking on a rendezvous that can never complete;
    {!Team.run} then re-raises the original exception in the caller. *)
module Team : sig
  type t

  exception Aborted
  (** Raised by {!barrier} in the surviving ranks after another rank's
      body raised. A body may let it escape (it is swallowed by the
      team) or use it to release rank-local resources first. *)

  val create : domains:int -> t
  (** Spawn [domains - 1] parked worker domains; the caller completes
      the team as rank 0.
      @raise Invalid_argument when [domains < 1]. *)

  val size : t -> int

  val run : t -> (int -> unit) -> unit
  (** [run t body] executes [body rank] on every rank ([0] on the
      calling domain, [1 .. domains-1] on the workers) and returns when
      all of them have finished. If any body raises, the first exception
      observed is re-raised here after every rank has unwound. The team
      is reusable afterwards, also after a failed run.
      @raise Invalid_argument if the team is shut down or a run is
      already in progress. *)

  val barrier : t -> unit
  (** Rendezvous of all ranks; callable only from inside a {!run} body.
      Returns once every rank has arrived. Mutations made by any rank
      before the barrier are visible to every rank after it.
      @raise Aborted when another rank's body raised. *)

  val shutdown : t -> unit
  (** Join all worker domains. Idempotent; the team is unusable after. *)

  val with_team : domains:int -> (t -> 'a) -> 'a
  (** [with_team ~domains f] runs [f] with a fresh team and shuts it
      down afterwards, also on exception. *)
end
