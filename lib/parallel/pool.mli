(** A fixed-size pool of OCaml 5 domains with an order-preserving map.

    The pool owns [domains - 1] worker domains plus the calling domain,
    which participates in every {!map}, so [create ~domains:1] spawns
    nothing and {!map} degrades to [List.map]. Work is distributed
    through a shared FIFO task queue: each list element becomes one task,
    workers pull the next task as they finish the last, and results are
    written into a slot fixed by the element's input position — so the
    returned list is always in input order no matter which domain ran
    which element, and a pure [f] makes [map] observationally identical
    to [List.map f].

    The pool is built for coarse tasks (whole simulation runs, tens of
    milliseconds and up); the per-task cost is a couple of mutex
    operations, so do not feed it per-packet work.

    A pool is not reentrant: call {!map} from one domain at a time, and
    never from inside a task running on the same pool. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains] total domains ([domains - 1] workers).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** The [domains] the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], fanning the
    calls out across the pool's domains, and returns the results in
    input order. If any call raises, the first exception observed is
    re-raised in the caller after all in-flight tasks have finished;
    the remaining queued tasks still run. [f] must not touch mutable
    state shared between elements.
    @raise Invalid_argument if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent; the pool is unusable after. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it down
    afterwards, also on exception. *)
