type t = {
  domains : int;
  tasks : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutex : Mutex.t;
  work_ready : Condition.t; (* signalled when tasks arrive or on shutdown *)
  all_done : Condition.t; (* signalled when a map's last task finishes *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.tasks with
    | Some task -> Some task
    | None ->
        if pool.shutting_down then None
        else begin
          Condition.wait pool.work_ready pool.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop pool

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    {
      domains;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      all_done = Condition.create ();
      shutting_down = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.domains

(* One map call: every input element becomes a task that writes its
   result into the slot fixed by its position. [remaining] counts tasks
   not yet finished (queued or running, on any domain); the caller helps
   drain the queue, then blocks until the stragglers running on workers
   have finished too. The final decrement-to-zero happens under the
   mutex, so every [results] write is visible to the caller once
   [remaining] reads 0. *)
let check_alive pool =
  Mutex.lock pool.mutex;
  let dead = pool.shutting_down in
  Mutex.unlock pool.mutex;
  if dead then invalid_arg "Pool.map: pool is shut down"

let map pool f xs =
  check_alive pool;
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when pool.domains = 1 -> List.map f xs
  | _ ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      let results = Array.make n None in
      let first_error = ref None in
      let remaining = ref n in
      let run i =
        (try results.(i) <- Some (f inputs.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock pool.mutex;
           if !first_error = None then first_error := Some (e, bt);
           Mutex.unlock pool.mutex);
        Mutex.lock pool.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.all_done;
        Mutex.unlock pool.mutex
      in
      Mutex.lock pool.mutex;
      if pool.shutting_down then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run i) pool.tasks
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      (* The caller is one of the pool's domains: steal tasks until the
         queue is empty, then wait for workers still mid-task. *)
      let rec help () =
        Mutex.lock pool.mutex;
        let task = Queue.take_opt pool.tasks in
        Mutex.unlock pool.mutex;
        match task with
        | Some task ->
            task ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock pool.mutex;
      while !remaining > 0 do
        Condition.wait pool.all_done pool.mutex
      done;
      let error = !first_error in
      Mutex.unlock pool.mutex;
      (match error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.shutting_down in
  pool.shutting_down <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if not already then Array.iter Domain.join pool.workers

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Long-lived worker teams with a reusable barrier.

   [map] above is built for independent coarse tasks; the sharded PDES
   engine instead needs K domains that stay alive across hundreds of
   bounded time windows, meeting at a barrier twice per window. A team
   pins one body per rank (rank 0 is the caller), and [barrier] is a
   generation-counted rendezvous: no tasks, no queue, no per-window
   domain spawns.

   Exception discipline: the first body to raise poisons the team
   ([aborted]), and every other member's next (or current) [barrier]
   call raises {!Team.Aborted} so all ranks unwind mid-window instead of
   deadlocking on a rendezvous that can never complete. [run] re-raises
   the original exception in the caller once every rank has unwound. *)

module Team = struct
  exception Aborted

  type t = {
    size : int;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable body : (int -> unit) option; (* guarded by [mutex] *)
    mutable epoch : int; (* bumped once per [run] *)
    mutable running : int; (* ranks still inside the current body *)
    mutable barrier_phase : int;
    mutable barrier_arrived : int;
    mutable failed : (exn * Printexc.raw_backtrace) option;
    mutable aborted : bool;
    mutable shutting_down : bool;
    mutable workers : unit Domain.t array;
  }

  let record_failure t e =
    let bt = Printexc.get_raw_backtrace () in
    Mutex.lock t.mutex;
    if t.failed = None then t.failed <- Some (e, bt);
    t.aborted <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let finish_body t =
    Mutex.lock t.mutex;
    t.running <- t.running - 1;
    if t.running = 0 then Condition.broadcast t.cond;
    Mutex.unlock t.mutex

  let worker_loop t rank =
    let seen = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock t.mutex;
      while t.epoch = !seen && not t.shutting_down do
        Condition.wait t.cond t.mutex
      done;
      if t.shutting_down then begin
        Mutex.unlock t.mutex;
        continue := false
      end
      else begin
        seen := t.epoch;
        let body = Option.get t.body in
        Mutex.unlock t.mutex;
        (try body rank with
        | Aborted -> ()
        | e -> record_failure t e);
        finish_body t
      end
    done

  let create ~domains =
    if domains < 1 then invalid_arg "Team.create: domains < 1";
    let t =
      {
        size = domains;
        mutex = Mutex.create ();
        cond = Condition.create ();
        body = None;
        epoch = 0;
        running = 0;
        barrier_phase = 0;
        barrier_arrived = 0;
        failed = None;
        aborted = false;
        shutting_down = false;
        workers = [||];
      }
    in
    t.workers <-
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1)));
    t

  let size t = t.size

  let barrier t =
    if t.size > 1 then begin
      Mutex.lock t.mutex;
      if t.aborted then begin
        Mutex.unlock t.mutex;
        raise Aborted
      end;
      let phase = t.barrier_phase in
      t.barrier_arrived <- t.barrier_arrived + 1;
      if t.barrier_arrived = t.size then begin
        t.barrier_arrived <- 0;
        t.barrier_phase <- phase + 1;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end
      else begin
        while t.barrier_phase = phase && not t.aborted do
          Condition.wait t.cond t.mutex
        done;
        let aborted = t.aborted in
        Mutex.unlock t.mutex;
        if aborted then raise Aborted
      end
    end

  let run t body =
    Mutex.lock t.mutex;
    if t.shutting_down then begin
      Mutex.unlock t.mutex;
      invalid_arg "Team.run: team is shut down"
    end;
    if t.body <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Team.run: a run is already in progress"
    end;
    t.body <- Some body;
    t.failed <- None;
    t.aborted <- false;
    t.barrier_phase <- 0;
    t.barrier_arrived <- 0;
    t.running <- t.size;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* The caller is rank 0. *)
    (try body 0 with
    | Aborted -> ()
    | e -> record_failure t e);
    finish_body t;
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.cond t.mutex
    done;
    let error = t.failed in
    t.body <- None;
    t.failed <- None;
    Mutex.unlock t.mutex;
    match error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

  let shutdown t =
    Mutex.lock t.mutex;
    let already = t.shutting_down in
    t.shutting_down <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    if not already then Array.iter Domain.join t.workers

  let with_team ~domains f =
    let t = create ~domains in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end
