type t = {
  domains : int;
  tasks : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutex : Mutex.t;
  work_ready : Condition.t; (* signalled when tasks arrive or on shutdown *)
  all_done : Condition.t; (* signalled when a map's last task finishes *)
  mutable shutting_down : bool;
  mutable workers : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.tasks with
    | Some task -> Some task
    | None ->
        if pool.shutting_down then None
        else begin
          Condition.wait pool.work_ready pool.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock pool.mutex;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop pool

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains < 1";
  let pool =
    {
      domains;
      tasks = Queue.create ();
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      all_done = Condition.create ();
      shutting_down = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = pool.domains

(* One map call: every input element becomes a task that writes its
   result into the slot fixed by its position. [remaining] counts tasks
   not yet finished (queued or running, on any domain); the caller helps
   drain the queue, then blocks until the stragglers running on workers
   have finished too. The final decrement-to-zero happens under the
   mutex, so every [results] write is visible to the caller once
   [remaining] reads 0. *)
let check_alive pool =
  Mutex.lock pool.mutex;
  let dead = pool.shutting_down in
  Mutex.unlock pool.mutex;
  if dead then invalid_arg "Pool.map: pool is shut down"

let map pool f xs =
  check_alive pool;
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when pool.domains = 1 -> List.map f xs
  | _ ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      let results = Array.make n None in
      let first_error = ref None in
      let remaining = ref n in
      let run i =
        (try results.(i) <- Some (f inputs.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock pool.mutex;
           if !first_error = None then first_error := Some (e, bt);
           Mutex.unlock pool.mutex);
        Mutex.lock pool.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast pool.all_done;
        Mutex.unlock pool.mutex
      in
      Mutex.lock pool.mutex;
      if pool.shutting_down then begin
        Mutex.unlock pool.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run i) pool.tasks
      done;
      Condition.broadcast pool.work_ready;
      Mutex.unlock pool.mutex;
      (* The caller is one of the pool's domains: steal tasks until the
         queue is empty, then wait for workers still mid-task. *)
      let rec help () =
        Mutex.lock pool.mutex;
        let task = Queue.take_opt pool.tasks in
        Mutex.unlock pool.mutex;
        match task with
        | Some task ->
            task ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock pool.mutex;
      while !remaining > 0 do
        Condition.wait pool.all_done pool.mutex
      done;
      let error = !first_error in
      Mutex.unlock pool.mutex;
      (match error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

let shutdown pool =
  Mutex.lock pool.mutex;
  let already = pool.shutting_down in
  pool.shutting_down <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.mutex;
  if not already then Array.iter Domain.join pool.workers

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
