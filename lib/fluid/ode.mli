(** Fixed-step Runge–Kutta integration of first-order ODE systems.

    Enough numerical machinery for the TCP fluid models: a classic RK4
    stepper over [float array] state vectors, with an optional per-step
    observer and an optional projection applied after each step (used to
    clamp queues into [\[0, B\]]). *)

type system = t:float -> y:float array -> float array
(** The vector field: returns dy/dt. Must not mutate [y]. *)

val rk4_step : system -> t:float -> dt:float -> float array -> float array
(** One RK4 step from state [y] at time [t]. *)

val integrate :
  ?observe:(t:float -> y:float array -> unit) ->
  ?project:(float array -> unit) ->
  system ->
  y0:float array ->
  t0:float ->
  t1:float ->
  dt:float ->
  float array
(** Integrate from [t0] to [t1] with step [dt] (the final step is
    shortened to land exactly on [t1]). [observe] is called at [t0] and
    after every step; [project] may mutate the state after each step.
    @raise Invalid_argument if [dt <= 0] or [t1 < t0]. *)
