(** Fixed-step Runge–Kutta integration of first-order ODE systems.

    Enough numerical machinery for the TCP fluid models: a classic RK4
    stepper over [float array] state vectors, with an optional per-step
    observer and an optional projection applied after each step (used to
    clamp queues into [\[0, B\]]). *)

type system = t:float -> y:float array -> float array
(** The vector field: returns dy/dt. Must not mutate [y]. *)

val rk4_step : system -> t:float -> dt:float -> float array -> float array
(** One RK4 step from state [y] at time [t]. *)

type system_in_place = t:float -> y:float array -> dy:float array -> unit
(** The vector field, in-place form: writes dy/dt into [dy]. Must not
    mutate [y]. Used by the allocation-free stepper below. *)

type stepper
(** Preallocated scratch (four stage slopes plus a stage state) for
    [step_in_place]. Reusable across steps and systems of dimension up
    to the one it was built with. *)

val stepper : int -> stepper
(** [stepper dim] allocates scratch for systems of dimension [<= dim].
    @raise Invalid_argument if [dim <= 0]. *)

val step_in_place :
  stepper -> system_in_place -> t:float -> dt:float -> float array -> unit
(** One RK4 step advancing [y] in place, allocation-free. Agrees
    bit-for-bit with [rk4_step] on the same system (the stage arithmetic
    is expression-identical).
    @raise Invalid_argument if [y] exceeds the stepper's dimension. *)

val integrate :
  ?observe:(t:float -> y:float array -> unit) ->
  ?project:(float array -> unit) ->
  system ->
  y0:float array ->
  t0:float ->
  t1:float ->
  dt:float ->
  float array
(** Integrate from [t0] to [t1] with step [dt] (the final step is
    shortened to land exactly on [t1]). [observe] is called at [t0] and
    after every step; [project] may mutate the state after each step.
    @raise Invalid_argument if [dt <= 0] or [t1 < t0]. *)
