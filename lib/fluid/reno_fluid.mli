(** Fluid approximation of N homogeneous greedy TCP Reno flows through one
    RED bottleneck (Misra, Gong & Towsley 2000; the modelling style of the
    paper's reference [1]).

    State: per-flow window [w] (packets), instantaneous queue [q]
    (packets), and the RED average [x]. With round-trip time
    [r(q) = r0 + q/c]:

    {v
    dw/dt = 1/r(q) - (w/2) (w/r(q)) p(x)
    dq/dt = n w / r(q) - c          (clamped into [0, buffer])
    dx/dt = kappa (q - x)
    v}

    where [p] is RED's drop probability at average queue [x]. Droptail is
    modelled as RED with a very tight band near the buffer limit. *)

type params = {
  flows : int;  (** n *)
  capacity_pps : float;  (** c, packets per second *)
  base_rtt_s : float;  (** r0, propagation round trip *)
  buffer_packets : float;
  red_min_th : float;
  red_max_th : float;
  red_max_p : float;
  avg_gain : float;  (** kappa, the EWMA tracking rate, 1/s *)
}

val of_table1 :
  flows:int ->
  capacity_pps:float ->
  base_rtt_s:float ->
  buffer_packets:float ->
  params
(** RED (10, 40, 0.02) and a 10/s averaging gain. *)

type trajectory = {
  times : float array;
  window : float array;  (** per-flow window, packets *)
  queue : float array;  (** packets *)
  throughput : float array;  (** aggregate, packets per second *)
}

val simulate : ?dt:float -> params -> horizon:float -> trajectory
(** Integrate from (w, q, x) = (1, 0, 0). [dt] defaults to 1 ms. *)

type equilibrium = {
  eq_window : float;
  eq_queue : float;
  eq_throughput_pps : float;
  eq_loss : float;  (** RED drop probability at the equilibrium average *)
  eq_rtt_s : float;
}

val equilibrium : ?dt:float -> ?settle:float -> params -> equilibrium
(** State after integrating for [settle] seconds (default 200) — long
    enough for Table 1-scale parameters to reach steady state. *)

type red_stability = {
  loop_gain : float;  (** L; the loop is stable for every w_q iff L <= 1 *)
  omega_g : float;  (** crossover-frequency bound, rad/s *)
  k_critical : float option;  (** averaging-pole bound, 1/s *)
  wq_critical : float option;
      (** critical per-packet EWMA gain: below it RED's averaging keeps
          the linearized loop stable, above it the queue crosses the
          Hopf boundary and oscillates. [None] when [loop_gain <= 1]
          (stable for every w_q). *)
}

val red_stability : params -> red_stability
(** Reynier/Hollot linearized stability condition for RED's averaging
    gain, evaluated at [base_rtt_s]:
    [L = (max_p / (max_th - min_th)) (R C)^3 / (2 N)^2] and, when
    [L > 1], [w_q* = 1 - exp (-omega_g / (sqrt (L^2 - 1) C))] with
    [omega_g = 0.1 min (2N / (R^2 C), 1/R)]. *)
