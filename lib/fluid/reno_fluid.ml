type params = {
  flows : int;
  capacity_pps : float;
  base_rtt_s : float;
  buffer_packets : float;
  red_min_th : float;
  red_max_th : float;
  red_max_p : float;
  avg_gain : float;
}

let of_table1 ~flows ~capacity_pps ~base_rtt_s ~buffer_packets =
  {
    flows;
    capacity_pps;
    base_rtt_s;
    buffer_packets;
    red_min_th = 10.;
    red_max_th = 40.;
    red_max_p = 0.02;
    avg_gain = 10.;
  }

let drop_probability p x =
  if x <= p.red_min_th then 0.
  else if x >= p.red_max_th then 1.
  else p.red_max_p *. (x -. p.red_min_th) /. (p.red_max_th -. p.red_min_th)

let validate p =
  if p.flows < 1 then invalid_arg "Reno_fluid: flows < 1";
  if p.capacity_pps <= 0. || p.base_rtt_s <= 0. || p.buffer_packets <= 0. then
    invalid_arg "Reno_fluid: non-positive parameter";
  if p.red_min_th < 0. || p.red_max_th <= p.red_min_th then
    invalid_arg "Reno_fluid: bad RED thresholds"

(* State layout: [| w; q; x |]. *)
let field p ~t:_ ~y =
  let w = Stdlib.max y.(0) 1e-3 in
  let q = Stdlib.max y.(1) 0. in
  let x = Stdlib.max y.(2) 0. in
  let rtt = p.base_rtt_s +. (q /. p.capacity_pps) in
  let per_flow_rate = w /. rtt in
  let arrival = float_of_int p.flows *. per_flow_rate in
  let dw = (1. /. rtt) -. (w /. 2. *. per_flow_rate *. drop_probability p x) in
  let dq =
    let raw = arrival -. p.capacity_pps in
    (* The queue can neither drain when empty nor grow when full. *)
    if (q <= 0. && raw < 0.) || (q >= p.buffer_packets && raw > 0.) then 0. else raw
  in
  let dx = p.avg_gain *. (q -. x) in
  [| dw; dq; dx |]

let project p y =
  if y.(0) < 1e-3 then y.(0) <- 1e-3;
  if y.(1) < 0. then y.(1) <- 0.;
  if y.(1) > p.buffer_packets then y.(1) <- p.buffer_packets;
  if y.(2) < 0. then y.(2) <- 0.

type trajectory = {
  times : float array;
  window : float array;
  queue : float array;
  throughput : float array;
}

let simulate ?(dt = 0.001) p ~horizon =
  validate p;
  if horizon <= 0. then invalid_arg "Reno_fluid.simulate: horizon <= 0";
  let times = ref [] and window = ref [] and queue = ref [] and thr = ref [] in
  let sample_every = Stdlib.max dt (horizon /. 2000.) in
  let last_sample = ref neg_infinity in
  let observe ~t ~y =
    if t -. !last_sample >= sample_every -. 1e-12 then begin
      last_sample := t;
      times := t :: !times;
      window := y.(0) :: !window;
      queue := y.(1) :: !queue;
      let rtt = p.base_rtt_s +. (y.(1) /. p.capacity_pps) in
      thr := (float_of_int p.flows *. y.(0) /. rtt) :: !thr
    end
  in
  ignore
    (Ode.integrate ~observe ~project:(project p) (field p) ~y0:[| 1.; 0.; 0. |]
       ~t0:0. ~t1:horizon ~dt);
  {
    times = Array.of_list (List.rev !times);
    window = Array.of_list (List.rev !window);
    queue = Array.of_list (List.rev !queue);
    throughput = Array.of_list (List.rev !thr);
  }

type equilibrium = {
  eq_window : float;
  eq_queue : float;
  eq_throughput_pps : float;
  eq_loss : float;
  eq_rtt_s : float;
}

let equilibrium ?(dt = 0.001) ?(settle = 200.) p =
  validate p;
  let y =
    Ode.integrate ~project:(project p) (field p) ~y0:[| 1.; 0.; 0. |] ~t0:0.
      ~t1:settle ~dt
  in
  let w = y.(0) and q = y.(1) and x = y.(2) in
  let rtt = p.base_rtt_s +. (q /. p.capacity_pps) in
  {
    eq_window = w;
    eq_queue = q;
    eq_throughput_pps = float_of_int p.flows *. w /. rtt;
    eq_loss = drop_probability p x;
    eq_rtt_s = rtt;
  }

(* Linearized RED stability (Hollot, Misra, Towsley & Gong, "A Control
   Theoretic Analysis of RED"; Reynier's simple mean-field condition is
   the same bound). Around the window/queue equilibrium the plant gain
   is

     L = (max_p / (max_th - min_th)) * (R C)^3 / (2 N)^2

   with R the round-trip time and C the capacity in packets/s. If
   L <= 1 the loop is stable for every averaging gain. Otherwise the
   averaging pole K = -ln(1 - w_q) C (per-packet EWMA sampled at rate
   C) must stay below

     K* = omega_g / sqrt(L^2 - 1),
     omega_g = 0.1 * min (2 N / (R^2 C), 1 / R)

   which translates back to a critical per-packet gain
   w_q* = 1 - exp (-K* / C): below it the queue settles, above it the
   loop crosses the Hopf boundary and the queue oscillates. *)

type red_stability = {
  loop_gain : float;
  omega_g : float;
  k_critical : float option;
  wq_critical : float option;
}

let red_stability p =
  validate p;
  let c = p.capacity_pps and n = float_of_int p.flows in
  let r = p.base_rtt_s in
  let slope = p.red_max_p /. (p.red_max_th -. p.red_min_th) in
  let l = slope *. ((r *. c) ** 3.) /. ((2. *. n) ** 2.) in
  let omega_g = 0.1 *. Stdlib.min (2. *. n /. (r *. r *. c)) (1. /. r) in
  if l <= 1. then
    { loop_gain = l; omega_g; k_critical = None; wq_critical = None }
  else begin
    let k = omega_g /. sqrt ((l *. l) -. 1.) in
    {
      loop_gain = l;
      omega_g;
      k_critical = Some k;
      wq_critical = Some (1. -. exp (-.k /. c));
    }
  end
