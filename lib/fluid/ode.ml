type system = t:float -> y:float array -> float array

let axpy a x y = Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let rk4_step f ~t ~dt y =
  let k1 = f ~t ~y in
  let k2 = f ~t:(t +. (dt /. 2.)) ~y:(axpy (dt /. 2.) k1 y) in
  let k3 = f ~t:(t +. (dt /. 2.)) ~y:(axpy (dt /. 2.) k2 y) in
  let k4 = f ~t:(t +. dt) ~y:(axpy dt k3 y) in
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let integrate ?(observe = fun ~t:_ ~y:_ -> ()) ?(project = fun _ -> ()) f ~y0 ~t0
    ~t1 ~dt =
  if dt <= 0. then invalid_arg "Ode.integrate: dt <= 0";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  let y = ref (Array.copy y0) in
  let t = ref t0 in
  observe ~t:!t ~y:!y;
  while !t < t1 -. 1e-12 do
    let step = Stdlib.min dt (t1 -. !t) in
    let next = rk4_step f ~t:!t ~dt:step !y in
    project next;
    y := next;
    t := !t +. step;
    observe ~t:!t ~y:!y
  done;
  !y
