type system = t:float -> y:float array -> float array

let axpy a x y = Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let rk4_step f ~t ~dt y =
  let k1 = f ~t ~y in
  let k2 = f ~t:(t +. (dt /. 2.)) ~y:(axpy (dt /. 2.) k1 y) in
  let k3 = f ~t:(t +. (dt /. 2.)) ~y:(axpy (dt /. 2.) k2 y) in
  let k4 = f ~t:(t +. dt) ~y:(axpy dt k3 y) in
  Array.mapi
    (fun i yi ->
      yi +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

(* In-place variant for hot paths: the vector field writes dy/dt into a
   caller-provided buffer and the four stage slopes live in preallocated
   scratch, so a step allocates nothing. The arithmetic mirrors
   [rk4_step] expression by expression, so both steppers agree
   bit-for-bit (pinned in the test suite). *)

type system_in_place = t:float -> y:float array -> dy:float array -> unit

type stepper = {
  k1 : float array;
  k2 : float array;
  k3 : float array;
  k4 : float array;
  ytmp : float array;
}

let stepper dim =
  if dim <= 0 then invalid_arg "Ode.stepper: dim <= 0";
  {
    k1 = Array.make dim 0.;
    k2 = Array.make dim 0.;
    k3 = Array.make dim 0.;
    k4 = Array.make dim 0.;
    ytmp = Array.make dim 0.;
  }

let step_in_place s f ~t ~dt y =
  let n = Array.length y in
  if n > Array.length s.k1 then
    invalid_arg "Ode.step_in_place: state exceeds stepper dimension";
  f ~t ~y ~dy:s.k1;
  for i = 0 to n - 1 do
    s.ytmp.(i) <- y.(i) +. (dt /. 2. *. s.k1.(i))
  done;
  f ~t:(t +. (dt /. 2.)) ~y:s.ytmp ~dy:s.k2;
  for i = 0 to n - 1 do
    s.ytmp.(i) <- y.(i) +. (dt /. 2. *. s.k2.(i))
  done;
  f ~t:(t +. (dt /. 2.)) ~y:s.ytmp ~dy:s.k3;
  for i = 0 to n - 1 do
    s.ytmp.(i) <- y.(i) +. (dt *. s.k3.(i))
  done;
  f ~t:(t +. dt) ~y:s.ytmp ~dy:s.k4;
  for i = 0 to n - 1 do
    y.(i) <-
      y.(i)
      +. (dt /. 6.
          *. (s.k1.(i) +. (2. *. s.k2.(i)) +. (2. *. s.k3.(i)) +. s.k4.(i)))
  done

let integrate ?(observe = fun ~t:_ ~y:_ -> ()) ?(project = fun _ -> ()) f ~y0 ~t0
    ~t1 ~dt =
  if dt <= 0. then invalid_arg "Ode.integrate: dt <= 0";
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  let y = ref (Array.copy y0) in
  let t = ref t0 in
  observe ~t:!t ~y:!y;
  while !t < t1 -. 1e-12 do
    let step = Stdlib.min dt (t1 -. !t) in
    let next = rk4_step f ~t:!t ~dt:step !y in
    project next;
    y := next;
    t := !t +. step;
    observe ~t:!t ~y:!y
  done;
  !y
