(** Equilibrium analysis of N homogeneous greedy TCP Vegas flows through
    one bottleneck (Bonald 1998 — the paper's reference [1]).

    Vegas steers each flow's queue occupancy into [\[alpha, beta\]], so N
    greedy flows settle (no dynamics needed) at:

    - per-flow backlog [d* in [alpha, beta]] — we use the midpoint;
    - queue [q* = N d*] if it fits in the buffer;
    - per-flow window [w* = c r0 / N + d*] (capacity share plus backlog);
    - zero loss as long as [N alpha <= buffer], otherwise the buffer
      overflows structurally and Vegas loses packets like everyone else —
      the regime §3.4 of the paper describes for RED's max_th. *)

type params = {
  flows : int;
  capacity_pps : float;
  base_rtt_s : float;
  buffer_packets : float;
  alpha : float;
  beta : float;
}

type equilibrium = {
  eq_window : float;  (** per-flow, packets *)
  eq_queue : float;  (** packets at the gateway *)
  eq_throughput_pps : float;  (** aggregate *)
  eq_rtt_s : float;
  overloaded : bool;  (** [N alpha] exceeds the buffer: persistent loss *)
}

val equilibrium : params -> equilibrium
(** @raise Invalid_argument on non-positive parameters or
    [beta < alpha]. *)

val min_buffer : params -> float
(** The smallest gateway buffer at which N Vegas flows are loss-free:
    [N alpha]. The buffer ablation in EXPERIMENTS.md confirms this bound
    in packet simulation. *)
