type params = {
  flows : int;
  capacity_pps : float;
  base_rtt_s : float;
  buffer_packets : float;
  alpha : float;
  beta : float;
}

type equilibrium = {
  eq_window : float;
  eq_queue : float;
  eq_throughput_pps : float;
  eq_rtt_s : float;
  overloaded : bool;
}

let validate p =
  if p.flows < 1 then invalid_arg "Vegas_fluid: flows < 1";
  if p.capacity_pps <= 0. || p.base_rtt_s <= 0. || p.buffer_packets <= 0. then
    invalid_arg "Vegas_fluid: non-positive parameter";
  if p.alpha <= 0. || p.beta < p.alpha then invalid_arg "Vegas_fluid: bad alpha/beta"

let min_buffer p =
  validate p;
  float_of_int p.flows *. p.alpha

let equilibrium p =
  validate p;
  let n = float_of_int p.flows in
  let target = (p.alpha +. p.beta) /. 2. in
  let wanted_queue = n *. target in
  if wanted_queue <= p.buffer_packets then begin
    let eq_queue = wanted_queue in
    let eq_rtt = p.base_rtt_s +. (eq_queue /. p.capacity_pps) in
    {
      eq_window = (p.capacity_pps *. p.base_rtt_s /. n) +. target;
      eq_queue;
      eq_throughput_pps = p.capacity_pps;
      eq_rtt_s = eq_rtt;
      overloaded = false;
    }
  end
  else begin
    (* The flows collectively want more backlog than the buffer holds:
       the queue pins at the buffer limit and overflow loss is
       persistent. Windows settle at their share of pipe plus buffer. *)
    let eq_queue = p.buffer_packets in
    let eq_rtt = p.base_rtt_s +. (eq_queue /. p.capacity_pps) in
    {
      eq_window = p.capacity_pps *. eq_rtt /. n;
      eq_queue;
      eq_throughput_pps = p.capacity_pps;
      eq_rtt_s = eq_rtt;
      overloaded = true;
    }
  end
