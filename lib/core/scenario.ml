type cc_kind = Tahoe | Reno | Newreno | Vegas | Sack

type transport =
  | Udp
  | Tcp of { cc : cc_kind; delayed_ack : bool }

type gateway = Fifo | Red | Red_ecn | Red_adaptive | Sfq_gw

type t = { transport : transport; gateway : gateway }

let udp = { transport = Udp; gateway = Fifo }

let reno = { transport = Tcp { cc = Reno; delayed_ack = false }; gateway = Fifo }

let reno_red = { transport = Tcp { cc = Reno; delayed_ack = false }; gateway = Red }

let reno_delack = { transport = Tcp { cc = Reno; delayed_ack = true }; gateway = Fifo }

let vegas = { transport = Tcp { cc = Vegas; delayed_ack = false }; gateway = Fifo }

let vegas_red = { transport = Tcp { cc = Vegas; delayed_ack = false }; gateway = Red }

let tahoe = { transport = Tcp { cc = Tahoe; delayed_ack = false }; gateway = Fifo }

let newreno = { transport = Tcp { cc = Newreno; delayed_ack = false }; gateway = Fifo }

let reno_ecn = { transport = Tcp { cc = Reno; delayed_ack = false }; gateway = Red_ecn }

let vegas_ecn = { transport = Tcp { cc = Vegas; delayed_ack = false }; gateway = Red_ecn }

let reno_ared =
  { transport = Tcp { cc = Reno; delayed_ack = false }; gateway = Red_adaptive }

let vegas_ared =
  { transport = Tcp { cc = Vegas; delayed_ack = false }; gateway = Red_adaptive }

let sack = { transport = Tcp { cc = Sack; delayed_ack = false }; gateway = Fifo }

let sack_red = { transport = Tcp { cc = Sack; delayed_ack = false }; gateway = Red }

let reno_sfq = { transport = Tcp { cc = Reno; delayed_ack = false }; gateway = Sfq_gw }

let vegas_sfq = { transport = Tcp { cc = Vegas; delayed_ack = false }; gateway = Sfq_gw }

let paper_series = [ udp; reno; reno_red; vegas; vegas_red; reno_delack ]

let tcp_series = [ reno; reno_red; vegas; vegas_red; reno_delack ]

let cc_label = function
  | Tahoe -> "Tahoe"
  | Reno -> "Reno"
  | Newreno -> "NewReno"
  | Vegas -> "Vegas"
  | Sack -> "SACK"

let label t =
  match t.transport with
  | Udp -> "UDP"
  | Tcp { cc; delayed_ack } ->
      let base = cc_label cc in
      let base = if delayed_ack then base ^ "/DelayAck" else base in
      (match t.gateway with
      | Fifo -> base
      | Red -> base ^ "/RED"
      | Red_ecn -> base ^ "/ECN"
      | Red_adaptive -> base ^ "/ARED"
      | Sfq_gw -> base ^ "/SFQ")

let is_tcp t = match t.transport with Tcp _ -> true | Udp -> false

let equal a b = a = b
