let seed_for cfg scenario n =
  let h = Hashtbl.hash (Scenario.label scenario, n) in
  Int64.logxor cfg.Config.seed (Int64.of_int ((h * 2654435761) land max_int))

let point_label scenario n = Printf.sprintf "%s n=%d" (Scenario.label scenario) n

let over_clients ?probe ?(notify = fun (_ : string) -> ()) cfg scenario ns =
  List.map
    (fun n ->
      let cfg = Config.with_clients cfg n in
      let cfg = { cfg with Config.seed = seed_for cfg scenario n } in
      let m = Run.run ?probe cfg scenario in
      notify (point_label scenario n);
      m)
    ns

let grid ?probe ?notify cfg scenarios ns =
  List.map
    (fun scenario -> (scenario, over_clients ?probe ?notify cfg scenario ns))
    scenarios

type replicated = {
  scenario : Scenario.t;
  clients : int;
  replicates : int;
  cov_mean : float;
  cov_std : float;
  delivered_mean : float;
  loss_mean : float;
  loss_std : float;
  timeout_dupack_mean : float;
}

let replicated ?probe ?(notify = fun (_ : string) -> ()) cfg scenario
    ~replicates ns =
  if replicates < 1 then invalid_arg "Sweep.replicated: replicates < 1";
  List.map
    (fun n ->
      let cov = Netstats.Welford.create () in
      let delivered = Netstats.Welford.create () in
      let loss = Netstats.Welford.create () in
      let ratio = Netstats.Welford.create () in
      for r = 1 to replicates do
        let cfg = Config.with_clients cfg n in
        let seed = Int64.add (seed_for cfg scenario n) (Int64.of_int (r * 7919)) in
        let m = Run.run ?probe { cfg with Config.seed = seed } scenario in
        Netstats.Welford.add cov m.Metrics.cov;
        Netstats.Welford.add delivered (float_of_int m.Metrics.delivered);
        Netstats.Welford.add loss m.Metrics.loss_pct;
        Netstats.Welford.add ratio m.Metrics.timeout_dupack_ratio;
        notify (Printf.sprintf "%s r=%d" (point_label scenario n) r)
      done;
      {
        scenario;
        clients = n;
        replicates;
        cov_mean = Netstats.Welford.mean cov;
        cov_std = Netstats.Welford.std cov;
        delivered_mean = Netstats.Welford.mean delivered;
        loss_mean = Netstats.Welford.mean loss;
        loss_std = Netstats.Welford.std loss;
        timeout_dupack_mean = Netstats.Welford.mean ratio;
      })
    ns
