let seed_for cfg scenario n =
  let h = Hashtbl.hash (Scenario.label scenario, n) in
  Int64.logxor cfg.Config.seed (Int64.of_int ((h * 2654435761) land max_int))

let point_label scenario n = Printf.sprintf "%s n=%d" (Scenario.label scenario) n

(* Run [f] once per element of [items]. Without a pool (or with a
   one-domain pool) this is [List.map] with the caller's [probe] shared
   by every run and [notify] fired inline after each. With a pool, the
   points fan out across domains: every point gets a private probe (when
   the caller passed one) so no registry cell is shared between domains,
   [notify] is serialized behind a mutex, and once all points are done
   the worker probes fold into the caller's probe in input order. Each
   point derives its own seed, so the metric list is bit-identical to
   the sequential path — only wall-clock telemetry and the interleaving
   of [notify] calls differ. *)
let fan ?pool ?probe ~notify ~label items f =
  let sequential () =
    List.map
      (fun x ->
        let r = f ?probe x in
        notify (label x);
        r)
      items
  in
  match pool with
  | None -> sequential ()
  | Some pool when Parallel.Pool.size pool <= 1 -> sequential ()
  | Some pool ->
      let note =
        let m = Mutex.create () in
        fun l -> Mutex.protect m (fun () -> notify l)
      in
      let tagged =
        Parallel.Pool.map pool
          (fun x ->
            let worker = Option.map Telemetry.Probe.create_like probe in
            let r = f ?probe:worker x in
            note (label x);
            (r, worker))
          items
      in
      Option.iter
        (fun into ->
          List.iter
            (fun (_, worker) ->
              Option.iter (fun src -> Telemetry.Probe.merge ~into src) worker)
            tagged)
        probe;
      List.map fst tagged

let chunks k items =
  let rec take n acc rest =
    if n = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> invalid_arg "Sweep.chunks: ragged input"
      | x :: tl -> take (n - 1) (x :: acc) tl
  in
  let rec go acc rest =
    match rest with
    | [] -> List.rev acc
    | _ ->
        let chunk, rest = take k [] rest in
        go (chunk :: acc) rest
  in
  go [] items

let run_point ?probe cfg scenario n =
  let cfg = Config.with_clients cfg n in
  let cfg = { cfg with Config.seed = seed_for cfg scenario n } in
  Run.run ?probe cfg scenario

let over_clients ?pool ?probe ?(notify = fun (_ : string) -> ()) cfg scenario ns =
  fan ?pool ?probe ~notify
    ~label:(fun n -> point_label scenario n)
    ns
    (fun ?probe n -> run_point ?probe cfg scenario n)

let grid ?pool ?probe ?(notify = fun (_ : string) -> ()) cfg scenarios ns =
  match ns with
  | [] -> List.map (fun scenario -> (scenario, [])) scenarios
  | _ ->
      (* Flatten to (scenario, clients) points so a pool spans the whole
         grid rather than one series at a time. *)
      let points =
        List.concat_map (fun s -> List.map (fun n -> (s, n)) ns) scenarios
      in
      let ms =
        fan ?pool ?probe ~notify
          ~label:(fun (s, n) -> point_label s n)
          points
          (fun ?probe (s, n) -> run_point ?probe cfg s n)
      in
      List.map2 (fun s series -> (s, series)) scenarios (chunks (List.length ns) ms)

type replicated = {
  scenario : Scenario.t;
  clients : int;
  replicates : int;
  cov_mean : float;
  cov_std : float;
  delivered_mean : float;
  loss_mean : float;
  loss_std : float;
  timeout_dupack_mean : float;
}

let replicated ?pool ?probe ?(notify = fun (_ : string) -> ()) cfg scenario
    ~replicates ns =
  if replicates < 1 then invalid_arg "Sweep.replicated: replicates < 1";
  (* Fan over (clients, replicate) pairs, then fold each point's
     replicates into the summary accumulators sequentially in replicate
     order — the folds see the same values in the same order as the
     all-sequential path, so the records come out bit-identical. *)
  let points =
    List.concat_map (fun n -> List.init replicates (fun r -> (n, r + 1))) ns
  in
  let ms =
    fan ?pool ?probe ~notify
      ~label:(fun (n, r) -> Printf.sprintf "%s r=%d" (point_label scenario n) r)
      points
      (fun ?probe (n, r) ->
        let cfg = Config.with_clients cfg n in
        let seed = Int64.add (seed_for cfg scenario n) (Int64.of_int (r * 7919)) in
        Run.run ?probe { cfg with Config.seed = seed } scenario)
  in
  List.map2
    (fun n per_replicate ->
      let cov = Netstats.Welford.create () in
      let delivered = Netstats.Welford.create () in
      let loss = Netstats.Welford.create () in
      let ratio = Netstats.Welford.create () in
      List.iter
        (fun (m : Metrics.t) ->
          Netstats.Welford.add cov m.Metrics.cov;
          Netstats.Welford.add delivered (float_of_int m.Metrics.delivered);
          Netstats.Welford.add loss m.Metrics.loss_pct;
          Netstats.Welford.add ratio m.Metrics.timeout_dupack_ratio)
        per_replicate;
      {
        scenario;
        clients = n;
        replicates;
        cov_mean = Netstats.Welford.mean cov;
        cov_std = Netstats.Welford.std cov;
        delivered_mean = Netstats.Welford.mean delivered;
        loss_mean = Netstats.Welford.mean loss;
        loss_std = Netstats.Welford.std loss;
        timeout_dupack_mean = Netstats.Welford.mean ratio;
      })
    ns (chunks replicates ms)
