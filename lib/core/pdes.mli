(** Sharded conservative parallel discrete-event simulation of the
    paper's dumbbell.

    {!run} partitions the client population into [cfg.shards] contiguous
    shards, each owning its clients' access links, transports, timers,
    packet pool and event queue on its own domain, while the bottleneck
    link, gateway queue discipline and every bottleneck-anchored
    measurement live in a hub simulated by rank 0. Because every packet
    crossing a domain boundary traverses a propagation leg of at least
    {!window_s} seconds, the domains advance in lock-step windows of that
    width and exchange sorted packet batches at window boundaries — a
    conservative schedule with zero rollback.

    A [K]-shard run is bit-identical to a 1-shard run of the same seed
    (both run the same windowed machinery; batches are merged in a
    canonical order independent of [K]). It is {e not} required to match
    the classic single-domain engine ([cfg.shards = 0], {!Run.run}):
    same-tick event tie-breaking differs between the two engines, so
    each pins its own trace digests. *)

val window_s : Config.t -> float
(** The conservative lookahead: the minimum cross-domain propagation
    delay, [min bottleneck_delay_s (max 1e-4 (client_delay_s -
    client_delay_spread_s / 2))]. Domains synchronise once per window. *)

val run :
  ?probe:Telemetry.Probe.t ->
  ?trace_clients:int list ->
  ?sample_queue:bool ->
  ?measure_sync:bool ->
  Config.t ->
  Scenario.t ->
  Metrics.t
(** Like {!Run.run} but sharded over [cfg.shards] domains (clamped to
    the client count; rank 0 simulates shard 0 and the hub, so
    [cfg.shards = K] uses [K] domains in total). Restrictions: TCP
    scenarios only, and flight recording ([Probe.set_recording]) is not
    supported — use the event-bus trace instead.
    @raise Invalid_argument on [cfg.shards < 1] or a UDP scenario. *)
