module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

let run_classic ?probe ?(trace_clients = []) ?(sample_queue = false)
    ?(measure_sync = false) ?(prepare = fun (_ : Dumbbell.t) -> ()) cfg scenario
    =
  let time name f = Telemetry.Probe.time probe name f in
  (* Only hand the bus to producers when someone is listening: with no
     subscribers the hot path must not pay for per-packet publishes. *)
  let bus =
    match probe with
    | Some p when Telemetry.Event_bus.has_subscribers p.Telemetry.Probe.bus ->
        Some p.Telemetry.Probe.bus
    | Some _ | None -> None
  in
  let run_label =
    Printf.sprintf "%s n=%d" (Scenario.label scenario) cfg.Config.clients
  in
  (* One recorder = one segment per run; the probe accumulates them. *)
  let recorder =
    match probe with
    | Some p -> Telemetry.Probe.start_recorder p ~label:run_label
    | None -> None
  in
  let ( net,
        sched,
        bottleneck,
        horizon,
        binner,
        burst_state,
        hybrid,
        per_flow_binners,
        drop_run_list,
        delay_stats,
        delay_p99,
        queue_series,
        sources ) =
    time "setup" (fun () ->
        let net = Dumbbell.create ?bus ?recorder ~trace_clients cfg scenario in
        prepare net;
        let sched = Dumbbell.scheduler net in
        let pool = Dumbbell.pool net in
        let bottleneck = Dumbbell.bottleneck net in
        (match bus with
        | Some b -> Netsim.Link.publish bottleneck b
        | None -> ());
        (* Mirror the bus gating: only the bottleneck records per-packet
           queue events, so the binary stream decodes byte-identical to
           the live tracer. *)
        (match recorder with
        | Some r ->
            Netsim.Link.record bottleneck r;
            if Telemetry.Recorder.lifecycle r then begin
              let lane = Telemetry.Recorder.lane r 0 in
              let sid = Telemetry.Recorder.intern r run_label in
              Scheduler.set_instrument sched
                ~on_run_start:(fun clock ->
                  Telemetry.Recorder.record lane ~tick:(Time.to_ns clock)
                    ~kind:Telemetry.Record.run_start ~flow:(-1) ~a:0 ~b:0 ~c:0
                    ~sid ~depth:0)
                ~on_run_end:(fun clock fired ->
                  Telemetry.Recorder.record lane ~tick:(Time.to_ns clock)
                    ~kind:Telemetry.Record.run_end ~flow:(-1) ~a:fired ~b:0
                    ~c:0 ~sid ~depth:0)
            end
        | None -> ());
        let horizon = Time.of_sec cfg.Config.duration_s in
        (* Hybrid engine: couple the fluid background population to the
           bottleneck before any sampler reads its signals. *)
        let hybrid =
          if cfg.Config.background >= 1 then
            Some (Hybrid.attach ~sched ~bottleneck cfg)
          else None
        in
        let binner =
          Netsim.Monitor.arrival_binner pool bottleneck
            ~origin:cfg.Config.warmup_s ~width:(Config.rtt_prop_s cfg)
        in
        (* Streaming burstiness telemetry, subscriber-gated like the
           bus: only wired when the probe carries a burst config. The
           aggregator's base bin is the paper's RTT timescale, so its
           level-0 c.o.v. reproduces [Metrics.cov] from the same event
           stream without storing it. *)
        let burst_state =
          match probe with
          | Some p -> (
              match Telemetry.Probe.burst_config p with
              | Some bc ->
                  let burst =
                    Telemetry.Burst.create ~levels:bc.Telemetry.Burst.levels
                      ~origin:cfg.Config.warmup_s
                      ~width:(Config.rtt_prop_s cfg) ()
                  in
                  Netsim.Monitor.arrival_burst pool bottleneck burst;
                  let osc =
                    if bc.Telemetry.Burst.osc_enabled then begin
                      let osc = Telemetry.Burst.Osc.create () in
                      (* Probe the RED control loop through its own state
                         variable: the averaged queue is what the drop
                         decision feeds back on, so its limit cycle is
                         the Hopf signature. Droptail/SFQ get the same
                         smoothed signal from their optional EWMA
                         (enabled here with RED's w_q). *)
                      let qdisc = Netsim.Link.queue_disc bottleneck in
                      (match Netsim.Queue_disc.avg_queue qdisc with
                      | None ->
                          Netsim.Queue_disc.enable_avg qdisc
                            ~w_q:cfg.Config.red_w_q
                      | Some _ -> ());
                      let base =
                        match Netsim.Queue_disc.avg_queue qdisc with
                        | Some _ ->
                            fun () ->
                              Option.value ~default:0.
                                (Netsim.Queue_disc.avg_queue qdisc)
                        | None ->
                            fun () ->
                              float_of_int
                                (Netsim.Link.queue_length bottleneck)
                      in
                      (* Under the hybrid engine the detector watches the
                         combined backlog. RED's average already folds the
                         virtual queue into its samples; other disciplines
                         add it explicitly. *)
                      let signal =
                        match (hybrid, qdisc) with
                        | ( Some h,
                            ( Netsim.Queue_disc.Droptail _
                            | Netsim.Queue_disc.Sfq _ ) ) ->
                            fun () -> base () +. Hybrid.bg_queue h
                        | _ -> base
                      in
                      Netsim.Monitor.osc_sampler ~signal sched bottleneck osc
                        ~every:(Time.of_ms 20.) ~from:cfg.Config.warmup_s
                        ~until:horizon;
                      Some osc
                    end
                    else None
                  in
                  Some (burst, osc)
              | None -> None)
          | None -> None
        in
        let per_flow_binners =
          if measure_sync && cfg.Config.clients >= 2 then begin
            let binners =
              Array.init cfg.Config.clients (fun _ ->
                  Netstats.Binned.create ~origin:cfg.Config.warmup_s
                    ~width:(Config.rtt_prop_s cfg) ())
            in
            Netsim.Link.on_arrival bottleneck (fun now h ->
                let flow = Netsim.Packet_pool.flow pool h in
                if
                  Netsim.Packet_pool.is_data pool h
                  && flow >= 0
                  && flow < Array.length binners
                then Netstats.Binned.record binners.(flow) (Time.to_sec now));
            Some binners
          end
          else None
        in
        let drop_run_list = Netsim.Monitor.drop_run_recorder bottleneck in
        let delay_stats = Netstats.Welford.create () in
        let delay_p99 = Netstats.P2_quantile.create ~q:0.99 in
        let delay_hist =
          match probe with
          | Some p ->
              Some
                (Telemetry.Registry.histogram p.Telemetry.Probe.registry
                   ~help:"Bottleneck one-way delay of data packets" ~lo:0.
                   ~hi:5. ~bins:50 "packet_delay_seconds")
          | None -> None
        in
        Netsim.Link.on_depart bottleneck (fun now h ->
            if
              Netsim.Packet_pool.is_data pool h
              && Time.to_sec now >= cfg.Config.warmup_s
            then begin
              let delay =
                Time.to_sec now
                -. Time.to_sec (Netsim.Packet_pool.sent_at pool h)
              in
              Netstats.Welford.add delay_stats delay;
              Netstats.P2_quantile.add delay_p99 delay;
              match delay_hist with
              | Some h -> Telemetry.Registry.observe h delay
              | None -> ()
            end);
        let queue_series =
          if sample_queue then
            Some
              (Netsim.Monitor.queue_sampler sched bottleneck
                 ~every:(Time.of_ms 10.) ~until:horizon)
          else None
        in
        let sources =
          List.init cfg.Config.clients (fun i ->
              let rng =
                Rng.split_named (Dumbbell.rng net)
                  (Printf.sprintf "client-%d" i)
              in
              let start =
                if cfg.Config.start_stagger_s > 0. then
                  Time.of_sec (Rng.float rng *. cfg.Config.start_stagger_s)
                else Time.zero
              in
              Traffic.Poisson.start sched ~rng
                ~mean_interarrival:cfg.Config.mean_interarrival_s ~start
                ~until:horizon ~sink:(Dumbbell.sink net i))
        in
        ( net,
          sched,
          bottleneck,
          horizon,
          binner,
          burst_state,
          hybrid,
          per_flow_binners,
          drop_run_list,
          delay_stats,
          delay_p99,
          queue_series,
          sources ))
  in
  let run_wall, run_gc =
    let g0 = Telemetry.Perf.gc_read () in
    let t0 = Telemetry.Perf.wall_clock_s () in
    Scheduler.run ~until:horizon sched;
    let dt = Telemetry.Perf.wall_clock_s () -. t0 in
    let gc = Telemetry.Perf.gc_since g0 in
    (match probe with
    | Some p -> Telemetry.Perf.add_s p.Telemetry.Probe.phases "run" dt
    | None -> ());
    (dt, gc)
  in
  (* End-of-run sweep: links free whatever the horizon left queued or in
     flight, and a nonzero live count afterwards means some layer dropped
     a handle without freeing it — fail loudly rather than leak. *)
  Dumbbell.reclaim net;
  let live = Netsim.Packet_pool.live (Dumbbell.pool net) in
  if live <> 0 then
    failwith (Printf.sprintf "Run.run: %d packet(s) leaked from the pool" live);
  let metrics =
    time "collect" (fun () ->
        let counts = Netstats.Binned.counts binner ~upto:cfg.Config.duration_s in
        (* A run shorter than the warm-up has no complete measurement bins. *)
        let cov, mean_per_bin =
          if Array.length counts < 2 then (0., 0.)
          else begin
            let summary = Netstats.Summary.of_array counts in
            (summary.Netstats.Summary.cov, summary.Netstats.Summary.mean)
          end
        in
        let cov_ci95 =
          if Array.length counts >= 20 then
            (Netstats.Batch_means.cov_interval counts)
              .Netstats.Batch_means.half_width_95
          else 0.
        in
        let offered =
          List.fold_left
            (fun acc s -> acc + s.Traffic.Source.generated ())
            0 sources
        in
        let per_client = Dumbbell.per_client_delivered net in
        let stats = Dumbbell.tcp_stats_total net in
        let arrivals = Netsim.Link.arrivals bottleneck in
        let drops = Netsim.Link.drops bottleneck in
        let loss_pct =
          if arrivals = 0 then 0.
          else 100. *. float_of_int drops /. float_of_int arrivals
        in
        let sync_index =
          match per_flow_binners with
          | None -> None
          | Some binners ->
              let rows =
                Array.map
                  (fun b -> Netstats.Binned.counts b ~upto:cfg.Config.duration_s)
                  binners
              in
              if Array.length rows.(0) < 2 then None
              else Some (Netstats.Correlation.mean_pairwise rows)
        in
        let cwnd_traces =
          List.filter_map
            (fun i ->
              match Dumbbell.tcp_sender net i with
              | Some sender ->
                  Some (i, Transport.Tcp_sender.cwnd_trace sender)
              | None -> None)
            trace_clients
        in
        let burst_summary =
          match burst_state with
          | None -> None
          | Some (burst, osc) ->
              Telemetry.Burst.advance burst ~upto:cfg.Config.duration_s;
              Some (Telemetry.Burst.summary ?osc burst)
        in
        let drop_runs = drop_run_list () in
        (* One pass for max, sum and count — the list can hold one entry
           per loss episode of a long run. *)
        let drop_max, drop_sum, drop_count =
          List.fold_left
            (fun (mx, sum, n) len -> (Stdlib.max mx len, sum + len, n + 1))
            (0, 0, 0) drop_runs
        in
        {
          Metrics.scenario;
          clients = cfg.Config.clients;
          cov;
          cov_ci95;
          analytic_cov = Analytic.poisson_cov cfg;
          mean_per_bin;
          offered;
          delivered = Dumbbell.delivered_total net;
          segments_sent = Dumbbell.segments_sent_total net;
          gateway_arrivals = arrivals;
          gateway_drops = drops;
          loss_pct;
          timeouts = stats.Transport.Tcp_stats.timeouts;
          fast_retransmits = stats.Transport.Tcp_stats.fast_retransmits;
          retransmits = stats.Transport.Tcp_stats.retransmits;
          dup_acks = stats.Transport.Tcp_stats.dup_acks;
          timeout_dupack_ratio = Transport.Tcp_stats.timeout_dupack_ratio stats;
          per_client_delivered = per_client;
          jain_fairness = Fairness.jain (Array.map float_of_int per_client);
          sync_index;
          ecn_marks = Dumbbell.gateway_marks net;
          ecn_reactions = Dumbbell.ecn_reactions_total net;
          delay_mean_s = Netstats.Welford.mean delay_stats;
          delay_p99_s =
            (if Netstats.P2_quantile.count delay_p99 = 0 then 0.
             else Netstats.P2_quantile.quantile delay_p99);
          drop_run_max = drop_max;
          drop_run_mean =
            (if drop_count = 0 then 0.
             else float_of_int drop_sum /. float_of_int drop_count);
          cwnd_traces;
          queue_series;
          burst = burst_summary;
          hybrid = Option.map Hybrid.summary hybrid;
        })
  in
  (* Burst exposition: per-run labelled gauges for the registry, plus
     summary records in the flight-recorder stream when lifecycle
     recording is on (the recorder is still live here). *)
  (match (probe, metrics.Metrics.burst) with
  | Some p, Some s ->
      Telemetry.Burst.export p.Telemetry.Probe.registry ~run:run_label s;
      (match recorder with
      | Some r when Telemetry.Recorder.lifecycle r ->
          Telemetry.Burst.record_summary
            (Telemetry.Recorder.lane r 0)
            ~tick:(Time.to_ns horizon)
            ~sid:(Telemetry.Recorder.intern r run_label)
            s
      | _ -> ())
  | _ -> ());
  (* Hybrid exposition: same shape as the burst summaries above. *)
  (match (probe, metrics.Metrics.hybrid) with
  | Some p, Some s ->
      Hybrid.export p.Telemetry.Probe.registry ~run:run_label s;
      (match recorder with
      | Some r when Telemetry.Recorder.lifecycle r ->
          Hybrid.record_summary
            (Telemetry.Recorder.lane r 0)
            ~tick:(Time.to_ns horizon)
            ~sid:(Telemetry.Recorder.intern r run_label)
            s
      | _ -> ())
  | _ -> ());
  (* Lifecycle spans fold the retained records into the probe's metric
     registry while the recorder is still live (tick counters restart
     per segment, so this must happen per run). *)
  (match (probe, recorder) with
  | Some p, Some r when Telemetry.Recorder.lifecycle r ->
      time "spans" (fun () ->
          Telemetry.Spans.of_recorder ~registry:p.Telemetry.Probe.registry r)
  | _ -> ());
  (match probe with
  | Some p ->
      Telemetry.Probe.note_run p ~label:run_label
        ~sim_s:cfg.Config.duration_s ~wall_s:run_wall
        ~events:(Scheduler.events_processed sched)
        ~event_queue_hwm:(Scheduler.queue_high_water_mark sched)
        ~gateway_queue_hwm:(Dumbbell.gateway_queue_high_water_mark net)
        ~arrivals:(Netsim.Link.arrivals bottleneck)
        ~drops:(Netsim.Link.drops bottleneck)
        ~gc:run_gc ()
  | None -> ());
  (* Flow-table sweep, after every metric that reads sender/receiver
     rows: detach all endpoints and assert the slabs drained — the
     flow-level twin of the packet-pool leak check above. *)
  Dumbbell.release_flows net;
  let flows_live = Dumbbell.flows_live net in
  if flows_live <> 0 then
    failwith
      (Printf.sprintf "Run.run: %d flow row(s) leaked from the flow tables"
         flows_live);
  metrics

(* [cfg.shards] selects the engine: 0 keeps the classic single-domain
   scheduler (and its pinned trace digests); K >= 1 runs the sharded
   conservative-PDES engine. [prepare] hooks into the classic topology
   object, which the sharded engine does not build. *)
let run ?probe ?trace_clients ?sample_queue ?measure_sync ?prepare cfg scenario
    =
  if cfg.Config.shards >= 1 then begin
    (match prepare with
    | Some _ ->
        invalid_arg
          "Run.run: ?prepare hooks into the classic engine's topology; it is \
           not supported when cfg.shards >= 1"
    | None -> ());
    Pdes.run ?probe ?trace_clients ?sample_queue ?measure_sync cfg scenario
  end
  else
    run_classic ?probe ?trace_clients ?sample_queue ?measure_sync ?prepare cfg
      scenario
