(** Extension experiment: quantifying congestion-control synchronization.

    §3.2 attributes Reno's heavy-congestion burstiness to "dependency
    between the congestion-control decisions made by multiple TCP streams"
    — flows detect congestion together and halve their windows together.
    The paper shows this with stacked cwnd plots; here we measure it: the
    synchronization index is the mean pairwise Pearson correlation of
    per-flow per-RTT gateway arrival counts ({!Metrics.t.sync_index}).
    Independent Poisson flows sit near 0; synchronized Reno flows rise
    with load. *)

val report : Format.formatter -> Config.t -> int list -> unit
(** Synchronization index and c.o.v. for UDP, Reno, Vegas across client
    counts. *)

val desync_ablation : Format.formatter -> Config.t -> clients:int -> unit
(** What breaks the synchronization: staggered start times (removes the
    time-zero transient), heterogeneous RTTs (staggers the feedback
    loops), their combination, and a fairness-queueing (SFQ) gateway that
    decouples the flows' loss processes — all for Reno. *)
