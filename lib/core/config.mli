(** Experiment configuration — Table 1 of the paper.

    Defaults reconstruct the paper's parameters (see DESIGN.md for the
    OCR-reconstruction rationale): 10 Mbps / 20 ms client links, a
    5 Mbps / 20 ms bottleneck, a 20-packet advertised window, a 50-packet
    gateway buffer, 1500-byte packets, Poisson sources with 0.1 s mean
    spacing, and a 200 s test. *)

type t = {
  clients : int;  (** number of client nodes, the swept variable *)
  client_bandwidth_mbps : float;  (** mu_c *)
  client_delay_s : float;  (** tau_c *)
  bottleneck_bandwidth_mbps : float;  (** mu_s *)
  bottleneck_delay_s : float;  (** tau_s *)
  adv_window : int;  (** TCP max advertised window, packets *)
  buffer_packets : int;  (** gateway buffer B, packets *)
  packet_bytes : int;  (** data-packet size *)
  ack_bytes : int;  (** ACK size *)
  mean_interarrival_s : float;  (** 1/lambda per client *)
  duration_s : float;  (** total test time *)
  warmup_s : float;  (** excluded from burstiness measurement *)
  red_min_th : float;
  red_max_th : float;
  red_max_p : float;
  red_w_q : float;
  vegas : Transport.Vegas.params;
  rto : Transport.Rto.params;
  cwnd_validation : bool;
      (** RFC 2861 congestion-window validation on every sender; off (the
          default) matches 1990s stacks and the paper *)
  pacing : bool;
      (** pace new transmissions at srtt/cwnd instead of ACK-clocked
          bursts; off by default *)
  start_stagger_s : float;
      (** each client's source starts at a uniform offset in
          [\[0, start_stagger_s\]] instead of exactly at t = 0; 0 (the
          default, matching the paper) synchronizes all initial slow
          starts *)
  client_delay_spread_s : float;
      (** client link delays are drawn uniformly from tau_c +/- spread/2;
          0 (the default) gives the paper's homogeneous RTTs *)
  shards : int;
      (** 0 (the default) runs the classic single-domain engine;
          [K >= 1] runs the sharded conservative-PDES engine with the
          client population partitioned over [K] domains ({!Pdes}).
          [K = 1] exercises the windowed machinery serially and is
          bit-identical to any [K > 1] run with the same seed *)
  background : int;
      (** 0 (the default) simulates every flow packet-level; [M >= 1]
          runs the hybrid engine ({!Hybrid}): the [clients] flows stay
          packet-level in the foreground while [M] additional greedy
          background flows drive the bottleneck through the Reno/RED
          fluid ODE, coupled each quantum through a virtual
          service-rate reduction and the RED average-queue EWMA *)
  seed : int64;
}

val default : t
(** Table 1 values with [clients = 1]. *)

val with_clients : t -> int -> t

val validate : t -> unit
(** Checks the cross-field invariants a runnable configuration needs
    (positive rates and delays, warmup < duration, RED thresholds inside
    the buffer, ...). @raise Invalid_argument with a field name. *)

val rtt_prop_s : t -> float
(** Round-trip propagation delay [2 (tau_c + tau_s)] — the c.o.v.
    measurement bin width (§2.2). *)

val offered_load_fraction : t -> float
(** Mean offered load divided by bottleneck capacity; > 1 means the
    network cannot carry the applications' traffic. *)

val saturation_clients : t -> float
(** Number of clients at which mean offered load equals the bottleneck
    capacity (≈ 41.7 with the defaults; the paper observes the crossover
    at 38–39 because of slow-start overshoot). *)

val pp : Format.formatter -> t -> unit
(** Renders Table 1. *)
