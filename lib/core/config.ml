type t = {
  clients : int;
  client_bandwidth_mbps : float;
  client_delay_s : float;
  bottleneck_bandwidth_mbps : float;
  bottleneck_delay_s : float;
  adv_window : int;
  buffer_packets : int;
  packet_bytes : int;
  ack_bytes : int;
  mean_interarrival_s : float;
  duration_s : float;
  warmup_s : float;
  red_min_th : float;
  red_max_th : float;
  red_max_p : float;
  red_w_q : float;
  vegas : Transport.Vegas.params;
  rto : Transport.Rto.params;
  cwnd_validation : bool;
  pacing : bool;
  start_stagger_s : float;
  client_delay_spread_s : float;
  shards : int;
  background : int;
  seed : int64;
}

let default =
  {
    clients = 1;
    client_bandwidth_mbps = 10.;
    client_delay_s = 0.250;
    bottleneck_bandwidth_mbps = 5.;
    bottleneck_delay_s = 0.250;
    adv_window = 20;
    buffer_packets = 50;
    packet_bytes = 1500;
    ack_bytes = 40;
    mean_interarrival_s = 0.1;
    duration_s = 200.;
    warmup_s = 30.;
    red_min_th = 10.;
    red_max_th = 40.;
    red_max_p = 0.02;
    red_w_q = 0.002;
    vegas = Transport.Vegas.default_params;
    rto = Transport.Rto.default_params;
    cwnd_validation = false;
    pacing = false;
    start_stagger_s = 0.;
    client_delay_spread_s = 0.;
    shards = 0;
    background = 0;
    seed = 0xB0257151L;
  }

let with_clients t clients =
  if clients < 1 then invalid_arg "Config.with_clients: clients < 1";
  { t with clients }

let validate t =
  let check name ok = if not ok then invalid_arg ("Config.validate: " ^ name) in
  check "clients" (t.clients >= 1);
  check "client_bandwidth_mbps" (t.client_bandwidth_mbps > 0.);
  check "bottleneck_bandwidth_mbps" (t.bottleneck_bandwidth_mbps > 0.);
  check "client_delay_s" (t.client_delay_s > 0.);
  check "bottleneck_delay_s" (t.bottleneck_delay_s > 0.);
  check "adv_window" (t.adv_window >= 1);
  check "buffer_packets" (t.buffer_packets >= 1);
  check "packet_bytes" (t.packet_bytes > t.ack_bytes && t.ack_bytes > 0);
  check "mean_interarrival_s" (t.mean_interarrival_s > 0.);
  check "duration_s" (t.duration_s > 0.);
  check "warmup_s" (t.warmup_s >= 0. && t.warmup_s < t.duration_s);
  check "red thresholds" (t.red_min_th > 0. && t.red_max_th > t.red_min_th);
  check "red_max_p" (t.red_max_p > 0. && t.red_max_p <= 1.);
  check "red_w_q" (t.red_w_q > 0. && t.red_w_q <= 1.);
  check "start_stagger_s" (t.start_stagger_s >= 0.);
  check "client_delay_spread_s" (t.client_delay_spread_s >= 0.);
  check "shards" (t.shards >= 0);
  check "background" (t.background >= 0)

let rtt_prop_s t = 2. *. (t.client_delay_s +. t.bottleneck_delay_s)

let per_client_bps t = float_of_int (8 * t.packet_bytes) /. t.mean_interarrival_s

let offered_load_fraction t =
  float_of_int t.clients *. per_client_bps t /. (t.bottleneck_bandwidth_mbps *. 1e6)

let saturation_clients t = t.bottleneck_bandwidth_mbps *. 1e6 /. per_client_bps t

let pp ppf t =
  let row fmt = Format.fprintf ppf fmt in
  row "@[<v>";
  row "client link bandwidth (mu_c)        %.4g Mbps@," t.client_bandwidth_mbps;
  row "client link delay (tau_c)           %.4g ms@," (t.client_delay_s *. 1e3);
  row "bottleneck link bandwidth (mu_s)    %.4g Mbps@," t.bottleneck_bandwidth_mbps;
  row "bottleneck link delay (tau_s)       %.4g ms@," (t.bottleneck_delay_s *. 1e3);
  row "TCP max advertised window           %d packets@," t.adv_window;
  row "gateway buffer size (B)             %d packets@," t.buffer_packets;
  row "packet size                         %d bytes@," t.packet_bytes;
  row "avg packet intergeneration time     %.4g s@," t.mean_interarrival_s;
  row "total test time                     %.4g s@," t.duration_s;
  row "TCP Vegas alpha / beta / gamma      %g / %g / %g@," t.vegas.Transport.Vegas.alpha
    t.vegas.Transport.Vegas.beta t.vegas.Transport.Vegas.gamma;
  row "RED min_th / max_th                 %g / %g packets@," t.red_min_th t.red_max_th;
  row "RED max_p / w_q                     %g / %g@," t.red_max_p t.red_w_q;
  row "@]"
