(** Minimal self-contained JSON, for exporting experiment results.

    An alias of {!Telemetry.Json} (where the implementation lives, so the
    telemetry library can serialise without depending on burstcore); the
    type equality below makes values interchangeable between the two.

    Encoder and parser for the JSON subset the exporter emits (all of
    RFC 8259 except surrogate-pair escapes). Round-trip property:
    [parse (to_string v) = Ok v] for every value built from these
    constructors with finite floats. *)

type t = Telemetry.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. @raise Invalid_argument on a non-finite float. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering. *)

val parse : string -> (t, string) result
(** Parses a complete JSON document (numbers with a '.', 'e' or 'E'
    become [Float], others [Int]). The error string includes the
    position. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_float : t -> float option
(** Numeric accessor ([Int] widens). *)
