module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Link = Netsim.Link
module Node = Netsim.Node
module Router = Netsim.Router
module Units = Netsim.Units
module Queue_disc = Netsim.Queue_disc
module Packet_pool = Netsim.Packet_pool

type endpoint =
  | Tcp_end of Transport.Tcp_sender.t * Transport.Tcp_receiver.t
  | Udp_end of Transport.Udp.sender * Transport.Udp.receiver

type t = {
  sched : Scheduler.t;
  rng : Rng.t;
  pool : Packet_pool.t;
  bottleneck : Link.t;
  reverse_bottleneck : Link.t;
  up_links : Link.t array;
  down_links : Link.t array;
  gateway_queue : Queue_disc.t;
  endpoints : endpoint array;
  (* The flow-table groups behind the TCP endpoints ([None] for UDP):
     all N senders share one struct-of-arrays slab, all N receivers
     another — see {!Transport.Tcp_sender.create_group}. *)
  flows : (Transport.Tcp_sender.group * Transport.Tcp_receiver.group) option;
}

let lossless_capacity = 1_000_000
(* Only the gateway buffer is finite in the paper's model; access and
   reverse links never drop. *)

let server_id = 0

let client_id i = i + 1

(* The {!Transport.Cc.variant} tag plus its parameters, if any; window
   bounds default to the advertised window inside [create_group]. *)
let make_cc cfg kind =
  match kind with
  | Scenario.Tahoe -> (Transport.Cc.Tahoe, None)
  | Scenario.Reno -> (Transport.Cc.Reno, None)
  | Scenario.Newreno -> (Transport.Cc.Newreno, None)
  | Scenario.Vegas -> (Transport.Cc.Vegas, Some cfg.Config.vegas)
  | Scenario.Sack -> (Transport.Cc.Sack, None)

let red_params cfg ~ecn_mark ~adaptive =
  {
    Netsim.Red.min_th = cfg.Config.red_min_th;
    max_th = cfg.Config.red_max_th;
    max_p = cfg.Config.red_max_p;
    w_q = cfg.Config.red_w_q;
    capacity = cfg.Config.buffer_packets;
    idle_packet_time =
      float_of_int (8 * cfg.Config.packet_bytes)
      /. (cfg.Config.bottleneck_bandwidth_mbps *. 1e6);
    ecn_mark;
    adaptive;
  }

let gateway_queue ?bus ?recorder cfg scenario rng pool =
  let red ~ecn_mark ~adaptive =
    Queue_disc.red ?bus ?recorder ~name:"gateway"
      ~rng:(Rng.split_named rng "red-gateway")
      ~pool
      (red_params cfg ~ecn_mark ~adaptive)
  in
  match scenario.Scenario.gateway with
  | Scenario.Fifo -> Queue_disc.droptail ~capacity:cfg.Config.buffer_packets
  | Scenario.Red -> red ~ecn_mark:false ~adaptive:false
  | Scenario.Red_ecn -> red ~ecn_mark:true ~adaptive:false
  | Scenario.Red_adaptive -> red ~ecn_mark:false ~adaptive:true
  | Scenario.Sfq_gw -> Queue_disc.sfq ~pool ~capacity:cfg.Config.buffer_packets ()

let create ?bus ?recorder ?(trace_clients = []) cfg scenario =
  Config.validate cfg;
  (* Lifecycle-only recorder hooks (queue-discipline drops, router
     retransmit forwards, receiver reordering) stay unwired in parity
     mode so the binary stream decodes byte-identical to the live
     tracer. TCP senders always get the recorder: their records are the
     binary twins of the bus events. *)
  let lifecycle_recorder =
    match recorder with
    | Some r when Telemetry.Recorder.lifecycle r -> Some r
    | _ -> None
  in
  let n = cfg.Config.clients in
  (* Pre-size the event queue for the steady state: each client holds at
     most a window of data segments plus ACKs in flight (two events per
     packet: tx-done and delivery), plus per-flow timers and a small
     fixed overhead for sampling/warmup events. Over-estimating only
     costs a few words; under-estimating just means one array doubling. *)
  let queue_capacity = 64 + (n * ((4 * cfg.Config.adv_window) + 8)) in
  let sched = Scheduler.create ~queue_capacity () in
  let rng = Rng.create ~seed:cfg.Config.seed in
  (* Live packets at any instant: per client a window of data plus the
     matching ACKs, plus whatever sits in the gateway buffer. *)
  let pool =
    Packet_pool.create
      ~capacity:(64 + (n * ((2 * cfg.Config.adv_window) + 4)) + cfg.Config.buffer_packets)
      ()
  in
  let router = Router.create ?recorder:lifecycle_recorder ~name:"gateway" ~pool () in
  let server = Node.create ~id:server_id ~pool in
  let client_nodes = Array.init n (fun i -> Node.create ~id:(client_id i) ~pool) in
  let client_bw = Units.mbps cfg.Config.client_bandwidth_mbps in
  let bottleneck_bw = Units.mbps cfg.Config.bottleneck_bandwidth_mbps in
  (* Per-client propagation delays: homogeneous by default, optionally
     spread uniformly around tau_c to break RTT synchronization. *)
  let client_delay =
    let spread = cfg.Config.client_delay_spread_s in
    if spread = 0. then fun _ -> Time.of_sec cfg.Config.client_delay_s
    else begin
      let delay_rng = Rng.split_named rng "client-delays" in
      let delays =
        Array.init n (fun _ ->
            let jitter = (Rng.float delay_rng -. 0.5) *. spread in
            Time.of_sec (Stdlib.max 1e-4 (cfg.Config.client_delay_s +. jitter)))
      in
      fun i -> delays.(i)
    end
  in
  let bottleneck_delay = Time.of_sec cfg.Config.bottleneck_delay_s in
  let gateway_queue =
    gateway_queue ?bus ?recorder:lifecycle_recorder cfg scenario rng pool
  in
  (match lifecycle_recorder with
  | Some recorder ->
      Queue_disc.set_recorder gateway_queue ~recorder ~pool ~name:"gateway"
  | None -> ());
  let bottleneck =
    Link.create sched ~name:"bottleneck" ~bandwidth:bottleneck_bw
      ~delay:bottleneck_delay ~queue:gateway_queue ~pool
      ~deliver:(Node.receive server)
  in
  let reverse_bottleneck =
    Link.create sched ~name:"bottleneck-rev" ~bandwidth:bottleneck_bw
      ~delay:bottleneck_delay
      ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
      ~pool
      ~deliver:(Router.receive router)
  in
  Router.set_default router bottleneck;
  let up_links =
    Array.init n (fun i ->
        Link.create sched
          ~name:(Printf.sprintf "up-%d" i)
          ~bandwidth:client_bw ~delay:(client_delay i)
          ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
          ~pool
          ~deliver:(Router.receive router))
  in
  let down_links =
    Array.init n (fun i ->
        Link.create sched
          ~name:(Printf.sprintf "down-%d" i)
          ~bandwidth:client_bw ~delay:(client_delay i)
          ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
          ~pool
          ~deliver:(Node.receive client_nodes.(i)))
  in
  Array.iteri (fun i link -> Router.add_route router ~dst:(client_id i) link) down_links;
  (* One sender group and one receiver group carry every TCP flow:
     attaching a flow claims a row in each slab, so client count scales
     without per-flow records, closures or hashtables. Group creation
     consumes no randomness and schedules nothing, so seed-for-seed
     behaviour is unchanged from the per-flow-record construction. *)
  let flows =
    match scenario.Scenario.transport with
    | Scenario.Udp -> None
    | Scenario.Tcp { cc; delayed_ack } ->
        let ecn_capable = scenario.Scenario.gateway = Scenario.Red_ecn in
        let sack = cc = Scenario.Sack in
        let variant, vegas = make_cc cfg cc in
        let sender_group =
          Transport.Tcp_sender.create_group ~ecn_capable ~sack
            ~cwnd_validation:cfg.Config.cwnd_validation
            ~pacing:cfg.Config.pacing ?bus ?recorder ?vegas ~capacity:n sched
            ~pool ~cc:variant ~rto_params:cfg.Config.rto
            ~mss_bytes:cfg.Config.packet_bytes
            ~adv_window:cfg.Config.adv_window
            ~transmit:(fun ~flow p -> Link.send up_links.(flow) p)
        in
        let receiver_group =
          Transport.Tcp_receiver.create_group ~sack ?recorder ~capacity:n
            sched ~pool ~ack_bytes:cfg.Config.ack_bytes ~delayed_ack
            ~adv_window:cfg.Config.adv_window
            ~transmit:(fun ~flow:_ p -> Link.send reverse_bottleneck p)
        in
        Some (sender_group, receiver_group)
  in
  let endpoints =
    Array.init n (fun i ->
        match (flows, scenario.Scenario.transport) with
        | None, _ | _, Scenario.Udp ->
            let sender =
              Transport.Udp.create_sender sched ~pool ~flow:i ~src:(client_id i)
                ~dst:server_id ~size_bytes:cfg.Config.packet_bytes
                ~transmit:(Link.send up_links.(i))
            in
            Udp_end (sender, Transport.Udp.create_receiver ~pool ())
        | Some (sender_group, receiver_group), Scenario.Tcp _ ->
            let sender =
              Transport.Tcp_sender.attach sender_group ~flow:i
                ~src:(client_id i) ~dst:server_id
                ~trace_cwnd:(List.mem i trace_clients) ()
            in
            let receiver =
              Transport.Tcp_receiver.attach receiver_group ~flow:i
                ~src:server_id ~dst:(client_id i) ()
            in
            Tcp_end (sender, receiver))
  in
  Node.set_handler server (fun h ->
      let flow = Packet_pool.flow pool h in
      if flow >= 0 && flow < n then
        match endpoints.(flow) with
        | Tcp_end (_, receiver) -> Transport.Tcp_receiver.handle_packet receiver h
        | Udp_end (_, receiver) -> Transport.Udp.handle_packet receiver h);
  Array.iteri
    (fun i node ->
      Node.set_handler node (fun h ->
          match endpoints.(i) with
          | Tcp_end (sender, _) -> Transport.Tcp_sender.handle_packet sender h
          | Udp_end _ -> ()))
    client_nodes;
  {
    sched;
    rng;
    pool;
    bottleneck;
    reverse_bottleneck;
    up_links;
    down_links;
    gateway_queue;
    endpoints;
    flows;
  }

let scheduler t = t.sched

let rng t = t.rng

let pool t = t.pool

let bottleneck t = t.bottleneck

let reverse_bottleneck t = t.reverse_bottleneck

let reclaim t =
  Link.reclaim t.bottleneck;
  Link.reclaim t.reverse_bottleneck;
  Array.iter Link.reclaim t.up_links;
  Array.iter Link.reclaim t.down_links

let clients t = Array.length t.endpoints

let sink t i n =
  match t.endpoints.(i) with
  | Tcp_end (sender, _) -> Transport.Tcp_sender.write sender n
  | Udp_end (sender, _) -> Transport.Udp.write sender n

let tcp_sender t i =
  match t.endpoints.(i) with
  | Tcp_end (sender, _) -> Some sender
  | Udp_end _ -> None

let per_client_delivered t =
  Array.map
    (function
      | Tcp_end (_, receiver) -> Transport.Tcp_receiver.delivered receiver
      | Udp_end (_, receiver) -> Transport.Udp.received receiver)
    t.endpoints

let delivered_total t = Array.fold_left ( + ) 0 (per_client_delivered t)

let tcp_stats_total t =
  Array.fold_left
    (fun acc ep ->
      match ep with
      | Tcp_end (sender, _) ->
          Transport.Tcp_stats.add acc (Transport.Tcp_sender.stats sender)
      | Udp_end _ -> acc)
    (Transport.Tcp_stats.create ()) t.endpoints

let gateway_queue_high_water_mark t = Queue_disc.high_water_mark t.gateway_queue

let gateway_marks t =
  match t.gateway_queue with
  | Queue_disc.Red red -> Netsim.Red.marks red
  | Queue_disc.Droptail _ | Queue_disc.Sfq _ -> 0

let ecn_reactions_total t =
  Array.fold_left
    (fun acc ep ->
      match ep with
      | Tcp_end (sender, _) -> acc + Transport.Tcp_sender.ecn_reactions sender
      | Udp_end _ -> acc)
    0 t.endpoints

let segments_sent_total t =
  Array.fold_left
    (fun acc ep ->
      match ep with
      | Tcp_end (sender, _) ->
          acc + (Transport.Tcp_sender.stats sender).Transport.Tcp_stats.segments_sent
      | Udp_end (sender, _) -> acc + Transport.Udp.sent sender)
    0 t.endpoints

(* ------------------------------------------------------------------ *)
(* Flow-table accounting (0 / no-op for UDP scenarios) *)

let release_flows t =
  Array.iter
    (function
      | Tcp_end (sender, receiver) ->
          Transport.Tcp_sender.detach sender;
          Transport.Tcp_receiver.detach receiver
      | Udp_end _ -> ())
    t.endpoints

let flows_live t =
  match t.flows with
  | None -> 0
  | Some (sg, rg) ->
      Netsim.Flow_table.live (Transport.Tcp_sender.table sg)
      + Netsim.Flow_table.live (Transport.Tcp_receiver.table rg)

let flow_table_growths t =
  match t.flows with
  | None -> 0
  | Some (sg, rg) ->
      Netsim.Flow_table.growth_count (Transport.Tcp_sender.table sg)
      + Netsim.Flow_table.growth_count (Transport.Tcp_receiver.table rg)

let flow_table_bytes_per_flow t =
  match t.flows with
  | None -> 0
  | Some (sg, rg) ->
      Netsim.Flow_table.bytes_per_flow (Transport.Tcp_sender.table sg)
      + Netsim.Flow_table.bytes_per_flow (Transport.Tcp_receiver.table rg)

let flow_table_footprint_bytes t =
  match t.flows with
  | None -> 0
  | Some (sg, rg) ->
      Netsim.Flow_table.footprint_bytes (Transport.Tcp_sender.table sg)
      + Netsim.Flow_table.footprint_bytes (Transport.Tcp_receiver.table rg)
