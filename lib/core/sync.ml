let sync_cell m =
  match m.Metrics.sync_index with
  | Some v -> Printf.sprintf "%.4f" v
  | None -> "-"

let report ppf cfg ns =
  Format.fprintf ppf
    "Synchronization index (mean pairwise correlation of per-flow per-RTT \
     arrivals)@.@.";
  let scenarios = [ Scenario.udp; Scenario.reno; Scenario.vegas ] in
  let header =
    "clients"
    :: (List.map (fun s -> Scenario.label s ^ " sync") scenarios
       @ List.map (fun s -> Scenario.label s ^ " cov") scenarios)
  in
  let rows =
    List.map
      (fun n ->
        let ms =
          List.map
            (fun scenario ->
              let cfg = Config.with_clients cfg n in
              let cfg = { cfg with Config.seed = Sweep.seed_for cfg scenario n } in
              Run.run ~measure_sync:true cfg scenario)
            scenarios
        in
        string_of_int n
        :: (List.map sync_cell ms
           @ List.map (fun m -> Render.fmt_float m.Metrics.cov) ms))
      ns
  in
  Render.table ppf ~header ~rows;
  Format.fprintf ppf
    "@.Expected shape: UDP near 0 at every load; Reno rising with load as@.";
  Format.fprintf ppf
    "flows make congestion decisions together; Vegas between the two.@."

let desync_ablation ppf cfg ~clients =
  Format.fprintf ppf
    "Desynchronization ablation, Reno, %d clients: what removes the dependency@.@."
    clients;
  let variants =
    [
      ("baseline (paper)", Fun.id, Scenario.reno);
      ( "staggered starts (0-30 s)",
        (fun cfg -> { cfg with Config.start_stagger_s = 30. }),
        Scenario.reno );
      ( "heterogeneous RTT (+/-100 ms)",
        (fun cfg -> { cfg with Config.client_delay_spread_s = 0.2 }),
        Scenario.reno );
      ( "stagger + heterogeneous RTT",
        (fun cfg ->
          { cfg with Config.start_stagger_s = 30.; client_delay_spread_s = 0.2 }),
        Scenario.reno );
      ("SFQ gateway", Fun.id, Scenario.reno_sfq);
    ]
  in
  let rows =
    List.map
      (fun (label, tweak, scenario) ->
        let cfg = tweak (Config.with_clients cfg clients) in
        let m = Run.run ~measure_sync:true cfg scenario in
        [
          label;
          sync_cell m;
          Render.fmt_float m.Metrics.cov;
          Printf.sprintf "%+.1f%%" (Metrics.cov_inflation_pct m);
          Printf.sprintf "%.2f%%" m.Metrics.loss_pct;
          string_of_int m.Metrics.timeouts;
        ])
      variants
  in
  Render.table ppf ~header:[ "variant"; "sync"; "cov"; "vs poisson"; "loss"; "timeouts" ]
    ~rows
