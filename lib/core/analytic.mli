(** Closed-form baselines for the unmodulated aggregate traffic.

    With [N] independent Poisson clients of rate [lambda], the number of
    packets arriving in a window of [w] seconds is Poisson with mean
    [N lambda w], so its coefficient of variation is [1/sqrt(N lambda w)]
    — the smooth-as-you-aggregate baseline TCP is measured against
    (§2.2, §3.2). *)

val poisson_cov : Config.t -> float
(** Analytic c.o.v. of aggregate Poisson arrivals per round-trip
    propagation delay for the given configuration. *)

val poisson_mean_per_bin : Config.t -> float
(** Expected packets per measurement bin. *)

val poisson_cov_for : clients:int -> rate_per_client:float -> bin_s:float -> float
