type sweep_result = (Scenario.t * Metrics.t list) list

let default_client_counts =
  [ 2; 5; 10; 15; 20; 25; 30; 34; 36; 38; 39; 40; 42; 46; 50; 55; 60 ]

let run_sweep ?pool ?probe ?notify ?(progress = fun _ -> ()) cfg ns =
  match pool with
  | None ->
      List.map
        (fun scenario ->
          progress (Scenario.label scenario);
          (scenario, Sweep.over_clients ?probe ?notify cfg scenario ns))
        Scenario.paper_series
  | Some _ ->
      (* The grid form lets points from different series run
         concurrently; series boundaries no longer order execution, so
         all scenario labels are announced up front. *)
      List.iter (fun s -> progress (Scenario.label s)) Scenario.paper_series;
      Sweep.grid ?pool ?probe ?notify cfg Scenario.paper_series ns

let table1 ppf cfg =
  Format.fprintf ppf "Table 1: simulation parameters@.@.%a@." Config.pp cfg

let clients_of (sweep : sweep_result) =
  match sweep with
  | [] -> []
  | (_, ms) :: _ -> List.map (fun m -> m.Metrics.clients) ms

(* One table with #clients in the first column and one column per series. *)
let metric_table ppf sweep ~scenarios ~extra_first_series ~cell =
  let ns = clients_of sweep in
  let chosen =
    List.filter (fun (s, _) -> List.exists (Scenario.equal s) scenarios) sweep
  in
  let header =
    "clients"
    :: (List.map fst extra_first_series @ List.map (fun (s, _) -> Scenario.label s) chosen)
  in
  let rows =
    List.mapi
      (fun i n ->
        string_of_int n
        :: (List.map (fun (_, f) -> Render.fmt_float (f n)) extra_first_series
           @ List.map
               (fun (_, ms) -> Render.fmt_float (cell (List.nth ms i)))
               chosen))
      ns
  in
  Render.table ppf ~header ~rows

let plot_series ppf sweep ~scenarios ~extra_first_series ~cell =
  let ns = clients_of sweep in
  match ns with
  | [] | [ _ ] -> ()
  | _ ->
      let x_min = float_of_int (List.hd ns) in
      let x_max = float_of_int (List.nth ns (List.length ns - 1)) in
      let glyphs = [| '*'; 'o'; 'x'; '+'; 'v'; '#'; '@' |] in
      let chosen =
        List.filter (fun (s, _) -> List.exists (Scenario.equal s) scenarios) sweep
      in
      let extra =
        List.map
          (fun (label, f) ->
            (label, Array.of_list (List.map (fun n -> f n) ns)))
          extra_first_series
      in
      let measured =
        List.map
          (fun (s, ms) ->
            (Scenario.label s, Array.of_list (List.map cell ms)))
          chosen
      in
      let series =
        List.mapi
          (fun i (label, data) -> (glyphs.(i mod Array.length glyphs), label, data))
          (extra @ measured)
      in
      Render.plot ppf ~x_min ~x_max ~series ()

let fig2 ppf sweep cfg =
  Format.fprintf ppf "Figure 2: coefficient of variation of the aggregated traffic@.@.";
  let analytic n = Analytic.poisson_cov (Config.with_clients cfg n) in
  let extra = [ ("Poisson", analytic) ] in
  metric_table ppf sweep ~scenarios:Scenario.paper_series ~extra_first_series:extra
    ~cell:(fun m -> m.Metrics.cov);
  Format.fprintf ppf "@.";
  plot_series ppf sweep ~scenarios:Scenario.paper_series ~extra_first_series:extra
    ~cell:(fun m -> m.Metrics.cov)

let fig3 ppf sweep =
  Format.fprintf ppf
    "Figure 3: total packets successfully delivered (TCP variants)@.@.";
  metric_table ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> float_of_int m.Metrics.delivered);
  Format.fprintf ppf "@.";
  plot_series ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> float_of_int m.Metrics.delivered)

let fig4 ppf sweep =
  Format.fprintf ppf "Figure 4: packet-loss percentage at the gateway@.@.";
  metric_table ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> m.Metrics.loss_pct);
  Format.fprintf ppf "@.";
  plot_series ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> m.Metrics.loss_pct)

let fig13 ppf sweep =
  Format.fprintf ppf "Figure 13: ratio of timeouts to duplicate ACKs@.@.";
  metric_table ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> m.Metrics.timeout_dupack_ratio);
  Format.fprintf ppf "@.";
  plot_series ppf sweep ~scenarios:Scenario.tcp_series ~extra_first_series:[]
    ~cell:(fun m -> m.Metrics.timeout_dupack_ratio)

let fig2_replicated ?pool ?probe ?notify ppf cfg ns ~replicates =
  Format.fprintf ppf
    "Figure 2 (replicated): c.o.v. as mean +/- std over %d seeds@.@." replicates;
  let per_scenario =
    List.map
      (fun scenario ->
        (scenario, Sweep.replicated ?pool ?probe ?notify cfg scenario ~replicates ns))
      Scenario.paper_series
  in
  let header =
    "clients" :: "Poisson"
    :: List.map (fun (s, _) -> Scenario.label s) per_scenario
  in
  let rows =
    List.mapi
      (fun i n ->
        string_of_int n
        :: Render.fmt_float (Analytic.poisson_cov (Config.with_clients cfg n))
        :: List.map
             (fun (_, rs) ->
               let r = List.nth rs i in
               Printf.sprintf "%.4f+-%.4f" r.Sweep.cov_mean r.Sweep.cov_std)
             per_scenario)
      ns
  in
  Render.table ppf ~header ~rows

let cwnd_figures =
  [
    (5, Scenario.reno, 20);
    (6, Scenario.reno, 30);
    (7, Scenario.reno, 38);
    (8, Scenario.reno, 39);
    (9, Scenario.reno, 60);
    (10, Scenario.vegas, 20);
    (11, Scenario.vegas, 30);
    (12, Scenario.vegas, 60);
  ]

let fig_cwnd ?probe ppf cfg ~scenario ~clients ~label =
  let cfg = Config.with_clients cfg clients in
  let trace_clients = [ 0; clients / 2; clients - 1 ] in
  let trace_clients = List.sort_uniq Int.compare trace_clients in
  let m = Run.run ?probe ~trace_clients cfg scenario in
  Format.fprintf ppf
    "%s: congestion window evolution, %s, %d clients (traced clients %s)@.@." label
    (Scenario.label scenario) clients
    (String.concat ", " (List.map (fun i -> string_of_int (i + 1)) trace_clients));
  let dt = 0.1 in
  let glyphs = [| '*'; 'o'; 'x' |] in
  let series =
    List.mapi
      (fun k (i, trace) ->
        ( glyphs.(k mod Array.length glyphs),
          Printf.sprintf "client %d" (i + 1),
          Netstats.Series.resample trace ~dt ~upto:cfg.Config.duration_s ))
      m.Metrics.cwnd_traces
  in
  Render.plot ppf ~height:18 ~x_min:0. ~x_max:(cfg.Config.duration_s /. dt) ~series ();
  Format.fprintf ppf "  (x axis: time in units of %.1f s)@.@." dt;
  let header = [ "client"; "mean cwnd"; "max cwnd"; "delivered" ] in
  let rows =
    List.map
      (fun (i, trace) ->
        let s = Netstats.Series.value_summary trace in
        [
          string_of_int (i + 1);
          Render.fmt_float s.Netstats.Summary.mean;
          Render.fmt_float s.Netstats.Summary.max;
          string_of_int m.Metrics.per_client_delivered.(i);
        ])
      m.Metrics.cwnd_traces
  in
  Render.table ppf ~header ~rows;
  Format.fprintf ppf
    "aggregate: timeouts=%d fast_rtx=%d loss=%.2f%% cov=%.4f (poisson %.4f)@."
    m.Metrics.timeouts m.Metrics.fast_retransmits m.Metrics.loss_pct m.Metrics.cov
    m.Metrics.analytic_cov

let queue_occupancy ?probe ppf cfg ~clients =
  Format.fprintf ppf
    "Extension figure: gateway queue occupancy, %d clients (B = %d)@.@." clients
    cfg.Config.buffer_packets;
  let cfg = Config.with_clients cfg clients in
  let sampled scenario =
    let m = Run.run ?probe ~sample_queue:true cfg scenario in
    (m, Option.get m.Metrics.queue_series)
  in
  let reno_m, reno_q = sampled Scenario.reno in
  let vegas_m, vegas_q = sampled Scenario.vegas in
  let dt = 0.5 in
  let series =
    [
      ('*', "Reno", Netstats.Series.resample reno_q ~dt ~upto:cfg.Config.duration_s);
      ('o', "Vegas", Netstats.Series.resample vegas_q ~dt ~upto:cfg.Config.duration_s);
    ]
  in
  Render.plot ppf ~height:14 ~x_min:0. ~x_max:cfg.Config.duration_s ~series ();
  Format.fprintf ppf "  (x axis: seconds; y axis: packets queued)@.@.";
  let stats label (m : Metrics.t) q =
    let s = Netstats.Series.value_summary q in
    [
      label;
      Render.fmt_float s.Netstats.Summary.mean;
      Render.fmt_float (Netstats.Summary.quantile (Netstats.Series.values q) 0.99);
      Render.fmt_float s.Netstats.Summary.max;
      Printf.sprintf "%.2f%%" m.Metrics.loss_pct;
    ]
  in
  Render.table ppf
    ~header:[ "protocol"; "mean queue"; "p99 queue"; "max"; "loss" ]
    ~rows:[ stats "Reno" reno_m reno_q; stats "Vegas" vegas_m vegas_q ]
