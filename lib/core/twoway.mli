(** Two-way traffic through the gateway (Zhang, Shenker & Clark 1991).

    The paper's model sends data in one direction only, so ACKs ride an
    uncongested reverse path. Real distributed systems are bidirectional:
    reverse-direction data queues ACKs behind it ("ACK compression"),
    which releases forward data in clumps and adds burstiness beyond
    anything the forward path does on its own. This experiment adds M
    reverse Poisson/TCP flows whose data crosses the reverse bottleneck
    (where the forward ACKs live) and whose ACKs cross the forward
    bottleneck (competing with forward data). *)

type result = {
  forward_clients : int;
  reverse_clients : int;
  forward_cov : float;  (** c.o.v. of forward data per RTT at the gateway *)
  analytic_cov : float;  (** Poisson baseline for the forward aggregate *)
  forward_delivered : int;
  forward_loss_pct : float;  (** forward-bottleneck drops / arrivals *)
  reverse_delivered : int;
}

val run :
  Config.t -> cc:Scenario.cc_kind -> reverse_clients:int -> result
(** Forward clients come from [cfg.clients]; both directions run the same
    TCP variant over Table 1 links with drop-tail gateways on both
    bottleneck directions. @raise Invalid_argument if
    [reverse_clients < 0]. *)

val report : Format.formatter -> Config.t -> unit
(** Forward burstiness and performance with 0, N/2 and N reverse flows,
    for Reno and Vegas, at a moderately loaded forward direction. *)
