module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

(* Hybrid fluid/packet engine.

   K = cfg.clients foreground flows run packet-level as usual; the
   M = cfg.background flows are a homogeneous Reno population reduced to
   its mean-field fluid limit (McDonald & Reynier), co-simulated with
   the packet engine on the shared bottleneck (Frommer et al.). Each
   coupling quantum:

   - the packet side is *measured*: physical queue occupancy [q_pkt],
     foreground arrival/departure rates over the last quantum, and the
     drop/mark probability the gateway is applying (RED's own averaged
     queue drives the fluid loss term, so both populations see the same
     congestion signal);
   - the fluid state [w; q_v] (per-flow background window, virtual
     background backlog) advances by one RK4 step with those inputs
     frozen — the documented O(quantum) coupling error; the window law
     sees the loss signal one round-trip late (the Misra-Gong-Towsley
     delay term), which is what lets the fluid population reproduce
     RED's super-critical limit cycle;
   - the fluid side is *injected* back: the virtual backlog joins RED's
     average-queue samples ({!Netsim.Red.set_virtual_queue}) with a
     closed-form EWMA catch-up for the background arrivals that were
     never physical ({!Netsim.Red.virtual_update}), and the bottleneck's
     serialization times stretch by capacity / foreground-share
     ({!Netsim.Link.set_bg_slowdown}) so foreground packets experience
     the residual bandwidth.

   Everything the quantum tick reads lives on the scheduler's own
   domain, so under the sharded PDES engine the tick runs on the rank-0
   hub and the results stay bit-identical for every shard count. *)

(* ------------------------------------------------------------------ *)
(* The coupled background ODE, exposed for tests.                      *)

module Coupling = struct
  type params = {
    n_bg : float;  (* background flow count *)
    capacity_pps : float;  (* bottleneck line rate, packets/s *)
    base_rtt_s : float;  (* round-trip propagation delay *)
    buffer_packets : float;  (* shared gateway buffer bound *)
    max_window : float;  (* advertised-window clamp, packets *)
  }

  (* Packet-side measurements, frozen for the duration of one quantum. *)
  type inputs = {
    mutable q_pkt : float;  (* physical bottleneck backlog, packets *)
    mutable mu_fg_pps : float;  (* foreground departure rate *)
    mutable p_drop : float;  (* gateway drop/mark probability *)
  }

  let rtt p (i : inputs) q_v =
    p.base_rtt_s +. ((i.q_pkt +. Stdlib.max 0. q_v) /. p.capacity_pps)

  let bg_rate p i ~w ~q_v = p.n_bg *. Stdlib.max w 1e-3 /. rtt p i q_v

  (* State layout: [| w; q_v |]. The window follows the Reno fluid
     law (additive 1/RTT increase, multiplicative w/2 decrease at the
     per-packet loss rate); the virtual backlog absorbs whatever the
     background offers beyond the capacity left over by the measured
     foreground departures. Both clamps mirror [Reno_fluid.field]. *)
  let field p (i : inputs) : Fluidmodel.Ode.system_in_place =
   fun ~t:_ ~y ~dy ->
    let w = Stdlib.max y.(0) 1e-3 in
    let q_v = Stdlib.max y.(1) 0. in
    let r = rtt p i q_v in
    let per_flow_rate = w /. r in
    let arrival = p.n_bg *. per_flow_rate in
    let dw = (1. /. r) -. (w /. 2. *. per_flow_rate *. i.p_drop) in
    let dw = if w >= p.max_window && dw > 0. then 0. else dw in
    let dq =
      let raw = arrival -. Stdlib.max 0. (p.capacity_pps -. i.mu_fg_pps) in
      let full = i.q_pkt +. q_v >= p.buffer_packets in
      if (q_v <= 0. && raw < 0.) || (full && raw > 0.) then 0. else raw
    in
    dy.(0) <- dw;
    dy.(1) <- dq

  let project p (i : inputs) y =
    if y.(0) < 1e-3 then y.(0) <- 1e-3;
    if y.(0) > p.max_window then y.(0) <- p.max_window;
    if y.(1) < 0. then y.(1) <- 0.;
    let room = Stdlib.max 0. (p.buffer_packets -. i.q_pkt) in
    if y.(1) > room then y.(1) <- room

  let step stepper p i ~dt y =
    Fluidmodel.Ode.step_in_place stepper (field p i) ~t:0. ~dt y;
    project p i y

  (* Foreground bandwidth share: below saturation the foreground gets
     whatever the background leaves; past it, its proportional FIFO
     share. [max] makes the two branches continuous at the boundary. *)
  let foreground_share p ~lam_bg ~lam_fg =
    let leftover = p.capacity_pps -. lam_bg in
    let total = lam_bg +. lam_fg in
    let proportional =
      if total > 0. then p.capacity_pps *. lam_fg /. total else leftover
    in
    Stdlib.max leftover proportional

  let max_slowdown = 1e4

  let slowdown p ~lam_bg ~lam_fg =
    let share = foreground_share p ~lam_bg ~lam_fg in
    if share <= p.capacity_pps /. max_slowdown then max_slowdown
    else Stdlib.max 1. (p.capacity_pps /. share)
end

(* ------------------------------------------------------------------ *)
(* The engine attachment.                                              *)

type t = {
  sched : Scheduler.t;
  bottleneck : Netsim.Link.t;
  qdisc : Netsim.Queue_disc.t;
  p : Coupling.params;
  inputs : Coupling.inputs;
  stepper : Fluidmodel.Ode.stepper;
  y : float array;  (* [| w; q_v |] *)
  quantum : Time.span;
  quantum_sf : float;
  horizon : Time.t;
  measure_from : float;
  (* RED linear drop law, for turning the gateway's averaged queue into
     the fluid loss term (mirrors [Reno_fluid.drop_probability]). *)
  red_min_th : float;
  red_max_th : float;
  red_max_p : float;
  (* One-RTT feedback delay on the loss signal (the Misra-Gong-Towsley
     delay term): the fluid window law reacts to the drop probability
     the gateway applied one round-trip ago, not the current one —
     without it the fluid population cannot Hopf-oscillate and the
     super-critical RED regime would look spuriously quiet. Ring of
     per-quantum samples, newest at [p_pos]. *)
  p_hist : float array;
  mutable p_pos : int;
  mutable last_arrivals : int;
  mutable last_departures : int;
  mutable last_drops : int;
  mutable steps : int;
  (* Measurement-window accumulators (post-warmup sums). *)
  mutable m_steps : int;
  mutable sum_w : float;
  mutable sum_qv : float;
  mutable sum_rate : float;
  mutable sum_p : float;
  mutable sum_slow : float;
  mutable sum_comb : float;
  mutable tick : unit -> unit;
}

let default_quantum_s cfg = Stdlib.max 1e-3 (Config.rtt_prop_s cfg /. 20.)

let capacity_pps cfg =
  cfg.Config.bottleneck_bandwidth_mbps *. 1e6
  /. float_of_int (8 * cfg.Config.packet_bytes)

let drop_probability t avg =
  let pb =
    if avg <= t.red_min_th then 0.
    else if avg >= t.red_max_th then 1.
    else
      t.red_max_p *. (avg -. t.red_min_th) /. (t.red_max_th -. t.red_min_th)
  in
  (* Floyd's count mechanism uniformizes inter-drop gaps over
     [1, 1/p_b], so the gateway's effective drop rate is 2p/(1+p), not
     the raw linear law — the packet-level foreground experiences the
     inflated rate, and the fluid population must see the same signal
     or it over-windows by sqrt(2) at equilibrium. *)
  2. *. pb /. (1. +. pb)

let measure t =
  let arr = Netsim.Link.arrivals t.bottleneck in
  let dep = Netsim.Link.departures t.bottleneck in
  let drops = Netsim.Link.drops t.bottleneck in
  let d_arr = arr - t.last_arrivals in
  let d_dep = dep - t.last_departures in
  let d_drop = drops - t.last_drops in
  t.last_arrivals <- arr;
  t.last_departures <- dep;
  t.last_drops <- drops;
  t.inputs.Coupling.q_pkt <-
    float_of_int (Netsim.Link.queue_length t.bottleneck);
  t.inputs.Coupling.mu_fg_pps <- float_of_int d_dep /. t.quantum_sf;
  let p_now =
    match t.qdisc with
    | Netsim.Queue_disc.Red q -> drop_probability t (Netsim.Red.avg q)
    | Netsim.Queue_disc.Droptail _ | Netsim.Queue_disc.Sfq _ ->
        (* No averaged signal to share: the fluid population sees the
           measured foreground drop fraction of the last quantum. *)
        if d_arr = 0 then 0. else float_of_int d_drop /. float_of_int d_arr
  in
  let n = Array.length t.p_hist in
  t.p_pos <- (t.p_pos + 1) mod n;
  t.p_hist.(t.p_pos) <- p_now;
  let r = Coupling.rtt t.p t.inputs t.y.(1) in
  let back =
    Stdlib.min (n - 1) (int_of_float ((r /. t.quantum_sf) +. 0.5))
  in
  t.inputs.Coupling.p_drop <- t.p_hist.((t.p_pos - back + n) mod n);
  float_of_int d_arr /. t.quantum_sf

let quantum_tick t () =
  let lam_fg = measure t in
  Coupling.step t.stepper t.p t.inputs ~dt:t.quantum_sf t.y;
  let w = t.y.(0) and q_v = t.y.(1) in
  let lam_bg = Coupling.bg_rate t.p t.inputs ~w ~q_v in
  Netsim.Queue_disc.set_virtual_queue t.qdisc q_v;
  Netsim.Queue_disc.virtual_update t.qdisc
    ~arrivals:(lam_bg *. t.quantum_sf);
  let slow = Coupling.slowdown t.p ~lam_bg ~lam_fg in
  Netsim.Link.set_bg_slowdown t.bottleneck slow;
  t.steps <- t.steps + 1;
  let now = Scheduler.now t.sched in
  if Time.to_sec now >= t.measure_from then begin
    t.m_steps <- t.m_steps + 1;
    t.sum_w <- t.sum_w +. w;
    t.sum_qv <- t.sum_qv +. q_v;
    t.sum_rate <- t.sum_rate +. lam_bg;
    t.sum_p <- t.sum_p +. t.inputs.Coupling.p_drop;
    t.sum_slow <- t.sum_slow +. slow;
    t.sum_comb <- t.sum_comb +. t.inputs.Coupling.q_pkt +. q_v
  end;
  if Time.(add now t.quantum <= t.horizon) then
    ignore (Scheduler.after t.sched t.quantum t.tick)

let attach ?quantum_s ~sched ~bottleneck cfg =
  if cfg.Config.background < 1 then
    invalid_arg "Hybrid.attach: cfg.background < 1";
  let quantum_sf =
    match quantum_s with
    | Some q ->
        if q <= 0. then invalid_arg "Hybrid.attach: quantum <= 0";
        q
    | None -> default_quantum_s cfg
  in
  let p =
    {
      Coupling.n_bg = float_of_int cfg.Config.background;
      capacity_pps = capacity_pps cfg;
      base_rtt_s = Config.rtt_prop_s cfg;
      buffer_packets = float_of_int cfg.Config.buffer_packets;
      max_window = float_of_int cfg.Config.adv_window;
    }
  in
  (* History deep enough for the worst-case RTT (propagation plus a
     full buffer's queueing delay), capped so a pathological buffer
     cannot demand an unbounded ring — past the cap the delay merely
     saturates. *)
  let hist_len =
    let r_max =
      p.Coupling.base_rtt_s
      +. (p.Coupling.buffer_packets /. p.Coupling.capacity_pps)
    in
    Stdlib.min 4096
      (Stdlib.max 2 (1 + int_of_float (Float.ceil (r_max /. quantum_sf))))
  in
  let t =
    {
      sched;
      bottleneck;
      qdisc = Netsim.Link.queue_disc bottleneck;
      p;
      inputs = { Coupling.q_pkt = 0.; mu_fg_pps = 0.; p_drop = 0. };
      p_hist = Array.make hist_len 0.;
      p_pos = 0;
      stepper = Fluidmodel.Ode.stepper 2;
      y = [| 1.; 0. |];
      quantum = Time.of_sec quantum_sf;
      quantum_sf;
      horizon = Time.of_sec cfg.Config.duration_s;
      measure_from = cfg.Config.warmup_s;
      red_min_th = cfg.Config.red_min_th;
      red_max_th = cfg.Config.red_max_th;
      red_max_p = cfg.Config.red_max_p;
      last_arrivals = 0;
      last_departures = 0;
      last_drops = 0;
      steps = 0;
      m_steps = 0;
      sum_w = 0.;
      sum_qv = 0.;
      sum_rate = 0.;
      sum_p = 0.;
      sum_slow = 0.;
      sum_comb = 0.;
      tick = ignore;
    }
  in
  t.tick <- (fun () -> quantum_tick t ());
  ignore (Scheduler.after sched t.quantum t.tick);
  t

let bg_queue t = t.y.(1)

let bg_window t = t.y.(0)

let steps t = t.steps

let summary t : Metrics.hybrid_summary =
  let n = float_of_int (Stdlib.max 1 t.m_steps) in
  let mean sum = if t.m_steps = 0 then 0. else sum /. n in
  {
    Metrics.background = int_of_float t.p.Coupling.n_bg;
    quantum_s = t.quantum_sf;
    steps = t.steps;
    bg_window_mean = mean t.sum_w;
    bg_queue_mean = mean t.sum_qv;
    bg_rate_mean = mean t.sum_rate;
    bg_drop_mean = mean t.sum_p;
    slowdown_mean = mean t.sum_slow;
    combined_queue_mean = mean t.sum_comb;
  }

(* ------------------------------------------------------------------ *)
(* Exposition, mirroring [Telemetry.Burst.export]/[record_summary].    *)

let export registry ~run (s : Metrics.hybrid_summary) =
  let set name help v =
    Telemetry.Registry.set
      (Telemetry.Registry.gauge registry ~labels:[ ("run", run) ] ~help name)
      v
  in
  set "hybrid_background" "Fluid background flows in the hybrid engine"
    (float_of_int s.Metrics.background);
  set "hybrid_quantum_seconds" "Hybrid coupling quantum" s.Metrics.quantum_s;
  set "hybrid_bg_window" "Mean per-flow background window (packets)"
    s.Metrics.bg_window_mean;
  set "hybrid_bg_queue" "Mean virtual background backlog (packets)"
    s.Metrics.bg_queue_mean;
  set "hybrid_bg_rate" "Mean background arrival rate (packets/s)"
    s.Metrics.bg_rate_mean;
  set "hybrid_bg_drop_probability" "Mean drop/mark probability the ODE saw"
    s.Metrics.bg_drop_mean;
  set "hybrid_slowdown" "Mean bottleneck serialization-time multiplier"
    s.Metrics.slowdown_mean;
  set "hybrid_combined_queue"
    "Mean physical + virtual bottleneck backlog (packets)"
    s.Metrics.combined_queue_mean

let record_summary lane ~tick ~sid (s : Metrics.hybrid_summary) =
  let record kind v =
    Telemetry.Recorder.record lane ~tick ~kind ~flow:(-1)
      ~a:s.Metrics.background
      ~b:(Telemetry.Record.float_hi v)
      ~c:(Telemetry.Record.float_lo v)
      ~sid ~depth:s.Metrics.steps
  in
  record Telemetry.Record.hybrid_bg_window s.Metrics.bg_window_mean;
  record Telemetry.Record.hybrid_bg_queue s.Metrics.bg_queue_mean;
  record Telemetry.Record.hybrid_bg_rate s.Metrics.bg_rate_mean
