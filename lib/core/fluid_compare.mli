(** Fluid model vs. packet simulation.

    The paper's reference [1] (Bonald) compares TCP Reno and Vegas via
    fluid approximation; this driver closes the loop for our reproduction:
    greedy (bulk-transfer) flows are run through the packet simulator and
    the measured steady state is printed next to the fluid equilibria of
    {!Fluidmodel.Reno_fluid} (RED gateway) and {!Fluidmodel.Vegas_fluid}
    (drop-tail). Expected agreement: per-flow windows within ~20 %, queue
    and throughput closer; exact numbers in EXPERIMENTS.md. *)

type comparison = {
  flows : int;
  protocol : string;
  fluid_window : float;
  measured_window : float;
  fluid_queue : float;
  measured_queue : float;
  fluid_throughput_pps : float;
  measured_throughput_pps : float;
}

val compare_reno : Config.t -> flows:int -> comparison
(** Greedy Reno flows over the RED gateway vs. the MGT fluid model. *)

val compare_vegas : Config.t -> flows:int -> comparison
(** Greedy Vegas flows over drop-tail vs. Bonald's equilibrium. *)

val report : Format.formatter -> Config.t -> int list -> unit
(** Both protocols across several flow counts, as a table. *)
