(** Ablation studies for the design claims DESIGN.md calls out.

    These go beyond the paper's figures: each isolates one knob the paper
    discusses qualitatively and measures its effect with everything else
    held at Table 1 values. *)

val buffer_sweep : Format.formatter -> Config.t -> clients:int -> unit
(** Gateway buffer B in {25, 50, 100, 200} packets, Reno vs Vegas.
    Claim (§3.3): Reno performance varies sharply with buffer size; Vegas
    needs little buffer and is insensitive. *)

val red_threshold_sweep : Format.formatter -> Config.t -> clients:int -> unit
(** RED (min_th, max_th) in {(5,15), (10,40), (25,45)} for Reno/RED and
    Vegas/RED. Claim (§3.4): RED makes the buffer look smaller; thresholds
    trade early-drop rate against forced drops. *)

val vegas_alpha_beta_sweep : Format.formatter -> Config.t -> clients:int -> unit
(** Vegas (alpha, beta) in {(1,3), (2,4), (4,8)}. Claim (§3.4): alpha/beta
    set the per-stream queue occupancy, so with N streams the gateway needs
    between alpha*N and beta*N packets of buffer. *)

val cc_comparison : Format.formatter -> Config.t -> int list -> unit
(** Tahoe / Reno / NewReno / SACK / Vegas across client counts — where the
    non-paper variants fall between Reno and Vegas. *)

val ecn_comparison : Format.formatter -> Config.t -> int list -> unit
(** Drop-tail vs RED vs RED+ECN vs Self-Configuring RED for Reno and
    Vegas. ECN turns early drops into marks, so it should recover most of
    RED's throughput loss and cut retransmissions; adaptive RED keeps the
    average queue in band at every load. *)

val latency : Format.formatter -> Config.t -> int list -> unit
(** One-way delay (mean and p99) at the server for Reno, Vegas and their
    RED variants across loads — the quality-of-service metric the paper's
    introduction motivates. Vegas' small queue occupancy should show up
    directly as lower delay. *)

val cwnd_validation : Format.formatter -> Config.t -> int list -> unit
(** RFC 2861 what-if: with congestion-window validation, app-limited flows
    cannot accumulate unused window, which should blunt the send-buffer
    bursts §3.2 identifies. Reno and Vegas, validation off vs on. *)

val pacing : Format.formatter -> Config.t -> int list -> unit
(** TCP pacing what-if (Aggarwal, Savage & Anderson 2000): spreading each
    window over the RTT removes the source-side burst structure entirely —
    the natural "fix" for the phenomenon the paper measures. *)
