(* End-of-run summary of the hybrid engine's fluid background population
   (means over the post-warmup measurement window). Defined here rather
   than in [Hybrid] so [t] needs no dependency on the engine module. *)
type hybrid_summary = {
  background : int;  (* fluid background flows (N - K) *)
  quantum_s : float;  (* coupling quantum *)
  steps : int;  (* ODE quanta taken over the whole run *)
  bg_window_mean : float;  (* mean per-flow background window, packets *)
  bg_queue_mean : float;  (* mean virtual background backlog, packets *)
  bg_rate_mean : float;  (* mean background arrival rate, packets/s *)
  bg_drop_mean : float;  (* mean drop/mark probability the ODE saw *)
  slowdown_mean : float;  (* mean serialization-time multiplier *)
  combined_queue_mean : float;  (* mean physical + virtual backlog, packets *)
}

type t = {
  scenario : Scenario.t;
  clients : int;
  cov : float;
  cov_ci95 : float;
  analytic_cov : float;
  mean_per_bin : float;
  offered : int;
  delivered : int;
  segments_sent : int;
  gateway_arrivals : int;
  gateway_drops : int;
  loss_pct : float;
  timeouts : int;
  fast_retransmits : int;
  retransmits : int;
  dup_acks : int;
  timeout_dupack_ratio : float;
  per_client_delivered : int array;
  jain_fairness : float;
  sync_index : float option;
  ecn_marks : int;
  ecn_reactions : int;
  delay_mean_s : float;
  delay_p99_s : float;
  drop_run_max : int;
  drop_run_mean : float;
  cwnd_traces : (int * Netstats.Series.t) list;
  queue_series : Netstats.Series.t option;
  burst : Telemetry.Burst.summary option;
  hybrid : hybrid_summary option;
}

let cov_inflation_pct t =
  if t.analytic_cov = 0. then 0.
  else 100. *. (t.cov -. t.analytic_cov) /. t.analytic_cov

let pp_row ppf t =
  Format.fprintf ppf
    "%-14s n=%-3d cov=%.4f (poisson %.4f, +%5.1f%%) delivered=%-6d loss=%5.2f%% \
     timeouts=%-4d dupacks=%-5d jain=%.3f"
    (Scenario.label t.scenario)
    t.clients t.cov t.analytic_cov (cov_inflation_pct t) t.delivered t.loss_pct
    t.timeouts t.dup_acks t.jain_fairness
