(* The implementation lives in the telemetry library (which cannot depend
   on burstcore); re-exported here so existing Burstcore.Json users and
   telemetry reports share one JSON type. *)
include Telemetry.Json
