let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e9 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1000. then Printf.sprintf "%.4g" v
  else Printf.sprintf "%.4f" v

let table ppf ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> Stdlib.max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf ppf "%s%s" cell pad
        else Format.fprintf ppf "  %s%s" pad cell)
      row;
    Format.fprintf ppf "@."
  in
  print_row header;
  let total = Array.fold_left ( + ) 0 widths + (2 * (cols - 1)) in
  Format.fprintf ppf "%s@." (String.make total '-');
  List.iter print_row rows

let resample_to width samples =
  let n = Array.length samples in
  if n = 0 then Array.make width nan
  else
    Array.init width (fun c ->
        let idx = c * (n - 1) / Stdlib.max 1 (width - 1) in
        samples.(Stdlib.min idx (n - 1)))

let plot ppf ?(height = 16) ?(width = 72) ~x_min ~x_max ~series () =
  let resampled = List.map (fun (g, l, s) -> (g, l, resample_to width s)) series in
  let ymin, ymax =
    List.fold_left
      (fun (mn, mx) (_, _, s) ->
        Array.fold_left
          (fun (mn, mx) v ->
            if Float.is_nan v then (mn, mx) else (Stdlib.min mn v, Stdlib.max mx v))
          (mn, mx) s)
      (infinity, neg_infinity) resampled
  in
  let ymin, ymax =
    if ymin = infinity then (0., 1.) else if ymin = ymax then (ymin -. 1., ymax +. 1.)
    else (ymin, ymax)
  in
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (glyph, _, s) ->
      Array.iteri
        (fun c v ->
          if not (Float.is_nan v) then begin
            let frac = (v -. ymin) /. (ymax -. ymin) in
            let r = int_of_float (frac *. float_of_int (height - 1)) in
            let r = Stdlib.max 0 (Stdlib.min (height - 1) r) in
            grid.(height - 1 - r).(c) <- glyph
          end)
        s)
    resampled;
  for r = 0 to height - 1 do
    let y = ymax -. (float_of_int r /. float_of_int (height - 1) *. (ymax -. ymin)) in
    Format.fprintf ppf "%10s |%s@." (fmt_float y) (String.init width (fun c -> grid.(r).(c)))
  done;
  Format.fprintf ppf "%10s +%s@." "" (String.make width '-');
  Format.fprintf ppf "%10s  %-*s%s@." "" (width - String.length (fmt_float x_max))
    (fmt_float x_min) (fmt_float x_max);
  List.iter (fun (glyph, label, _) -> Format.fprintf ppf "  %c = %s@." glyph label) series
