(** Hybrid fluid/packet engine: O(1)-in-N background traffic.

    [cfg.clients] foreground flows run packet-level while
    [cfg.background] greedy Reno flows drive the shared bottleneck
    through their mean-field fluid limit, coupled bidirectionally each
    quantum: the packet side is measured (physical queue, foreground
    rates, the gateway's drop probability — fed to the window law one
    round-trip late, the Misra-Gong-Towsley delay term), one RK4 step
    advances the fluid state [\[w; q_v\]] with those inputs frozen, and the fluid
    side is injected back as a virtual RED average-queue contribution
    plus a serialization-time stretch equal to capacity over the
    foreground's bandwidth share. A million background users cost one
    fixed-size ODE step per quantum instead of a million packet
    streams.

    All coupling inputs live on the attaching scheduler's domain, so
    under the sharded PDES engine the quantum runs on the rank-0 hub
    and results stay bit-identical for every shard count. *)

(** The coupled background ODE and injection laws, exposed so tests can
    drive them directly (dt-convergence, clamp behaviour). *)
module Coupling : sig
  type params = {
    n_bg : float;  (** background flow count *)
    capacity_pps : float;  (** bottleneck line rate, packets/s *)
    base_rtt_s : float;  (** round-trip propagation delay, seconds *)
    buffer_packets : float;  (** shared gateway buffer bound *)
    max_window : float;  (** advertised-window clamp, packets *)
  }

  type inputs = {
    mutable q_pkt : float;  (** physical bottleneck backlog, packets *)
    mutable mu_fg_pps : float;  (** measured foreground departure rate *)
    mutable p_drop : float;  (** gateway drop/mark probability *)
  }
  (** Packet-side measurements, frozen for one quantum — the coupling's
      O(quantum) error source. *)

  val rtt : params -> inputs -> float -> float
  (** [rtt p i q_v]: base RTT plus combined (physical + virtual)
      queueing delay. *)

  val bg_rate : params -> inputs -> w:float -> q_v:float -> float
  (** Aggregate background arrival rate [n_bg * w / rtt], packets/s. *)

  val field : params -> inputs -> Fluidmodel.Ode.system_in_place
  (** The coupled vector field over [\[| w; q_v |\]]: Reno's fluid
      window law against [p_drop], and a virtual backlog absorbing
      background arrivals beyond the capacity the measured foreground
      leaves over. Clamped at the empty/full backlog boundaries. *)

  val project : params -> inputs -> float array -> unit
  (** Post-step clamp: [w] into [\[1e-3, max_window\]], [q_v] into
      [\[0, buffer - q_pkt\]]. *)

  val step : Fluidmodel.Ode.stepper -> params -> inputs -> dt:float -> float array -> unit
  (** One projected RK4 step of {!field}, in place and allocation-free. *)

  val foreground_share : params -> lam_bg:float -> lam_fg:float -> float
  (** Bandwidth left to the foreground: [capacity - lam_bg] below
      saturation, the proportional FIFO share past it (continuous at
      the boundary). *)

  val slowdown : params -> lam_bg:float -> lam_fg:float -> float
  (** Serialization-time multiplier [capacity / foreground_share],
      clamped into [\[1, 1e4\]]. *)
end

type t

val default_quantum_s : Config.t -> float
(** The default coupling quantum: a twentieth of the round-trip
    propagation delay, floored at 1 ms — fine enough that the
    window/queue dynamics (which evolve on RTT timescales) see a
    smooth coupling, coarse enough to stay O(1) per simulated RTT. *)

val capacity_pps : Config.t -> float
(** Bottleneck line rate in packets/s (the fluid model's unit). *)

val attach :
  ?quantum_s:float ->
  sched:Sim_engine.Scheduler.t ->
  bottleneck:Netsim.Link.t ->
  Config.t ->
  t
(** Start the coupling: schedules a quantum tick on [sched] (first fire
    one quantum in, self-rescheduling until [cfg.duration_s]) that
    measures the bottleneck, steps the fluid state, and injects the
    virtual queue / EWMA catch-up / serialization stretch back into
    [bottleneck]. Background state starts at [w = 1, q_v = 0] and
    converges over the warmup.
    @raise Invalid_argument if [cfg.background < 1] or
    [quantum_s <= 0]. *)

val bg_window : t -> float
(** Current per-flow background window (packets). *)

val bg_queue : t -> float
(** Current virtual background backlog (packets) — add this to a
    physical queue signal to get the combined backlog under
    disciplines whose average does not already fold it in. *)

val steps : t -> int
(** Quanta taken so far. *)

val summary : t -> Metrics.hybrid_summary
(** Means over the post-warmup measurement window (zeros when the run
    never left the warmup). *)

val export : Telemetry.Registry.t -> run:string -> Metrics.hybrid_summary -> unit
(** Set per-run labelled [hybrid_*] gauges, mirroring
    {!Telemetry.Burst.export}. *)

val record_summary :
  Telemetry.Recorder.lane -> tick:int -> sid:int -> Metrics.hybrid_summary -> unit
(** Append the end-of-run [hybrid_bg_window]/[hybrid_bg_queue]/
    [hybrid_bg_rate] records to a flight-recorder lane. *)
