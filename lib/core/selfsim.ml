module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

type source_kind = Poisson_src | Pareto_src

type row = {
  source : source_kind;
  scenario : Scenario.t;
  hurst_rs : float;
  hurst_vt : float;
  cov : float;
  idc : (int * float) list;
}

let source_label = function
  | Poisson_src -> "Poisson"
  | Pareto_src -> "Pareto on/off"

let bin_width = 0.01

(* Same per-client mean rate as the Poisson workload, but with heavy-tailed
   (shape 1.5, infinite variance) ON and OFF durations. *)
let pareto_params cfg =
  let mean_rate = 1. /. cfg.Config.mean_interarrival_s in
  {
    Traffic.Onoff_pareto.on_shape = 1.5;
    on_mean = 0.5;
    off_shape = 1.5;
    off_mean = 0.5;
    rate = 2. *. mean_rate;
  }

let attach_sources cfg kind net sched horizon =
  List.iter
    (fun i ->
      let rng = Rng.split_named (Dumbbell.rng net) (Printf.sprintf "client-%d" i) in
      let sink = Dumbbell.sink net i in
      match kind with
      | Poisson_src ->
          ignore
            (Traffic.Poisson.start sched ~rng
               ~mean_interarrival:cfg.Config.mean_interarrival_s ~start:Time.zero
               ~until:horizon ~sink)
      | Pareto_src ->
          ignore
            (Traffic.Onoff_pareto.start sched ~rng ~params:(pareto_params cfg)
               ~start:Time.zero ~until:horizon ~sink))
    (List.init cfg.Config.clients Fun.id)

let measure cfg kind scenario =
  let net = Dumbbell.create cfg scenario in
  let sched = Dumbbell.scheduler net in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let binner =
    Netsim.Monitor.arrival_binner (Dumbbell.pool net) (Dumbbell.bottleneck net)
      ~origin:cfg.Config.warmup_s ~width:bin_width
  in
  attach_sources cfg kind net sched horizon;
  Scheduler.run ~until:horizon sched;
  let counts = Netstats.Binned.counts binner ~upto:cfg.Config.duration_s in
  (* The c.o.v. at the paper's RTT bin comes from re-aggregating. *)
  let per_rtt = Stdlib.max 1 (int_of_float (Config.rtt_prop_s cfg /. bin_width)) in
  let rtt_counts =
    Array.init
      (Array.length counts / per_rtt)
      (fun i ->
        let s = ref 0. in
        for j = 0 to per_rtt - 1 do
          s := !s +. counts.((i * per_rtt) + j)
        done;
        !s)
  in
  let cov =
    if Array.length rtt_counts < 2 then 0.
    else (Netstats.Summary.of_array rtt_counts).Netstats.Summary.cov
  in
  {
    source = kind;
    scenario;
    hurst_rs = Netstats.Hurst.estimate_rs counts;
    hurst_vt = Netstats.Hurst.estimate_variance_time counts;
    cov;
    idc = Netstats.Dispersion.idc_profile counts [ 1; 10; 100; 1000 ];
  }

let combos = [ (Poisson_src, Scenario.udp); (Pareto_src, Scenario.udp);
               (Poisson_src, Scenario.reno); (Pareto_src, Scenario.reno) ]

let report ppf cfg =
  let cfg = if cfg.Config.clients < 2 then Config.with_clients cfg 30 else cfg in
  Format.fprintf ppf
    "Self-similarity extension: %d clients, %g s, 10 ms arrival bins@.@."
    cfg.Config.clients cfg.Config.duration_s;
  let rows =
    List.map
      (fun (kind, scenario) ->
        let row = measure cfg kind scenario in
        [
          source_label kind;
          Scenario.label scenario;
          Render.fmt_float row.hurst_rs;
          Render.fmt_float row.hurst_vt;
          Render.fmt_float row.cov;
          String.concat " "
            (List.map (fun (m, v) -> Printf.sprintf "%d:%.2f" m v) row.idc);
        ])
      combos
  in
  Render.table ppf
    ~header:[ "source"; "transport"; "H (R/S)"; "H (var-time)"; "cov@RTT"; "IDC m:v" ]
    ~rows
