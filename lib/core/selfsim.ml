module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

type source_kind = Poisson_src | Pareto_src

type row = {
  source : source_kind;
  scenario : Scenario.t;
  hurst : float;
  cov : float;
  idc : (int * float option) list;
}

let source_label = function
  | Poisson_src -> "Poisson"
  | Pareto_src -> "Pareto on/off"

let bin_width = 0.01

(* 15 dyadic levels over 10 ms bins span 10 ms .. ~164 s; the IDC
   profile reports the scales nearest the old {1, 10, 100, 1000}-bin
   profile. *)
let fine_levels = 15

let idc_levels = [ 0; 4; 7; 10 ] (* block sizes 1, 16, 128, 1024 bins *)

(* Same per-client mean rate as the Poisson workload, but with heavy-tailed
   (shape 1.5, infinite variance) ON and OFF durations. *)
let pareto_params cfg =
  let mean_rate = 1. /. cfg.Config.mean_interarrival_s in
  {
    Traffic.Onoff_pareto.on_shape = 1.5;
    on_mean = 0.5;
    off_shape = 1.5;
    off_mean = 0.5;
    rate = 2. *. mean_rate;
  }

let attach_sources cfg kind net sched horizon =
  List.iter
    (fun i ->
      let rng = Rng.split_named (Dumbbell.rng net) (Printf.sprintf "client-%d" i) in
      let sink = Dumbbell.sink net i in
      match kind with
      | Poisson_src ->
          ignore
            (Traffic.Poisson.start sched ~rng
               ~mean_interarrival:cfg.Config.mean_interarrival_s ~start:Time.zero
               ~until:horizon ~sink)
      | Pareto_src ->
          ignore
            (Traffic.Onoff_pareto.start sched ~rng ~params:(pareto_params cfg)
               ~start:Time.zero ~until:horizon ~sink))
    (List.init cfg.Config.clients Fun.id)

(* Everything streams: a fine-grained dyadic aggregator (10 ms base
   bins) yields the wavelet Hurst slope and the IDC profile, and a
   second one-level aggregator at the paper's RTT bin yields the
   c.o.v. — nothing O(horizon) is stored, so the measurement scales to
   mean-field horizons. The RTT aggregator partitions time identically
   to the old stored-array re-aggregation (same origin, same
   complete-bin truncation), so the c.o.v. column is unchanged. *)
let measure cfg kind scenario =
  let net = Dumbbell.create cfg scenario in
  let sched = Dumbbell.scheduler net in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let pool = Dumbbell.pool net and bottleneck = Dumbbell.bottleneck net in
  let fine =
    Telemetry.Burst.create ~levels:fine_levels ~origin:cfg.Config.warmup_s
      ~width:bin_width ()
  in
  let rtt =
    Telemetry.Burst.create ~levels:1 ~origin:cfg.Config.warmup_s
      ~width:(Config.rtt_prop_s cfg) ()
  in
  Netsim.Monitor.arrival_burst pool bottleneck fine;
  Netsim.Monitor.arrival_burst pool bottleneck rtt;
  attach_sources cfg kind net sched horizon;
  Scheduler.run ~until:horizon sched;
  Telemetry.Burst.advance fine ~upto:cfg.Config.duration_s;
  Telemetry.Burst.advance rtt ~upto:cfg.Config.duration_s;
  {
    source = kind;
    scenario;
    hurst =
      (match Telemetry.Burst.hurst_wavelet fine with
      | Some h -> h
      | None -> 0.5);
    cov = (match Telemetry.Burst.cov rtt 0 with Some c -> c | None -> 0.);
    idc = List.map (fun j -> (1 lsl j, Telemetry.Burst.idc fine j)) idc_levels;
  }

let combos = [ (Poisson_src, Scenario.udp); (Pareto_src, Scenario.udp);
               (Poisson_src, Scenario.reno); (Pareto_src, Scenario.reno) ]

let report ppf cfg =
  let cfg = if cfg.Config.clients < 2 then Config.with_clients cfg 30 else cfg in
  Format.fprintf ppf
    "Self-similarity extension: %d clients, %g s, 10 ms arrival bins@.@."
    cfg.Config.clients cfg.Config.duration_s;
  let rows =
    List.map
      (fun (kind, scenario) ->
        let row = measure cfg kind scenario in
        [
          source_label kind;
          Scenario.label scenario;
          Render.fmt_float row.hurst;
          Render.fmt_float row.cov;
          String.concat " "
            (List.map
               (fun (m, v) ->
                 match v with
                 | Some v -> Printf.sprintf "%d:%.2f" m v
                 | None -> Printf.sprintf "%d:-" m)
               row.idc);
        ])
      combos
  in
  Render.table ppf
    ~header:[ "source"; "transport"; "H (wavelet)"; "cov@RTT"; "IDC m:v" ]
    ~rows
