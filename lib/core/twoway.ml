module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Link = Netsim.Link
module Node = Netsim.Node
module Router = Netsim.Router
module Units = Netsim.Units
module Queue_disc = Netsim.Queue_disc

type result = {
  forward_clients : int;
  reverse_clients : int;
  forward_cov : float;
  analytic_cov : float;
  forward_delivered : int;
  forward_loss_pct : float;
  reverse_delivered : int;
}

(* Node id blocks; gateway side holds forward sources and reverse sinks,
   server side the opposites. *)
let fwd_src_id i = 100 + i

let fwd_dst_id i = 200 + i

let rev_src_id j = 300 + j

let rev_dst_id j = 400 + j

let gateway_side id = (id >= 100 && id < 200) || id >= 400

let make_cc cfg kind =
  match kind with
  | Scenario.Tahoe -> (Transport.Cc.Tahoe, None)
  | Scenario.Reno -> (Transport.Cc.Reno, None)
  | Scenario.Newreno -> (Transport.Cc.Newreno, None)
  | Scenario.Vegas -> (Transport.Cc.Vegas, Some cfg.Config.vegas)
  | Scenario.Sack -> (Transport.Cc.Sack, None)

let run cfg ~cc ~reverse_clients =
  if reverse_clients < 0 then invalid_arg "Twoway.run: negative reverse_clients";
  let n = cfg.Config.clients in
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:cfg.Config.seed in
  let pool =
    Netsim.Packet_pool.create
      ~capacity:
        (64
        + ((n + reverse_clients) * ((2 * cfg.Config.adv_window) + 4))
        + (2 * cfg.Config.buffer_packets))
      ()
  in
  let gw = Router.create ~name:"gw" ~pool () in
  let svr = Router.create ~name:"svr" ~pool () in
  let bw_bottleneck = Units.mbps cfg.Config.bottleneck_bandwidth_mbps in
  let bw_access = Units.mbps cfg.Config.client_bandwidth_mbps in
  let bottleneck_delay = Time.of_sec cfg.Config.bottleneck_delay_s in
  let access_delay = Time.of_sec cfg.Config.client_delay_s in
  (* Both bottleneck directions carry data now: both get the finite
     gateway buffer. *)
  let fwd_bottleneck =
    Link.create sched ~name:"fwd" ~bandwidth:bw_bottleneck ~delay:bottleneck_delay
      ~queue:(Queue_disc.droptail ~capacity:cfg.Config.buffer_packets)
      ~pool
      ~deliver:(Router.receive svr)
  in
  let rev_bottleneck =
    Link.create sched ~name:"rev" ~bandwidth:bw_bottleneck ~delay:bottleneck_delay
      ~queue:(Queue_disc.droptail ~capacity:cfg.Config.buffer_packets)
      ~pool
      ~deliver:(Router.receive gw)
  in
  Router.set_default gw fwd_bottleneck;
  Router.set_default svr rev_bottleneck;
  let handlers : (int, Netsim.Packet_pool.handle -> unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let attach id =
    let node = Node.create ~id ~pool in
    Node.set_handler node (fun h ->
        match Hashtbl.find_opt handlers id with Some f -> f h | None -> ());
    let router = if gateway_side id then gw else svr in
    let up =
      Link.create sched
        ~name:(Printf.sprintf "up-%d" id)
        ~bandwidth:bw_access ~delay:access_delay
        ~queue:(Queue_disc.droptail ~capacity:1_000_000)
        ~pool
        ~deliver:(Router.receive router)
    in
    let down =
      Link.create sched
        ~name:(Printf.sprintf "down-%d" id)
        ~bandwidth:bw_access ~delay:access_delay
        ~queue:(Queue_disc.droptail ~capacity:1_000_000)
        ~pool
        ~deliver:(Node.receive node)
    in
    Router.add_route router ~dst:id down;
    up
  in
  let variant, vegas = make_cc cfg cc in
  let connect ~flow ~src_id ~dst_id =
    let src_up = attach src_id in
    let dst_up = attach dst_id in
    let sender =
      Transport.Tcp_sender.create ?vegas sched ~pool ~cc:variant
        ~rto_params:cfg.Config.rto ~flow ~src:src_id ~dst:dst_id
        ~mss_bytes:cfg.Config.packet_bytes ~adv_window:cfg.Config.adv_window
        ~transmit:(Link.send src_up)
    in
    let receiver =
      Transport.Tcp_receiver.create sched ~pool ~flow ~src:dst_id ~dst:src_id
        ~ack_bytes:cfg.Config.ack_bytes ~delayed_ack:false
        ~adv_window:cfg.Config.adv_window
        ~transmit:(Link.send dst_up)
    in
    Hashtbl.replace handlers src_id (Transport.Tcp_sender.handle_packet sender);
    Hashtbl.replace handlers dst_id (Transport.Tcp_receiver.handle_packet receiver);
    (sender, receiver)
  in
  let forward =
    List.init n (fun i -> connect ~flow:i ~src_id:(fwd_src_id i) ~dst_id:(fwd_dst_id i))
  in
  let rev =
    List.init reverse_clients (fun j ->
        connect ~flow:(n + j) ~src_id:(rev_src_id j) ~dst_id:(rev_dst_id j))
  in
  (* Burstiness of the forward aggregate only: data packets on the forward
     bottleneck (ACKs of reverse flows also cross it but are not data). *)
  let binner =
    Netsim.Monitor.arrival_binner pool fwd_bottleneck ~origin:cfg.Config.warmup_s
      ~width:(Config.rtt_prop_s cfg)
  in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let poisson_into k (sender, _) =
    let rng = Rng.split_named rng (Printf.sprintf "flow-%d" k) in
    ignore
      (Traffic.Poisson.start sched ~rng
         ~mean_interarrival:cfg.Config.mean_interarrival_s ~start:Time.zero
         ~until:horizon
         ~sink:(Transport.Tcp_sender.write sender))
  in
  List.iteri poisson_into forward;
  List.iteri (fun j conn -> poisson_into (n + j) conn) rev;
  Scheduler.run ~until:horizon sched;
  let counts = Netstats.Binned.counts binner ~upto:cfg.Config.duration_s in
  let cov =
    if Array.length counts < 2 then 0.
    else (Netstats.Summary.of_array counts).Netstats.Summary.cov
  in
  let delivered conns =
    List.fold_left
      (fun acc (_, receiver) -> acc + Transport.Tcp_receiver.delivered receiver)
      0 conns
  in
  let arrivals = Link.arrivals fwd_bottleneck and drops = Link.drops fwd_bottleneck in
  {
    forward_clients = n;
    reverse_clients;
    forward_cov = cov;
    analytic_cov = Analytic.poisson_cov cfg;
    forward_delivered = delivered forward;
    forward_loss_pct =
      (if arrivals = 0 then 0. else 100. *. float_of_int drops /. float_of_int arrivals);
    reverse_delivered = delivered rev;
  }

let report ppf cfg =
  let n = if cfg.Config.clients > 1 then cfg.Config.clients else 30 in
  let cfg = Config.with_clients cfg n in
  Format.fprintf ppf
    "Two-way traffic: %d forward clients, reverse flows share the ACK path@.@." n;
  let rows =
    List.concat_map
      (fun (label, cc) ->
        List.map
          (fun reverse_clients ->
            let r = run cfg ~cc ~reverse_clients in
            [
              label;
              string_of_int reverse_clients;
              Render.fmt_float r.forward_cov;
              Printf.sprintf "%+.1f%%"
                (100. *. (r.forward_cov -. r.analytic_cov) /. r.analytic_cov);
              string_of_int r.forward_delivered;
              Printf.sprintf "%.2f%%" r.forward_loss_pct;
              string_of_int r.reverse_delivered;
            ])
          [ 0; n / 2; n ])
      [ ("Reno", Scenario.Reno); ("Vegas", Scenario.Vegas) ]
  in
  Render.table ppf
    ~header:
      [
        "protocol"; "rev flows"; "fwd cov"; "vs poisson"; "fwd delivered";
        "fwd loss"; "rev delivered";
      ]
    ~rows;
  Format.fprintf ppf
    "@.Reverse data queues the forward ACKs (ACK compression), releasing@.";
  Format.fprintf ppf
    "forward segments in clumps: forward burstiness rises with reverse@.";
  Format.fprintf ppf "load even though the forward offered traffic never changes.@."
