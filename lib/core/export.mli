(** Machine-readable experiment output.

    Every run can be exported as JSON (one self-describing document with
    the full configuration, for archival and cross-tool analysis) or CSV
    (one row per run, for spreadsheets and plotting scripts). The JSON
    document embeds the exact configuration and seed, so any exported
    result can be regenerated bit-for-bit. *)

val config_to_json : Config.t -> Json.t

val metrics_to_json : Metrics.t -> Json.t
(** Scalar fields only (traces and series are omitted). *)

val hybrid_summary_to_json : Metrics.hybrid_summary -> Json.t
(** The [hybrid] member of {!metrics_to_json}, exposed for the hybrid
    bench's own artifact. *)

val sweep_to_json : Config.t -> Figures.sweep_result -> Json.t
(** [{ "config": ..., "results": [ ... ] }]. *)

val burst_to_json : Metrics.t list -> Json.t
(** The [--burst-out] artifact: one row per run that carried a
    {!Telemetry.Burst} summary (scenario, clients, offline c.o.v. and
    the full streaming summary). Metrics arrive in input order
    regardless of [-j], so the artifact is deterministic under
    parallel sweeps. *)

val csv_header : string
(** Column names for {!metrics_to_csv_row}, comma-separated. *)

val metrics_to_csv_row : Metrics.t -> string

val sweep_to_csv : Figures.sweep_result -> string
(** Header plus one line per run. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val write_run_report : string -> Telemetry.Report.t -> unit
(** Write a telemetry run report as one JSON document (trailing
    newline); the [report-check] subcommand validates such files. *)
