(** Bandwidth-sharing fairness measures.

    §3.2 observes that Vegas shares the bottleneck more fairly than Reno;
    Jain's index quantifies that claim in our reproduction. *)

val jain : float array -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)], in [(0, 1]]; 1 means
    perfectly equal shares. @raise Invalid_argument on an empty array.
    Returns 1 if all shares are zero. *)

val max_min_ratio : float array -> float
(** [max share / min share]; [infinity] when the minimum is 0 but the
    maximum is not; 1 when all equal. *)
