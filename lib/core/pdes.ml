module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Link = Netsim.Link
module Units = Netsim.Units
module Queue_disc = Netsim.Queue_disc
module Packet_pool = Netsim.Packet_pool
module Team = Parallel.Pool.Team
module EB = Telemetry.Event_bus

(* Sharded conservative PDES over the paper's dumbbell.

   The client population is partitioned into K contiguous shards, each
   owning its clients' access links, transports, timers, packet pool and
   event queue on its own domain; the bottleneck link, RED gateway and
   every bottleneck-anchored measurement live in a hub simulated by rank
   0 (alongside shard 0). All four topology crossings — client data into
   the gateway, gateway data out to the server-side receivers, ACKs into
   the reverse bottleneck, delivered ACKs back down the access links —
   traverse a propagation leg of at least

     W = min(min_i client_delay_i, bottleneck_delay)

   so domains can simulate [W]-wide time windows independently and
   exchange packets at window boundaries with zero rollback: a packet
   emitted inside window [w] cannot arrive before window [w] ends. The
   propagation leg of every boundary link is simulated on the *sending*
   side ({!Link.set_handoff} computes the arrival time at serialization
   end), which keeps per-packet timing identical to a single-domain
   build of the same windowed machinery.

   Determinism: a K-shard run is bit-identical to a 1-shard run of the
   same seed. Per-flow state only ever meets other flows at the hub, and
   every batch crossing a domain boundary is sorted by
   (arrival tick, flow, emission order) before its events are inserted —
   a total order independent of K. Uids come from per-flow counters
   ({!Packet_pool.set_uid_source}) so they do not leak cross-flow
   allocation interleaving, and every RNG stream is split by name from
   the run seed exactly as the classic engine does. Event-bus traces are
   buffered per domain and replayed in canonical (time, line) order. *)

(* ------------------------------------------------------------------ *)
(* Cross-domain packet batches *)

(* One message = [stride] ints: arrival tick, uid, flow, src, dst, size,
   seq-or-ack word, sent-at tick, raw flags word, SACK block count and
   up to four (first, last_exclusive) SACK pairs — everything
   {!Packet_pool.import} needs to rehydrate the packet bit-for-bit. *)
let stride = 18

let max_sack = 4

let idx_mask = (1 lsl 40) - 1

module Msgs = struct
  type t = { mutable buf : int array; mutable len : int; mutable total : int }

  let create () = { buf = Array.make (64 * stride) 0; len = 0; total = 0 }

  let count t = t.len / stride

  let clear t = t.len <- 0

  let ensure t extra =
    if t.len + extra > Array.length t.buf then begin
      let ncap = ref (2 * Array.length t.buf) in
      while t.len + extra > !ncap do
        ncap := 2 * !ncap
      done;
      let nbuf = Array.make !ncap 0 in
      Array.blit t.buf 0 nbuf 0 t.len;
      t.buf <- nbuf
    end

  (* Producer side: copy a live packet's fields in and free it — the
     packet's onward life happens in the destination domain's pool. *)
  let ship t pool arrival h =
    ensure t stride;
    let b = t.len in
    let buf = t.buf in
    buf.(b) <- Time.to_ns arrival;
    buf.(b + 1) <- Packet_pool.uid pool h;
    buf.(b + 2) <- Packet_pool.flow pool h;
    buf.(b + 3) <- Packet_pool.src pool h;
    buf.(b + 4) <- Packet_pool.dst pool h;
    buf.(b + 5) <- Packet_pool.size_bytes pool h;
    buf.(b + 6) <- Packet_pool.word pool h;
    buf.(b + 7) <- Time.to_ns (Packet_pool.sent_at pool h);
    buf.(b + 8) <- Packet_pool.flags_word pool h;
    (match Packet_pool.sack pool h with
    | [] -> buf.(b + 9) <- 0
    | blocks ->
        let k = ref 0 in
        List.iter
          (fun (first, last) ->
            if !k < max_sack then begin
              buf.(b + 10 + (2 * !k)) <- first;
              buf.(b + 11 + (2 * !k)) <- last;
              incr k
            end)
          blocks;
        buf.(b + 9) <- !k);
    t.len <- b + stride;
    t.total <- t.total + 1;
    Packet_pool.free pool h

  let blit_from t src idx =
    ensure t stride;
    Array.blit src.buf (idx * stride) t.buf t.len stride;
    t.len <- t.len + stride
end

(* In-place heapsort of [a.(0 .. n-1)]: allocation-free, and since the
   comparison below is a total order (no two messages compare equal) the
   result does not depend on the algorithm's stability. *)
let sort_prefix a n cmp =
  let swap i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  let rec sift i len =
    let l = (2 * i) + 1 in
    if l < len then begin
      let c = if l + 1 < len && cmp a.(l) a.(l + 1) < 0 then l + 1 else l in
      if cmp a.(i) a.(c) < 0 then begin
        swap i c;
        sift c len
      end
    end
  in
  for i = (n / 2) - 1 downto 0 do
    sift i n
  done;
  for len = n - 1 downto 1 do
    swap 0 len;
    sift 0 len
  done

(* ------------------------------------------------------------------ *)
(* Domain-local topology halves *)

type shard = {
  lo : int;
  n_local : int;
  sched : Scheduler.t;
  pool : Packet_pool.t;
  up_links : Link.t array; (* handoff: propagation simulated sender-side *)
  down_links : Link.t array; (* delay 0: propagation already applied *)
  sender_group : Transport.Tcp_sender.group;
  receiver_group : Transport.Tcp_receiver.group;
  senders : Transport.Tcp_sender.t array;
  receivers : Transport.Tcp_receiver.t array;
  out : Msgs.t; (* to the hub; drained by rank 0 between windows *)
  mutable sources : Traffic.Source.t array;
  events : EB.event list ref; (* tracing buffer, newest first *)
}

type hub = {
  hsched : Scheduler.t;
  hpool : Packet_pool.t;
  bottleneck : Link.t; (* handoff *)
  reverse : Link.t; (* delay 0; deliver routes into [hout] *)
  gateway : Queue_disc.t;
  hout : Msgs.t array; (* one ring per destination shard *)
  hevents : EB.event list ref;
}

(* A destination's import side: R rotating frozen batches (a message
   scheduled at the end of window [w] can fire up to [lmax/W] windows
   later, so batch [w]'s storage must survive until then), a sort
   scratch array and the preallocated keyed-event callback. *)
type inbox = {
  bufs : Msgs.t array;
  mutable order : int array;
  srcs : Msgs.t array;
  cmp : int -> int -> int;
  isched : Scheduler.t;
  import : int -> unit;
}

let make_cmp srcs a b =
  let oa = (a land idx_mask) * stride and ob = (b land idx_mask) * stride in
  let ba = srcs.(a lsr 40).Msgs.buf and bb = srcs.(b lsr 40).Msgs.buf in
  if ba.(oa) <> bb.(ob) then compare ba.(oa) bb.(ob)
  else if ba.(oa + 2) <> bb.(ob + 2) then compare ba.(oa + 2) bb.(ob + 2)
  else compare (a land idx_mask) (b land idx_mask)

let read_sack buf o =
  let n = buf.(o + 9) in
  let rec build k acc =
    if k < 0 then acc
    else build (k - 1) ((buf.(o + 10 + (2 * k)), buf.(o + 11 + (2 * k))) :: acc)
  in
  if n = 0 then [] else build (n - 1) []

let import_packet pool buf o =
  Packet_pool.import pool ~uid:buf.(o + 1) ~flow:buf.(o + 2) ~src:buf.(o + 3)
    ~dst:buf.(o + 4) ~size_bytes:buf.(o + 5) ~word:buf.(o + 6)
    ~sent_at:(Time.of_ns buf.(o + 7))
    ~flags:buf.(o + 8) ~sack:(read_sack buf o)

(* Rank 0, between barriers: sort this window's batch, copy it into the
   rotation slot and schedule one keyed import event per message. The
   sorted insertion order fixes the destination queue's tie-break
   sequence numbers identically for every K. *)
let merge_window inbox ~window =
  let total = Array.fold_left (fun acc s -> acc + Msgs.count s) 0 inbox.srcs in
  if total > 0 then begin
    if Array.length inbox.order < total then
      inbox.order <- Array.make (2 * total) 0;
    let order = inbox.order in
    let k = ref 0 in
    Array.iteri
      (fun ring src ->
        for idx = 0 to Msgs.count src - 1 do
          order.(!k) <- (ring lsl 40) lor idx;
          incr k
        done)
      inbox.srcs;
    sort_prefix order total inbox.cmp;
    let slot = window mod Array.length inbox.bufs in
    let buf = inbox.bufs.(slot) in
    Msgs.clear buf;
    for i = 0 to total - 1 do
      let e = order.(i) in
      let src = inbox.srcs.(e lsr 40) in
      Msgs.blit_from buf src (e land idx_mask);
      let arrival = Time.of_ns buf.Msgs.buf.(i * stride) in
      ignore
        (Scheduler.at_keyed inbox.isched arrival inbox.import
           ((slot lsl 40) lor i))
    done
  end;
  Array.iter Msgs.clear inbox.srcs

(* ------------------------------------------------------------------ *)
(* Window size: the conservative lookahead *)

let min_client_delay_s cfg =
  if cfg.Config.client_delay_spread_s = 0. then cfg.Config.client_delay_s
  else
    Stdlib.max 1e-4
      (cfg.Config.client_delay_s -. (cfg.Config.client_delay_spread_s /. 2.))

let window_s cfg =
  Stdlib.min cfg.Config.bottleneck_delay_s (min_client_delay_s cfg)

let max_lag_s cfg =
  Stdlib.max cfg.Config.bottleneck_delay_s
    (cfg.Config.client_delay_s +. (cfg.Config.client_delay_spread_s /. 2.))

(* ------------------------------------------------------------------ *)

let lossless_capacity = 1_000_000

let run ?probe ?(trace_clients = []) ?(sample_queue = false)
    ?(measure_sync = false) cfg scenario =
  Config.validate cfg;
  if cfg.Config.shards < 1 then invalid_arg "Pdes.run: shards < 1";
  let cc, delayed_ack =
    match scenario.Scenario.transport with
    | Scenario.Tcp { cc; delayed_ack } -> (cc, delayed_ack)
    | Scenario.Udp ->
        invalid_arg "Pdes.run: UDP scenarios need the classic engine (shards = 0)"
  in
  let n = cfg.Config.clients in
  let shards_n = Stdlib.min cfg.Config.shards n in
  let time name f = Telemetry.Probe.time probe name f in
  let tracing =
    match probe with
    | Some p when EB.has_subscribers p.Telemetry.Probe.bus -> true
    | Some _ | None -> false
  in
  let run_label =
    Printf.sprintf "%s n=%d shards=%d" (Scenario.label scenario) n shards_n
  in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let wspan = Stdlib.max 1 (Time.to_ns (Time.of_sec (window_s cfg))) in
  let windows = ((Time.to_ns horizon + wspan) - 1) / wspan in
  let rotation =
    2 + int_of_float (Float.ceil (max_lag_s cfg /. window_s cfg))
  in
  let lo_of s = s * n / shards_n in
  let shard_of = Array.make n 0 in
  for s = 0 to shards_n - 1 do
    for i = lo_of s to lo_of (s + 1) - 1 do
      shard_of.(i) <- s
    done
  done;
  (* Per-client propagation delays, drawn in client order from the same
     named stream as the classic engine — one global pass so the draws
     are independent of the sharding. *)
  let delays =
    let spread = cfg.Config.client_delay_spread_s in
    if spread = 0. then
      Array.make n (Time.of_sec cfg.Config.client_delay_s)
    else begin
      let delay_rng =
        Rng.split_named (Rng.create ~seed:cfg.Config.seed) "client-delays"
      in
      Array.init n (fun _ ->
          let jitter = (Rng.float delay_rng -. 0.5) *. spread in
          Time.of_sec (Stdlib.max 1e-4 (cfg.Config.client_delay_s +. jitter)))
    end
  in
  (* Per-flow uid counters: uids become a pure function of per-flow
     history, so they cannot leak cross-flow allocation interleaving
     (which is the one thing that differs between shardings). *)
  let uid_count = Array.make n 0 in
  let uid_source flow =
    let u = ((flow + 1) lsl 32) lor uid_count.(flow) in
    uid_count.(flow) <- uid_count.(flow) + 1;
    u
  in
  let client_bw = Units.mbps cfg.Config.client_bandwidth_mbps in
  let bottleneck_bw = Units.mbps cfg.Config.bottleneck_bandwidth_mbps in
  let bottleneck_delay = Time.of_sec cfg.Config.bottleneck_delay_s in
  let server_id = 0 in
  let client_id i = i + 1 in
  let ( hub,
        shards,
        binner,
        burst_state,
        hybrid,
        per_flow_binners,
        drop_run_list,
        delay_stats,
        delay_p99,
        queue_series,
        inboxes ) =
    time "setup" (fun () ->
        (* --- hub ------------------------------------------------- *)
        let hsched =
          Scheduler.create
            ~queue_capacity:(64 + (n * ((2 * cfg.Config.adv_window) + 8)))
            ()
        in
        let hpool =
          Packet_pool.create
            ~capacity:
              (64 + cfg.Config.buffer_packets
              + (n * (cfg.Config.adv_window + 2)))
            ()
        in
        let hbus = if tracing then Some (EB.create ()) else None in
        let hevents = ref [] in
        (match hbus with
        | Some b -> ignore (EB.subscribe b (fun e -> hevents := e :: !hevents))
        | None -> ());
        let hrng = Rng.create ~seed:cfg.Config.seed in
        let gateway =
          Dumbbell.gateway_queue ?bus:hbus cfg scenario hrng hpool
        in
        let hout = Array.init shards_n (fun _ -> Msgs.create ()) in
        let bottleneck =
          Link.create hsched ~name:"bottleneck" ~bandwidth:bottleneck_bw
            ~delay:bottleneck_delay ~queue:gateway ~pool:hpool
            ~deliver:(fun _ -> assert false)
        in
        Link.set_handoff bottleneck (fun arrival h ->
            let s = shard_of.(Packet_pool.flow hpool h) in
            Msgs.ship hout.(s) hpool arrival h);
        (* The reverse bottleneck's propagation was already applied on
           the shard side (the ACK arrives here [bottleneck_delay] after
           the receiver emitted it), so this half only serializes; the
           downstream access-link propagation is applied now, on the
           sending side of the next crossing. *)
        let reverse =
          Link.create hsched ~name:"bottleneck-rev" ~bandwidth:bottleneck_bw
            ~delay:Time.zero
            ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
            ~pool:hpool
            ~deliver:(fun _ -> assert false)
        in
        Link.set_handoff reverse (fun arrival h ->
            let flow = Packet_pool.flow hpool h in
            Msgs.ship hout.(shard_of.(flow)) hpool
              (Time.add arrival delays.(flow))
              h);
        (match hbus with
        | Some b -> Link.publish bottleneck b
        | None -> ());
        let hub = { hsched; hpool; bottleneck; reverse; gateway; hout; hevents } in
        (* --- shards ---------------------------------------------- *)
        let ecn_capable = scenario.Scenario.gateway = Scenario.Red_ecn in
        let sack = cc = Scenario.Sack in
        let variant, vegas = Dumbbell.make_cc cfg cc in
        let shards =
          Array.init shards_n (fun s ->
              let lo = lo_of s in
              let n_local = lo_of (s + 1) - lo in
              let sched =
                Scheduler.create
                  ~queue_capacity:
                    (64 + (n_local * ((4 * cfg.Config.adv_window) + 8)))
                  ()
              in
              let pool =
                Packet_pool.create
                  ~capacity:(64 + (n_local * ((2 * cfg.Config.adv_window) + 4)))
                  ()
              in
              Packet_pool.set_uid_source pool (Some uid_source);
              let bus = if tracing then Some (EB.create ()) else None in
              let events = ref [] in
              (match bus with
              | Some b ->
                  ignore (EB.subscribe b (fun e -> events := e :: !events))
              | None -> ());
              let out = Msgs.create () in
              let up_links =
                Array.init n_local (fun j ->
                    let i = lo + j in
                    let link =
                      Link.create sched
                        ~name:(Printf.sprintf "up-%d" i)
                        ~bandwidth:client_bw ~delay:delays.(i)
                        ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
                        ~pool
                        ~deliver:(fun _ -> assert false)
                    in
                    Link.set_handoff link (fun arrival h ->
                        Msgs.ship out pool arrival h);
                    link)
              in
              let sender_group =
                Transport.Tcp_sender.create_group ~ecn_capable ~sack
                  ~cwnd_validation:cfg.Config.cwnd_validation
                  ~pacing:cfg.Config.pacing ?bus ?vegas ~capacity:n_local sched
                  ~pool ~cc:variant ~rto_params:cfg.Config.rto
                  ~mss_bytes:cfg.Config.packet_bytes
                  ~adv_window:cfg.Config.adv_window
                  ~transmit:(fun ~flow p -> Link.send up_links.(flow - lo) p)
              in
              (* The receiver's ACK leaves the server for the reverse
                 bottleneck; that crossing's propagation is pre-applied
                 here so the hub half can serialize with zero delay. *)
              let receiver_group =
                Transport.Tcp_receiver.create_group ~sack ~capacity:n_local
                  sched ~pool ~ack_bytes:cfg.Config.ack_bytes ~delayed_ack
                  ~adv_window:cfg.Config.adv_window
                  ~transmit:(fun ~flow:_ p ->
                    Msgs.ship out pool
                      (Time.add (Scheduler.now sched) bottleneck_delay)
                      p)
              in
              let senders =
                Array.init n_local (fun j ->
                    let i = lo + j in
                    Transport.Tcp_sender.attach sender_group ~flow:i
                      ~src:(client_id i) ~dst:server_id
                      ~trace_cwnd:(List.mem i trace_clients) ())
              in
              let receivers =
                Array.init n_local (fun j ->
                    let i = lo + j in
                    Transport.Tcp_receiver.attach receiver_group ~flow:i
                      ~src:server_id ~dst:(client_id i) ())
              in
              let down_links =
                Array.init n_local (fun j ->
                    Link.create sched
                      ~name:(Printf.sprintf "down-%d" (lo + j))
                      ~bandwidth:client_bw ~delay:Time.zero
                      ~queue:(Queue_disc.droptail ~capacity:lossless_capacity)
                      ~pool
                      ~deliver:(fun h ->
                        Transport.Tcp_sender.handle_packet senders.(j) h;
                        Packet_pool.free pool h))
              in
              {
                lo;
                n_local;
                sched;
                pool;
                up_links;
                down_links;
                sender_group;
                receiver_group;
                senders;
                receivers;
                out;
                sources = [||];
                events;
              })
        in
        (* Poisson sources, per-client named streams as in the classic
           engine; attached after construction like [Run.run]. *)
        Array.iter
          (fun sh ->
            let master = Rng.create ~seed:cfg.Config.seed in
            sh.sources <-
              Array.init sh.n_local (fun j ->
                  let i = sh.lo + j in
                  let rng =
                    Rng.split_named master (Printf.sprintf "client-%d" i)
                  in
                  let start =
                    if cfg.Config.start_stagger_s > 0. then
                      Time.of_sec (Rng.float rng *. cfg.Config.start_stagger_s)
                    else Time.zero
                  in
                  let sender = sh.senders.(j) in
                  Traffic.Poisson.start sh.sched ~rng
                    ~mean_interarrival:cfg.Config.mean_interarrival_s ~start
                    ~until:horizon
                    ~sink:(fun k -> Transport.Tcp_sender.write sender k)))
          shards;
        (* --- bottleneck-anchored measurement (all hub-side) ------- *)
        (* Hybrid engine: the quantum tick lives on the hub scheduler and
           reads only hub-local state (bottleneck counters, gateway
           average), so the fluid coupling is invariant under the shard
           count — the K-invariance guarantee extends to hybrid runs. *)
        let hybrid =
          if cfg.Config.background >= 1 then
            Some (Hybrid.attach ~sched:hsched ~bottleneck cfg)
          else None
        in
        let binner =
          Netsim.Monitor.arrival_binner hpool bottleneck
            ~origin:cfg.Config.warmup_s ~width:(Config.rtt_prop_s cfg)
        in
        let burst_state =
          match probe with
          | Some p -> (
              match Telemetry.Probe.burst_config p with
              | Some bc ->
                  let burst =
                    Telemetry.Burst.create ~levels:bc.Telemetry.Burst.levels
                      ~origin:cfg.Config.warmup_s
                      ~width:(Config.rtt_prop_s cfg) ()
                  in
                  Netsim.Monitor.arrival_burst hpool bottleneck burst;
                  let osc =
                    if bc.Telemetry.Burst.osc_enabled then begin
                      let osc = Telemetry.Burst.Osc.create () in
                      let qdisc = Link.queue_disc bottleneck in
                      (match Queue_disc.avg_queue qdisc with
                      | None ->
                          Queue_disc.enable_avg qdisc ~w_q:cfg.Config.red_w_q
                      | Some _ -> ());
                      let base =
                        match Queue_disc.avg_queue qdisc with
                        | Some _ ->
                            fun () ->
                              Option.value ~default:0.
                                (Queue_disc.avg_queue qdisc)
                        | None ->
                            fun () -> float_of_int (Link.queue_length bottleneck)
                      in
                      let signal =
                        match (hybrid, qdisc) with
                        | Some h, (Queue_disc.Droptail _ | Queue_disc.Sfq _) ->
                            fun () -> base () +. Hybrid.bg_queue h
                        | _ -> base
                      in
                      Netsim.Monitor.osc_sampler ~signal hsched bottleneck osc
                        ~every:(Time.of_ms 20.) ~from:cfg.Config.warmup_s
                        ~until:horizon;
                      Some osc
                    end
                    else None
                  in
                  Some (burst, osc)
              | None -> None)
          | None -> None
        in
        let per_flow_binners =
          if measure_sync && n >= 2 then begin
            let binners =
              Array.init n (fun _ ->
                  Netstats.Binned.create ~origin:cfg.Config.warmup_s
                    ~width:(Config.rtt_prop_s cfg) ())
            in
            Link.on_arrival bottleneck (fun now h ->
                let flow = Packet_pool.flow hpool h in
                if
                  Packet_pool.is_data hpool h
                  && flow >= 0
                  && flow < Array.length binners
                then Netstats.Binned.record binners.(flow) (Time.to_sec now));
            Some binners
          end
          else None
        in
        let drop_run_list = Netsim.Monitor.drop_run_recorder bottleneck in
        let delay_stats = Netstats.Welford.create () in
        let delay_p99 = Netstats.P2_quantile.create ~q:0.99 in
        let delay_hist =
          match probe with
          | Some p ->
              Some
                (Telemetry.Registry.histogram p.Telemetry.Probe.registry
                   ~help:"Bottleneck one-way delay of data packets" ~lo:0.
                   ~hi:5. ~bins:50 "packet_delay_seconds")
          | None -> None
        in
        Link.on_depart bottleneck (fun now h ->
            if
              Packet_pool.is_data hpool h
              && Time.to_sec now >= cfg.Config.warmup_s
            then begin
              let delay =
                Time.to_sec now -. Time.to_sec (Packet_pool.sent_at hpool h)
              in
              Netstats.Welford.add delay_stats delay;
              Netstats.P2_quantile.add delay_p99 delay;
              match delay_hist with
              | Some hist -> Telemetry.Registry.observe hist delay
              | None -> ()
            end);
        let queue_series =
          if sample_queue then
            Some
              (Netsim.Monitor.queue_sampler hsched bottleneck
                 ~every:(Time.of_ms 10.) ~until:horizon)
          else None
        in
        (* --- inboxes: one import side per destination domain ------ *)
        let hub_inbox =
          let srcs = Array.map (fun sh -> sh.out) shards in
          let bufs = Array.init rotation (fun _ -> Msgs.create ()) in
          let import key =
            let buf = bufs.(key lsr 40).Msgs.buf in
            let o = (key land idx_mask) * stride in
            let h = import_packet hpool buf o in
            if Packet_pool.kind hpool h = Packet_pool.Tcp_ack then
              Link.send reverse h
            else Link.send bottleneck h
          in
          { bufs; order = [||]; srcs; cmp = make_cmp srcs; isched = hsched; import }
        in
        let shard_inboxes =
          Array.mapi
            (fun s sh ->
              let srcs = [| hout.(s) |] in
              let bufs = Array.init rotation (fun _ -> Msgs.create ()) in
              let import key =
                let buf = bufs.(key lsr 40).Msgs.buf in
                let o = (key land idx_mask) * stride in
                let h = import_packet sh.pool buf o in
                let j = Packet_pool.flow sh.pool h - sh.lo in
                if Packet_pool.kind sh.pool h = Packet_pool.Tcp_ack then
                  Link.send sh.down_links.(j) h
                else begin
                  Transport.Tcp_receiver.handle_packet sh.receivers.(j) h;
                  Packet_pool.free sh.pool h
                end
              in
              {
                bufs;
                order = [||];
                srcs;
                cmp = make_cmp srcs;
                isched = sh.sched;
                import;
              })
            shards
        in
        ( hub,
          shards,
          binner,
          burst_state,
          hybrid,
          per_flow_binners,
          drop_run_list,
          delay_stats,
          delay_p99,
          queue_series,
          (hub_inbox, shard_inboxes) ))
  in
  let hub_inbox, shard_inboxes = inboxes in
  (* Per-rank worker probes: shard phase timers and counters travel back
     through the same {!Telemetry.Probe.merge} path parallel sweeps use. *)
  let worker_probes =
    match probe with
    | Some p -> Array.init shards_n (fun _ -> Telemetry.Probe.create_like p)
    | None -> [||]
  in
  let gc_by_rank = Array.make shards_n Telemetry.Perf.gc_zero in
  let run_wall, run_gc =
    let t0 = Telemetry.Perf.wall_clock_s () in
    Team.with_team ~domains:shards_n (fun team ->
        Team.run team (fun rank ->
            let g0 = Telemetry.Perf.gc_read () in
            let w0 = Telemetry.Perf.wall_clock_s () in
            for w = 1 to windows do
              let upto =
                if w = windows then horizon else Time.of_ns (w * wspan)
              in
              Scheduler.run ~until:upto shards.(rank).sched;
              if rank = 0 then Scheduler.run ~until:upto hub.hsched;
              Team.barrier team;
              if rank = 0 && w < windows then begin
                merge_window hub_inbox ~window:w;
                Array.iter (fun ib -> merge_window ib ~window:w) shard_inboxes
              end;
              Team.barrier team
            done;
            gc_by_rank.(rank) <- Telemetry.Perf.gc_since g0;
            if Array.length worker_probes > 0 then
              Telemetry.Perf.add_s
                worker_probes.(rank).Telemetry.Probe.phases "shard-run"
                (Telemetry.Perf.wall_clock_s () -. w0)));
    let dt = Telemetry.Perf.wall_clock_s () -. t0 in
    let gc =
      Array.fold_left
        (fun acc g ->
          {
            Telemetry.Perf.minor_words =
              acc.Telemetry.Perf.minor_words +. g.Telemetry.Perf.minor_words;
            promoted_words =
              acc.Telemetry.Perf.promoted_words
              +. g.Telemetry.Perf.promoted_words;
            major_collections =
              acc.Telemetry.Perf.major_collections
              + g.Telemetry.Perf.major_collections;
          })
        Telemetry.Perf.gc_zero gc_by_rank
    in
    (match probe with
    | Some p -> Telemetry.Perf.add_s p.Telemetry.Probe.phases "run" dt
    | None -> ());
    (dt, gc)
  in
  (* Replay buffered domain traces into the probe bus in canonical
     (time, serialized line) order — a total order over the run's event
     multiset that no sharding can perturb. *)
  (match probe with
  | Some p when tracing ->
      time "trace-merge" (fun () ->
          let all =
            Array.fold_left
              (fun acc sh -> List.rev_append !(sh.events) acc)
              (List.rev !(hub.hevents))
              shards
          in
          let tagged =
            Array.of_list (List.rev_map (fun e -> (EB.time e, EB.to_ndjson e, e)) all)
          in
          Array.sort
            (fun (ta, la, _) (tb, lb, _) ->
              if ta <> tb then compare ta tb else compare la lb)
            tagged;
          Array.iter
            (fun (_, _, e) -> EB.publish p.Telemetry.Probe.bus e)
            tagged)
  | Some _ | None -> ());
  (* Reclaim and leak-check every pool: shard access links, then the hub
     links. Messages still sitting in cross-domain rings were freed when
     shipped, so a clean run drains to zero everywhere. *)
  Array.iter
    (fun sh ->
      Array.iter Link.reclaim sh.up_links;
      Array.iter Link.reclaim sh.down_links)
    shards;
  Link.reclaim hub.bottleneck;
  Link.reclaim hub.reverse;
  let live =
    Packet_pool.live hub.hpool
    + Array.fold_left (fun acc sh -> acc + Packet_pool.live sh.pool) 0 shards
  in
  if live <> 0 then
    failwith (Printf.sprintf "Pdes.run: %d packet(s) leaked from the pools" live);
  let sender_of i = shards.(shard_of.(i)).senders.(i - shards.(shard_of.(i)).lo) in
  let receiver_of i =
    shards.(shard_of.(i)).receivers.(i - shards.(shard_of.(i)).lo)
  in
  let metrics =
    time "collect" (fun () ->
        let counts = Netstats.Binned.counts binner ~upto:cfg.Config.duration_s in
        let cov, mean_per_bin =
          if Array.length counts < 2 then (0., 0.)
          else begin
            let summary = Netstats.Summary.of_array counts in
            (summary.Netstats.Summary.cov, summary.Netstats.Summary.mean)
          end
        in
        let cov_ci95 =
          if Array.length counts >= 20 then
            (Netstats.Batch_means.cov_interval counts)
              .Netstats.Batch_means.half_width_95
          else 0.
        in
        let offered =
          let acc = ref 0 in
          Array.iter
            (fun sh ->
              Array.iter
                (fun s -> acc := !acc + s.Traffic.Source.generated ())
                sh.sources)
            shards;
          !acc
        in
        let per_client =
          Array.init n (fun i -> Transport.Tcp_receiver.delivered (receiver_of i))
        in
        let stats =
          let acc = ref (Transport.Tcp_stats.create ()) in
          for i = 0 to n - 1 do
            acc :=
              Transport.Tcp_stats.add !acc
                (Transport.Tcp_sender.stats (sender_of i))
          done;
          !acc
        in
        let arrivals = Link.arrivals hub.bottleneck in
        let drops = Link.drops hub.bottleneck in
        let loss_pct =
          if arrivals = 0 then 0.
          else 100. *. float_of_int drops /. float_of_int arrivals
        in
        let sync_index =
          match per_flow_binners with
          | None -> None
          | Some binners ->
              let rows =
                Array.map
                  (fun b -> Netstats.Binned.counts b ~upto:cfg.Config.duration_s)
                  binners
              in
              if Array.length rows.(0) < 2 then None
              else Some (Netstats.Correlation.mean_pairwise rows)
        in
        let cwnd_traces =
          List.filter_map
            (fun i ->
              if i >= 0 && i < n then
                Some (i, Transport.Tcp_sender.cwnd_trace (sender_of i))
              else None)
            trace_clients
        in
        let burst_summary =
          match burst_state with
          | None -> None
          | Some (burst, osc) ->
              Telemetry.Burst.advance burst ~upto:cfg.Config.duration_s;
              Some (Telemetry.Burst.summary ?osc burst)
        in
        let drop_runs = drop_run_list () in
        let drop_max, drop_sum, drop_count =
          List.fold_left
            (fun (mx, sum, k) len -> (Stdlib.max mx len, sum + len, k + 1))
            (0, 0, 0) drop_runs
        in
        let delivered_total = Array.fold_left ( + ) 0 per_client in
        let ecn_reactions =
          let acc = ref 0 in
          for i = 0 to n - 1 do
            acc := !acc + Transport.Tcp_sender.ecn_reactions (sender_of i)
          done;
          !acc
        in
        let gateway_marks =
          match hub.gateway with
          | Queue_disc.Red red -> Netsim.Red.marks red
          | Queue_disc.Droptail _ | Queue_disc.Sfq _ -> 0
        in
        {
          Metrics.scenario;
          clients = n;
          cov;
          cov_ci95;
          analytic_cov = Analytic.poisson_cov cfg;
          mean_per_bin;
          offered;
          delivered = delivered_total;
          segments_sent = stats.Transport.Tcp_stats.segments_sent;
          gateway_arrivals = arrivals;
          gateway_drops = drops;
          loss_pct;
          timeouts = stats.Transport.Tcp_stats.timeouts;
          fast_retransmits = stats.Transport.Tcp_stats.fast_retransmits;
          retransmits = stats.Transport.Tcp_stats.retransmits;
          dup_acks = stats.Transport.Tcp_stats.dup_acks;
          timeout_dupack_ratio = Transport.Tcp_stats.timeout_dupack_ratio stats;
          per_client_delivered = per_client;
          jain_fairness = Fairness.jain (Array.map float_of_int per_client);
          sync_index;
          ecn_marks = gateway_marks;
          ecn_reactions;
          delay_mean_s = Netstats.Welford.mean delay_stats;
          delay_p99_s =
            (if Netstats.P2_quantile.count delay_p99 = 0 then 0.
             else Netstats.P2_quantile.quantile delay_p99);
          drop_run_max = drop_max;
          drop_run_mean =
            (if drop_count = 0 then 0.
             else float_of_int drop_sum /. float_of_int drop_count);
          cwnd_traces;
          queue_series;
          burst = burst_summary;
          hybrid = Option.map Hybrid.summary hybrid;
        })
  in
  (match (probe, metrics.Metrics.burst) with
  | Some p, Some s ->
      Telemetry.Burst.export p.Telemetry.Probe.registry ~run:run_label s
  | _ -> ());
  (match (probe, metrics.Metrics.hybrid) with
  | Some p, Some s ->
      Hybrid.export p.Telemetry.Probe.registry ~run:run_label s
  | _ -> ());
  (match probe with
  | Some p ->
      (* Shard-side telemetry rides worker probes through the sweep-
         proven merge path: per-shard boundary-message counters and the
         shard-run phase timers fold into the main registry here. *)
      Array.iteri
        (fun s wp ->
          let c =
            Telemetry.Registry.counter wp.Telemetry.Probe.registry
              ~help:"Packets shipped across PDES shard boundaries"
              ~labels:[ ("shard", string_of_int s) ]
              "pdes_boundary_packets_total"
          in
          Telemetry.Registry.inc
            ~by:(shards.(s).out.Msgs.total + hub.hout.(s).Msgs.total)
            c;
          Telemetry.Probe.merge ~into:p wp)
        worker_probes;
      let events =
        Scheduler.events_processed hub.hsched
        + Array.fold_left
            (fun acc sh -> acc + Scheduler.events_processed sh.sched)
            0 shards
      in
      let eq_hwm =
        Array.fold_left
          (fun acc sh -> Stdlib.max acc (Scheduler.queue_high_water_mark sh.sched))
          (Scheduler.queue_high_water_mark hub.hsched)
          shards
      in
      Telemetry.Probe.note_run p ~label:run_label ~sim_s:cfg.Config.duration_s
        ~wall_s:run_wall ~events ~event_queue_hwm:eq_hwm
        ~gateway_queue_hwm:(Queue_disc.high_water_mark hub.gateway)
        ~arrivals:(Link.arrivals hub.bottleneck)
        ~drops:(Link.drops hub.bottleneck)
        ~gc:run_gc ()
  | None -> ());
  Array.iter
    (fun sh ->
      Array.iter Transport.Tcp_sender.detach sh.senders;
      Array.iter Transport.Tcp_receiver.detach sh.receivers)
    shards;
  let flows_live =
    Array.fold_left
      (fun acc sh ->
        acc
        + Netsim.Flow_table.live (Transport.Tcp_sender.table sh.sender_group)
        + Netsim.Flow_table.live
            (Transport.Tcp_receiver.table sh.receiver_group))
      0 shards
  in
  if flows_live <> 0 then
    failwith
      (Printf.sprintf "Pdes.run: %d flow row(s) leaked from the flow tables"
         flows_live);
  metrics
