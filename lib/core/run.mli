(** Execute one experiment: build the dumbbell, attach Poisson sources and
    monitors, run to the configured duration, and collect {!Metrics}. *)

val run :
  ?probe:Telemetry.Probe.t ->
  ?trace_clients:int list ->
  ?sample_queue:bool ->
  ?measure_sync:bool ->
  ?prepare:(Dumbbell.t -> unit) ->
  Config.t ->
  Scenario.t ->
  Metrics.t
(** [probe] (default absent) instruments the run: the setup/run/collect
    phases are timed, scheduler and gateway counters are folded into the
    probe's registry after the run, a [packet_delay_seconds] histogram is
    observed, and — only while the probe's bus has subscribers — the
    bottleneck link, RED gateway and TCP senders publish their events
    there. [trace_clients] selects client indices whose congestion-window
    evolution is recorded (ignored for UDP); [sample_queue] (default
    false) additionally samples the gateway queue length every 10 ms;
    [measure_sync] (default false) computes {!Metrics.t.sync_index} from
    per-flow gateway arrival counts. [prepare] runs after the topology is
    built but before any traffic flows — attach tracers or extra monitors
    there.

    [cfg.shards] selects the engine: 0 (the default) runs the classic
    single-domain scheduler; [K >= 1] dispatches to the sharded
    conservative-PDES engine ({!Pdes.run}), which parallelises this one
    run over [K] domains with K-invariant bit-identical results.
    [prepare] is rejected with [Invalid_argument] when [cfg.shards >= 1]
    (there is no single topology object to hook into). *)
