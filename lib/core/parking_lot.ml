module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Link = Netsim.Link
module Node = Netsim.Node
module Router = Netsim.Router
module Units = Netsim.Units
module Queue_disc = Netsim.Queue_disc

type result = {
  hops : int;
  long_throughput_pps : float;
  cross_throughput_pps : float;
  long_share : float;
  jain_all : float;
}

(* Node ids: the long flow's endpoints, then per-hop cross endpoints. *)
let long_src_id = 1

let long_dst_id = 2

let cross_src_id k = 100 + k

let cross_dst_id k = 200 + k

let access_delay = Time.of_ms 10.

type endpoint = {
  sender : Transport.Tcp_sender.t option;
  receiver : Transport.Tcp_receiver.t option;
}

let run ?(adv_window = 600) cfg ~cc ~hops ~cross_per_hop ~duration_s =
  if hops < 1 then invalid_arg "Parking_lot.run: hops < 1";
  if cross_per_hop < 0 then invalid_arg "Parking_lot.run: negative cross_per_hop";
  let cfg = { cfg with Config.adv_window } in
  let sched = Scheduler.create () in
  let pool =
    Netsim.Packet_pool.create
      ~capacity:
        (64
        + ((1 + (hops * cross_per_hop)) * ((2 * adv_window) + 4))
        + ((hops + 1) * cfg.Config.buffer_packets))
      ()
  in
  let bottleneck_bw = Units.mbps cfg.Config.bottleneck_bandwidth_mbps in
  let access_bw = Units.mbps cfg.Config.client_bandwidth_mbps in
  let hop_delay = Time.of_sec cfg.Config.bottleneck_delay_s in
  let routers =
    Array.init (hops + 1) (fun k ->
        Router.create ~name:(Printf.sprintf "R%d" k) ~pool ())
  in
  (* Forward bottlenecks F_k : R_k -> R_k+1 and lossless reverses. *)
  let forward =
    Array.init hops (fun k ->
        Link.create sched
          ~name:(Printf.sprintf "hop-%d" k)
          ~bandwidth:bottleneck_bw ~delay:hop_delay
          ~queue:(Queue_disc.droptail ~capacity:cfg.Config.buffer_packets)
          ~pool
          ~deliver:(Router.receive routers.(k + 1)))
  in
  let reverse =
    Array.init hops (fun k ->
        Link.create sched
          ~name:(Printf.sprintf "hop-%d-rev" k)
          ~bandwidth:bottleneck_bw ~delay:hop_delay
          ~queue:(Queue_disc.droptail ~capacity:1_000_000)
          ~pool
          ~deliver:(Router.receive routers.(k)))
  in
  (* Endpoint bookkeeping: node, its router, its access links. *)
  let endpoints : (int, endpoint) Hashtbl.t = Hashtbl.create 16 in
  let nodes : (int, Node.t) Hashtbl.t = Hashtbl.create 16 in
  let attach ~id ~router_idx =
    let node = Node.create ~id ~pool in
    Hashtbl.replace nodes id node;
    let up =
      Link.create sched
        ~name:(Printf.sprintf "up-%d" id)
        ~bandwidth:access_bw ~delay:access_delay
        ~queue:(Queue_disc.droptail ~capacity:1_000_000)
        ~pool
        ~deliver:(Router.receive routers.(router_idx))
    in
    let down =
      Link.create sched
        ~name:(Printf.sprintf "down-%d" id)
        ~bandwidth:access_bw ~delay:access_delay
        ~queue:(Queue_disc.droptail ~capacity:1_000_000)
        ~pool
        ~deliver:(Node.receive node)
    in
    (node, up, down)
  in
  (* Routing: walk the chain toward the router the destination hangs off,
     then take its down link. *)
  let route_all ~dst_id ~at_router ~down =
    Array.iteri
      (fun k router ->
        if k = at_router then Router.add_route router ~dst:dst_id down
        else if k < at_router then Router.add_route router ~dst:dst_id forward.(k)
        else Router.add_route router ~dst:dst_id reverse.(k - 1))
      routers
  in
  let adv = cfg.Config.adv_window in
  let mk_connection ~flow ~src_id ~src_router ~dst_id ~dst_router =
    let _, src_up, src_down = attach ~id:src_id ~router_idx:src_router in
    let _, dst_up, dst_down = attach ~id:dst_id ~router_idx:dst_router in
    route_all ~dst_id ~at_router:dst_router ~down:dst_down;
    route_all ~dst_id:src_id ~at_router:src_router ~down:src_down;
    let variant, vegas =
      match cc with
      | Scenario.Tahoe -> (Transport.Cc.Tahoe, None)
      | Scenario.Reno -> (Transport.Cc.Reno, None)
      | Scenario.Newreno -> (Transport.Cc.Newreno, None)
      | Scenario.Vegas -> (Transport.Cc.Vegas, Some cfg.Config.vegas)
      | Scenario.Sack -> (Transport.Cc.Sack, None)
    in
    let sack = cc = Scenario.Sack in
    let sender =
      Transport.Tcp_sender.create ~sack ?vegas sched ~pool ~cc:variant
        ~rto_params:cfg.Config.rto ~flow ~src:src_id ~dst:dst_id
        ~mss_bytes:cfg.Config.packet_bytes ~adv_window:adv
        ~transmit:(Link.send src_up)
    in
    let receiver =
      Transport.Tcp_receiver.create ~sack sched ~pool ~flow ~src:dst_id
        ~dst:src_id ~ack_bytes:cfg.Config.ack_bytes ~delayed_ack:false
        ~adv_window:adv
        ~transmit:(Link.send dst_up)
    in
    Hashtbl.replace endpoints src_id { sender = Some sender; receiver = None };
    Hashtbl.replace endpoints dst_id { sender = None; receiver = Some receiver };
    (sender, receiver)
  in
  let long = mk_connection ~flow:0 ~src_id:long_src_id ~src_router:0 ~dst_id:long_dst_id ~dst_router:hops in
  let crosses =
    List.concat_map
      (fun k ->
        List.map
          (fun j ->
            let idx = (k * cross_per_hop) + j in
            mk_connection ~flow:(idx + 1)
              ~src_id:(cross_src_id idx) ~src_router:k
              ~dst_id:(cross_dst_id idx) ~dst_router:(k + 1))
          (List.init cross_per_hop Fun.id))
      (List.init hops Fun.id)
  in
  (* Node handlers dispatch to the endpoint that lives there. *)
  Hashtbl.iter
    (fun id node ->
      let ep = Hashtbl.find endpoints id in
      Node.set_handler node (fun h ->
          match ep with
          | { sender = Some s; _ } -> Transport.Tcp_sender.handle_packet s h
          | { receiver = Some r; _ } -> Transport.Tcp_receiver.handle_packet r h
          | _ -> ()))
    nodes;
  (* Greedy sources everywhere. *)
  List.iter
    (fun (sender, _) -> Transport.Tcp_sender.write sender Traffic.Bulk.infinite_backlog_size)
    (long :: crosses);
  let half = duration_s /. 2. in
  let at_half = Hashtbl.create 16 in
  ignore
    (Scheduler.at sched (Time.of_sec half) (fun () ->
         List.iteri
           (fun i (_, receiver) ->
             Hashtbl.replace at_half i (Transport.Tcp_receiver.delivered receiver))
           (long :: crosses)));
  Scheduler.run ~until:(Time.of_sec duration_s) sched;
  let rates =
    List.mapi
      (fun i (_, receiver) ->
        let before = Option.value (Hashtbl.find_opt at_half i) ~default:0 in
        float_of_int (Transport.Tcp_receiver.delivered receiver - before)
        /. (duration_s -. half))
      (long :: crosses)
  in
  let long_rate, cross_rates =
    match rates with r :: rest -> (r, rest) | [] -> assert false
  in
  let capacity =
    cfg.Config.bottleneck_bandwidth_mbps *. 1e6
    /. float_of_int (8 * cfg.Config.packet_bytes)
  in
  let fair = capacity /. float_of_int (1 + cross_per_hop) in
  {
    hops;
    long_throughput_pps = long_rate;
    cross_throughput_pps =
      (if cross_rates = [] then 0.
       else List.fold_left ( +. ) 0. cross_rates /. float_of_int (List.length cross_rates));
    long_share = long_rate /. fair;
    jain_all = Fairness.jain (Array.of_list rates);
  }

let report ppf cfg =
  Format.fprintf ppf
    "Parking lot: one long flow vs per-hop cross traffic (greedy, 1 cross/hop)@.@.";
  let rows =
    List.concat_map
      (fun hops ->
        List.map
          (fun (label, cc) ->
            let r = run cfg ~cc ~hops ~cross_per_hop:1 ~duration_s:120. in
            [
              string_of_int hops;
              label;
              Render.fmt_float r.long_throughput_pps;
              Render.fmt_float r.cross_throughput_pps;
              Printf.sprintf "%.2f" r.long_share;
              Render.fmt_float r.jain_all;
            ])
          [
            ("Reno", Scenario.Reno);
            ("NewReno", Scenario.Newreno);
            ("SACK", Scenario.Sack);
            ("Vegas", Scenario.Vegas);
          ])
      [ 2; 3; 4 ]
  in
  Render.table ppf
    ~header:[ "hops"; "protocol"; "long pps"; "cross pps"; "long share"; "jain" ]
    ~rows;
  Format.fprintf ppf
    "@.'long share' is the long flow's throughput over its per-hop fair@.";
  Format.fprintf ppf
    "share; < 1 means multi-hop flows lose to single-hop cross traffic.@."
