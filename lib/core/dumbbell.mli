(** The paper's network model (Figure 1): N clients on dedicated access
    links into a common gateway, one bottleneck link to the server.

    Building a dumbbell wires nodes, links, the gateway router, the queue
    discipline under test and one transport connection per client; traffic
    sources are attached separately through {!sink}, so the same topology
    serves the paper's Poisson workload and the bulk-transfer examples. *)

type t

val create :
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?trace_clients:int list ->
  Config.t ->
  Scenario.t ->
  t
(** Fresh scheduler, RNG streams, packet pool, topology and transports.
    When [bus] is given it is wired into the RED gateway queue (as
    ["gateway"]) and every TCP sender, so queue-discipline decisions and
    congestion reactions publish there. When [recorder] is given, TCP
    senders log congestion decisions to it; if the recorder is in
    lifecycle mode, the gateway queue discipline, router and receivers
    are wired too (drops, retransmit forwards, reordering).
    [trace_clients] (default none) lists client indices whose senders
    record a congestion-window trace; tracing costs boxed floats per
    ACK, so it is opt-in. *)

val make_cc :
  Config.t ->
  Scenario.cc_kind ->
  Transport.Cc.variant * Transport.Cc.vegas_params option
(** The congestion-control variant tag plus its parameters, if any —
    shared with the sharded {!Pdes} builder. *)

val gateway_queue :
  ?bus:Telemetry.Event_bus.t ->
  ?recorder:Telemetry.Recorder.t ->
  Config.t ->
  Scenario.t ->
  Sim_engine.Rng.t ->
  Netsim.Packet_pool.t ->
  Netsim.Queue_disc.t
(** Build the scenario's gateway queue discipline (RED splits
    ["red-gateway"] off the given master RNG) — shared with {!Pdes}. *)

val scheduler : t -> Sim_engine.Scheduler.t

val rng : t -> Sim_engine.Rng.t
(** The run's master RNG; split it for sources. *)

val pool : t -> Netsim.Packet_pool.t
(** The packet pool every node, link and transport of this topology
    allocates from. *)

val reclaim : t -> unit
(** Free every packet still queued or in flight on any link — call after
    the scheduler stops so {!Netsim.Packet_pool.live} returns 0 for a
    leak-free run. *)

val bottleneck : t -> Netsim.Link.t
(** The gateway → server link whose queue is the discipline under test. *)

val reverse_bottleneck : t -> Netsim.Link.t

val sink : t -> int -> int -> unit
(** [sink t i n] submits [n] application packets on client [i]'s
    transport. *)

val clients : t -> int

val tcp_sender : t -> int -> Transport.Tcp_sender.t option
(** [None] for UDP scenarios. *)

val per_client_delivered : t -> int array
(** In-order segments (TCP) or datagrams (UDP) delivered per client. *)

val delivered_total : t -> int

val tcp_stats_total : t -> Transport.Tcp_stats.t
(** All-zero for UDP scenarios. *)

val segments_sent_total : t -> int
(** Data packets put on the wire by all clients (TCP: includes
    retransmissions; UDP: datagrams). *)

val gateway_queue_high_water_mark : t -> int
(** Peak gateway queue occupancy (packets) seen so far. *)

val gateway_marks : t -> int
(** ECN CE marks applied by the gateway queue (0 for FIFO / non-ECN RED). *)

val ecn_reactions_total : t -> int
(** Window reductions the senders performed in response to ECE echoes. *)

(** {2 Flow-table accounting}

    TCP endpoints live as rows of two shared struct-of-arrays slabs
    (one sender table, one receiver table); UDP scenarios report 0 and
    release is a no-op. *)

val release_flows : t -> unit
(** Detach every TCP endpoint, cancelling its timers and freeing its
    rows — call after metrics are collected so {!flows_live} returns 0
    for a leak-free run. *)

val flows_live : t -> int
(** Rows still allocated across both tables. *)

val flow_table_growths : t -> int
(** Capacity doublings across both tables; 0 means the client-count
    pre-size held for the whole run. *)

val flow_table_bytes_per_flow : t -> int
(** Bytes one flow costs across both tables — the figure the flows
    bench gates (≤ 512 B at the paper's advertised window). *)

val flow_table_footprint_bytes : t -> int
(** Total slab bytes at current capacity. *)
