let config_to_json (c : Config.t) =
  Json.Obj
    [
      ("clients", Json.Int c.Config.clients);
      ("client_bandwidth_mbps", Json.Float c.Config.client_bandwidth_mbps);
      ("client_delay_s", Json.Float c.Config.client_delay_s);
      ("bottleneck_bandwidth_mbps", Json.Float c.Config.bottleneck_bandwidth_mbps);
      ("bottleneck_delay_s", Json.Float c.Config.bottleneck_delay_s);
      ("adv_window", Json.Int c.Config.adv_window);
      ("buffer_packets", Json.Int c.Config.buffer_packets);
      ("packet_bytes", Json.Int c.Config.packet_bytes);
      ("ack_bytes", Json.Int c.Config.ack_bytes);
      ("mean_interarrival_s", Json.Float c.Config.mean_interarrival_s);
      ("duration_s", Json.Float c.Config.duration_s);
      ("warmup_s", Json.Float c.Config.warmup_s);
      ("red_min_th", Json.Float c.Config.red_min_th);
      ("red_max_th", Json.Float c.Config.red_max_th);
      ("red_max_p", Json.Float c.Config.red_max_p);
      ("red_w_q", Json.Float c.Config.red_w_q);
      ("vegas_alpha", Json.Float c.Config.vegas.Transport.Vegas.alpha);
      ("vegas_beta", Json.Float c.Config.vegas.Transport.Vegas.beta);
      ("vegas_gamma", Json.Float c.Config.vegas.Transport.Vegas.gamma);
      ("start_stagger_s", Json.Float c.Config.start_stagger_s);
      ("client_delay_spread_s", Json.Float c.Config.client_delay_spread_s);
      ("shards", Json.Int c.Config.shards);
      ("background", Json.Int c.Config.background);
      ("seed", Json.String (Printf.sprintf "0x%Lx" c.Config.seed));
    ]

let hybrid_summary_to_json (s : Metrics.hybrid_summary) =
  Json.Obj
    [
      ("background", Json.Int s.Metrics.background);
      ("quantum_s", Json.Float s.Metrics.quantum_s);
      ("steps", Json.Int s.Metrics.steps);
      ("bg_window_mean", Json.Float s.Metrics.bg_window_mean);
      ("bg_queue_mean", Json.Float s.Metrics.bg_queue_mean);
      ("bg_rate_mean", Json.Float s.Metrics.bg_rate_mean);
      ("bg_drop_mean", Json.Float s.Metrics.bg_drop_mean);
      ("slowdown_mean", Json.Float s.Metrics.slowdown_mean);
      ("combined_queue_mean", Json.Float s.Metrics.combined_queue_mean);
    ]

let metrics_to_json (m : Metrics.t) =
  Json.Obj
    [
      ("scenario", Json.String (Scenario.label m.Metrics.scenario));
      ("clients", Json.Int m.Metrics.clients);
      ("cov", Json.Float m.Metrics.cov);
      ("cov_ci95", Json.Float m.Metrics.cov_ci95);
      ("analytic_cov", Json.Float m.Metrics.analytic_cov);
      ("cov_inflation_pct", Json.Float (Metrics.cov_inflation_pct m));
      ("mean_per_bin", Json.Float m.Metrics.mean_per_bin);
      ("offered", Json.Int m.Metrics.offered);
      ("delivered", Json.Int m.Metrics.delivered);
      ("segments_sent", Json.Int m.Metrics.segments_sent);
      ("gateway_arrivals", Json.Int m.Metrics.gateway_arrivals);
      ("gateway_drops", Json.Int m.Metrics.gateway_drops);
      ("loss_pct", Json.Float m.Metrics.loss_pct);
      ("timeouts", Json.Int m.Metrics.timeouts);
      ("fast_retransmits", Json.Int m.Metrics.fast_retransmits);
      ("retransmits", Json.Int m.Metrics.retransmits);
      ("dup_acks", Json.Int m.Metrics.dup_acks);
      ("timeout_dupack_ratio", Json.Float m.Metrics.timeout_dupack_ratio);
      ("jain_fairness", Json.Float m.Metrics.jain_fairness);
      ( "sync_index",
        match m.Metrics.sync_index with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ("ecn_marks", Json.Int m.Metrics.ecn_marks);
      ("ecn_reactions", Json.Int m.Metrics.ecn_reactions);
      ("delay_mean_s", Json.Float m.Metrics.delay_mean_s);
      ("delay_p99_s", Json.Float m.Metrics.delay_p99_s);
      ("drop_run_max", Json.Int m.Metrics.drop_run_max);
      ("drop_run_mean", Json.Float m.Metrics.drop_run_mean);
      ( "burst",
        match m.Metrics.burst with
        | Some s -> Telemetry.Burst.summary_to_json s
        | None -> Json.Null );
      ( "hybrid",
        match m.Metrics.hybrid with
        | Some s -> hybrid_summary_to_json s
        | None -> Json.Null );
    ]

let sweep_to_json cfg (sweep : Figures.sweep_result) =
  Json.Obj
    [
      ("config", config_to_json cfg);
      ( "results",
        Json.List
          (List.concat_map (fun (_, ms) -> List.map metrics_to_json ms) sweep) );
    ]

(* The --burst-out artifact: one row per run carrying only the burst
   summary. Metrics come back from sweeps in input order regardless of
   -j, so this composes with parallel execution unchanged. *)
let burst_row (m : Metrics.t) =
  match m.Metrics.burst with
  | None -> None
  | Some s ->
      Some
        (Json.Obj
           [
             ("scenario", Json.String (Scenario.label m.Metrics.scenario));
             ("clients", Json.Int m.Metrics.clients);
             ("cov", Json.Float m.Metrics.cov);
             ("burst", Telemetry.Burst.summary_to_json s);
           ])

let burst_to_json (ms : Metrics.t list) =
  Json.Obj [ ("runs", Json.List (List.filter_map burst_row ms)) ]

let csv_columns =
  [
    "scenario"; "clients"; "cov"; "analytic_cov"; "cov_inflation_pct"; "offered";
    "delivered"; "segments_sent"; "gateway_drops"; "loss_pct"; "timeouts";
    "fast_retransmits"; "retransmits"; "dup_acks"; "timeout_dupack_ratio";
    "jain_fairness"; "delay_mean_s"; "delay_p99_s";
  ]

let csv_header = String.concat "," csv_columns

let metrics_to_csv_row (m : Metrics.t) =
  String.concat ","
    [
      Scenario.label m.Metrics.scenario;
      string_of_int m.Metrics.clients;
      Printf.sprintf "%.6f" m.Metrics.cov;
      Printf.sprintf "%.6f" m.Metrics.analytic_cov;
      Printf.sprintf "%.2f" (Metrics.cov_inflation_pct m);
      string_of_int m.Metrics.offered;
      string_of_int m.Metrics.delivered;
      string_of_int m.Metrics.segments_sent;
      string_of_int m.Metrics.gateway_drops;
      Printf.sprintf "%.4f" m.Metrics.loss_pct;
      string_of_int m.Metrics.timeouts;
      string_of_int m.Metrics.fast_retransmits;
      string_of_int m.Metrics.retransmits;
      string_of_int m.Metrics.dup_acks;
      Printf.sprintf "%.6f" m.Metrics.timeout_dupack_ratio;
      Printf.sprintf "%.6f" m.Metrics.jain_fairness;
      Printf.sprintf "%.6f" m.Metrics.delay_mean_s;
      Printf.sprintf "%.6f" m.Metrics.delay_p99_s;
    ]

let sweep_to_csv (sweep : Figures.sweep_result) =
  let rows = List.concat_map (fun (_, ms) -> List.map metrics_to_csv_row ms) sweep in
  String.concat "\n" (csv_header :: rows) ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_run_report path report =
  write_file path (Json.to_string (Telemetry.Report.to_json report) ^ "\n")
