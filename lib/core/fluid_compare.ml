module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

type comparison = {
  flows : int;
  protocol : string;
  fluid_window : float;
  measured_window : float;
  fluid_queue : float;
  measured_queue : float;
  fluid_throughput_pps : float;
  measured_throughput_pps : float;
}

let capacity_pps cfg =
  cfg.Config.bottleneck_bandwidth_mbps *. 1e6 /. float_of_int (8 * cfg.Config.packet_bytes)

(* Run greedy flows and measure steady state over the second half. The
   fluid models assume windows are congestion-limited, so the advertised
   window is lifted well above the bandwidth-delay product. *)
let measure cfg scenario ~flows =
  let cfg = { (Config.with_clients cfg flows) with Config.adv_window = 600 } in
  (* Every flow's cwnd trace is consumed below, so tracing must be on for
     all of them (it is opt-in per client since the trace allocates). *)
  let net = Dumbbell.create ~trace_clients:(List.init flows Fun.id) cfg scenario in
  let sched = Dumbbell.scheduler net in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let half = cfg.Config.duration_s /. 2. in
  let queue_series =
    Netsim.Monitor.queue_sampler sched (Dumbbell.bottleneck net)
      ~every:(Time.of_ms 10.) ~until:horizon
  in
  List.iter
    (fun i ->
      ignore
        (Traffic.Bulk.start sched ~size:Traffic.Bulk.infinite_backlog_size
           ~start:Time.zero ~sink:(Dumbbell.sink net i)))
    (List.init flows Fun.id);
  let delivered_at_half = ref 0 in
  ignore
    (Scheduler.at sched (Time.of_sec half) (fun () ->
         delivered_at_half := Dumbbell.delivered_total net));
  Scheduler.run ~until:horizon sched;
  let mean_window =
    let per_flow =
      List.filter_map
        (fun i ->
          match Dumbbell.tcp_sender net i with
          | Some sender ->
              let trace = Transport.Tcp_sender.cwnd_trace sender in
              let steady =
                List.map snd
                  (Netstats.Series.between trace half cfg.Config.duration_s)
              in
              if steady = [] then None
              else
                Some
                  (List.fold_left ( +. ) 0. steady /. float_of_int (List.length steady))
          | None -> None)
        (List.init flows Fun.id)
    in
    List.fold_left ( +. ) 0. per_flow /. float_of_int (List.length per_flow)
  in
  let mean_queue =
    let steady = Netstats.Series.between queue_series half cfg.Config.duration_s in
    List.fold_left (fun acc (_, v) -> acc +. v) 0. steady
    /. float_of_int (Stdlib.max 1 (List.length steady))
  in
  let throughput =
    float_of_int (Dumbbell.delivered_total net - !delivered_at_half)
    /. (cfg.Config.duration_s -. half)
  in
  (mean_window, mean_queue, throughput)

let compare_reno cfg ~flows =
  let params =
    {
      Fluidmodel.Reno_fluid.flows;
      capacity_pps = capacity_pps cfg;
      base_rtt_s = Config.rtt_prop_s cfg;
      buffer_packets = float_of_int cfg.Config.buffer_packets;
      red_min_th = cfg.Config.red_min_th;
      red_max_th = cfg.Config.red_max_th;
      red_max_p = cfg.Config.red_max_p;
      avg_gain = 10.;
    }
  in
  let eq = Fluidmodel.Reno_fluid.equilibrium params in
  let w, q, thr = measure cfg Scenario.reno_red ~flows in
  {
    flows;
    protocol = "Reno/RED";
    fluid_window = eq.Fluidmodel.Reno_fluid.eq_window;
    measured_window = w;
    fluid_queue = eq.Fluidmodel.Reno_fluid.eq_queue;
    measured_queue = q;
    fluid_throughput_pps = eq.Fluidmodel.Reno_fluid.eq_throughput_pps;
    measured_throughput_pps = thr;
  }

let compare_vegas cfg ~flows =
  let params =
    {
      Fluidmodel.Vegas_fluid.flows;
      capacity_pps = capacity_pps cfg;
      base_rtt_s = Config.rtt_prop_s cfg;
      buffer_packets = float_of_int cfg.Config.buffer_packets;
      alpha = cfg.Config.vegas.Transport.Vegas.alpha;
      beta = cfg.Config.vegas.Transport.Vegas.beta;
    }
  in
  let eq = Fluidmodel.Vegas_fluid.equilibrium params in
  let w, q, thr = measure cfg Scenario.vegas ~flows in
  {
    flows;
    protocol = "Vegas";
    fluid_window = eq.Fluidmodel.Vegas_fluid.eq_window;
    measured_window = w;
    fluid_queue = eq.Fluidmodel.Vegas_fluid.eq_queue;
    measured_queue = q;
    fluid_throughput_pps = eq.Fluidmodel.Vegas_fluid.eq_throughput_pps;
    measured_throughput_pps = thr;
  }

let report ppf cfg flow_counts =
  Format.fprintf ppf
    "Fluid approximation vs packet simulation (greedy flows, steady state)@.@.";
  let rows =
    List.concat_map
      (fun flows ->
        List.map
          (fun c ->
            [
              string_of_int c.flows;
              c.protocol;
              Render.fmt_float c.fluid_window;
              Render.fmt_float c.measured_window;
              Render.fmt_float c.fluid_queue;
              Render.fmt_float c.measured_queue;
              Render.fmt_float c.fluid_throughput_pps;
              Render.fmt_float c.measured_throughput_pps;
            ])
          [ compare_reno cfg ~flows; compare_vegas cfg ~flows ])
      flow_counts
  in
  Render.table ppf
    ~header:
      [
        "flows"; "protocol"; "w* fluid"; "w* sim"; "q* fluid"; "q* sim";
        "thr fluid"; "thr sim";
      ]
    ~rows
