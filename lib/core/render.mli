(** Plain-text rendering of experiment results: aligned tables and ASCII
    line charts, so every paper figure has a terminal representation. *)

val table : Format.formatter -> header:string list -> rows:string list list -> unit
(** Columns are sized to the widest cell; header is underlined. *)

val plot :
  Format.formatter ->
  ?height:int ->
  ?width:int ->
  x_min:float ->
  x_max:float ->
  series:(char * string * float array) list ->
  unit ->
  unit
(** Multi-series ASCII chart. Each series is (glyph, label, samples);
    samples are assumed evenly spaced over [\[x_min, x_max\]] and are
    resampled to [width] columns. The y-range is shared. Later series
    overwrite earlier ones where they collide. *)

val fmt_float : float -> string
(** Compact float formatting for table cells. *)
