(** Parameter sweeps over client counts and scenarios.

    Every run gets a distinct deterministic seed derived from the base
    configuration's seed, the scenario label and the client count, so
    series are independent but reproducible.

    {b Parallel execution.} Each sweep takes an optional
    {!Parallel.Pool.t}. Without one (or with a one-domain pool) points
    run sequentially on the calling domain. With a pool, points fan out
    across its domains; because every point derives its own seed and
    owns its own simulation state, the returned metric lists and
    {!replicated} records are bit-identical to the sequential path.
    When a [probe] is given, each point records into a private probe
    and the workers' telemetry folds into [probe] (in input order) when
    the sweep returns; [notify] may fire from worker domains, serialized
    so calls never overlap, but in a nondeterministic order. *)

val seed_for : Config.t -> Scenario.t -> int -> int64

val over_clients :
  ?pool:Parallel.Pool.t ->
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t ->
  int list ->
  Metrics.t list
(** One run per client count. [probe] instruments each run (see
    {!Run.run}); [notify] is called with a point label ("scenario n=N")
    after each run completes — hook progress reporting there. *)

val grid :
  ?pool:Parallel.Pool.t ->
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t list ->
  int list ->
  (Scenario.t * Metrics.t list) list
(** The full (scenario x clients) grid driving Figures 2, 3, 4 and 13.
    With a pool, the grid is flattened so every (scenario, clients)
    point can run concurrently, not just points within one series. *)

(** {2 Replicated runs}

    Single runs of the c.o.v. statistic carry ~5-10 % sampling noise (a
    200 s run has only ~170 RTT bins); replication separates protocol
    effects from seed luck. *)

type replicated = {
  scenario : Scenario.t;
  clients : int;
  replicates : int;
  cov_mean : float;
  cov_std : float;
  delivered_mean : float;
  loss_mean : float;
  loss_std : float;
  timeout_dupack_mean : float;
}

val replicated :
  ?pool:Parallel.Pool.t ->
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t ->
  replicates:int ->
  int list ->
  replicated list
(** [replicates] independent seeds per (scenario, client-count) point;
    [notify] fires after every replicate ("scenario n=N r=R"). With a
    pool, individual replicates run concurrently and the per-point
    summaries are folded afterwards in replicate order.
    @raise Invalid_argument if [replicates < 1]. *)
