(** Parameter sweeps over client counts and scenarios.

    Every run gets a distinct deterministic seed derived from the base
    configuration's seed, the scenario label and the client count, so
    series are independent but reproducible. *)

val seed_for : Config.t -> Scenario.t -> int -> int64

val over_clients :
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t ->
  int list ->
  Metrics.t list
(** One run per client count. [probe] instruments each run (see
    {!Run.run}); [notify] is called with a point label ("scenario n=N")
    after each run completes — hook progress reporting there. *)

val grid :
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t list ->
  int list ->
  (Scenario.t * Metrics.t list) list
(** The full (scenario x clients) grid driving Figures 2, 3, 4 and 13. *)

(** {2 Replicated runs}

    Single runs of the c.o.v. statistic carry ~5-10 % sampling noise (a
    200 s run has only ~170 RTT bins); replication separates protocol
    effects from seed luck. *)

type replicated = {
  scenario : Scenario.t;
  clients : int;
  replicates : int;
  cov_mean : float;
  cov_std : float;
  delivered_mean : float;
  loss_mean : float;
  loss_std : float;
  timeout_dupack_mean : float;
}

val replicated :
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Config.t ->
  Scenario.t ->
  replicates:int ->
  int list ->
  replicated list
(** [replicates] independent seeds per (scenario, client-count) point;
    [notify] fires after every replicate ("scenario n=N r=R").
    @raise Invalid_argument if [replicates < 1]. *)
