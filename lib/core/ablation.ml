let metrics_cells m =
  [
    Render.fmt_float m.Metrics.cov;
    Printf.sprintf "%+.1f%%" (Metrics.cov_inflation_pct m);
    string_of_int m.Metrics.delivered;
    Printf.sprintf "%.2f%%" m.Metrics.loss_pct;
    string_of_int m.Metrics.timeouts;
    string_of_int m.Metrics.drop_run_max;
    Render.fmt_float m.Metrics.jain_fairness;
  ]

let metrics_header =
  [ "cov"; "vs poisson"; "delivered"; "loss"; "timeouts"; "max burst"; "jain" ]

let run_row cfg scenario = Run.run cfg scenario

let buffer_sweep ppf cfg ~clients =
  Format.fprintf ppf
    "Ablation: gateway buffer size, %d clients (Reno varies, Vegas does not)@.@."
    clients;
  let rows =
    List.concat_map
      (fun buffer ->
        List.map
          (fun scenario ->
            let cfg =
              { (Config.with_clients cfg clients) with Config.buffer_packets = buffer }
            in
            let m = run_row cfg scenario in
            (string_of_int buffer ^ " pkts") :: Scenario.label scenario
            :: metrics_cells m)
          [ Scenario.reno; Scenario.vegas ])
      [ 25; 50; 100; 200 ]
  in
  Render.table ppf ~header:(("buffer" :: "protocol" :: metrics_header)) ~rows

let red_threshold_sweep ppf cfg ~clients =
  Format.fprintf ppf "Ablation: RED thresholds, %d clients@.@." clients;
  let rows =
    List.concat_map
      (fun (min_th, max_th) ->
        List.map
          (fun scenario ->
            let cfg =
              {
                (Config.with_clients cfg clients) with
                Config.red_min_th = min_th;
                red_max_th = max_th;
              }
            in
            let m = run_row cfg scenario in
            Printf.sprintf "(%g, %g)" min_th max_th
            :: Scenario.label scenario :: metrics_cells m)
          [ Scenario.reno_red; Scenario.vegas_red ])
      [ (5., 15.); (10., 40.); (25., 45.) ]
  in
  Render.table ppf ~header:(("(min,max)" :: "protocol" :: metrics_header)) ~rows

let vegas_alpha_beta_sweep ppf cfg ~clients =
  Format.fprintf ppf "Ablation: Vegas alpha/beta, %d clients@.@." clients;
  let rows =
    List.map
      (fun (alpha, beta) ->
        let cfg =
          {
            (Config.with_clients cfg clients) with
            Config.vegas = { Transport.Vegas.alpha; beta; gamma = 1. };
          }
        in
        let m = run_row cfg Scenario.vegas in
        Printf.sprintf "(%g, %g)" alpha beta :: metrics_cells m)
      [ (1., 3.); (2., 4.); (4., 8.) ]
  in
  Render.table ppf ~header:(("(alpha,beta)" :: metrics_header)) ~rows

let cc_comparison ppf cfg ns =
  Format.fprintf ppf "Ablation: congestion-control variants across load@.@.";
  let scenarios =
    [ Scenario.tahoe; Scenario.reno; Scenario.newreno; Scenario.sack; Scenario.vegas ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun scenario ->
            let cfg = Config.with_clients cfg n in
            let cfg = { cfg with Config.seed = Sweep.seed_for cfg scenario n } in
            let m = run_row cfg scenario in
            string_of_int n :: Scenario.label scenario :: metrics_cells m)
          scenarios)
      ns
  in
  Render.table ppf ~header:(("clients" :: "protocol" :: metrics_header)) ~rows

let ecn_comparison ppf cfg ns =
  Format.fprintf ppf "Ablation: ECN marking and Self-Configuring RED@.@.";
  let scenarios =
    [
      Scenario.reno; Scenario.reno_red; Scenario.reno_ecn; Scenario.reno_ared;
      Scenario.vegas; Scenario.vegas_red; Scenario.vegas_ecn; Scenario.vegas_ared;
    ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun scenario ->
            let cfg = Config.with_clients cfg n in
            let cfg = { cfg with Config.seed = Sweep.seed_for cfg scenario n } in
            let m = run_row cfg scenario in
            (string_of_int n :: Scenario.label scenario :: metrics_cells m)
            @ [ string_of_int m.Metrics.ecn_marks; string_of_int m.Metrics.ecn_reactions ])
          scenarios)
      ns
  in
  Render.table ppf
    ~header:(("clients" :: "scenario" :: metrics_header) @ [ "marks"; "ece rxn" ])
    ~rows

let latency ppf cfg ns =
  Format.fprintf ppf "Ablation: one-way packet delay at the server@.@.";
  let scenarios =
    [ Scenario.udp; Scenario.reno; Scenario.reno_red; Scenario.vegas;
      Scenario.vegas_red ]
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun scenario ->
            let cfg = Config.with_clients cfg n in
            let cfg = { cfg with Config.seed = Sweep.seed_for cfg scenario n } in
            let m = run_row cfg scenario in
            [
              string_of_int n;
              Scenario.label scenario;
              Printf.sprintf "%.1f" (m.Metrics.delay_mean_s *. 1e3);
              Printf.sprintf "%.1f" (m.Metrics.delay_p99_s *. 1e3);
              Printf.sprintf "%.2f%%" m.Metrics.loss_pct;
            ])
          scenarios)
      ns
  in
  Render.table ppf
    ~header:[ "clients"; "scenario"; "mean delay ms"; "p99 delay ms"; "loss" ]
    ~rows

let cwnd_validation ppf cfg ns =
  Format.fprintf ppf
    "Ablation: RFC 2861 congestion-window validation (what-if)@.@.";
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun scenario ->
            List.map
              (fun validation ->
                let cfg = Config.with_clients cfg n in
                let cfg =
                  {
                    cfg with
                    Config.cwnd_validation = validation;
                    seed = Sweep.seed_for cfg scenario n;
                  }
                in
                let m = run_row cfg scenario in
                string_of_int n :: Scenario.label scenario
                :: (if validation then "on" else "off")
                :: metrics_cells m)
              [ false; true ])
          [ Scenario.reno; Scenario.vegas ])
      ns
  in
  Render.table ppf ~header:(("clients" :: "protocol" :: "rfc2861" :: metrics_header)) ~rows

(* c.o.v. of gateway arrivals at an arbitrary bin width (the paper's
   metric fixes the bin to one RTT; pacing's effect is scale-dependent). *)
let cov_at_bin cfg scenario width =
  let module Time = Sim_engine.Time in
  let net = Dumbbell.create cfg scenario in
  let sched = Dumbbell.scheduler net in
  let binner =
    Netsim.Monitor.arrival_binner (Dumbbell.pool net) (Dumbbell.bottleneck net)
      ~origin:cfg.Config.warmup_s ~width
  in
  List.iter
    (fun i ->
      let rng =
        Sim_engine.Rng.split_named (Dumbbell.rng net) (Printf.sprintf "client-%d" i)
      in
      ignore
        (Traffic.Poisson.start sched ~rng
           ~mean_interarrival:cfg.Config.mean_interarrival_s ~start:Time.zero
           ~until:(Time.of_sec cfg.Config.duration_s)
           ~sink:(Dumbbell.sink net i)))
    (List.init cfg.Config.clients Fun.id);
  Sim_engine.Scheduler.run ~until:(Time.of_sec cfg.Config.duration_s) sched;
  (Netstats.Summary.of_array
     (Netstats.Binned.counts binner ~upto:cfg.Config.duration_s))
    .Netstats.Summary.cov

let pacing ppf cfg ns =
  Format.fprintf ppf "Ablation: TCP pacing (what-if)@.@.";
  let rows =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun scenario ->
            List.map
              (fun paced ->
                let cfg = Config.with_clients cfg n in
                let cfg =
                  {
                    cfg with
                    Config.pacing = paced;
                    seed = Sweep.seed_for cfg scenario n;
                  }
                in
                let m = run_row cfg scenario in
                string_of_int n :: Scenario.label scenario
                :: (if paced then "on" else "off")
                :: metrics_cells m)
              [ false; true ])
          [ Scenario.reno; Scenario.vegas ])
      ns
  in
  Render.table ppf ~header:(("clients" :: "protocol" :: "pacing" :: metrics_header)) ~rows;
  (* Pacing's effect is timescale-dependent: show the c.o.v. across bin
     widths for Reno at the first swept load. *)
  match ns with
  | [] -> ()
  | n :: _ ->
      Format.fprintf ppf
        "@.Timescale dependence (Reno, %d clients): c.o.v. by bin width@.@." n;
      let cfg = Config.with_clients cfg n in
      let widths = [ 0.05; 0.1; 0.25; Config.rtt_prop_s cfg ] in
      let trows =
        List.map
          (fun w ->
            let plain = cov_at_bin cfg Scenario.reno w in
            let paced = cov_at_bin { cfg with Config.pacing = true } Scenario.reno w in
            [
              Printf.sprintf "%.2f s" w;
              Render.fmt_float plain;
              Render.fmt_float paced;
              Printf.sprintf "%+.0f%%" (100. *. (paced -. plain) /. plain);
            ])
          widths
      in
      Render.table ppf ~header:[ "bin"; "ack-clocked"; "paced"; "change" ] ~rows:trows;
      Format.fprintf ppf
        "@.Pacing smooths the sub-RTT structure but worsens the per-RTT metric:@.";
      Format.fprintf ppf
        "spreading the window delays congestion signals and synchronizes the@.";
      Format.fprintf ppf
        "resulting losses (the Aggarwal-Savage-Anderson result), so it does not@.";
      Format.fprintf ppf "repair the burstiness this paper measures.@."
