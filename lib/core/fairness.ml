let jain xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fairness.jain: empty";
  let s = Array.fold_left ( +. ) 0. xs in
  let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
  if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)

let max_min_ratio xs =
  if Array.length xs = 0 then invalid_arg "Fairness.max_min_ratio: empty";
  let mn = Array.fold_left Stdlib.min xs.(0) xs in
  let mx = Array.fold_left Stdlib.max xs.(0) xs in
  if mn = 0. then if mx = 0. then 1. else infinity else mx /. mn
