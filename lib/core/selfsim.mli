(** Extension experiment: self-similarity of the aggregate traffic.

    The paper argues (§1) that Hurst-parameter analyses at coarse time
    scales miss what matters for statistical multiplexing. This experiment
    makes the connection explicit: it aggregates either Poisson or
    heavy-tailed Pareto-on/off sources over UDP and TCP Reno and measures
    the gateway arrival process entirely with the streaming
    {!Telemetry.Burst} estimators — a wavelet (logscale-diagram) Hurst
    slope, the paper's c.o.v. at the RTT bin, and an index-of-dispersion
    profile across dyadic timescales — without ever storing the arrival
    series. Expected shape: Poisson over UDP gives H near 0.5 and flat
    IDC; Pareto-on/off raises H and a growing IDC; TCP modulation raises
    both relative to UDP. *)

type source_kind = Poisson_src | Pareto_src

type row = {
  source : source_kind;
  scenario : Scenario.t;
  hurst : float;  (** streaming wavelet (Abry–Veitch) estimate *)
  cov : float;  (** at the paper's RTT timescale *)
  idc : (int * float option) list;
      (** (aggregation in 10 ms bins, IDC); [None] marks scales the run
          was too short to populate *)
}

val bin_width : float
(** Base bin width of the fine aggregator, 10 ms. *)

val fine_levels : int
(** Dyadic levels of the fine aggregator. *)

val measure : Config.t -> source_kind -> Scenario.t -> row
(** One run with 10 ms arrival bins at the gateway. *)

val report : Format.formatter -> Config.t -> unit
(** The four (source x transport) combinations as a table. *)

val source_label : source_kind -> string
