(** Extension experiment: self-similarity of the aggregate traffic.

    The paper argues (§1) that Hurst-parameter analyses at coarse time
    scales miss what matters for statistical multiplexing. This experiment
    makes the connection explicit: it aggregates either Poisson or
    heavy-tailed Pareto-on/off sources over UDP and TCP Reno, estimates the
    Hurst parameter of the gateway arrival process two ways (R/S and
    variance–time) and reports it next to the paper's c.o.v. metric and an
    index-of-dispersion profile across timescales. Expected shape: Poisson
    over UDP gives H near 0.5 and flat IDC; Pareto-on/off raises H and a
    growing IDC; TCP modulation raises both relative to UDP. *)

type source_kind = Poisson_src | Pareto_src

type row = {
  source : source_kind;
  scenario : Scenario.t;
  hurst_rs : float;
  hurst_vt : float;
  cov : float;
  idc : (int * float) list;  (** (aggregation in bins, IDC) *)
}

val measure : Config.t -> source_kind -> Scenario.t -> row
(** One run with 10 ms arrival bins at the gateway. *)

val report : Format.formatter -> Config.t -> unit
(** The four (source x transport) combinations as a table. *)

val source_label : source_kind -> string
