(** The parking-lot topology: one long flow crossing H bottleneck hops,
    with independent cross traffic on every hop.

    {v
      long ---> [R0] ==hop 0==> [R1] ==hop 1==> ... ==hop H-1==> [RH] ---> long'
                 ^                ^  \                            ^
               cross_0         cross_1  cross_0'               cross_{H-1}'
    v}

    The classic multi-hop fairness question: the long flow competes at
    every hop and sees the sum of all queueing delays, so loss-driven
    congestion control (Reno) starves it relative to the one-hop cross
    flows, while Vegas' delay-based control is gentler. This generalizes
    the paper's single-gateway model and exercises the router layer on
    arbitrary chains. All flows are greedy bulk transfers. *)

type result = {
  hops : int;
  long_throughput_pps : float;
  cross_throughput_pps : float;  (** mean over all cross flows *)
  long_share : float;
      (** long flow's throughput over its equal share of one hop's
          capacity divided by (1 + cross flows per hop) *)
  jain_all : float;  (** fairness across every flow *)
}

val run :
  ?adv_window:int ->
  Config.t ->
  cc:Scenario.cc_kind ->
  hops:int ->
  cross_per_hop:int ->
  duration_s:float ->
  result
(** Bottleneck links reuse Table 1's bandwidth/delay/buffer per hop;
    access links are 10x faster. The advertised window defaults to 600
    packets (well above the multi-hop bandwidth-delay product) so flows
    are congestion-limited, not receiver-limited.
    @raise Invalid_argument if [hops < 1] or [cross_per_hop < 0]. *)

val report : Format.formatter -> Config.t -> unit
(** Reno / NewReno / SACK / Vegas over 2-4 hops, one cross flow per
    hop. *)
