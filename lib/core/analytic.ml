let poisson_cov_for ~clients ~rate_per_client ~bin_s =
  if clients < 1 || rate_per_client <= 0. || bin_s <= 0. then
    invalid_arg "Analytic.poisson_cov_for: bad arguments";
  1. /. sqrt (float_of_int clients *. rate_per_client *. bin_s)

let poisson_mean_per_bin cfg =
  float_of_int cfg.Config.clients
  /. cfg.Config.mean_interarrival_s *. Config.rtt_prop_s cfg

let poisson_cov cfg =
  poisson_cov_for ~clients:cfg.Config.clients
    ~rate_per_client:(1. /. cfg.Config.mean_interarrival_s)
    ~bin_s:(Config.rtt_prop_s cfg)
