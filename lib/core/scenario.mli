(** A protocol/gateway combination under test.

    The paper's Figure 2 compares six simulated series plus the analytic
    Poisson baseline; {!paper_series} lists them in the paper's order. *)

type cc_kind = Tahoe | Reno | Newreno | Vegas | Sack

type transport =
  | Udp
  | Tcp of { cc : cc_kind; delayed_ack : bool }

type gateway =
  | Fifo
  | Red
  | Red_ecn  (** RED marking ECN-capable traffic instead of dropping *)
  | Red_adaptive  (** Self-Configuring RED (the paper's reference [5]) *)
  | Sfq_gw  (** Stochastic Fairness Queueing (McKenney 1990) *)

type t = { transport : transport; gateway : gateway }

val udp : t
val reno : t
val reno_red : t
val reno_delack : t
val vegas : t
val vegas_red : t
val tahoe : t
val newreno : t
val reno_ecn : t
val vegas_ecn : t
val reno_ared : t
val vegas_ared : t
val sack : t
val sack_red : t
val reno_sfq : t
val vegas_sfq : t

val paper_series : t list
(** UDP, Reno, Reno/RED, Vegas, Vegas/RED, Reno/DelayAck — Figure 2. *)

val tcp_series : t list
(** The five TCP variants of Figures 3, 4 and 13 (no UDP). *)

val label : t -> string
(** e.g. ["Reno/RED"], ["Reno/DelayAck"], ["Vegas/ECN"], ["UDP"]. *)

val is_tcp : t -> bool

val equal : t -> t -> bool
