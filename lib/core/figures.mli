(** Drivers that regenerate each table and figure of the paper.

    Figures 2, 3, 4 and 13 are columns of one (scenario x clients) sweep,
    so callers run {!run_sweep} once and render each figure from it.
    Figures 5–12 are single runs with congestion-window tracing. *)

type sweep_result = (Scenario.t * Metrics.t list) list

val default_client_counts : int list
(** The swept x-axis: 2..60 clients, denser around the 38/39 crossover. *)

val run_sweep :
  ?pool:Parallel.Pool.t ->
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  ?progress:(string -> unit) ->
  Config.t ->
  int list ->
  sweep_result
(** Runs the six paper scenarios over the given client counts.
    [progress] is called with a scenario label before each series;
    [notify] with a point label after each individual run (see
    {!Sweep.over_clients}); [probe] instruments every run. With [pool],
    points from every series run concurrently (results unchanged — see
    {!Sweep}); [progress] then fires for all series up front. *)

val table1 : Format.formatter -> Config.t -> unit

val fig2 : Format.formatter -> sweep_result -> Config.t -> unit
(** Coefficient of variation of the aggregated traffic vs #clients,
    including the analytic Poisson baseline. *)

val fig2_replicated :
  ?pool:Parallel.Pool.t ->
  ?probe:Telemetry.Probe.t ->
  ?notify:(string -> unit) ->
  Format.formatter ->
  Config.t ->
  int list ->
  replicates:int ->
  unit
(** Figure 2 with [replicates] independent seeds per point, reported as
    mean +/- sample standard deviation. Runs its own sweep, fanned over
    [pool] when given. *)

val fig3 : Format.formatter -> sweep_result -> unit
(** Total packets successfully delivered vs #clients (TCP variants). *)

val fig4 : Format.formatter -> sweep_result -> unit
(** Packet-loss percentage at the gateway vs #clients (TCP variants). *)

val fig13 : Format.formatter -> sweep_result -> unit
(** Ratio of timeouts to duplicate ACKs vs #clients (TCP variants). *)

val fig_cwnd :
  ?probe:Telemetry.Probe.t ->
  Format.formatter ->
  Config.t ->
  scenario:Scenario.t ->
  clients:int ->
  label:string ->
  unit
(** Congestion-window evolution for three representative clients (first,
    middle, last), as in Figures 5–12. *)

val cwnd_figures : (int * Scenario.t * int) list
(** [(figure number, scenario, clients)] for Figures 5–12. *)

val queue_occupancy :
  ?probe:Telemetry.Probe.t -> Format.formatter -> Config.t -> clients:int -> unit
(** Extension figure: gateway queue-length evolution for Reno vs Vegas at
    the same load, with summary statistics — §3.3's claim that Vegas needs
    far less buffer, shown directly. *)
