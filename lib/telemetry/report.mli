(** The end-of-run JSON report: a summary snapshot of a {!Probe.t}.

    The report is the machine-readable contract behind [--telemetry]:
    {!required_fields} lists the keys every report carries, and
    {!validate} checks a parsed document against that contract (used by
    the [report-check] subcommand and [make check]). *)

type t = {
  label : string;
  runs : int;
  events_fired : int;
  event_queue_hwm : int;
  gateway_queue_hwm : int;
  sim_time_s : float;
  run_wall_s : float;  (** wall seconds inside the run phase only *)
  wall_s : float;  (** total wall seconds (all phases) *)
  events_per_sec : float;
  sim_wall_ratio : float;
  words_per_event : float;
      (** minor-heap words allocated per scheduler event, 0 when GC
          counters were not recorded *)
  bus_events : int;
  phases : (string * float) list;
  metrics : Json.t;  (** [Registry.to_json] dump *)
}

val of_probe : ?label:string -> Probe.t -> t
(** Rates are derived from the run phase: [events_per_sec] and
    [sim_wall_ratio] are 0 when no run time was recorded. [wall_s] is
    the "total" phase when one was timed, otherwise the sum of phases. *)

val to_json : t -> Json.t

val required_fields : string list

val validate : Json.t -> (unit, string) result
(** Check that a parsed report is an object carrying every required
    field, with [phases] an object and [metrics] a list. *)

val alloc_required_fields : string list
val alloc_row_required_fields : string list

val validate_alloc : Json.t -> (unit, string) result
(** Check a BENCH_alloc.json document written by the bench runner's
    allocation gate: the sweep header fields, a non-empty [rows] list,
    and for every row the full column set plus the committed
    invariants — [minor_words_per_event] within
    [threshold_minor_words_per_event] and [leak_free] true. The
    events/sec floor is deliberately not re-checked here: it is
    wall-clock sensitive and enforced by the bench itself (full mode
    only). *)

val flows_required_fields : string list
val flows_row_required_fields : string list

val validate_flows : Json.t -> (unit, string) result
(** Check a BENCH_flows.json document written by the flow-scaling
    sweep: the regime header, a non-empty [rows] list, and for every
    row the full column set plus the committed invariants —
    [bytes_per_flow] and [minor_words_per_event] within the budgets the
    file carries, zero flow-table and event-queue growth, [leak_free]
    true, and (rows with [fluid_gated] true) the measured/fluid queue
    and throughput ratios inside the header's bands. The events/sec
    floor is wall-clock sensitive and enforced by the bench itself in
    full mode, not here. Rows with [smoke] true (the N = 10^6 scale
    probe) are held only to the byte budget and leak-freedom. *)

val parallel_required_fields : string list
val parallel_single_run_required_fields : string list

val validate_parallel : Json.t -> (unit, string) result
(** Validate a BENCH_parallel.json parallelism report
    ([report-check --kind=parallel]): the sequential-vs-parallel sweep
    comparison fields with [deterministic] true, plus the [single_run]
    sharded-PDES section — [sharded_deterministic] true, non-empty
    per-shard-count timing [rows], and a recorded single-run [speedup]
    no lower than the file's own [min_speedup] floor. A null [speedup]
    is accepted only when [available_domains] < 4 (the bench skips the
    ratio rather than commit oversubscription noise). *)

val validate_bench_telemetry : Json.t -> (unit, string) result
(** Validate a BENCH_telemetry.json overhead report: required fields
    plus the probe/recorder overhead and allocation budgets the file
    carries ([report-check --kind=bench-telemetry]). *)

val burst_required_fields : string list
val burst_row_required_fields : string list

val validate_burst : Json.t -> (unit, string) result
(** Validate a BENCH_burst.json burstiness-observability report
    ([report-check --kind=burst]): required fields, then the three
    committed claims re-checked from the file's own budgets — the
    {!Burst} aggregator's [burst_minor_words_per_event_delta] within
    [burst_words_budget], the streaming-vs-offline c.o.v. gap
    [cov_abs_err] within [cov_tolerance], and in [red_sweep.rows]
    (which must include both sides) every row's oscillation-detector
    verdict agreeing with its declared [side] of the RED stability
    condition. *)

val hybrid_required_fields : string list
val hybrid_validation_row_required_fields : string list
val hybrid_converged_required_fields : string list

val validate_hybrid : Json.t -> (unit, string) result
(** Validate a BENCH_hybrid.json hybrid fluid/packet report
    ([report-check --kind=hybrid]): required fields, then the three
    committed claims re-checked from the file's own tolerance bands —
    every [validation] row's hybrid-vs-packet foreground throughput and
    combined-queue ratios inside the header bands with the loss-rate
    gap within [loss_abs_tol] and an [event_ratio] of at least 1; the
    [converged] N = 10^6 section leak-free with zero slab growth and a
    [work_ratio] no lower than [work_ratio_min] (null accepted only
    with [smoke] true — the --fast horizon is too short to measure the
    ratio honestly); and every [stability_sweep] row's
    oscillation-detector verdict agreeing with its declared [side] of
    the fluid Hopf threshold [wq_critical]. *)
