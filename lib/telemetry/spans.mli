(** Lifecycle spans derived from a flight-recorder stream, accumulated
    into log-scale histograms in a metric registry:

    - [trace_packet_sojourn_seconds] — enqueue-to-depart time through a
      recorded link, keyed by (link, packet uid); drops cancel the
      pending span;
    - [trace_rtt_seconds] — sender RTT samples ([tcp_rtt] records);
    - [trace_phase_seconds{phase=...}] — time spent in each TCP
      congestion phase, from [tcp_phase] transition records; spans
      still open at the end of the stream close at the [run_end]
      marker (or the last tick seen).

    Tick counters restart per segment, so accumulate one segment (or
    one live recorder) at a time; histograms merge across calls since
    they share a registry. *)

val accumulate :
  registry:Registry.t ->
  ((lane:int -> seq:int -> int array -> int -> unit) -> unit) ->
  unit
(** [accumulate ~registry iter] folds one record stream, where [iter]
    is an iterator in the shape of {!Recorder.iter_merged} /
    {!Recorder.iter_segment}. *)

val of_recorder : registry:Registry.t -> Recorder.t -> unit
(** Spans from a live recorder's retained records. *)

val of_segment : registry:Registry.t -> Recorder.segment -> unit
(** Spans from a decoded segment. *)

val histograms : Registry.t -> (string * Registry.histogram) list
(** The span histograms (registering them if absent), as
    [(short name, cell)] pairs — for summary printers. *)
