(** Binary flight recorder: preallocated per-lane buffers of
    fixed-width {!Record} words.

    A recorder owns one intern table and one or more {e lanes} (one
    per domain when recording under the parallel pool). The hot path
    ({!record}) performs only unboxed 64-bit stores into a
    preallocated [Bytes] buffer — zero minor words per record in ring
    mode, and the buffer is opaque to the GC, so a multi-megabyte lane
    adds nothing to major-collection work.

    Overflow policies: [Drop_oldest] keeps the newest [capacity]
    records (always-on mode, bounded memory); [Grow] doubles the
    buffer and never loses a record; creating the recorder with
    [?spill] flushes full buffers to the sink as binary chunks
    instead.

    On disk, a {e segment} is: the magic ["BFRC0001"], the label, the
    intern table, then tagged blocks (1 = record chunk, 2 = lane
    summary, 0 = end). Segments concatenate; all integers are 64-bit
    little-endian. Within a segment, records merge deterministically
    by [(tick, lane, seq)]. *)

type overflow = Drop_oldest | Grow

type config = { capacity : int; overflow : overflow; lifecycle : bool }
(** [capacity] is in records per lane (rounded up to a power of two,
    at least 16, so the ring index is a mask);
    [lifecycle] enables the non-parity record kinds (phases, RTT
    samples, receiver reordering, router forwards, run markers) at
    the instrumentation sites. *)

val default_config : config
(** 65536 records per lane, [Grow], lifecycle on. *)

type t

type lane

val create : ?spill:out_channel -> ?label:string -> config -> t

val config : t -> config
val lifecycle : t -> bool
val label : t -> string
val finished : t -> bool

val intern : t -> string -> int
(** Get-or-assign the id of a string. Ids are only assignable before
    the segment header is written (i.e. before the first spill flush);
    instrument at wiring time, not per event.
    @raise Invalid_argument after the header has been written. *)

val intern_array : t -> string array
(** The intern table by id; index 0 is always [""]. *)

val lane : t -> int -> lane
(** Get-or-create the lane with the given domain id. *)

val lane_id : lane -> int

val record :
  lane ->
  tick:int ->
  kind:int ->
  flow:int ->
  a:int ->
  b:int ->
  c:int ->
  sid:int ->
  depth:int ->
  unit
(** Append one record. Allocation-free in ring mode; amortized
    allocation-free in grow mode. *)

val recorded : lane -> int
(** Records ever offered to this lane. *)

val lane_dropped : lane -> int
(** Records overwritten in ring mode. *)

val retained : lane -> int
(** Records currently held in memory. *)

val lanes : t -> lane list
(** All lanes, sorted by id. *)

val total_recorded : t -> int
val total_dropped : t -> int

val iter_lane : lane -> (seq:int -> int array -> int -> unit) -> unit
(** In-memory records of one lane in order; the callback receives the
    record as [Record.words] ints at the given offset. *)

val iter_merged : t -> (lane:int -> seq:int -> int array -> int -> unit) -> unit
(** All lanes' in-memory records merged by [(tick, lane, seq)]. *)

val write_segment : out_channel -> t -> unit
(** Writes remaining records, lane summaries and the end marker, then
    marks the recorder finished (idempotent). A spilling recorder
    writes to its own sink regardless of [oc]. *)

val finish : t -> unit
(** [write_segment] on the spill sink.
    @raise Invalid_argument if the recorder has no spill sink. *)

(** {1 Reading segments back} *)

val magic : string
(** The 8-byte segment header ["BFRC0001"] — lets tools sniff whether a
    file is a flight recording before committing to a full parse. *)

type segment

type read_lane

val read_segments : in_channel -> segment list
(** All concatenated segments until end of file.
    @raise Failure on malformed input. *)

val seg_label : segment -> string
val seg_lanes : segment -> read_lane list
val seg_lookup : segment -> int -> string

val read_lane_id : read_lane -> int
val read_lane_total : read_lane -> int
val read_lane_dropped : read_lane -> int
val read_lane_retained : read_lane -> int

val iter_segment :
  segment -> (lane:int -> seq:int -> int array -> int -> unit) -> unit
(** Records of one segment merged by [(tick, lane, seq)]. *)
