(** The metric registry: named, labelled counters, gauges and histograms.

    A registry is a flat namespace of time-series cells. Registration is
    get-or-create keyed on [(name, sorted labels)], so independent
    components can share a series simply by naming it; registering an
    existing name with a different metric kind is a programming error and
    raises. Cells are plain mutable records — updating one is a couple of
    machine instructions, cheap enough for per-run (though not per-event)
    hot paths.

    Histograms combine three estimators from [Netstats]: a fixed-bin
    {!Netstats.Histogram} for the bucket counts, a {!Netstats.Welford}
    accumulator for count/sum/mean/min/max, and two
    {!Netstats.P2_quantile} markers for online p50/p99.

    Snapshots come in two flavours: {!to_json} (machine-readable, parses
    back with [Json.parse]) and {!to_prometheus} (the text exposition
    format, for eyeballs and scrapers). *)

type t
(** A registry. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (canonicalised on registration). *)

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration (get-or-create)}

    Metric names must match [[A-Za-z_][A-Za-z0-9_]*].
    @raise Invalid_argument on an invalid name or a kind mismatch with an
    already-registered series. [help] is kept from the first
    registration. *)

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:labels ->
  lo:float ->
  hi:float ->
  bins:int ->
  string ->
  histogram
(** Bucket layout ([lo], [hi], [bins]) is fixed by the first
    registration; later calls with the same key return the existing
    series and ignore their layout arguments. *)

val log_histogram :
  t ->
  ?help:string ->
  ?labels:labels ->
  lo:float ->
  hi:float ->
  bins:int ->
  string ->
  histogram
(** Like {!histogram} but with logarithmically spaced buckets
    (see {!Netstats.Histogram.create_log}); requires [0 < lo < hi].
    Suited to latency-style quantities spanning decades. *)

(** {2 Updates} *)

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit

val add : gauge -> float -> unit
(** Accumulate into the gauge (for float totals such as seconds). *)

val set_max : gauge -> float -> unit
(** High-water-mark update: keep the maximum of the current value and
    [v]. Gauges start at 0, so this tracks maxima of non-negative
    quantities. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val observations : histogram -> int

val p50 : histogram -> float
(** Online median estimate; 0 before the first observation. *)

val p99 : histogram -> float
(** Online 99th-percentile estimate; 0 before the first observation. *)

(** {2 Merging}

    Parallel sweeps give each worker domain a private registry and fold
    the workers' series into the main one afterwards, so no cell is ever
    shared between domains. *)

type gauge_rule = [ `Set | `Sum | `Max ]
(** How a gauge combines on merge: [`Set] (last write wins, the
    default), [`Sum] (accumulating gauges such as seconds totals), or
    [`Max] (high-water marks). *)

val merge :
  ?gauge_rule:(name:string -> labels:labels -> gauge_rule) -> into:t -> t -> unit
(** [merge ~into src] folds every series of [src] into [into], creating
    missing series with [src]'s help text and bucket layout. Counters
    add; gauges combine per [gauge_rule] (default [`Set]); histogram
    bucket counts and moments (count/sum/mean/variance/min/max) combine
    exactly, as if every observation had gone to [into]. The p50/p99
    estimates of a merged histogram are rebuilt from its buckets —
    P{^2} marker state cannot be combined exactly — so after a merge
    they are approximations at bucket-width resolution. [src] is left
    untouched.
    @raise Invalid_argument if a series exists in both registries with
    different kinds, or if two histograms share a name but not a bucket
    layout. *)

(** {2 Exposition} *)

val to_json : t -> Json.t
(** A [Json.List] of metric objects in registration order. Counters and
    gauges carry a ["value"]; histograms carry count/sum/mean/min/max,
    p50/p99, and cumulative ["buckets"] (Prometheus-style [le] upper
    bounds, final bucket [le = "+Inf"]). *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# HELP] / [# TYPE] per metric name, one
    sample line per series, histograms as [_bucket]/[_sum]/[_count]. *)
