(** Sweep progress reporting: one line per completed run on stderr with
    elapsed time, an ETA extrapolated from the mean pace so far, and an
    optional events/sec rate.

    The clock and output channel are injectable so tests can drive the
    reporter deterministically.

    {!step} and {!finish} are serialized behind an internal mutex, so a
    single reporter can be shared by the worker domains of a parallel
    sweep. *)

type t

val create : ?out:out_channel -> ?now:(unit -> float) -> total:int -> unit -> t
(** Defaults: [out] is [stderr], [now] is {!Perf.wall_clock_s}. [total]
    is the number of runs expected; [create] records the start time. *)

val step : t -> ?events:int -> string -> unit
(** [step t ~events label] marks one more run (described by [label])
    complete and prints a progress line. [events] is the cumulative
    event count across all completed runs; when given, the line carries
    an events/sec rate over elapsed wall time. Flushes [out]. *)

val finish : t -> unit
(** Print the closing summary line. Flushes [out]. *)

val completed : t -> int

(** {2 Formatting helpers} *)

val format_duration : float -> string
(** ["42s"], ["3m09s"], ["2h05m"]. *)

val format_rate : float -> string
(** ["850 ev/s"], ["1.2k ev/s"], ["3.10M ev/s"]. *)
