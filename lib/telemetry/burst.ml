(* Streaming multi-timescale burstiness estimators.

   A dyadic multi-resolution aggregator: per-bin arrival counts enter
   at level 0 (bins of [width] seconds from [origin]) and fold upward
   through doubling timescales. Level [j] sees the block sums over
   [2^j] consecutive base bins; each level keeps

   - Welford moments of its block sums (-> streaming c.o.v. and IDC
     at that timescale), and
   - the running sum of squared Haar details [left - right] over the
     pairs it forwards upward (-> an Abry-Veitch-style logscale
     diagram and a wavelet Hurst slope).

   State is O(levels) per aggregator: one pending unpaired block sum
   plus four running moments per level, all kept in flat float/int
   arrays so the hot path never allocates (a mutable float field in a
   mixed record would box on every store). Feeding one event is
   amortized O(1); closing a bin cascades at most [levels] deep.

   The [Osc] sub-module is the RED Hopf probe: an EWMA-detrended
   zero-crossing detector over sampled queue depths that reports
   oscillation frequency and relative amplitude. *)

type config = { levels : int; osc_enabled : bool }

let default_levels = 16

let default_config = { levels = default_levels; osc_enabled = true }

(* Per-level layout: [fs] stride 4 = pending block sum, Welford mean,
   Welford m2, Haar energy sum; [ns] stride 3 = Welford count,
   has-pending flag, Haar detail count. *)
type t = {
  origin : float;
  width : float;
  levels : int;
  fs : float array;
  ns : int array;
  cur : float array; (* cur.(0): count in the open base bin *)
  mutable cur_bin : int; (* index of the open base bin *)
  mutable total : int; (* events observed (post-origin) *)
  mutable closed : int; (* base bins closed so far *)
}

let create ?(levels = default_levels) ~origin ~width () =
  if width <= 0. then invalid_arg "Burst.create: width <= 0";
  if levels < 1 || levels > 40 then invalid_arg "Burst.create: bad levels";
  {
    origin;
    width;
    levels;
    fs = Array.make (4 * levels) 0.;
    ns = Array.make (3 * levels) 0;
    cur = [| 0. |];
    cur_bin = 0;
    total = 0;
    closed = 0;
  }

(* Fold one closed block sum into level [j]: Welford first (same
   update order as Netstats.Welford.add, so level-0 moments match
   Summary.of_array on the equivalent bin array exactly), then pair
   with the pending sum, accumulate the squared Haar detail, and
   cascade the pair's sum one level up. *)
let rec add_level t j x =
  let fb = 4 * j and ib = 3 * j in
  let n = t.ns.(ib) + 1 in
  t.ns.(ib) <- n;
  let mean = t.fs.(fb + 1) in
  let delta = x -. mean in
  let mean' = mean +. (delta /. float_of_int n) in
  t.fs.(fb + 1) <- mean';
  t.fs.(fb + 2) <- t.fs.(fb + 2) +. (delta *. (x -. mean'));
  if j + 1 < t.levels then begin
    if t.ns.(ib + 1) = 1 then begin
      let p = t.fs.(fb) in
      t.ns.(ib + 1) <- 0;
      let d = p -. x in
      t.fs.(fb + 3) <- t.fs.(fb + 3) +. (d *. d);
      t.ns.(ib + 2) <- t.ns.(ib + 2) + 1;
      add_level t (j + 1) (p +. x)
    end
    else begin
      t.fs.(fb) <- x;
      t.ns.(ib + 1) <- 1
    end
  end

let push t x =
  t.closed <- t.closed + 1;
  add_level t 0 x

let[@inline] close_upto t idx =
  while t.cur_bin < idx do
    push t t.cur.(0);
    t.cur.(0) <- 0.;
    t.cur_bin <- t.cur_bin + 1
  done

let observe t at =
  if at >= t.origin then begin
    let idx = int_of_float ((at -. t.origin) /. t.width) in
    if idx > t.cur_bin then close_upto t idx;
    (* Events for an already-closed bin (only possible after [advance])
       are dropped, matching Binned.counts truncation. *)
    if idx = t.cur_bin then begin
      t.cur.(0) <- t.cur.(0) +. 1.;
      t.total <- t.total + 1
    end
  end

(* The allocation-free twin of [observe] for the per-packet hot path:
   the engine's integer-nanosecond tick goes through the exact
   [float_of_int ns /. 1e9] conversion Time.to_sec performs, but as a
   local float the compiler keeps unboxed — calling [observe] with the
   converted value would box it on every event. Duplicated rather than
   shared so neither entry point pays a float argument box. *)
let observe_tick t ns =
  let at = float_of_int ns /. 1e9 in
  if at >= t.origin then begin
    let idx = int_of_float ((at -. t.origin) /. t.width) in
    if idx > t.cur_bin then close_upto t idx;
    if idx = t.cur_bin then begin
      t.cur.(0) <- t.cur.(0) +. 1.;
      t.total <- t.total + 1
    end
  end

(* Close every bin that ends at or before [upto] — the same
   [floor ((upto - origin) / width)] complete-bin rule as
   Netstats.Binned.num_complete_bins, zero-filling untouched bins. *)
let advance t ~upto =
  if upto > t.origin then
    close_upto t (int_of_float (floor ((upto -. t.origin) /. t.width)))

let levels t = t.levels

let bins t = t.closed

let total t = t.total

let base_width t = t.width

let check_level t j name =
  if j < 0 || j >= t.levels then invalid_arg ("Burst." ^ name ^ ": bad level")

let scale_width t j =
  check_level t j "scale_width";
  t.width *. float_of_int (1 lsl j)

let scale_count t j =
  check_level t j "scale_count";
  t.ns.(3 * j)

let scale_mean t j =
  check_level t j "scale_mean";
  if t.ns.(3 * j) = 0 then 0. else t.fs.((4 * j) + 1)

(* Sample variance, matching Welford.variance (0 below two blocks). *)
let scale_variance t j =
  check_level t j "scale_variance";
  let n = t.ns.(3 * j) in
  if n < 2 then 0. else t.fs.((4 * j) + 2) /. float_of_int (n - 1)

let cov t j =
  check_level t j "cov";
  let n = t.ns.(3 * j) in
  if n < 2 then None
  else
    let m = t.fs.((4 * j) + 1) in
    if m = 0. then None else Some (sqrt (scale_variance t j) /. m)

let idc t j =
  check_level t j "idc";
  let n = t.ns.(3 * j) in
  if n < 2 then None
  else
    let m = t.fs.((4 * j) + 1) in
    if m = 0. then None else Some (scale_variance t j /. m)

(* Mean squared Haar detail at octave [j] (1-based: the details formed
   when level [j-1] blocks pair). The raw detail is [left - right] of
   two sums of [2^(j-1)] bins; dividing by [2^j] gives the L2-normalized
   wavelet coefficient energy (the wavelet takes values +-2^(-j/2)). *)
let haar_count t j =
  if j < 1 || j >= t.levels then invalid_arg "Burst.haar_count: bad octave";
  t.ns.((3 * (j - 1)) + 2)

let haar_energy t j =
  if j < 1 || j >= t.levels then invalid_arg "Burst.haar_energy: bad octave";
  let n = t.ns.((3 * (j - 1)) + 2) in
  if n = 0 then None
  else
    Some (t.fs.((4 * (j - 1)) + 3) /. (float_of_int n *. float_of_int (1 lsl j)))

(* Octaves entering the logscale diagram need a handful of details for
   the mean energy to carry any signal. *)
let min_details = 4

let logscale t =
  let rec collect j acc =
    if j < 1 then acc
    else
      let acc =
        if haar_count t j >= min_details then
          match haar_energy t j with
          | Some e when e > 0. -> (j, log (e) /. log 2.) :: acc
          | _ -> acc
        else acc
      in
      collect (j - 1) acc
  in
  collect (t.levels - 1) []

(* Wavelet Hurst estimate: OLS slope [alpha] of log2 energy vs octave;
   for an LRD count process the energies scale as 2^(j (2H - 1)), so
   H = (alpha + 1) / 2, clamped into [0, 1]. White noise has flat
   energies -> H = 1/2. *)
let hurst_wavelet t =
  match logscale t with
  | [] | [ _ ] -> None
  | pts ->
      let xs = Array.of_list (List.map (fun (j, _) -> float_of_int j) pts) in
      let ys = Array.of_list (List.map snd pts) in
      let fit = Netstats.Regression.ols xs ys in
      let h = (fit.Netstats.Regression.slope +. 1.) /. 2. in
      Some (Stdlib.min 1. (Stdlib.max 0. h))

(* ------------------------------------------------------------------ *)
(* Oscillation detector: EWMA-detrended zero crossings.               *)

module Osc = struct
  (* Float state lives in [fs] (mutable float record fields would box):
     0 EWMA baseline, 1 sum of squared residuals, 2 sum of the raw
     signal, 3 EWMA of |residual| (adaptive deadband), 4 first sample
     time, 5 last sample time. *)
  type t = {
    gain : float;
    deadband : float; (* hysteresis threshold, as a fraction of EWMA |r| *)
    rel_threshold : float;
    min_crossings : int;
    fs : float array;
    mutable n : int;
    mutable sign : int; (* -1 / 0 / +1, last side beyond the deadband *)
    mutable crossings : int;
  }

  let create ?(gain = 0.02) ?(deadband = 0.5) ?(rel_threshold = 0.2)
      ?(min_crossings = 8) () =
    if gain <= 0. || gain > 1. then invalid_arg "Burst.Osc.create: bad gain";
    {
      gain;
      deadband;
      rel_threshold;
      min_crossings;
      fs = Array.make 6 0.;
      n = 0;
      sign = 0;
      crossings = 0;
    }

  let sample o ~t x =
    if o.n = 0 then begin
      o.fs.(0) <- x;
      o.fs.(4) <- t
    end
    else o.fs.(0) <- o.fs.(0) +. (o.gain *. (x -. o.fs.(0)));
    let r = x -. o.fs.(0) in
    o.fs.(1) <- o.fs.(1) +. (r *. r);
    o.fs.(2) <- o.fs.(2) +. x;
    o.fs.(3) <- o.fs.(3) +. (o.gain *. (abs_float r -. o.fs.(3)));
    let band = o.deadband *. o.fs.(3) in
    if r > band then begin
      if o.sign < 0 then o.crossings <- o.crossings + 1;
      o.sign <- 1
    end
    else if r < -.band then begin
      if o.sign > 0 then o.crossings <- o.crossings + 1;
      o.sign <- -1
    end;
    o.n <- o.n + 1;
    o.fs.(5) <- t

  let samples o = o.n

  let crossings o = o.crossings

  let mean_signal o = if o.n = 0 then 0. else o.fs.(2) /. float_of_int o.n

  let rms_residual o = if o.n = 0 then 0. else sqrt (o.fs.(1) /. float_of_int o.n)

  let rel_amplitude o =
    let m = mean_signal o in
    if m <= 0. then 0. else rms_residual o /. m

  (* A crossing is a half cycle: crossings / 2 full periods over the
     sampled window. *)
  let frequency_hz o =
    let span = o.fs.(5) -. o.fs.(4) in
    if span <= 0. then 0. else float_of_int o.crossings /. (2. *. span)

  let oscillating o =
    rel_amplitude o >= o.rel_threshold && o.crossings >= o.min_crossings
end

(* ------------------------------------------------------------------ *)
(* Frozen summaries: the queryable end-of-run view.                   *)

type scale_row = {
  level : int;
  scale_s : float;
  blocks : int;
  mean : float;
  s_cov : float option;
  s_idc : float option;
}

type osc_summary = {
  o_samples : int;
  o_mean : float;
  o_rms : float;
  o_rel_amplitude : float;
  o_crossings : int;
  o_frequency_hz : float;
  o_oscillating : bool;
}

type summary = {
  base_width_s : float;
  s_bins : int;
  s_total : int;
  scales : scale_row list;
  s_logscale : (int * float) list;
  s_hurst : float option;
  s_osc : osc_summary option;
}

let osc_summary o =
  {
    o_samples = Osc.samples o;
    o_mean = Osc.mean_signal o;
    o_rms = Osc.rms_residual o;
    o_rel_amplitude = Osc.rel_amplitude o;
    o_crossings = Osc.crossings o;
    o_frequency_hz = Osc.frequency_hz o;
    o_oscillating = Osc.oscillating o;
  }

let summary ?osc t =
  let rec rows j acc =
    if j < 0 then acc
    else
      let acc =
        if scale_count t j >= 2 then
          {
            level = j;
            scale_s = scale_width t j;
            blocks = scale_count t j;
            mean = scale_mean t j;
            s_cov = cov t j;
            s_idc = idc t j;
          }
          :: acc
        else acc
      in
      rows (j - 1) acc
  in
  {
    base_width_s = t.width;
    s_bins = t.closed;
    s_total = t.total;
    scales = rows (t.levels - 1) [];
    s_logscale = logscale t;
    s_hurst = hurst_wavelet t;
    s_osc = Option.map osc_summary osc;
  }

let json_opt = function None -> Json.Null | Some v -> Json.Float v

let osc_to_json o =
  Json.Obj
    [
      ("samples", Json.Int o.o_samples);
      ("mean", Json.Float o.o_mean);
      ("rms_residual", Json.Float o.o_rms);
      ("rel_amplitude", Json.Float o.o_rel_amplitude);
      ("crossings", Json.Int o.o_crossings);
      ("frequency_hz", Json.Float o.o_frequency_hz);
      ("oscillating", Json.Bool o.o_oscillating);
    ]

let summary_to_json s =
  Json.Obj
    [
      ("base_width_s", Json.Float s.base_width_s);
      ("bins", Json.Int s.s_bins);
      ("events", Json.Int s.s_total);
      ( "scales",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("level", Json.Int r.level);
                   ("scale_s", Json.Float r.scale_s);
                   ("blocks", Json.Int r.blocks);
                   ("mean", Json.Float r.mean);
                   ("cov", json_opt r.s_cov);
                   ("idc", json_opt r.s_idc);
                 ])
             s.scales) );
      ( "logscale",
        Json.List
          (List.map
             (fun (j, e) ->
               Json.Obj
                 [ ("octave", Json.Int j); ("log2_energy", Json.Float e) ])
             s.s_logscale) );
      ("hurst_wavelet", json_opt s.s_hurst);
      ("osc", match s.s_osc with None -> Json.Null | Some o -> osc_to_json o);
    ]

let pp_summary ppf s =
  Format.fprintf ppf
    "burst: %d events in %d bins of %gs across %d timescales@."
    s.s_total s.s_bins s.base_width_s (List.length s.scales);
  Format.fprintf ppf "  %10s %8s %10s %10s %10s@." "scale_s" "blocks" "mean"
    "cov" "idc";
  List.iter
    (fun r ->
      let f = function None -> "-" | Some v -> Printf.sprintf "%.4f" v in
      Format.fprintf ppf "  %10g %8d %10.3f %10s %10s@." r.scale_s r.blocks
        r.mean (f r.s_cov) (f r.s_idc))
    s.scales;
  (match s.s_logscale with
  | [] -> ()
  | pts ->
      Format.fprintf ppf "  logscale (octave, log2 energy):";
      List.iter (fun (j, e) -> Format.fprintf ppf " %d:%.2f" j e) pts;
      Format.fprintf ppf "@.");
  (match s.s_hurst with
  | Some h -> Format.fprintf ppf "  hurst (wavelet) = %.3f@." h
  | None -> ());
  match s.s_osc with
  | None -> ()
  | Some o ->
      Format.fprintf ppf
        "  osc: %s (rel amplitude %.3f, %d crossings, %.3f Hz over %d \
         samples, mean %.2f)@."
        (if o.o_oscillating then "OSCILLATING" else "quiet")
        o.o_rel_amplitude o.o_crossings o.o_frequency_hz o.o_samples o.o_mean

(* ------------------------------------------------------------------ *)
(* Registry export.                                                   *)

let export registry ~run s =
  let set ?labels name help v =
    let labels = (("run", run) :: Option.value labels ~default:[]) in
    Registry.set (Registry.gauge registry ~labels ~help name) v
  in
  set "burst_bins" "Closed base bins in the burst aggregator"
    (float_of_int s.s_bins);
  List.iter
    (fun r ->
      let labels = [ ("scale_s", Printf.sprintf "%g" r.scale_s) ] in
      (match r.s_cov with
      | Some v ->
          set ~labels "burst_cov" "Streaming c.o.v. of arrivals per timescale"
            v
      | None -> ());
      match r.s_idc with
      | Some v ->
          set ~labels "burst_idc"
            "Streaming index of dispersion for counts per timescale" v
      | None -> ())
    s.scales;
  (match s.s_hurst with
  | Some h ->
      set "burst_hurst_wavelet" "Online wavelet (logscale-diagram) Hurst slope"
        h
  | None -> ());
  match s.s_osc with
  | None -> ()
  | Some o ->
      set "burst_osc_rel_amplitude"
        "RMS queue oscillation amplitude relative to the mean"
        o.o_rel_amplitude;
      set "burst_osc_frequency_hz" "Queue oscillation frequency" o.o_frequency_hz;
      set "burst_osc_crossings" "Detrended queue zero crossings"
        (float_of_int o.o_crossings);
      set "burst_oscillating" "1 when the oscillation detector fired"
        (if o.o_oscillating then 1. else 0.)

(* ------------------------------------------------------------------ *)
(* Flight-recorder emission: one record per populated scale plus one
   Hurst and two oscillation records, stamped at the closing tick.    *)

let record_summary lane ~tick ~sid s =
  List.iter
    (fun r ->
      (match r.s_cov with
      | Some v ->
          Recorder.record lane ~tick ~kind:Record.burst_cov ~flow:(-1)
            ~a:r.level ~b:(Record.float_hi v) ~c:(Record.float_lo v) ~sid
            ~depth:r.blocks
      | None -> ());
      match r.s_idc with
      | Some v ->
          Recorder.record lane ~tick ~kind:Record.burst_idc ~flow:(-1)
            ~a:r.level ~b:(Record.float_hi v) ~c:(Record.float_lo v) ~sid
            ~depth:r.blocks
      | None -> ())
    s.scales;
  (match s.s_hurst with
  | Some h ->
      Recorder.record lane ~tick ~kind:Record.burst_hurst ~flow:(-1)
        ~a:(List.length s.s_logscale) ~b:(Record.float_hi h)
        ~c:(Record.float_lo h) ~sid ~depth:0
  | None -> ());
  match s.s_osc with
  | None -> ()
  | Some o ->
      Recorder.record lane ~tick ~kind:Record.burst_osc_amp ~flow:(-1)
        ~a:o.o_crossings
        ~b:(Record.float_hi o.o_rel_amplitude)
        ~c:(Record.float_lo o.o_rel_amplitude)
        ~sid
        ~depth:(if o.o_oscillating then 1 else 0);
      Recorder.record lane ~tick ~kind:Record.burst_osc_freq ~flow:(-1)
        ~a:o.o_crossings
        ~b:(Record.float_hi o.o_frequency_hz)
        ~c:(Record.float_lo o.o_frequency_hz)
        ~sid
        ~depth:(if o.o_oscillating then 1 else 0)
