(** A probe bundles the three telemetry facilities — metric registry,
    event bus, phase timers — into the single handle that threads through
    the simulator as a [Probe.t option]. [None] means telemetry is off
    and every helper below degrades to a no-op.

    Metric names used by {!note_run} are exposed as [m_*] constants so
    reporters and tests never spell them twice. *)

type recording = {
  config : Recorder.config;
  mutable segments_rev : Recorder.t list; (* newest first *)
}

type t = {
  registry : Registry.t;
  bus : Event_bus.t;
  phases : Perf.phases;
  mutable recording : recording option;
  mutable burst : Burst.config option;
}

val create : unit -> t

(** {2 Flight recording}

    When a recording configuration is set, each run starts its own
    {!Recorder.t} (one segment per run); segments accumulate on the
    probe in run order and parallel workers' segments are carried back
    by {!merge} in input order, so the final record file is
    deterministic and identical to a sequential run's. *)

val set_recording : t -> Recorder.config -> unit

val recording_config : t -> Recorder.config option

val create_like : t -> t
(** A fresh probe inheriting only the recording and burst
    configurations (workers always buffer with [Grow]; their segments
    travel via {!merge}). *)

val set_burst : t -> Burst.config option -> unit
(** Ask runs driven through this probe to maintain streaming burstiness
    telemetry ({!Burst}); the summary lands on each run's metrics, in
    [burst_*] registry gauges and (when lifecycle recording is on) in
    the flight-recorder stream. *)

val burst_config : t -> Burst.config option

val start_recorder : t -> label:string -> Recorder.t option
(** Begin a new segment for one run; [None] when recording is off. *)

val segments : t -> Recorder.t list
(** Accumulated segments in run order. *)

val write_segments : t -> out_channel -> unit
(** Write all segments in order (idempotent per segment). *)

val time : t option -> string -> (unit -> 'a) -> 'a
(** [time probe name f] times [f] under phase [name] when the probe is
    present, and is exactly [f ()] when it is [None]. *)

(** {2 Well-known metric names} *)

val m_runs : string  (** counter: simulation runs completed *)

val m_events : string  (** counter: scheduler events fired, all runs *)

val m_sim_seconds : string  (** gauge: simulated seconds, summed *)

val m_run_wall : string  (** gauge: wall seconds inside the run phase *)

val m_eq_hwm : string  (** gauge: event-queue high-water mark (max) *)

val m_gw_hwm : string  (** gauge: gateway-queue high-water mark (max) *)

val m_arrivals : string  (** counter: gateway packet arrivals *)

val m_drops : string  (** counter: gateway packet drops *)

val m_minor_words : string
(** gauge: minor-heap words allocated during runs, summed *)

val m_promoted_words : string
(** gauge: words promoted to the major heap during runs, summed *)

val m_major_collections : string
(** counter: major GC cycles observed during runs *)

val m_words_per_event : string
(** gauge: minor words per scheduler event, derived from the totals
    above after every {!note_run} and {!merge} — the allocation-budget
    number the bench gate watches *)

val note_run :
  t ->
  label:string ->
  sim_s:float ->
  wall_s:float ->
  events:int ->
  event_queue_hwm:int ->
  gateway_queue_hwm:int ->
  arrivals:int ->
  drops:int ->
  ?gc:Perf.gc_counters ->
  unit ->
  unit
(** Fold one completed run into the registry: bump the aggregate
    counters and gauges above and record the per-run labelled series
    [run_events_total{run=label}] and [run_wall_seconds{run=label}].
    [gc] is the GC-counter delta measured across the run phase
    (default {!Perf.gc_zero}, meaning "not measured"); it feeds the
    [gc_*] series and refreshes {!m_words_per_event}. *)

val merge : into:t -> t -> unit
(** Fold a worker probe into the main one after a parallel sweep:
    registry series merge with run-aware gauge rules (high-water marks
    take the max, seconds totals sum, other gauges keep last-write) and
    phase timers accumulate. Event-bus subscriptions are deliberately
    not transferred — workers publish to their own bus while they run.
    [src] is left untouched. *)

val runs_total : t -> int

val events_total : t -> int
