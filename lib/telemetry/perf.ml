let wall_clock_s = Unix.gettimeofday

type phases = { mutable items : (string * float ref) list (* first-use order *) }

let phases () = { items = [] }

let slot t name =
  match List.assoc_opt name t.items with
  | Some r -> r
  | None ->
      let r = ref 0. in
      t.items <- t.items @ [ (name, r) ];
      r

let add_s t name dt = slot t name := !(slot t name) +. dt

let time t name f =
  let t0 = wall_clock_s () in
  Fun.protect ~finally:(fun () -> add_s t name (wall_clock_s () -. t0)) f

let merge_into ~into src =
  List.iter (fun (name, r) -> add_s into name !r) src.items

let duration_s t name =
  match List.assoc_opt name t.items with Some r -> !r | None -> 0.

let durations_s t = List.map (fun (name, r) -> (name, !r)) t.items

let total_s t = List.fold_left (fun acc (_, r) -> acc +. !r) 0. t.items

let to_json t =
  Json.Obj (List.map (fun (name, r) -> (name, Json.Float !r)) t.items)
