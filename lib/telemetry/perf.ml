let wall_clock_s = Unix.gettimeofday

(* GC counters, read via [Gc.quick_stat] (no heap traversal, cheap
   enough to bracket every run). Only differences between two readings
   are meaningful. *)
type gc_counters = {
  minor_words : float;
  promoted_words : float;
  major_collections : int;
}

let gc_zero = { minor_words = 0.; promoted_words = 0.; major_collections = 0 }

let gc_read () =
  (* On OCaml 5 [quick_stat]'s minor_words only advances at minor-GC
     boundaries, which quantises a bracketed delta by up to a whole
     young area (±256k words — enough to flip a words/event gate).
     Emptying the young area first makes the reading exact. Two minor
     collections per bracketed phase; never call this per event. *)
  Gc.minor ();
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_collections = s.Gc.major_collections;
  }

let gc_since before =
  let now = gc_read () in
  {
    minor_words = now.minor_words -. before.minor_words;
    promoted_words = now.promoted_words -. before.promoted_words;
    major_collections = now.major_collections - before.major_collections;
  }

type phases = { mutable items : (string * float ref) list (* first-use order *) }

let phases () = { items = [] }

let slot t name =
  match List.assoc_opt name t.items with
  | Some r -> r
  | None ->
      let r = ref 0. in
      t.items <- t.items @ [ (name, r) ];
      r

let add_s t name dt = slot t name := !(slot t name) +. dt

let time t name f =
  let t0 = wall_clock_s () in
  Fun.protect ~finally:(fun () -> add_s t name (wall_clock_s () -. t0)) f

let merge_into ~into src =
  List.iter (fun (name, r) -> add_s into name !r) src.items

let duration_s t name =
  match List.assoc_opt name t.items with Some r -> !r | None -> 0.

let durations_s t = List.map (fun (name, r) -> (name, !r)) t.items

let total_s t = List.fold_left (fun acc (_, r) -> acc +. !r) 0. t.items

let to_json t =
  Json.Obj (List.map (fun (name, r) -> (name, Json.Float !r)) t.items)
