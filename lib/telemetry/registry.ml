type labels = (string * string) list

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = {
  hist : Netstats.Histogram.t;
  stats : Netstats.Welford.t;
  mutable p50_est : Netstats.P2_quantile.t;
  mutable p99_est : Netstats.P2_quantile.t;
}

type cell = Counter of counter | Gauge of gauge | Histogram of histogram

type metric = { name : string; help : string; labels : labels; cell : cell }

type t = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable rev_order : metric list; (* newest first *)
}

let create () = { tbl = Hashtbl.create 32; rev_order = [] }

let valid_name name =
  name <> ""
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let canonical labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Get-or-create: [make] builds a fresh cell, [same] projects an existing
   one (None = registered under another kind). *)
let register t ~help ~labels name make same =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid metric name %S" name);
  let labels = canonical labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some m -> (
      match same m.cell with
      | Some cell -> cell
      | None ->
          invalid_arg
            (Printf.sprintf "Registry: %s is already registered as a %s" name
               (kind_name m.cell)))
  | None ->
      let cell, boxed = make () in
      let m = { name; help; labels; cell = boxed } in
      Hashtbl.add t.tbl (name, labels) m;
      t.rev_order <- m :: t.rev_order;
      cell

let counter t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name
    (fun () ->
      let c = { count = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let gauge t ?(help = "") ?(labels = []) name =
  register t ~help ~labels name
    (fun () ->
      let g = { value = 0. } in
      (g, Gauge g))
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let histogram_cell make_hist () =
  let h =
    {
      hist = make_hist ();
      stats = Netstats.Welford.create ();
      p50_est = Netstats.P2_quantile.create ~q:0.5;
      p99_est = Netstats.P2_quantile.create ~q:0.99;
    }
  in
  (h, Histogram h)

let histogram_same = function
  | Histogram h -> Some h
  | Counter _ | Gauge _ -> None

let histogram t ?(help = "") ?(labels = []) ~lo ~hi ~bins name =
  register t ~help ~labels name
    (histogram_cell (fun () -> Netstats.Histogram.create ~lo ~hi ~bins))
    histogram_same

let log_histogram t ?(help = "") ?(labels = []) ~lo ~hi ~bins name =
  register t ~help ~labels name
    (histogram_cell (fun () -> Netstats.Histogram.create_log ~lo ~hi ~bins))
    histogram_same

let inc ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let set g v = g.value <- v

let add g v = g.value <- g.value +. v

let set_max g v = if v > g.value then g.value <- v

let gauge_value g = g.value

let observe h v =
  Netstats.Histogram.add h.hist v;
  Netstats.Welford.add h.stats v;
  Netstats.P2_quantile.add h.p50_est v;
  Netstats.P2_quantile.add h.p99_est v

let observations h = Netstats.Welford.count h.stats

let p50 h = if observations h = 0 then 0. else Netstats.P2_quantile.quantile h.p50_est

let p99 h = if observations h = 0 then 0. else Netstats.P2_quantile.quantile h.p99_est

(* ------------------------------------------------------------------ *)
(* Merging *)

type gauge_rule = [ `Set | `Sum | `Max ]

(* P2 marker states cannot be combined exactly (they are nonlinear
   functions of the sample order), so after merging the bucket counts we
   rebuild both estimators from a bounded, deterministic replay of the
   merged histogram: each bin contributes its midpoint, scaled so the
   replay never exceeds [quantile_replay_cap] samples. The result is an
   approximation bounded by the bin width, which is the same resolution
   the buckets themselves offer. *)
let quantile_replay_cap = 1024

let rebuild_quantiles h =
  let p50_est = Netstats.P2_quantile.create ~q:0.5 in
  let p99_est = Netstats.P2_quantile.create ~q:0.99 in
  let total = Netstats.Histogram.count h.hist in
  if total > 0 then begin
    let edges = Netstats.Histogram.bin_edges h.hist in
    let counts = Netstats.Histogram.bin_counts h.hist in
    let reps c =
      if total <= quantile_replay_cap then c
      else if c = 0 then 0
      else Stdlib.max 1 (c * quantile_replay_cap / total)
    in
    let feed x c =
      for _ = 1 to reps c do
        Netstats.P2_quantile.add p50_est x;
        Netstats.P2_quantile.add p99_est x
      done
    in
    feed edges.(0) (Netstats.Histogram.underflow h.hist);
    Array.iteri (fun i c -> feed ((edges.(i) +. edges.(i + 1)) /. 2.) c) counts;
    feed edges.(Array.length edges - 1) (Netstats.Histogram.overflow h.hist)
  end;
  h.p50_est <- p50_est;
  h.p99_est <- p99_est

let merge ?(gauge_rule = fun ~name:_ ~labels:_ -> `Set) ~into src =
  List.iter
    (fun m ->
      match m.cell with
      | Counter c -> inc ~by:c.count (counter into ~help:m.help ~labels:m.labels m.name)
      | Gauge g -> (
          let dst = gauge into ~help:m.help ~labels:m.labels m.name in
          match gauge_rule ~name:m.name ~labels:m.labels with
          | `Set -> set dst g.value
          | `Sum -> add dst g.value
          | `Max -> set_max dst g.value)
      | Histogram h ->
          (* Registering via [create_like] preserves the source's exact
             bucket layout, including logarithmic spacing. *)
          let dst =
            register into ~help:m.help ~labels:m.labels m.name
              (histogram_cell (fun () -> Netstats.Histogram.create_like h.hist))
              histogram_same
          in
          Netstats.Histogram.merge_into ~into:dst.hist h.hist;
          Netstats.Welford.merge_into ~into:dst.stats h.stats;
          rebuild_quantiles dst)
    (List.rev src.rev_order)

(* ------------------------------------------------------------------ *)
(* Exposition *)

let metrics t = List.rev t.rev_order

(* Cumulative buckets with Prometheus [le] semantics; the underflow
   bucket folds into the first finite bound, the overflow into +Inf. *)
let buckets h =
  let edges = Netstats.Histogram.bin_edges h.hist in
  let counts = Netstats.Histogram.bin_counts h.hist in
  let cum = ref (Netstats.Histogram.underflow h.hist) in
  let finite =
    Array.to_list
      (Array.mapi
         (fun i c ->
           cum := !cum + c;
           (Some edges.(i + 1), !cum))
         counts)
  in
  finite @ [ (None, Netstats.Histogram.count h.hist) ]

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let metric_json m =
  let base = [ ("name", Json.String m.name) ] in
  let help = if m.help = "" then [] else [ ("help", Json.String m.help) ] in
  let labels = if m.labels = [] then [] else [ ("labels", labels_json m.labels) ] in
  let payload =
    match m.cell with
    | Counter c -> [ ("type", Json.String "counter"); ("value", Json.Int c.count) ]
    | Gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float g.value) ]
    | Histogram h ->
        let n = observations h in
        [
          ("type", Json.String "histogram");
          ("count", Json.Int n);
          ("sum", Json.Float (Netstats.Welford.sum h.stats));
          ("mean", Json.Float (Netstats.Welford.mean h.stats));
          ("min", Json.Float (if n = 0 then 0. else Netstats.Welford.min h.stats));
          ("max", Json.Float (if n = 0 then 0. else Netstats.Welford.max h.stats));
          ("p50", Json.Float (p50 h));
          ("p99", Json.Float (p99 h));
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, count) ->
                   Json.Obj
                     [
                       ( "le",
                         match le with
                         | Some e -> Json.Float e
                         | None -> Json.String "+Inf" );
                       ("count", Json.Int count);
                     ])
                 (buckets h)) );
        ]
  in
  Json.Obj (base @ help @ labels @ payload)

let to_json t = Json.List (List.map metric_json (metrics t))

let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
      ^ "}"

let prom_number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let prom_series buf m =
  match m.cell with
  | Counter c ->
      Printf.bprintf buf "%s%s %d\n" m.name (prom_labels m.labels) c.count
  | Gauge g ->
      Printf.bprintf buf "%s%s %s\n" m.name (prom_labels m.labels)
        (prom_number g.value)
  | Histogram h ->
      List.iter
        (fun (le, count) ->
          let le = match le with Some e -> prom_number e | None -> "+Inf" in
          Printf.bprintf buf "%s_bucket%s %d\n" m.name
            (prom_labels (m.labels @ [ ("le", le) ]))
            count)
        (buckets h);
      Printf.bprintf buf "%s_sum%s %s\n" m.name (prom_labels m.labels)
        (prom_number (Netstats.Welford.sum h.stats));
      Printf.bprintf buf "%s_count%s %d\n" m.name (prom_labels m.labels)
        (observations h)

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let all = metrics t in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem seen m.name) then begin
        Hashtbl.add seen m.name ();
        if m.help <> "" then Printf.bprintf buf "# HELP %s %s\n" m.name m.help;
        Printf.bprintf buf "# TYPE %s %s\n" m.name (kind_name m.cell);
        List.iter (fun m' -> if m'.name = m.name then prom_series buf m') all
      end)
    all;
  Buffer.contents buf
