(* The flight recorder: preallocated per-lane buffers of fixed-width
   {!Record} words, with three overflow policies:

   - [Drop_oldest]: a true ring — the newest records win, overwritten
     oldest ones are counted in [dropped]. Always-on mode: bounded
     memory, zero allocation per record.
   - [Grow]: the buffer doubles when full; nothing is ever lost.
     Used when a complete trace must be reconstructed (e.g. rerouted
     [--trace-out] under [-j]).
   - spill: when a sink channel is given at creation, full buffers
     flush to disk as binary chunks and the buffer is reused.

   A recorder owns one intern table (strings referenced by records)
   and one or more lanes (one per domain). Within a segment, records
   are merged deterministically by [(tick, lane, seq)]. *)

type overflow = Drop_oldest | Grow

type config = { capacity : int; overflow : overflow; lifecycle : bool }

let default_config = { capacity = 1 lsl 16; overflow = Grow; lifecycle = true }

let magic = "BFRC0001"

(* Bytes per record in a lane buffer and on disk. Lanes are [Bytes]
   rather than [int array] so the major GC marks them in O(1) instead
   of scanning every word — measurable on the default 4 MB lane. *)
let rbytes = 8 * Record.words

(* Local copies of the native-endian word primitives: declared here so
   the stores compile to single unboxed instructions in [record] (a
   cross-module call per word would dominate the hot path). *)
external unsafe_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external unsafe_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

type t = {
  config : config;
  label : string;
  spill : out_channel option;
  intern_tbl : (string, int) Hashtbl.t;
  mutable interns_rev : string list;
  mutable intern_count : int;
  mutable lanes_rev : lane list;
  mutable header_written : bool;
  mutable finished : bool;
  w8 : Bytes.t; (* single-word write scratch *)
  wchunk : Bytes.t; (* batched record-payload scratch *)
}

and lane = {
  owner : t;
  id : int;
  mode : int; (* 0 = ring (drop oldest), 1 = grow, 2 = spill *)
  mutable buf : Bytes.t; (* [cap * rbytes] bytes, native-endian words *)
  mutable cap : int; (* records *)
  mutable total : int; (* records ever offered *)
  mutable flushed : int; (* records already spilled to disk *)
  mutable dropped : int; (* records overwritten in ring mode *)
}

(* Lane capacities are rounded up to a power of two so the ring-mode
   slot is a mask, not an integer division. *)
let pow2_above n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?spill ?(label = "") config =
  let capacity = pow2_above config.capacity in
  let config = { config with capacity } in
  let intern_tbl = Hashtbl.create 16 in
  (* Index 0 is reserved for "no string" so records can carry sid = 0
     without touching the table. *)
  Hashtbl.replace intern_tbl "" 0;
  {
    config;
    label;
    spill;
    intern_tbl;
    interns_rev = [ "" ];
    intern_count = 1;
    lanes_rev = [];
    header_written = false;
    finished = false;
    w8 = Bytes.create 8;
    wchunk = Bytes.create (128 * 8 * Record.words);
  }

let config t = t.config

let lifecycle t = t.config.lifecycle

let label t = t.label

let finished t = t.finished

let intern t s =
  match Hashtbl.find_opt t.intern_tbl s with
  | Some i -> i
  | None ->
      if t.header_written then
        invalid_arg "Recorder.intern: segment header already written";
      let i = t.intern_count in
      Hashtbl.replace t.intern_tbl s i;
      t.interns_rev <- s :: t.interns_rev;
      t.intern_count <- i + 1;
      i

let intern_array t = Array.of_list (List.rev t.interns_rev)

let lane t id =
  match List.find_opt (fun l -> l.id = id) t.lanes_rev with
  | Some l -> l
  | None ->
      if t.finished then invalid_arg "Recorder.lane: recorder finished";
      let mode =
        if t.spill <> None then 2
        else match t.config.overflow with Drop_oldest -> 0 | Grow -> 1
      in
      let cap = t.config.capacity in
      let l =
        {
          owner = t;
          id;
          mode;
          (* Uninitialized on purpose: only written slots are read. *)
          buf = Bytes.create (cap * rbytes);
          cap;
          total = 0;
          flushed = 0;
          dropped = 0;
        }
      in
      t.lanes_rev <- l :: t.lanes_rev;
      l

let lane_id l = l.id

let recorded l = l.total

let lane_dropped l = l.dropped

(* Logical record index -> buffer slot ([cap] is a power of two). *)
let slot_of l k =
  if l.mode = 0 then k land (l.cap - 1)
  else if l.mode = 1 then k
  else k - l.flushed

(* First logical index still held in memory. *)
let retained_first l =
  if l.mode = 0 then max 0 (l.total - l.cap)
  else if l.mode = 1 then 0
  else l.flushed

let retained l = l.total - retained_first l

let lanes t =
  List.sort (fun a b -> Int.compare a.id b.id) (List.rev t.lanes_rev)

let total_recorded t = List.fold_left (fun acc l -> acc + l.total) 0 t.lanes_rev

let total_dropped t = List.fold_left (fun acc l -> acc + l.dropped) 0 t.lanes_rev

(* ------------------------------------------------------------------ *)
(* Binary segment output.                                             *)

let out_word t oc v =
  Record.put64 t.w8 0 v;
  output oc t.w8 0 8

let out_string t oc s =
  out_word t oc (String.length s);
  output_string oc s

let write_header t oc =
  if not t.header_written then begin
    output_string oc magic;
    out_string t oc t.label;
    out_word t oc t.intern_count;
    List.iter (out_string t oc) (List.rev t.interns_rev);
    t.header_written <- true
  end

(* One chunk: tag 1, lane id, first logical seq, count, then
   [count * Record.words] little-endian words, batched through the
   chunk scratch so the spill path costs no allocation. *)
let write_records t oc l ~first ~count =
  out_word t oc 1;
  out_word t oc l.id;
  out_word t oc first;
  out_word t oc count;
  let scratch = t.wchunk in
  let per = Bytes.length scratch / rbytes in
  let k = ref first in
  let remaining = ref count in
  while !remaining > 0 do
    let batch = min per !remaining in
    for i = 0 to batch - 1 do
      let src = slot_of l (!k + i) * rbytes in
      let dst = i * rbytes in
      for w = 0 to Record.words - 1 do
        Record.put64 scratch (dst + (8 * w)) (Record.get_word l.buf (src + (8 * w)))
      done
    done;
    output oc scratch 0 (batch * rbytes);
    k := !k + batch;
    remaining := !remaining - batch
  done

let flush_lane l =
  let t = l.owner in
  match t.spill with
  | None -> assert false
  | Some oc ->
      write_header t oc;
      let count = l.total - l.flushed in
      if count > 0 then write_records t oc l ~first:l.flushed ~count;
      l.flushed <- l.total

(* ------------------------------------------------------------------ *)
(* The hot path. Pure int stores into a preallocated array: zero
   minor words per record in ring and (amortized) grow modes.        *)

let[@inline] record l ~tick ~kind ~flow ~a ~b ~c ~sid ~depth =
  let n = l.total in
  let slot =
    if l.mode = 0 then begin
      if n >= l.cap then l.dropped <- l.dropped + 1;
      n land (l.cap - 1)
    end
    else if l.mode = 1 then begin
      if n = l.cap then begin
        let nbuf = Bytes.create (l.cap * 2 * rbytes) in
        Bytes.blit l.buf 0 nbuf 0 (l.cap * rbytes);
        l.buf <- nbuf;
        l.cap <- l.cap * 2
      end;
      n
    end
    else begin
      if n - l.flushed = l.cap then flush_lane l;
      n - l.flushed
    end
  in
  let off = slot * rbytes in
  let buf = l.buf in
  unsafe_set64 buf off (Int64.of_int tick);
  unsafe_set64 buf (off + 8) (Int64.of_int kind);
  unsafe_set64 buf (off + 16) (Int64.of_int flow);
  unsafe_set64 buf (off + 24) (Int64.of_int a);
  unsafe_set64 buf (off + 32) (Int64.of_int b);
  unsafe_set64 buf (off + 40) (Int64.of_int c);
  unsafe_set64 buf (off + 48) (Int64.of_int sid);
  unsafe_set64 buf (off + 56) (Int64.of_int depth);
  l.total <- n + 1

(* ------------------------------------------------------------------ *)
(* Iteration over retained records.                                   *)

(* Iteration decodes each record into a reused scratch so callbacks
   keep the [int array] view regardless of the lane representation. *)
let load_record buf boff scratch =
  for w = 0 to Record.words - 1 do
    Array.unsafe_set scratch w (Record.get_word buf (boff + (8 * w)))
  done

let iter_lane l f =
  let scratch = Array.make Record.words 0 in
  for k = retained_first l to l.total - 1 do
    load_record l.buf (slot_of l k * rbytes) scratch;
    f ~seq:k scratch 0
  done

let iter_merged t f =
  let ls = Array.of_list (lanes t) in
  let scratch = Array.make Record.words 0 in
  let cursor = Array.map retained_first ls in
  let n = Array.length ls in
  let exception Done in
  (try
     while true do
       let best = ref (-1) in
       let best_tick = ref max_int in
       for i = 0 to n - 1 do
         let l = ls.(i) in
         if cursor.(i) < l.total then begin
           let tick = Int64.to_int (unsafe_get64 l.buf (slot_of l cursor.(i) * rbytes)) in
           (* Strict [<] keeps the earliest lane on ties: lanes are
              scanned in ascending id order. *)
           if !best < 0 || tick < !best_tick then begin
             best := i;
             best_tick := tick
           end
         end
       done;
       if !best < 0 then raise Done;
       let i = !best in
       let l = ls.(i) in
       let seq = cursor.(i) in
       cursor.(i) <- seq + 1;
       load_record l.buf (slot_of l seq * rbytes) scratch;
       f ~lane:l.id ~seq scratch 0
     done
   with Done -> ())

(* ------------------------------------------------------------------ *)
(* Segment completion.                                                *)

let write_segment oc t =
  if not t.finished then begin
    let oc = match t.spill with Some s -> s | None -> oc in
    write_header t oc;
    List.iter
      (fun l ->
        let first = retained_first l in
        let count = l.total - first in
        if count > 0 then write_records t oc l ~first ~count;
        l.flushed <- l.total;
        out_word t oc 2;
        out_word t oc l.id;
        out_word t oc l.total;
        out_word t oc l.dropped)
      (lanes t);
    out_word t oc 0;
    t.finished <- true
  end

let finish t =
  match t.spill with
  | Some oc -> write_segment oc t
  | None -> invalid_arg "Recorder.finish: recorder has no spill sink"

(* ------------------------------------------------------------------ *)
(* Reading segments back.                                             *)

type read_lane = {
  rl_id : int;
  rl_first : int; (* logical seq of records.(0) *)
  rl_records : int array;
  rl_total : int;
  rl_dropped : int;
}

type segment = {
  seg_label : string;
  seg_interns : string array;
  seg_lanes : read_lane list;
}

let seg_label s = s.seg_label

let seg_lanes s = s.seg_lanes

let read_lane_id l = l.rl_id

let read_lane_total l = l.rl_total

let read_lane_dropped l = l.rl_dropped

let read_lane_retained l = Array.length l.rl_records / Record.words

let seg_lookup s i =
  if i >= 0 && i < Array.length s.seg_interns then s.seg_interns.(i)
  else Printf.sprintf "?%d" i

let in64 b8 ic =
  really_input ic b8 0 8;
  Record.get64 b8 0

let in_string b8 ic =
  let len = in64 b8 ic in
  if len < 0 || len > 1 lsl 30 then failwith "corrupt segment: bad string length";
  really_input_string ic len

type partial_lane = {
  mutable pl_first : int;
  mutable pl_next : int;
  mutable pl_chunks : int array list; (* reversed *)
  mutable pl_total : int;
  mutable pl_dropped : int;
  mutable pl_seen_chunk : bool;
}

let read_segment_body b8 ic =
  let label = in_string b8 ic in
  let n_interns = in64 b8 ic in
  if n_interns < 0 || n_interns > 1 lsl 24 then
    failwith "corrupt segment: bad intern count";
  let interns = Array.init n_interns (fun _ -> in_string b8 ic) in
  let lanes : (int, partial_lane) Hashtbl.t = Hashtbl.create 4 in
  let get_lane id =
    match Hashtbl.find_opt lanes id with
    | Some p -> p
    | None ->
        let p =
          {
            pl_first = 0;
            pl_next = 0;
            pl_chunks = [];
            pl_total = 0;
            pl_dropped = 0;
            pl_seen_chunk = false;
          }
        in
        Hashtbl.replace lanes id p;
        p
  in
  let rec loop () =
    match in64 b8 ic with
    | 0 -> ()
    | 1 ->
        let id = in64 b8 ic in
        let first = in64 b8 ic in
        let count = in64 b8 ic in
        if count < 0 || count > 1 lsl 30 then
          failwith "corrupt segment: bad chunk length";
        let p = get_lane id in
        if not p.pl_seen_chunk then begin
          p.pl_first <- first;
          p.pl_next <- first;
          p.pl_seen_chunk <- true
        end;
        if first <> p.pl_next then
          failwith "corrupt segment: non-contiguous chunks";
        let words = Array.make (count * Record.words) 0 in
        let rbytes = 8 * Record.words in
        let scratch = Bytes.create rbytes in
        for i = 0 to count - 1 do
          really_input ic scratch 0 rbytes;
          Record.decode scratch ~pos:0 words ~off:(i * Record.words)
        done;
        p.pl_chunks <- words :: p.pl_chunks;
        p.pl_next <- first + count;
        loop ()
    | 2 ->
        let id = in64 b8 ic in
        let total = in64 b8 ic in
        let dropped = in64 b8 ic in
        let p = get_lane id in
        p.pl_total <- total;
        p.pl_dropped <- dropped;
        loop ()
    | tag -> failwith (Printf.sprintf "corrupt segment: unknown tag %d" tag)
  in
  loop ();
  let seg_lanes =
    Hashtbl.fold
      (fun id p acc ->
        let records = Array.concat (List.rev p.pl_chunks) in
        {
          rl_id = id;
          rl_first = p.pl_first;
          rl_records = records;
          rl_total = p.pl_total;
          rl_dropped = p.pl_dropped;
        }
        :: acc)
      lanes []
    |> List.sort (fun a b -> Int.compare a.rl_id b.rl_id)
  in
  { seg_label = label; seg_interns = interns; seg_lanes }

let read_segments ic =
  let b8 = Bytes.create 8 in
  let rec loop acc =
    match really_input_string ic 8 with
    | exception End_of_file -> List.rev acc
    | m when String.equal m magic -> loop (read_segment_body b8 ic :: acc)
    | _ -> failwith "not a flight-recorder file (bad magic)"
  in
  loop []

let iter_segment seg f =
  let ls = Array.of_list seg.seg_lanes in
  let cursor = Array.make (Array.length ls) 0 in
  let counts = Array.map read_lane_retained ls in
  let n = Array.length ls in
  let exception Done in
  (try
     while true do
       let best = ref (-1) in
       let best_tick = ref max_int in
       for i = 0 to n - 1 do
         if cursor.(i) < counts.(i) then begin
           let tick = ls.(i).rl_records.(cursor.(i) * Record.words) in
           if !best < 0 || tick < !best_tick then begin
             best := i;
             best_tick := tick
           end
         end
       done;
       if !best < 0 then raise Done;
       let i = !best in
       let idx = cursor.(i) in
       cursor.(i) <- idx + 1;
       f ~lane:ls.(i).rl_id
         ~seq:(ls.(i).rl_first + idx)
         ls.(i).rl_records (idx * Record.words)
     done
   with Done -> ())
