(** Wall-clock instrumentation: where does the real time go?

    A {!phases} accumulator maps phase names (e.g. ["setup"], ["run"],
    ["collect"]) to summed wall-clock durations. Phases are created on
    first use and keep first-use order; timing the same name repeatedly
    accumulates, so one accumulator can span a whole sweep. *)

val wall_clock_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); only differences are
    meaningful. *)

(** {2 GC counters}

    Allocation accounting for the allocation-budget gate: bracket a run
    with {!gc_read}/{!gc_since} and divide by events fired to get
    words/event. A read runs a minor collection first — on OCaml 5,
    [Gc.quick_stat]'s minor-word counter only advances at minor-GC
    boundaries, so an unflushed reading is quantised by up to a whole
    young area. Cheap enough to call per run; never call per event. *)

type gc_counters = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** words that survived into the major heap *)
  major_collections : int;  (** major GC cycles completed *)
}

val gc_zero : gc_counters

val gc_read : unit -> gc_counters
(** Counters since program start; only differences are meaningful. *)

val gc_since : gc_counters -> gc_counters
(** [gc_since before] is the counter delta from [before] to now. *)

type phases

val phases : unit -> phases

val time : phases -> string -> (unit -> 'a) -> 'a
(** [time p name f] runs [f] and adds its wall-clock duration to [name]
    (also on exception). *)

val add_s : phases -> string -> float -> unit
(** Credit [name] with an externally measured duration. *)

val merge_into : into:phases -> phases -> unit
(** Adds each of [src]'s phase totals into [into] (creating phases as
    needed, in [src]'s order); [src] is left untouched. *)

val duration_s : phases -> string -> float
(** Accumulated seconds for [name]; 0 if never timed. *)

val durations_s : phases -> (string * float) list
(** All phases in first-use order. *)

val total_s : phases -> float
(** Sum over all phases (note: nested phases count twice). *)

val to_json : phases -> Json.t
(** An object mapping phase name to seconds. *)
