(** Wall-clock instrumentation: where does the real time go?

    A {!phases} accumulator maps phase names (e.g. ["setup"], ["run"],
    ["collect"]) to summed wall-clock durations. Phases are created on
    first use and keep first-use order; timing the same name repeatedly
    accumulates, so one accumulator can span a whole sweep. *)

val wall_clock_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); only differences are
    meaningful. *)

type phases

val phases : unit -> phases

val time : phases -> string -> (unit -> 'a) -> 'a
(** [time p name f] runs [f] and adds its wall-clock duration to [name]
    (also on exception). *)

val add_s : phases -> string -> float -> unit
(** Credit [name] with an externally measured duration. *)

val merge_into : into:phases -> phases -> unit
(** Adds each of [src]'s phase totals into [into] (creating phases as
    needed, in [src]'s order); [src] is left untouched. *)

val duration_s : phases -> string -> float
(** Accumulated seconds for [name]; 0 if never timed. *)

val durations_s : phases -> (string * float) list
(** All phases in first-use order. *)

val total_s : phases -> float
(** Sum over all phases (note: nested phases count twice). *)

val to_json : phases -> Json.t
(** An object mapping phase name to seconds. *)
