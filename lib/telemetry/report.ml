type t = {
  label : string;
  runs : int;
  events_fired : int;
  event_queue_hwm : int;
  gateway_queue_hwm : int;
  sim_time_s : float;
  run_wall_s : float;
  wall_s : float;
  events_per_sec : float;
  sim_wall_ratio : float;
  words_per_event : float;
  bus_events : int;
  phases : (string * float) list;
  metrics : Json.t;
}

let of_probe ?(label = "run") (p : Probe.t) =
  let r = p.Probe.registry in
  let gauge name = Registry.gauge_value (Registry.gauge r name) in
  let events_fired = Probe.events_total p in
  let sim_time_s = gauge Probe.m_sim_seconds in
  let run_wall_s = gauge Probe.m_run_wall in
  let total = Perf.duration_s p.Probe.phases "total" in
  let wall_s = if total > 0. then total else Perf.total_s p.Probe.phases in
  let rate x = if run_wall_s > 0. then x /. run_wall_s else 0. in
  {
    label;
    runs = Probe.runs_total p;
    events_fired;
    event_queue_hwm = int_of_float (gauge Probe.m_eq_hwm);
    gateway_queue_hwm = int_of_float (gauge Probe.m_gw_hwm);
    sim_time_s;
    run_wall_s;
    wall_s;
    events_per_sec = rate (float_of_int events_fired);
    sim_wall_ratio = rate sim_time_s;
    words_per_event = gauge Probe.m_words_per_event;
    bus_events = Event_bus.published p.Probe.bus;
    phases = Perf.durations_s p.Probe.phases;
    metrics = Registry.to_json r;
  }

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("runs", Json.Int t.runs);
      ("events_fired", Json.Int t.events_fired);
      ("event_queue_hwm", Json.Int t.event_queue_hwm);
      ("gateway_queue_hwm", Json.Int t.gateway_queue_hwm);
      ("sim_time_s", Json.Float t.sim_time_s);
      ("run_wall_s", Json.Float t.run_wall_s);
      ("wall_s", Json.Float t.wall_s);
      ("events_per_sec", Json.Float t.events_per_sec);
      ("sim_wall_ratio", Json.Float t.sim_wall_ratio);
      ("words_per_event", Json.Float t.words_per_event);
      ("bus_events", Json.Int t.bus_events);
      ("phases", Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) t.phases));
      ("metrics", t.metrics);
    ]

let required_fields =
  [
    "label";
    "runs";
    "events_fired";
    "event_queue_hwm";
    "gateway_queue_hwm";
    "events_per_sec";
    "phases";
    "metrics";
  ]

let validate j =
  match j with
  | Json.Obj _ ->
      let missing =
        List.filter (fun f -> Json.member f j = None) required_fields
      in
      let shape_errors =
        (match Json.member "phases" j with
        | Some (Json.Obj _) | None -> []
        | Some _ -> [ "phases is not an object" ])
        @
        match Json.member "metrics" j with
        | Some (Json.List _) | None -> []
        | Some _ -> [ "metrics is not a list" ]
      in
      if missing = [] && shape_errors = [] then Ok ()
      else
        Error
          (String.concat "; "
             ((match missing with
              | [] -> []
              | _ -> [ "missing fields: " ^ String.concat ", " missing ])
             @ shape_errors))
  | _ -> Error "report is not a JSON object"
