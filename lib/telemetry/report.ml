type t = {
  label : string;
  runs : int;
  events_fired : int;
  event_queue_hwm : int;
  gateway_queue_hwm : int;
  sim_time_s : float;
  run_wall_s : float;
  wall_s : float;
  events_per_sec : float;
  sim_wall_ratio : float;
  words_per_event : float;
  bus_events : int;
  phases : (string * float) list;
  metrics : Json.t;
}

let of_probe ?(label = "run") (p : Probe.t) =
  let r = p.Probe.registry in
  let gauge name = Registry.gauge_value (Registry.gauge r name) in
  let events_fired = Probe.events_total p in
  let sim_time_s = gauge Probe.m_sim_seconds in
  let run_wall_s = gauge Probe.m_run_wall in
  let total = Perf.duration_s p.Probe.phases "total" in
  let wall_s = if total > 0. then total else Perf.total_s p.Probe.phases in
  let rate x = if run_wall_s > 0. then x /. run_wall_s else 0. in
  {
    label;
    runs = Probe.runs_total p;
    events_fired;
    event_queue_hwm = int_of_float (gauge Probe.m_eq_hwm);
    gateway_queue_hwm = int_of_float (gauge Probe.m_gw_hwm);
    sim_time_s;
    run_wall_s;
    wall_s;
    events_per_sec = rate (float_of_int events_fired);
    sim_wall_ratio = rate sim_time_s;
    words_per_event = gauge Probe.m_words_per_event;
    bus_events = Event_bus.published p.Probe.bus;
    phases = Perf.durations_s p.Probe.phases;
    metrics = Registry.to_json r;
  }

let to_json t =
  Json.Obj
    [
      ("label", Json.String t.label);
      ("runs", Json.Int t.runs);
      ("events_fired", Json.Int t.events_fired);
      ("event_queue_hwm", Json.Int t.event_queue_hwm);
      ("gateway_queue_hwm", Json.Int t.gateway_queue_hwm);
      ("sim_time_s", Json.Float t.sim_time_s);
      ("run_wall_s", Json.Float t.run_wall_s);
      ("wall_s", Json.Float t.wall_s);
      ("events_per_sec", Json.Float t.events_per_sec);
      ("sim_wall_ratio", Json.Float t.sim_wall_ratio);
      ("words_per_event", Json.Float t.words_per_event);
      ("bus_events", Json.Int t.bus_events);
      ("phases", Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) t.phases));
      ("metrics", t.metrics);
    ]

let required_fields =
  [
    "label";
    "runs";
    "events_fired";
    "event_queue_hwm";
    "gateway_queue_hwm";
    "events_per_sec";
    "phases";
    "metrics";
  ]

(* BENCH_alloc.json: the allocation-budget sweep written by the bench
   runner. A header describes the sweep; each row is one scenario with
   its measured GC figures and the committed budget it was checked
   against. *)

let alloc_required_fields =
  [
    "clients";
    "duration_s";
    "reps";
    "baseline_minor_words_per_event";
    "baseline_events_per_sec";
    "rows";
  ]

let alloc_row_required_fields =
  [
    "scenario";
    "clients";
    "events";
    "wall_s";
    "events_per_sec";
    "minor_words_per_event";
    "promoted_words_per_event";
    "major_collections";
    "threshold_minor_words_per_event";
    "min_events_per_sec";
    "leak_free";
  ]

let validate_alloc_row row =
  match row with
  | Json.Obj _ -> (
      let label =
        match Json.member "scenario" row with
        | Some (Json.String s) -> s
        | _ -> "<unnamed row>"
      in
      let missing =
        List.filter (fun f -> Json.member f row = None) alloc_row_required_fields
      in
      if missing <> [] then
        [ label ^ ": missing fields: " ^ String.concat ", " missing ]
      else
        let number f = Option.bind (Json.member f row) Json.to_float in
        (match (number "minor_words_per_event", number "threshold_minor_words_per_event")
         with
        | Some wpe, Some threshold when wpe > threshold ->
            [
              Printf.sprintf "%s: minor_words_per_event %.4f exceeds threshold %g"
                label wpe threshold;
            ]
        | Some _, Some _ -> []
        | _ -> [ label ^ ": words_per_event fields are not numbers" ])
        @
        match Json.member "leak_free" row with
        | Some (Json.Bool true) -> []
        | Some (Json.Bool false) -> [ label ^ ": leak_free is false" ]
        | _ -> [ label ^ ": leak_free is not a bool" ])
  | _ -> [ "row is not an object" ]

let validate_alloc j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun f -> Json.member f j = None) alloc_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else
        match Json.member "rows" j with
        | Some (Json.List []) -> Error "rows is empty"
        | Some (Json.List rows) -> (
            match List.concat_map validate_alloc_row rows with
            | [] -> Ok ()
            | errors -> Error (String.concat "; " errors))
        | _ -> Error "rows is not a list")
  | _ -> Error "alloc report is not a JSON object"

(* BENCH_flows.json: the flow-scaling sweep (10^3..10^5 greedy flows).
   Schema check plus the budgets the file itself carries: per-flow
   bytes, zero slab growth, leak-freedom, and — on the rows the bench
   ran to fluid equilibrium ([fluid_gated] true) — the measured/ODE
   queue and throughput ratios. The events/sec floor is deliberately
   not re-checked here: wall time depends on the machine and on --fast,
   and the bench itself enforces it in full mode. *)

let flows_required_fields =
  [
    "per_flow_capacity_pps";
    "base_rtt_s";
    "bytes_per_flow_budget";
    "minor_words_per_event_budget";
    "min_events_per_sec";
    "throughput_ratio_min";
    "throughput_ratio_max";
    "queue_ratio_min";
    "queue_ratio_max";
    "rows";
  ]

let flows_row_required_fields =
  [
    "flows";
    "duration_s";
    "fluid_gated";
    "events";
    "wall_s";
    "events_per_sec";
    "minor_words_per_event";
    "bytes_per_flow";
    "flow_footprint_bytes";
    "flow_table_growths";
    "queue_growths";
    "queue_capacity";
    "queue_hwm";
    "wheel_parked";
    "delivered";
    "measured_queue";
    "fluid_queue";
    "queue_ratio";
    "measured_throughput_pps";
    "fluid_throughput_pps";
    "throughput_ratio";
    "leak_free";
  ]

let validate_flows_row ~header row =
  match row with
  | Json.Obj _ -> (
      let label =
        match Json.member "flows" row with
        | Some (Json.Int n) -> Printf.sprintf "N=%d" n
        | _ -> "<unnamed row>"
      in
      let missing =
        List.filter (fun f -> Json.member f row = None) flows_row_required_fields
      in
      if missing <> [] then
        [ label ^ ": missing fields: " ^ String.concat ", " missing ]
      else begin
        let number j f = Option.bind (Json.member f j) Json.to_float in
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
        (* A smoke row (the N = 10^6 scale probe) commits only to the
           per-flow byte budget and leak-freedom: its horizon is too
           short for steady-state words/event or fluid ratios, and its
           slabs are allowed to grow. Absent [smoke] means false. *)
        let smoke =
          match Json.member "smoke" row with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        let le what measured budget =
          match (number row measured, number header budget) with
          | Some m, Some b ->
              if m > b then err "%s: %s %g exceeds budget %g" label what m b
          | _ -> err "%s: %s fields are not numbers" label what
        in
        le "bytes_per_flow" "bytes_per_flow" "bytes_per_flow_budget";
        if not smoke then begin
          le "minor words/event" "minor_words_per_event"
            "minor_words_per_event_budget";
          match (number row "flow_table_growths", number row "queue_growths")
          with
          | Some ft, Some q ->
              if ft <> 0. || q <> 0. then
                err "%s: slabs grew (%g flow-table, %g event-queue)" label ft q
          | _ -> err "%s: growth fields are not numbers" label
        end;
        (match Json.member "leak_free" row with
        | Some (Json.Bool true) -> ()
        | Some (Json.Bool false) -> err "%s: leak_free is false" label
        | _ -> err "%s: leak_free is not a bool" label);
        (match Json.member "fluid_gated" row with
        | Some (Json.Bool true) ->
            let within what v lo hi =
              match (number row v, number header lo, number header hi) with
              | Some x, Some a, Some b ->
                  if x < a || x > b then
                    err "%s: %s %g outside [%g, %g]" label what x a b
              | _ -> err "%s: %s fields are not numbers" label what
            in
            within "throughput ratio" "throughput_ratio"
              "throughput_ratio_min" "throughput_ratio_max";
            within "queue ratio" "queue_ratio" "queue_ratio_min"
              "queue_ratio_max"
        | Some (Json.Bool false) -> ()
        | _ -> err "%s: fluid_gated is not a bool" label);
        List.rev !errors
      end)
  | _ -> [ "row is not an object" ]

let validate_flows j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun f -> Json.member f j = None) flows_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else
        match Json.member "rows" j with
        | Some (Json.List []) -> Error "rows is empty"
        | Some (Json.List rows) -> (
            match List.concat_map (validate_flows_row ~header:j) rows with
            | [] -> Ok ()
            | errors -> Error (String.concat "; " errors))
        | _ -> Error "rows is not a list")
  | _ -> Error "flows report is not a JSON object"

(* BENCH_parallel.json: the sequential-vs-parallel sweep comparison plus
   the single-run sharded-PDES scaling section. Both determinism flags
   are hard gates; the single-run speedup is re-checked against the
   file's own [min_speedup] floor, but only when the bench recorded one
   (it records null on machines with fewer than 4 domains, where the
   ratio would measure oversubscription noise, not scaling). *)

let parallel_required_fields =
  [
    "scenario";
    "clients";
    "replicates";
    "duration_s";
    "domains";
    "sequential_wall_s";
    "parallel_wall_s";
    "speedup";
    "deterministic";
    "single_run";
  ]

let parallel_single_run_required_fields =
  [
    "scenario";
    "clients";
    "duration_s";
    "window_s";
    "available_domains";
    "min_speedup";
    "rows";
    "speedup";
    "sharded_deterministic";
  ]

let validate_parallel j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun f -> Json.member f j = None) parallel_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else begin
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
        let number o f = Option.bind (Json.member f o) Json.to_float in
        (match Json.member "deterministic" j with
        | Some (Json.Bool true) -> ()
        | Some (Json.Bool false) ->
            err "deterministic is false (parallel sweep diverged)"
        | _ -> err "deterministic is not a bool");
        (match Json.member "single_run" j with
        | Some (Json.Obj _ as sr) ->
            let missing =
              List.filter
                (fun f -> Json.member f sr = None)
                parallel_single_run_required_fields
            in
            if missing <> [] then
              err "single_run: missing fields: %s" (String.concat ", " missing)
            else begin
              (match Json.member "sharded_deterministic" sr with
              | Some (Json.Bool true) -> ()
              | Some (Json.Bool false) ->
                  err
                    "single_run: sharded_deterministic is false (1-shard and \
                     K-shard runs diverged)"
              | _ -> err "single_run: sharded_deterministic is not a bool");
              (match Json.member "rows" sr with
              | Some (Json.List []) -> err "single_run: rows is empty"
              | Some (Json.List rows) ->
                  List.iter
                    (fun row ->
                      match (number row "shards", number row "wall_s") with
                      | Some _, Some _ -> ()
                      | _ ->
                          err
                            "single_run: row without numeric shards/wall_s \
                             fields")
                    rows
              | _ -> err "single_run: rows is not a list");
              match Json.member "speedup" sr with
              | Some Json.Null -> (
                  match number sr "available_domains" with
                  | Some d when d >= 4. ->
                      err
                        "single_run: speedup is null despite %g available \
                         domains" d
                  | Some _ -> ()
                  | None -> err "single_run: available_domains is not a number")
              | Some v -> (
                  match (Json.to_float v, number sr "min_speedup") with
                  | Some s, Some m ->
                      if s < m then
                        err
                          "single_run: speedup %.2fx is below the committed \
                           floor %.2fx" s m
                  | _ -> err "single_run: speedup/min_speedup are not numbers")
              | None -> ()
            end
        | _ -> err "single_run is not an object");
        match List.rev !errors with
        | [] -> Ok ()
        | errors -> Error (String.concat "; " errors)
      end)
  | _ -> Error "parallel report is not a JSON object"

(* BENCH_telemetry.json: the three-configuration overhead benchmark
   (baseline / probed / probed+recorder). Schema check plus the
   committed budgets the file itself carries. *)
let bench_telemetry_required_fields =
  [
    "scenario";
    "clients";
    "events";
    "baseline_events_per_sec";
    "probed_events_per_sec";
    "recorded_events_per_sec";
    "probed_run_s";
    "recorded_run_s";
    "probe_overhead_pct";
    "probe_overhead_budget_pct";
    "recorder_overhead_pct";
    "recorder_overhead_budget_pct";
    "recorder_minor_words_per_event_delta";
    "recorder_words_budget";
    "recorder_records";
    "recorder_dropped";
  ]

let validate_bench_telemetry j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter
          (fun f -> Json.member f j = None)
          bench_telemetry_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else
        let number f = Option.bind (Json.member f j) Json.to_float in
        let gate what value budget =
          match (number value, number budget) with
          | Some v, Some b when v > b ->
              [ Printf.sprintf "%s %.4f exceeds budget %g" what v b ]
          | Some _, Some _ -> []
          | _ -> [ Printf.sprintf "%s fields are not numbers" what ]
        in
        let errors =
          gate "probe overhead pct" "probe_overhead_pct"
            "probe_overhead_budget_pct"
          @ gate "recorder overhead pct" "recorder_overhead_pct"
              "recorder_overhead_budget_pct"
          @ gate "recorder minor words/event delta"
              "recorder_minor_words_per_event_delta" "recorder_words_budget"
          @
          match number "recorder_records" with
          | Some r when r > 0. -> []
          | Some _ -> [ "recorder_records is zero" ]
          | None -> [ "recorder_records is not a number" ]
        in
        match errors with
        | [] -> Ok ()
        | errors -> Error (String.concat "; " errors))
  | _ -> Error "bench-telemetry report is not a JSON object"

(* BENCH_burst.json: the burstiness-observability benchmark. Three
   claims travel in one file and are re-checked here from the file's
   own committed budgets: (1) the streaming aggregator's allocation
   cost per event stays under its budget, (2) the streaming c.o.v. at
   the paper's RTT timescale matches the offline estimator within
   tolerance, and (3) the oscillation detector fires on the unstable
   side — and only the unstable side — of a RED w_q sweep bracketing
   the linearized (Hollot-style) stability condition. *)

let burst_required_fields =
  [
    "scenario";
    "clients";
    "reps";
    "events";
    "probed_run_s";
    "burst_run_s";
    "burst_overhead_pct";
    "burst_minor_words_per_event_delta";
    "burst_words_budget";
    "cov_offline";
    "cov_streaming";
    "cov_abs_err";
    "cov_tolerance";
    "red_sweep";
  ]

let burst_row_required_fields =
  [ "w_q"; "side"; "rel_amplitude"; "frequency_hz"; "crossings"; "oscillating" ]

let validate_burst_row row =
  match row with
  | Json.Obj _ -> (
      let label =
        match Option.bind (Json.member "w_q" row) Json.to_float with
        | Some w -> Printf.sprintf "w_q=%g" w
        | None -> "<unnamed row>"
      in
      let missing =
        List.filter (fun f -> Json.member f row = None) burst_row_required_fields
      in
      if missing <> [] then
        [ label ^ ": missing fields: " ^ String.concat ", " missing ]
      else
        match (Json.member "side" row, Json.member "oscillating" row) with
        | Some (Json.String side), Some (Json.Bool osc) ->
            if side <> "stable" && side <> "unstable" then
              [ Printf.sprintf "%s: side %S is not stable|unstable" label side ]
            else if osc <> (side = "unstable") then
              [
                Printf.sprintf
                  "%s: detector verdict oscillating=%b contradicts side %S"
                  label osc side;
              ]
            else []
        | _ -> [ label ^ ": side/oscillating have the wrong types" ])
  | _ -> [ "red_sweep row is not an object" ]

let validate_burst j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun f -> Json.member f j = None) burst_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else
        let number f = Option.bind (Json.member f j) Json.to_float in
        let gate what value budget =
          match (number value, number budget) with
          | Some v, Some b when v > b ->
              [ Printf.sprintf "%s %g exceeds budget %g" what v b ]
          | Some _, Some _ -> []
          | _ -> [ Printf.sprintf "%s fields are not numbers" what ]
        in
        let errors =
          gate "burst minor words/event delta"
            "burst_minor_words_per_event_delta" "burst_words_budget"
          @ gate "streaming-vs-offline c.o.v. error" "cov_abs_err"
              "cov_tolerance"
          @
          match Json.member "red_sweep" j with
          | Some (Json.Obj _ as sweep) -> (
              match Json.member "rows" sweep with
              | Some (Json.List []) -> [ "red_sweep.rows is empty" ]
              | Some (Json.List rows) ->
                  let row_errors = List.concat_map validate_burst_row rows in
                  let side s row =
                    Json.member "side" row = Some (Json.String s)
                  in
                  (if List.exists (side "stable") rows then []
                   else [ "red_sweep has no stable row" ])
                  @ (if List.exists (side "unstable") rows then []
                     else [ "red_sweep has no unstable row" ])
                  @ row_errors
              | _ -> [ "red_sweep.rows is not a list" ])
          | Some _ -> [ "red_sweep is not an object" ]
          | None -> []
        in
        match errors with
        | [] -> Ok ()
        | errors -> Error (String.concat "; " errors))
  | _ -> Error "burst report is not a JSON object"

(* BENCH_hybrid.json: the hybrid fluid/packet engine report. Three
   claims travel in one file: (1) at N in {10^3, 10^4} the hybrid engine
   (K packet-level foreground flows + fluid background) reproduces the
   pure packet-level run's foreground throughput, combined queue and
   loss rate within the file's own tolerance bands, (2) the converged
   N = 10^6 run is leak-free, slab-stable, and does at least
   [work_ratio_min] times less work per simulated second than the pure
   packet extrapolation (the ratio is null in --fast/smoke mode, where
   the horizon is too short to measure it honestly), and (3) the RED
   w_q stability sweep at mean-field scale classifies every row on the
   side the fluid Hopf threshold predicts. *)

let hybrid_required_fields =
  [
    "scenario";
    "foreground";
    "throughput_ratio_min";
    "throughput_ratio_max";
    "queue_ratio_min";
    "queue_ratio_max";
    "loss_abs_tol";
    "work_ratio_min";
    "validation";
    "converged";
    "stability_sweep";
  ]

let hybrid_validation_row_required_fields =
  [
    "flows";
    "background";
    "packet_throughput_pps";
    "hybrid_throughput_pps";
    "throughput_ratio";
    "packet_queue_mean";
    "hybrid_queue_mean";
    "queue_ratio";
    "packet_loss_rate";
    "hybrid_loss_rate";
    "loss_abs_err";
    "event_ratio";
  ]

let hybrid_converged_required_fields =
  [
    "flows";
    "foreground";
    "background";
    "duration_s";
    "events";
    "wall_s";
    "events_per_sec";
    "bg_window_mean";
    "bg_queue_mean";
    "slowdown_mean";
    "flow_table_growths";
    "queue_growths";
    "leak_free";
    "smoke";
    "work_ratio";
  ]

let validate_hybrid_row ~header row =
  match row with
  | Json.Obj _ -> (
      let label =
        match Json.member "flows" row with
        | Some (Json.Int n) -> Printf.sprintf "N=%d" n
        | _ -> "<unnamed row>"
      in
      let missing =
        List.filter
          (fun f -> Json.member f row = None)
          hybrid_validation_row_required_fields
      in
      if missing <> [] then
        [ label ^ ": missing fields: " ^ String.concat ", " missing ]
      else begin
        let number j f = Option.bind (Json.member f j) Json.to_float in
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
        let within what v lo hi =
          match (number row v, number header lo, number header hi) with
          | Some x, Some a, Some b ->
              if x < a || x > b then
                err "%s: %s %g outside [%g, %g]" label what x a b
          | _ -> err "%s: %s fields are not numbers" label what
        in
        within "foreground throughput ratio" "throughput_ratio"
          "throughput_ratio_min" "throughput_ratio_max";
        within "combined queue ratio" "queue_ratio" "queue_ratio_min"
          "queue_ratio_max";
        (match (number row "loss_abs_err", number header "loss_abs_tol") with
        | Some e, Some tol ->
            if e > tol then
              err "%s: loss-rate error %g exceeds tolerance %g" label e tol
        | _ -> err "%s: loss_abs_err fields are not numbers" label);
        (match number row "event_ratio" with
        | Some r when r < 1. ->
            err "%s: hybrid did more work than pure packet (event ratio %g)"
              label r
        | Some _ -> ()
        | None -> err "%s: event_ratio is not a number" label);
        List.rev !errors
      end)
  | _ -> [ "validation row is not an object" ]

let validate_hybrid j =
  match j with
  | Json.Obj _ -> (
      let missing =
        List.filter (fun f -> Json.member f j = None) hybrid_required_fields
      in
      if missing <> [] then
        Error ("missing fields: " ^ String.concat ", " missing)
      else begin
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
        let number o f = Option.bind (Json.member f o) Json.to_float in
        (match Json.member "validation" j with
        | Some (Json.List []) -> err "validation is empty"
        | Some (Json.List rows) ->
            List.iter
              (fun row ->
                List.iter
                  (fun m -> errors := m :: !errors)
                  (validate_hybrid_row ~header:j row))
              rows
        | _ -> err "validation is not a list");
        (match Json.member "converged" j with
        | Some (Json.Obj _ as c) -> (
            let missing =
              List.filter
                (fun f -> Json.member f c = None)
                hybrid_converged_required_fields
            in
            if missing <> [] then
              err "converged: missing fields: %s" (String.concat ", " missing)
            else begin
              (match Json.member "leak_free" c with
              | Some (Json.Bool true) -> ()
              | Some (Json.Bool false) -> err "converged: leak_free is false"
              | _ -> err "converged: leak_free is not a bool");
              (match
                 (number c "flow_table_growths", number c "queue_growths")
               with
              | Some ft, Some q ->
                  if ft <> 0. || q <> 0. then
                    err "converged: slabs grew (%g flow-table, %g event-queue)"
                      ft q
              | _ -> err "converged: growth fields are not numbers");
              let smoke =
                match Json.member "smoke" c with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              match Json.member "work_ratio" c with
              | Some Json.Null ->
                  if not smoke then
                    err "converged: work_ratio is null outside smoke mode"
              | Some v -> (
                  match (Json.to_float v, number j "work_ratio_min") with
                  | Some r, Some m ->
                      if r < m then
                        err
                          "converged: work ratio %.1fx is below the committed \
                           floor %.1fx" r m
                  | _ ->
                      err "converged: work_ratio/work_ratio_min are not numbers"
              )
              | None -> ()
            end)
        | _ -> err "converged is not an object");
        (match Json.member "stability_sweep" j with
        | Some (Json.Obj _ as sweep) -> (
            (match number sweep "wq_critical" with
            | Some w when w > 0. -> ()
            | Some w -> err "stability_sweep: wq_critical %g is not positive" w
            | None -> err "stability_sweep: wq_critical is not a number");
            match Json.member "rows" sweep with
            | Some (Json.List []) -> err "stability_sweep.rows is empty"
            | Some (Json.List rows) ->
                List.iter
                  (fun row ->
                    List.iter
                      (fun m -> errors := m :: !errors)
                      (validate_burst_row row))
                  rows;
                let side s row =
                  Json.member "side" row = Some (Json.String s)
                in
                if not (List.exists (side "stable") rows) then
                  err "stability_sweep has no stable row";
                if not (List.exists (side "unstable") rows) then
                  err "stability_sweep has no unstable row"
            | _ -> err "stability_sweep.rows is not a list")
        | _ -> err "stability_sweep is not an object");
        match List.rev !errors with
        | [] -> Ok ()
        | errors -> Error (String.concat "; " errors)
      end)
  | _ -> Error "hybrid report is not a JSON object"

let validate j =
  match j with
  | Json.Obj _ ->
      let missing =
        List.filter (fun f -> Json.member f j = None) required_fields
      in
      let shape_errors =
        (match Json.member "phases" j with
        | Some (Json.Obj _) | None -> []
        | Some _ -> [ "phases is not an object" ])
        @
        match Json.member "metrics" j with
        | Some (Json.List _) | None -> []
        | Some _ -> [ "metrics is not a list" ]
      in
      if missing = [] && shape_errors = [] then Ok ()
      else
        Error
          (String.concat "; "
             ((match missing with
              | [] -> []
              | _ -> [ "missing fields: " ^ String.concat ", " missing ])
             @ shape_errors))
  | _ -> Error "report is not a JSON object"
