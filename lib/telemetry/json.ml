type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then invalid_arg "Json: non-finite float";
  (* Shortest representation that still contains a decimal marker, so the
     parser reads it back as a Float. *)
  let s = Printf.sprintf "%.17g" f in
  let shorter = Printf.sprintf "%.12g" f in
  let s = if float_of_string shorter = f then shorter else s in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then s
  else s ^ ".0"

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_string ppf (float_repr f)
  | String s ->
      let buf = Buffer.create (String.length s + 2) in
      escape_into buf s;
      Format.pp_print_string ppf (Buffer.contents buf)
  | List xs ->
      Format.fprintf ppf "[@[<v>%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        xs
  | Obj fields ->
      let field ppf (k, v) =
        let buf = Buffer.create (String.length k + 2) in
        escape_into buf k;
        Format.fprintf ppf "%s: %a" (Buffer.contents buf) pp v
      in
      Format.fprintf ppf "{@[<v>%a@]}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") field)
        fields

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Parse_error of int * string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> error st (Printf.sprintf "expected %c, found %c" c got)
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else error st ("invalid literal, expected " ^ word)

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance st;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            go ()
        | Some '"' ->
            Buffer.add_char buf '"';
            advance st;
            go ()
        | Some '\\' ->
            Buffer.add_char buf '\\';
            advance st;
            go ()
        | Some '/' ->
            Buffer.add_char buf '/';
            advance st;
            go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then error st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else error st "\\u escape above 0x7f unsupported";
            go ()
        | _ -> error st "bad escape"
      end
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_number_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  let is_float =
    String.contains text '.' || String.contains text 'e' || String.contains text 'E'
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error st ("bad number " ^ text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> error st ("bad number " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some '[' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some ']' ->
          advance st;
          List []
      | _ ->
          let rec elems acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                elems (v :: acc)
            | Some ']' ->
                advance st;
                List (List.rev (v :: acc))
            | _ -> error st "expected , or ]"
          in
          elems []
    end
  | Some '{' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some '}' ->
          advance st;
          Obj []
      | _ ->
          let rec fields acc =
            skip_ws st;
            expect st '"';
            let key = parse_string_body st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                fields ((key, v) :: acc)
            | Some '}' ->
                advance st;
                Obj (List.rev ((key, v) :: acc))
            | _ -> error st "expected , or }"
          in
          fields []
    end
  | Some _ -> parse_number st

let parse src =
  let st = { src; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then error st "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "at offset %d: %s" pos msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | Null | Bool _ | String _ | List _ | Obj _ -> None
