type packet_kind = Arrival | Drop | Depart

type tcp_kind = Timeout | Fast_retransmit | Cwnd_cut | Ecn_reaction

type queue_kind = Ecn_mark | Early_drop | Forced_drop

type event =
  | Packet of {
      time : float;
      kind : packet_kind;
      link : string;
      flow : int;
      seq : int option;
      size_bytes : int;
      uid : int;
    }
  | Tcp of { time : float; kind : tcp_kind; flow : int; cwnd : float }
  | Queue of {
      time : float;
      kind : queue_kind;
      queue : string;
      flow : int;
      avg : float;
    }
  | Custom of { time : float; name : string; value : float }

let time = function
  | Packet e -> e.time
  | Tcp e -> e.time
  | Queue e -> e.time
  | Custom e -> e.time

type subscription = int

type t = {
  mutable subs : (subscription * (event -> unit)) list; (* newest first *)
  mutable fanout : (event -> unit) array; (* subscription order *)
  mutable next_id : int;
  mutable published : int;
}

let create () = { subs = []; fanout = [||]; next_id = 0; published = 0 }

let refresh t = t.fanout <- Array.of_list (List.rev_map snd t.subs)

let subscribe t f =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.subs <- (id, f) :: t.subs;
  refresh t;
  id

let unsubscribe t id =
  t.subs <- List.filter (fun (i, _) -> i <> id) t.subs;
  refresh t

let has_subscribers t = Array.length t.fanout > 0

let publish t e =
  t.published <- t.published + 1;
  Array.iter (fun f -> f e) t.fanout

let published t = t.published

(* ------------------------------------------------------------------ *)
(* NDJSON *)

let packet_kind_label = function
  | Arrival -> "arrival"
  | Drop -> "drop"
  | Depart -> "depart"

let tcp_kind_label = function
  | Timeout -> "timeout"
  | Fast_retransmit -> "fast_retransmit"
  | Cwnd_cut -> "cwnd_cut"
  | Ecn_reaction -> "ecn_reaction"

let queue_kind_label = function
  | Ecn_mark -> "ecn_mark"
  | Early_drop -> "early_drop"
  | Forced_drop -> "forced_drop"

let to_json = function
  | Packet e ->
      Json.Obj
        [
          ("event", Json.String "packet");
          ("time", Json.Float e.time);
          ("kind", Json.String (packet_kind_label e.kind));
          ("link", Json.String e.link);
          ("flow", Json.Int e.flow);
          ("seq", (match e.seq with Some s -> Json.Int s | None -> Json.Null));
          ("bytes", Json.Int e.size_bytes);
          ("uid", Json.Int e.uid);
        ]
  | Tcp e ->
      Json.Obj
        [
          ("event", Json.String "tcp");
          ("time", Json.Float e.time);
          ("kind", Json.String (tcp_kind_label e.kind));
          ("flow", Json.Int e.flow);
          ("cwnd", Json.Float e.cwnd);
        ]
  | Queue e ->
      Json.Obj
        [
          ("event", Json.String "queue");
          ("time", Json.Float e.time);
          ("kind", Json.String (queue_kind_label e.kind));
          ("queue", Json.String e.queue);
          ("flow", Json.Int e.flow);
          ("avg", Json.Float e.avg);
        ]
  | Custom e ->
      Json.Obj
        [
          ("event", Json.String "custom");
          ("time", Json.Float e.time);
          ("name", Json.String e.name);
          ("value", Json.Float e.value);
        ]

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str name j =
  let* v = field name j in
  match v with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let num name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let int_field name j =
  let* v = field name j in
  match v with
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let of_json j =
  let* event = str "event" j in
  match event with
  | "packet" ->
      let* time = num "time" j in
      let* kind_s = str "kind" j in
      let* kind =
        match kind_s with
        | "arrival" -> Ok Arrival
        | "drop" -> Ok Drop
        | "depart" -> Ok Depart
        | k -> Error (Printf.sprintf "unknown packet kind %S" k)
      in
      let* link = str "link" j in
      let* flow = int_field "flow" j in
      let* seq =
        match Json.member "seq" j with
        | Some (Json.Int s) -> Ok (Some s)
        | Some Json.Null | None -> Ok None
        | Some _ -> Error "field \"seq\": expected an integer or null"
      in
      let* size_bytes = int_field "bytes" j in
      let* uid = int_field "uid" j in
      Ok (Packet { time; kind; link; flow; seq; size_bytes; uid })
  | "tcp" ->
      let* time = num "time" j in
      let* kind_s = str "kind" j in
      let* kind =
        match kind_s with
        | "timeout" -> Ok Timeout
        | "fast_retransmit" -> Ok Fast_retransmit
        | "cwnd_cut" -> Ok Cwnd_cut
        | "ecn_reaction" -> Ok Ecn_reaction
        | k -> Error (Printf.sprintf "unknown tcp kind %S" k)
      in
      let* flow = int_field "flow" j in
      let* cwnd = num "cwnd" j in
      Ok (Tcp { time; kind; flow; cwnd })
  | "queue" ->
      let* time = num "time" j in
      let* kind_s = str "kind" j in
      let* kind =
        match kind_s with
        | "ecn_mark" -> Ok Ecn_mark
        | "early_drop" -> Ok Early_drop
        | "forced_drop" -> Ok Forced_drop
        | k -> Error (Printf.sprintf "unknown queue kind %S" k)
      in
      let* queue = str "queue" j in
      let* flow = int_field "flow" j in
      let* avg = num "avg" j in
      Ok (Queue { time; kind; queue; flow; avg })
  | "custom" ->
      let* time = num "time" j in
      let* name = str "name" j in
      let* value = num "value" j in
      Ok (Custom { time; name; value })
  | e -> Error (Printf.sprintf "unknown event type %S" e)

let to_ndjson e = Json.to_string (to_json e)

let of_ndjson_line line =
  let* j = Json.parse line in
  of_json j

let ndjson_writer oc e =
  output_string oc (to_ndjson e);
  output_char oc '\n'
