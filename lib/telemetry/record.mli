(** Fixed-width binary trace records: the flight recorder's wire unit.

    A record is {!words} consecutive integer words

    {v [tick; kind; flow; a; b; c; sid; depth] v}

    where [tick] is integer-nanosecond simulation time, [kind] one of
    the codes below, [sid] an interned-string id (0 = none) and
    [depth] the instantaneous queue depth at the recording site.
    Floats travel exactly as the two 32-bit halves of their IEEE-754
    bits in [b]/[c].

    Kinds [0..10] ("parity" kinds) mirror {!Event_bus.event}
    one-to-one, so a recorded stream decodes to NDJSON byte-identical
    to the live tracer's output. Kinds [>= 11] are lifecycle
    extensions (phases, RTT samples, receiver reordering, router
    retransmit forwards, run markers) that exist only in the binary
    stream. *)

val words : int
(** Words per record (8). *)

(** {1 Kind codes} *)

val packet_arrival : int
val packet_drop : int
val packet_depart : int
val tcp_timeout : int
val tcp_fast_retransmit : int
val tcp_cwnd_cut : int
val tcp_ecn_reaction : int
val queue_ecn_mark : int
val queue_early_drop : int
val queue_forced_drop : int
val custom_value : int
val tcp_phase : int
val tcp_rtt : int
val rcv_out_of_order : int
val rcv_duplicate : int
val router_rtx_forward : int
val run_start : int
val run_end : int

val burst_cov : int
(** End-of-run {!Telemetry.Burst} summary: c.o.v. per timescale (level
    in [a], IEEE-754 value bits in [b]/[c], block count in [depth]). *)

val burst_idc : int
(** Index of dispersion per timescale, same layout as [burst_cov]. *)

val burst_hurst : int
(** Wavelet Hurst estimate (octaves used in [a], value in [b]/[c]). *)

val burst_osc_amp : int
(** Oscillation detector relative amplitude (crossings in [a], value in
    [b]/[c], verdict 0/1 in [depth]). *)

val burst_osc_freq : int
(** Oscillation frequency in Hz, same layout as [burst_osc_amp]. *)

val hybrid_bg_window : int
(** End-of-run hybrid-engine summary: mean per-flow background window
    (background flow count in [a], IEEE-754 value bits in [b]/[c],
    quantum count in [depth]). *)

val hybrid_bg_queue : int
(** Mean virtual background backlog (packets), same layout. *)

val hybrid_bg_rate : int
(** Mean background arrival rate (packets/s), same layout. *)

val max_kind : int

val is_parity : int -> bool
(** True for kinds that map one-to-one onto {!Event_bus.event}. *)

val kind_label : int -> string
val kind_of_label : string -> int option

(** {1 TCP phase codes} (the [a] word of [tcp_phase] records) *)

val phase_slow_start : int
val phase_cong_avoid : int
val phase_recovery : int
val phase_timeout : int
val phase_label : int -> string

val no_seq : int
(** Sentinel in the [c] word of packet records for [seq = None]. *)

(** {1 Exact float transport} *)

val float_hi : float -> int
(** High 32 bits of [Int64.bits_of_float], in [\[0, 2{^32})]. *)

val float_lo : float -> int
(** Low 32 bits of [Int64.bits_of_float], in [\[0, 2{^32})]. *)

val bits_of_nonneg_int : int -> int
(** IEEE-754 bits of [float_of_int n] ([n >= 0], exact below 2{^52})
    computed in pure integer arithmetic — for hot paths that must not
    box a float. [bits lsr 32] / [bits land 0xFFFF_FFFF] are the
    {!float_hi} / {!float_lo} words. *)

val float_of_parts : hi:int -> lo:int -> float
(** Exact inverse of {!float_hi}/{!float_lo} (including NaN payloads,
    infinities and negative zero). *)

val time_of_tick : int -> float
(** [float_of_int tick /. 1e9] — exactly the engine's tick-to-seconds
    conversion, so decoded timestamps match published ones byte for
    byte. *)

(** {1 Binary word codec}

    64-bit little-endian two's complement; OCaml's 63-bit ints
    round-trip exactly. *)

val put64 : Bytes.t -> int -> int -> unit
val get64 : Bytes.t -> int -> int

val set_word : Bytes.t -> int -> int -> unit
(** Native-endian unchecked 64-bit store — the in-memory lane format.
    The caller guarantees [pos + 8 <= length]; disk output must go
    through the little-endian {!put64} instead. *)

val get_word : Bytes.t -> int -> int
(** Native-endian unchecked load, twin of {!set_word}. *)

val encode : Bytes.t -> pos:int -> int array -> off:int -> unit
(** Writes the {!words}-word record at [buf.(off..)] as [8 * words]
    bytes at [pos]. *)

val decode : Bytes.t -> pos:int -> int array -> off:int -> unit
(** Inverse of {!encode}. *)

(** {1 Decoding to events / JSON} *)

val event_of_record :
  lookup:(int -> string) -> int array -> int -> Event_bus.event option
(** [Some event] for parity kinds, [None] for lifecycle kinds.
    [lookup] resolves interned-string ids. *)

val json_of_record : lookup:(int -> string) -> int array -> int -> Json.t
(** JSON for any kind; parity kinds go through
    {!Event_bus.to_json} so serialization is byte-identical to the
    live tracer. *)

val ndjson_of_record : lookup:(int -> string) -> int array -> int -> string
