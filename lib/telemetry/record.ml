(* Fixed-width binary trace records.

   One record is [words] consecutive OCaml ints:

     [tick; kind; flow; a; b; c; sid; depth]

   - [tick]  simulation time in integer nanoseconds (engine ticks);
   - [kind]  one of the codes below;
   - [flow]  flow id, or 0 when not applicable;
   - [a..c]  kind-specific payload words (floats travel as the hi/lo
     32-bit halves of their IEEE-754 bits in [b]/[c], so decoding is
     exact);
   - [sid]   interned-string id (link/queue/label name), 0 = none;
   - [depth] instantaneous queue depth at the recording site, or 0.

   Kinds 0..10 mirror {!Event_bus.event} one-to-one ("parity" kinds): a
   recorded stream decodes to byte-identical NDJSON to what the live
   tracer would have written. Kinds >= 11 are lifecycle extensions that
   only exist in the binary stream. *)

let words = 8

(* Parity kinds: exactly the Event_bus vocabulary. *)
let packet_arrival = 0
let packet_drop = 1
let packet_depart = 2
let tcp_timeout = 3
let tcp_fast_retransmit = 4
let tcp_cwnd_cut = 5
let tcp_ecn_reaction = 6
let queue_ecn_mark = 7
let queue_early_drop = 8
let queue_forced_drop = 9
let custom_value = 10

(* Lifecycle kinds. *)
let tcp_phase = 11
let tcp_rtt = 12
let rcv_out_of_order = 13
let rcv_duplicate = 14
let router_rtx_forward = 15
let run_start = 16
let run_end = 17

(* Burst-telemetry kinds: end-of-run summaries from Telemetry.Burst.
   The scale kinds carry the level/octave in [a], the value's IEEE-754
   bits in [b]/[c] and the block count in [depth]; the oscillation
   kinds carry crossings in [a] and the detector verdict in [depth]. *)
let burst_cov = 18
let burst_idc = 19
let burst_hurst = 20
let burst_osc_amp = 21
let burst_osc_freq = 22

(* Hybrid-engine kinds: end-of-run summaries of the fluid background
   population. Each carries the background flow count in [a], the
   value's IEEE-754 bits in [b]/[c] and the quantum count in [depth]. *)
let hybrid_bg_window = 23
let hybrid_bg_queue = 24
let hybrid_bg_rate = 25

let max_kind = hybrid_bg_rate

let is_parity k = k >= packet_arrival && k <= custom_value

let kind_label = function
  | 0 -> "packet_arrival"
  | 1 -> "packet_drop"
  | 2 -> "packet_depart"
  | 3 -> "tcp_timeout"
  | 4 -> "tcp_fast_retransmit"
  | 5 -> "tcp_cwnd_cut"
  | 6 -> "tcp_ecn_reaction"
  | 7 -> "queue_ecn_mark"
  | 8 -> "queue_early_drop"
  | 9 -> "queue_forced_drop"
  | 10 -> "custom"
  | 11 -> "tcp_phase"
  | 12 -> "tcp_rtt"
  | 13 -> "rcv_out_of_order"
  | 14 -> "rcv_duplicate"
  | 15 -> "router_rtx_forward"
  | 16 -> "run_start"
  | 17 -> "run_end"
  | 18 -> "burst_cov"
  | 19 -> "burst_idc"
  | 20 -> "burst_hurst"
  | 21 -> "burst_osc_amp"
  | 22 -> "burst_osc_freq"
  | 23 -> "hybrid_bg_window"
  | 24 -> "hybrid_bg_queue"
  | 25 -> "hybrid_bg_rate"
  | k -> Printf.sprintf "kind_%d" k

let kind_of_label s =
  let rec find k = if k > max_kind then None else if String.equal (kind_label k) s then Some k else find (k + 1) in
  find 0

(* TCP congestion phases carried in the [a] word of [tcp_phase]. *)
let phase_slow_start = 0
let phase_cong_avoid = 1
let phase_recovery = 2
let phase_timeout = 3

let phase_label = function
  | 0 -> "slow_start"
  | 1 -> "cong_avoid"
  | 2 -> "recovery"
  | 3 -> "timeout"
  | p -> Printf.sprintf "phase_%d" p

(* Sentinel for "no sequence number" in the [c] word of packet records
   (ACKs and UDP datagrams publish [seq = null]). *)
let no_seq = min_int

(* ------------------------------------------------------------------ *)
(* Exact float transport: IEEE-754 bits split across two words.       *)

let float_hi f =
  Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float f) 32)

let float_lo f =
  Int64.to_int (Int64.logand (Int64.bits_of_float f) 0xFFFF_FFFFL)

(* IEEE-754 bits of [float_of_int n] for small [n >= 0], in pure
   integer arithmetic: nonnegative doubles keep the sign bit clear, so
   the whole 63 significant bits fit an OCaml int and no float (or
   Int64) is ever boxed. Exact for n < 2^52 — plenty for queue depths.
   [bits lsr 32] and [bits land 0xFFFF_FFFF] are then the {!float_hi} /
   {!float_lo} words. *)
let[@inline] bits_of_nonneg_int n =
  if n <= 0 then 0
  else begin
    let k = ref 0 in
    while n lsr !k > 1 do
      incr k
    done;
    ((1023 + !k) lsl 52) lor ((n lsl (52 - !k)) land 0xF_FFFF_FFFF_FFFF)
  end

let float_of_parts ~hi ~lo =
  Int64.float_of_bits
    (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let time_of_tick tick = float_of_int tick /. 1e9

(* ------------------------------------------------------------------ *)
(* Binary word codec: 64-bit little-endian, sign-extended. OCaml's
   63-bit ints round-trip exactly (the written 64-bit value is the
   sign-extension, and reading truncates it back). *)

let put64 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
  Bytes.unsafe_set b (pos + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
  Bytes.unsafe_set b (pos + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
  Bytes.unsafe_set b (pos + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
  Bytes.unsafe_set b (pos + 7) (Char.unsafe_chr ((v asr 56) land 0xff))

let get64 b pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get b (pos + i))))
  done;
  Int64.to_int !v

(* In-memory lane words: native-endian 64-bit stores/loads through the
   unaligned bytes primitives. Lanes live in [Bytes] precisely so the
   major GC never scans them (a multi-MB int array is walked word by
   word on every major cycle; an equally large Bytes block is O(1) to
   mark). Native endianness never leaks: the on-disk format always goes
   through the explicitly little-endian {!put64}/{!get64}. *)

external unsafe_set_word64 : Bytes.t -> int -> int64 -> unit
  = "%caml_bytes_set64u"

external unsafe_get_word64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

let[@inline] set_word b pos v = unsafe_set_word64 b pos (Int64.of_int v)

let[@inline] get_word b pos = Int64.to_int (unsafe_get_word64 b pos)

let encode b ~pos buf ~off =
  for i = 0 to words - 1 do
    put64 b (pos + (8 * i)) (Array.unsafe_get buf (off + i))
  done

let decode b ~pos buf ~off =
  for i = 0 to words - 1 do
    Array.unsafe_set buf (off + i) (get64 b (pos + (8 * i)))
  done

(* ------------------------------------------------------------------ *)
(* Decoding records back into events / JSON.                          *)

let event_of_record ~lookup buf off =
  let tick = buf.(off) and kind = buf.(off + 1) and flow = buf.(off + 2) in
  let a = buf.(off + 3) and b = buf.(off + 4) and c = buf.(off + 5) in
  let sid = buf.(off + 6) in
  let time = time_of_tick tick in
  let packet k =
    Some
      (Event_bus.Packet
         {
           time;
           kind = k;
           link = lookup sid;
           flow;
           seq = (if c = no_seq then None else Some c);
           size_bytes = b;
           uid = a;
         })
  in
  let tcp k =
    Some (Event_bus.Tcp { time; kind = k; flow; cwnd = float_of_parts ~hi:b ~lo:c })
  in
  let queue k =
    Some
      (Event_bus.Queue
         { time; kind = k; queue = lookup sid; flow; avg = float_of_parts ~hi:b ~lo:c })
  in
  if kind = packet_arrival then packet Event_bus.Arrival
  else if kind = packet_drop then packet Event_bus.Drop
  else if kind = packet_depart then packet Event_bus.Depart
  else if kind = tcp_timeout then tcp Event_bus.Timeout
  else if kind = tcp_fast_retransmit then tcp Event_bus.Fast_retransmit
  else if kind = tcp_cwnd_cut then tcp Event_bus.Cwnd_cut
  else if kind = tcp_ecn_reaction then tcp Event_bus.Ecn_reaction
  else if kind = queue_ecn_mark then queue Event_bus.Ecn_mark
  else if kind = queue_early_drop then queue Event_bus.Early_drop
  else if kind = queue_forced_drop then queue Event_bus.Forced_drop
  else if kind = custom_value then
    Some
      (Event_bus.Custom
         { time; name = lookup sid; value = float_of_parts ~hi:b ~lo:c })
  else None

let json_of_record ~lookup buf off =
  match event_of_record ~lookup buf off with
  | Some e -> Event_bus.to_json e
  | None ->
      let tick = buf.(off) and kind = buf.(off + 1) and flow = buf.(off + 2) in
      let a = buf.(off + 3) and b = buf.(off + 4) and c = buf.(off + 5) in
      let sid = buf.(off + 6) in
      let time = Json.Float (time_of_tick tick) in
      if kind = tcp_phase then
        Json.Obj
          [
            ("event", Json.String "phase");
            ("time", time);
            ("flow", Json.Int flow);
            ("phase", Json.String (phase_label a));
            ("cwnd", Json.Float (float_of_parts ~hi:b ~lo:c));
          ]
      else if kind = tcp_rtt then
        Json.Obj
          [
            ("event", Json.String "rtt");
            ("time", time);
            ("flow", Json.Int flow);
            ("rtt_ns", Json.Int a);
          ]
      else if kind = rcv_out_of_order || kind = rcv_duplicate then
        Json.Obj
          [
            ("event", Json.String "receiver");
            ("time", time);
            ( "kind",
              Json.String
                (if kind = rcv_out_of_order then "out_of_order" else "duplicate")
            );
            ("flow", Json.Int flow);
            ("seq", Json.Int a);
          ]
      else if kind = router_rtx_forward then
        Json.Obj
          [
            ("event", Json.String "router");
            ("time", time);
            ("name", Json.String (lookup sid));
            ("flow", Json.Int flow);
            ("uid", Json.Int a);
            ("dst", Json.Int b);
            ("seq", Json.Int c);
          ]
      else if kind = run_start then
        Json.Obj
          [
            ("event", Json.String "run");
            ("time", time);
            ("kind", Json.String "start");
            ("label", Json.String (lookup sid));
          ]
      else if kind = run_end then
        Json.Obj
          [
            ("event", Json.String "run");
            ("time", time);
            ("kind", Json.String "end");
            ("label", Json.String (lookup sid));
            ("events", Json.Int a);
          ]
      else if kind = burst_cov || kind = burst_idc then
        Json.Obj
          [
            ("event", Json.String "burst");
            ("time", time);
            ( "kind",
              Json.String (if kind = burst_cov then "cov" else "idc") );
            ("run", Json.String (lookup sid));
            ("level", Json.Int a);
            ("value", Json.Float (float_of_parts ~hi:b ~lo:c));
            ("blocks", Json.Int buf.(off + 7));
          ]
      else if kind = burst_hurst then
        Json.Obj
          [
            ("event", Json.String "burst");
            ("time", time);
            ("kind", Json.String "hurst");
            ("run", Json.String (lookup sid));
            ("octaves", Json.Int a);
            ("value", Json.Float (float_of_parts ~hi:b ~lo:c));
          ]
      else if kind = burst_osc_amp || kind = burst_osc_freq then
        Json.Obj
          [
            ("event", Json.String "burst");
            ("time", time);
            ( "kind",
              Json.String
                (if kind = burst_osc_amp then "osc_amplitude"
                 else "osc_frequency") );
            ("run", Json.String (lookup sid));
            ("crossings", Json.Int a);
            ("value", Json.Float (float_of_parts ~hi:b ~lo:c));
            ("oscillating", Json.Bool (buf.(off + 7) = 1));
          ]
      else if kind = hybrid_bg_window || kind = hybrid_bg_queue
              || kind = hybrid_bg_rate then
        Json.Obj
          [
            ("event", Json.String "hybrid");
            ("time", time);
            ( "kind",
              Json.String
                (if kind = hybrid_bg_window then "bg_window"
                 else if kind = hybrid_bg_queue then "bg_queue"
                 else "bg_rate") );
            ("run", Json.String (lookup sid));
            ("background", Json.Int a);
            ("value", Json.Float (float_of_parts ~hi:b ~lo:c));
            ("steps", Json.Int buf.(off + 7));
          ]
      else
        Json.Obj
          [
            ("event", Json.String (kind_label kind));
            ("time", time);
            ("flow", Json.Int flow);
            ("a", Json.Int a);
            ("b", Json.Int b);
            ("c", Json.Int c);
            ("sid", Json.Int sid);
            ("depth", Json.Int buf.(off + 7));
          ]

let ndjson_of_record ~lookup buf off =
  Json.to_string (json_of_record ~lookup buf off)
