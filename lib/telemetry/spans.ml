(* Lifecycle spans derived from a flight-recorder stream.

   Three span families, all accumulated into log-scale histograms in
   the metric registry:

   - packet sojourn: [packet_arrival] to [packet_depart] on the same
     (link, uid); a [packet_drop] cancels the pending span;
   - RTT samples: the [tcp_rtt] records emitted by senders on
     Karn-valid ACKs;
   - flow phases: durations between [tcp_phase] transitions, labelled
     by the phase being left; spans still open when the stream ends
     are closed at the [run_end] marker (or the last tick seen).

   The accumulator is stream-order-driven and assumes one segment
   (ticks restart between segments): call it once per segment. *)

let sojourn_hist registry =
  Registry.log_histogram registry
    ~help:"Packet sojourn through a recorded link (enqueue to depart)"
    ~lo:1e-5 ~hi:100. ~bins:40 "trace_packet_sojourn_seconds"

let rtt_hist registry =
  Registry.log_histogram registry
    ~help:"Sender RTT samples from the flight recorder" ~lo:1e-3 ~hi:100.
    ~bins:40 "trace_rtt_seconds"

let phase_hist registry p =
  Registry.log_histogram registry
    ~help:"Time spent in each TCP congestion phase"
    ~labels:[ ("phase", Record.phase_label p) ]
    ~lo:1e-4 ~hi:1000. ~bins:40 "trace_phase_seconds"

let accumulate ~registry iter =
  let sojourn = sojourn_hist registry in
  let rtt = rtt_hist registry in
  let phase_hists =
    [|
      phase_hist registry Record.phase_slow_start;
      phase_hist registry Record.phase_cong_avoid;
      phase_hist registry Record.phase_recovery;
      phase_hist registry Record.phase_timeout;
    |]
  in
  let observe_phase p dticks =
    if p >= 0 && p < Array.length phase_hists then
      Registry.observe phase_hists.(p) (Record.time_of_tick dticks)
  in
  let pending : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let phases : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let last_tick = ref 0 in
  let end_tick = ref (-1) in
  iter (fun ~lane:_ ~seq:_ buf off ->
      let tick = buf.(off) and kind = buf.(off + 1) in
      if tick > !last_tick then last_tick := tick;
      if kind = Record.packet_arrival then
        (* sid in off+6 names the link, a in off+3 is the packet uid *)
        Hashtbl.replace pending (buf.(off + 6), buf.(off + 3)) tick
      else if kind = Record.packet_depart then begin
        let key = (buf.(off + 6), buf.(off + 3)) in
        match Hashtbl.find_opt pending key with
        | Some t0 ->
            Hashtbl.remove pending key;
            Registry.observe sojourn (Record.time_of_tick (tick - t0))
        | None -> ()
      end
      else if kind = Record.packet_drop then
        Hashtbl.remove pending (buf.(off + 6), buf.(off + 3))
      else if kind = Record.tcp_rtt then
        Registry.observe rtt (Record.time_of_tick buf.(off + 3))
      else if kind = Record.tcp_phase then begin
        let flow = buf.(off + 2) and p = buf.(off + 3) in
        (match Hashtbl.find_opt phases flow with
        | Some (p0, t0) -> observe_phase p0 (tick - t0)
        | None -> ());
        Hashtbl.replace phases flow (p, tick)
      end
      else if kind = Record.run_end then end_tick := tick);
  let close = if !end_tick >= 0 then !end_tick else !last_tick in
  Hashtbl.iter
    (fun _flow (p, t0) -> if close > t0 then observe_phase p (close - t0))
    phases

let histograms registry =
  [
    ("packet_sojourn", sojourn_hist registry);
    ("rtt", rtt_hist registry);
    ("phase:slow_start", phase_hist registry Record.phase_slow_start);
    ("phase:cong_avoid", phase_hist registry Record.phase_cong_avoid);
    ("phase:recovery", phase_hist registry Record.phase_recovery);
    ("phase:timeout", phase_hist registry Record.phase_timeout);
  ]

let of_recorder ~registry r = accumulate ~registry (Recorder.iter_merged r)

let of_segment ~registry seg = accumulate ~registry (Recorder.iter_segment seg)
