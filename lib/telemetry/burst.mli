(** Streaming multi-timescale burstiness estimators.

    A dyadic multi-resolution aggregator: per-bin arrival counts enter
    at level 0 (bins of [width] seconds from [origin]) and fold upward
    through ~16 doubling timescales, so one pass over the arrival
    stream yields, in O(levels) state and amortized O(1) per event:

    - streaming Welford moments of the block sums at every scale
      (c.o.v. and index-of-dispersion profiles that agree with the
      offline {!Netstats.Summary} / {!Netstats.Dispersion} numbers
      computed from a stored bin array);
    - Haar-wavelet detail energies per octave — an Abry–Veitch-style
      logscale diagram and an online Hurst slope;
    - via {!Osc}, an EWMA-detrended zero-crossing oscillation detector
      for the bottleneck queue (the RED Hopf probe).

    The paper's headline metric — c.o.v. of gateway arrivals per RTT —
    is [cov t 0] of an aggregator created with [width = rtt]; nothing
    O(horizon) is ever stored. *)

type config = { levels : int; osc_enabled : bool }
(** What a probe asks a run to measure: [levels] doubling timescales
    from the RTT bin up, and whether to sample the gateway queue for
    the oscillation detector. *)

val default_config : config
(** 16 levels, oscillation detector on. *)

type t

val create : ?levels:int -> origin:float -> width:float -> unit -> t
(** [levels] defaults to 16. Raises [Invalid_argument] if [width <= 0]
    or [levels] is outside [1, 40]. *)

val observe : t -> float -> unit
(** [observe t at] counts one event at time [at] (seconds). Events
    before [origin] or behind the already-closed frontier are dropped,
    mirroring {!Netstats.Binned} semantics. *)

val observe_tick : t -> int -> unit
(** [observe_tick t ns] is [observe t (float_of_int ns /. 1e9)] —
    integer-nanosecond engine ticks, converted with exactly the
    [Time.to_sec] arithmetic so bin indices agree with offline binning
    of published timestamps — without boxing a float argument. The
    per-packet hot path. *)

val push : t -> float -> unit
(** Feed one already-binned count directly (closes one base bin). The
    offline-replay and property-test entry point. *)

val advance : t -> upto:float -> unit
(** Close every base bin that ends at or before [upto], zero-filling
    gaps — the same complete-bin rule as {!Netstats.Binned.counts}.
    Call once at end of run before querying. *)

val levels : t -> int

val bins : t -> int
(** Base bins closed so far. *)

val total : t -> int
(** Events counted since [origin]. *)

val base_width : t -> float

(** {2 Per-scale queries} — level [j] covers [2^j] base bins. *)

val scale_width : t -> int -> float
val scale_count : t -> int -> int
val scale_mean : t -> int -> float

val scale_variance : t -> int -> float
(** Sample variance of the block sums ([/(n-1)], 0 below two blocks) —
    identical arithmetic to {!Netstats.Welford}. *)

val cov : t -> int -> float option
(** Coefficient of variation at level [j]; [None] below two blocks or
    on a zero mean. [cov t 0] of an RTT-width aggregator reproduces
    the offline per-RTT c.o.v. exactly (same adds in the same order). *)

val idc : t -> int -> float option
(** Index of dispersion for counts at level [j] (variance/mean of the
    block sums); [None] below two blocks or on a zero mean. *)

val haar_count : t -> int -> int
(** Details accumulated at octave [j] (1-based; octave [j] pairs level
    [j-1] blocks). Raises on octaves outside [1, levels). *)

val haar_energy : t -> int -> float option
(** Mean squared L2-normalized Haar detail at octave [j]; [None] before
    the first pair. For i.i.d. counts it is flat across octaves. *)

val logscale : t -> (int * float) list
(** The logscale diagram: [(octave, log2 mean energy)] for octaves with
    at least 4 details and positive energy, ascending. *)

val hurst_wavelet : t -> float option
(** OLS slope of the logscale diagram mapped to a Hurst exponent
    [H = (slope + 1) / 2], clamped into [0, 1]; [None] below two
    usable octaves. White noise gives H ~ 0.5. *)

(** {2 Oscillation detector} *)

module Osc : sig
  type t

  val create :
    ?gain:float ->
    ?deadband:float ->
    ?rel_threshold:float ->
    ?min_crossings:int ->
    unit ->
    t
  (** [gain] (default 0.02) is the EWMA tracking rate per sample;
      [deadband] (default 0.5) the hysteresis band as a fraction of the
      EWMA absolute residual; a signal is flagged when the relative RMS
      amplitude reaches [rel_threshold] (default 0.2) with at least
      [min_crossings] (default 8) detrended zero crossings. *)

  val sample : t -> t:float -> float -> unit
  (** Feed one (time, value) sample. Allocation-free. *)

  val samples : t -> int
  val crossings : t -> int
  val mean_signal : t -> float
  val rms_residual : t -> float

  val rel_amplitude : t -> float
  (** RMS residual over the signal mean (0 on a non-positive mean). *)

  val frequency_hz : t -> float
  (** Crossings are half cycles: [crossings / (2 * observed span)]. *)

  val oscillating : t -> bool
end

(** {2 Summaries} — the frozen end-of-run view. *)

type scale_row = {
  level : int;
  scale_s : float;
  blocks : int;
  mean : float;
  s_cov : float option;
  s_idc : float option;
}

type osc_summary = {
  o_samples : int;
  o_mean : float;
  o_rms : float;
  o_rel_amplitude : float;
  o_crossings : int;
  o_frequency_hz : float;
  o_oscillating : bool;
}

type summary = {
  base_width_s : float;
  s_bins : int;
  s_total : int;
  scales : scale_row list;  (** levels with at least two blocks *)
  s_logscale : (int * float) list;
  s_hurst : float option;
  s_osc : osc_summary option;
}

val osc_summary : Osc.t -> osc_summary
val summary : ?osc:Osc.t -> t -> summary
val summary_to_json : summary -> Json.t
val osc_to_json : osc_summary -> Json.t
val pp_summary : Format.formatter -> summary -> unit

val export : Registry.t -> run:string -> summary -> unit
(** Set the [burst_*] gauges (labelled by [run], per-scale series by
    [scale_s]) in a metric registry for JSON/Prometheus exposition. *)

val record_summary : Recorder.lane -> tick:int -> sid:int -> summary -> unit
(** Emit the summary into a flight-recorder lane as [burst_cov] /
    [burst_idc] (one per populated scale, level in [a], value bits in
    [b]/[c], block count in [depth]), [burst_hurst], and the
    [burst_osc_*] pair. *)
