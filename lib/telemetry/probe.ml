type recording = {
  config : Recorder.config;
  mutable segments_rev : Recorder.t list; (* newest first *)
}

type t = {
  registry : Registry.t;
  bus : Event_bus.t;
  phases : Perf.phases;
  mutable recording : recording option;
  mutable burst : Burst.config option;
}

let create () =
  {
    registry = Registry.create ();
    bus = Event_bus.create ();
    phases = Perf.phases ();
    recording = None;
    burst = None;
  }

let set_recording t config = t.recording <- Some { config; segments_rev = [] }

let recording_config t =
  match t.recording with None -> None | Some r -> Some r.config

let set_burst t config = t.burst <- config

let burst_config t = t.burst

(* Worker probes for parallel sweeps: fresh facilities, same recording
   and burst configuration. Workers always buffer ([Grow]) — their
   segments are carried back through {!merge} and written by the main
   probe. *)
let create_like src =
  let t = create () in
  (match src.recording with
  | None -> ()
  | Some r ->
      set_recording t { r.config with Recorder.overflow = Recorder.Grow });
  t.burst <- src.burst;
  t

let start_recorder t ~label =
  match t.recording with
  | None -> None
  | Some r ->
      let rec_ = Recorder.create ~label r.config in
      r.segments_rev <- rec_ :: r.segments_rev;
      Some rec_

let segments t =
  match t.recording with None -> [] | Some r -> List.rev r.segments_rev

let write_segments t oc =
  List.iter (fun r -> Recorder.write_segment oc r) (segments t)

let time probe name f =
  match probe with Some p -> Perf.time p.phases name f | None -> f ()

let m_runs = "sim_runs_total"

let m_events = "sim_events_total"

let m_sim_seconds = "sim_seconds_total"

let m_run_wall = "sim_run_wall_seconds_total"

let m_eq_hwm = "event_queue_high_water_mark"

let m_gw_hwm = "gateway_queue_high_water_mark"

let m_arrivals = "gateway_arrivals_total"

let m_drops = "gateway_drops_total"

let m_minor_words = "gc_minor_words_total"

let m_promoted_words = "gc_promoted_words_total"

let m_major_collections = "gc_major_collections_total"

let m_words_per_event = "gc_minor_words_per_event"

(* Keep the words/event ratio consistent with the totals it is derived
   from; recomputed after every note_run and after merges. *)
let refresh_words_per_event t =
  let r = t.registry in
  let minor =
    Registry.gauge_value
      (Registry.gauge r ~help:"Minor-heap words allocated during runs"
         m_minor_words)
  in
  let events =
    Registry.counter_value
      (Registry.counter r ~help:"Scheduler events fired" m_events)
  in
  if events > 0 then
    Registry.set
      (Registry.gauge r ~help:"Minor-heap words allocated per scheduler event"
         m_words_per_event)
      (minor /. float_of_int events)

let note_run t ~label ~sim_s ~wall_s ~events ~event_queue_hwm ~gateway_queue_hwm
    ~arrivals ~drops ?(gc = Perf.gc_zero) () =
  let r = t.registry in
  Registry.inc (Registry.counter r ~help:"Simulation runs completed" m_runs);
  Registry.inc ~by:events
    (Registry.counter r ~help:"Scheduler events fired" m_events);
  Registry.add (Registry.gauge r ~help:"Simulated seconds" m_sim_seconds) sim_s;
  Registry.add
    (Registry.gauge r ~help:"Wall-clock seconds in the run phase" m_run_wall)
    wall_s;
  Registry.set_max
    (Registry.gauge r ~help:"Peak pending scheduler events" m_eq_hwm)
    (float_of_int event_queue_hwm);
  Registry.set_max
    (Registry.gauge r ~help:"Peak gateway queue occupancy (packets)" m_gw_hwm)
    (float_of_int gateway_queue_hwm);
  Registry.inc ~by:arrivals
    (Registry.counter r ~help:"Gateway packet arrivals" m_arrivals);
  Registry.inc ~by:drops (Registry.counter r ~help:"Gateway packet drops" m_drops);
  Registry.add
    (Registry.gauge r ~help:"Minor-heap words allocated during runs"
       m_minor_words)
    gc.Perf.minor_words;
  Registry.add
    (Registry.gauge r ~help:"Words promoted to the major heap during runs"
       m_promoted_words)
    gc.Perf.promoted_words;
  Registry.inc ~by:gc.Perf.major_collections
    (Registry.counter r ~help:"Major GC cycles during runs" m_major_collections);
  refresh_words_per_event t;
  let labels = [ ("run", label) ] in
  Registry.inc ~by:events
    (Registry.counter r ~labels ~help:"Scheduler events fired per run"
       "run_events_total");
  Registry.add
    (Registry.gauge r ~labels ~help:"Run-phase wall seconds per run"
       "run_wall_seconds")
    wall_s

(* How each well-known gauge combines when a worker probe folds into the
   main one: high-water marks keep the max, seconds totals accumulate,
   anything else keeps last-write semantics. *)
let gauge_merge_rule ~name ~labels:_ =
  if String.equal name m_eq_hwm || String.equal name m_gw_hwm then `Max
  else if
    String.equal name m_sim_seconds
    || String.equal name m_run_wall
    || String.equal name "run_wall_seconds"
    || String.equal name m_minor_words
    || String.equal name m_promoted_words
  then `Sum
  else `Set

let merge ~into src =
  Registry.merge ~gauge_rule:gauge_merge_rule ~into:into.registry src.registry;
  Perf.merge_into ~into:into.phases src.phases;
  (* Worker recorder segments ride along: appended in merge order, which
     the sweep drives in input order, so the merged record file is
     deterministic and identical to a sequential run's. *)
  (match (into.recording, src.recording) with
  | Some d, Some s -> d.segments_rev <- s.segments_rev @ d.segments_rev
  | None, Some s -> into.recording <- Some s
  | _, None -> ());
  (* The per-event ratio is not mergeable (last-write would keep one
     worker's value); rebuild it from the merged totals. *)
  refresh_words_per_event into

let runs_total t = Registry.counter_value (Registry.counter t.registry m_runs)

let events_total t = Registry.counter_value (Registry.counter t.registry m_events)
