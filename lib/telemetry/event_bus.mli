(** The simulation event bus: one typed publish/subscribe channel.

    Generalises the hard-wired [Link.on_arrival/on_drop/on_depart] +
    [Tracer] pattern: producers (links, queue disciplines, TCP senders)
    publish typed events; any number of subscribers (tracers, NDJSON
    sinks, ad-hoc analysis closures) observe them in subscription order.
    Publishing with no subscribers is a counter bump and an iteration
    over an empty array — producers hold a [t option] and simply skip
    publishing when telemetry is off, so the simulation hot path pays
    nothing in the default configuration.

    Every event serialises to one JSON object (NDJSON when
    newline-separated) and parses back exactly: for any event [e],
    [of_ndjson_line (to_ndjson e) = Ok e]. *)

type packet_kind = Arrival | Drop | Depart

type tcp_kind = Timeout | Fast_retransmit | Cwnd_cut | Ecn_reaction

type queue_kind = Ecn_mark | Early_drop | Forced_drop

type event =
  | Packet of {
      time : float;
      kind : packet_kind;
      link : string;
      flow : int;
      seq : int option;  (** [None] for ACKs, like the tracer *)
      size_bytes : int;
      uid : int;
    }  (** A link-level packet event (queue arrival, drop, delivery). *)
  | Tcp of { time : float; kind : tcp_kind; flow : int; cwnd : float }
      (** A congestion-control decision; [cwnd] is the window {e after}
          the reaction, in segments. *)
  | Queue of {
      time : float;
      kind : queue_kind;
      queue : string;
      flow : int;
      avg : float;  (** RED's average-queue estimate at the decision *)
    }  (** A queue-discipline decision RED makes internally (an early or
          forced drop, or a CE mark) that plain link drop counts cannot
          distinguish. *)
  | Custom of { time : float; name : string; value : float }
      (** Escape hatch for experiment-specific instrumentation. *)

val time : event -> float

type t

type subscription

val create : unit -> t

val subscribe : t -> (event -> unit) -> subscription
(** Subscribers are invoked in subscription order on every publish. *)

val unsubscribe : t -> subscription -> unit
(** A no-op if already unsubscribed. *)

val has_subscribers : t -> bool

val publish : t -> event -> unit

val published : t -> int
(** Total events published so far (whether or not anyone listened). *)

(** {2 NDJSON serialisation} *)

val to_json : event -> Json.t

val of_json : Json.t -> (event, string) result

val to_ndjson : event -> string
(** One-line JSON, no trailing newline. *)

val of_ndjson_line : string -> (event, string) result

val ndjson_writer : out_channel -> event -> unit
(** A ready-made subscriber that appends one NDJSON line per event. The
    caller owns (and flushes/closes) the channel. *)
