type t = {
  out : out_channel;
  now : unit -> float;
  total : int;
  started : float;
  mutex : Mutex.t;
  (* Serializes [step]/[finish] so concurrent sweep workers emit whole
     lines and consistent counts. *)
  mutable completed : int;
  mutable last_events : int;
}

let create ?(out = stderr) ?(now = Perf.wall_clock_s) ~total () =
  {
    out;
    now;
    total;
    started = now ();
    mutex = Mutex.create ();
    completed = 0;
    last_events = 0;
  }

let format_duration s =
  let s = Float.max 0. s in
  if s < 60. then Printf.sprintf "%.0fs" s
  else if s < 3600. then
    Printf.sprintf "%.0fm%02.0fs" (Float.of_int (int_of_float s / 60))
      (Float.rem s 60.)
  else
    Printf.sprintf "%.0fh%02.0fm"
      (Float.of_int (int_of_float s / 3600))
      (Float.of_int (int_of_float s mod 3600 / 60))

let format_rate r =
  if r >= 1e6 then Printf.sprintf "%.2fM ev/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk ev/s" (r /. 1e3)
  else Printf.sprintf "%.0f ev/s" r

let width t = String.length (string_of_int t.total)

let step t ?events label =
  Mutex.protect t.mutex @@ fun () ->
  t.completed <- t.completed + 1;
  (match events with Some e -> t.last_events <- e | None -> ());
  let elapsed = t.now () -. t.started in
  let eta =
    if t.completed = 0 then 0.
    else elapsed /. float_of_int t.completed *. float_of_int (t.total - t.completed)
  in
  let rate =
    match events with
    | Some e when elapsed > 0. ->
        "  " ^ format_rate (float_of_int e /. elapsed)
    | _ -> ""
  in
  Printf.fprintf t.out "[%*d/%d] %-24s elapsed %-7s eta %-7s%s\n" (width t)
    t.completed t.total label
    (format_duration elapsed)
    (format_duration eta) rate;
  flush t.out

let finish t =
  Mutex.protect t.mutex @@ fun () ->
  let elapsed = t.now () -. t.started in
  let rate =
    if t.last_events > 0 && elapsed > 0. then
      Printf.sprintf " (%s)" (format_rate (float_of_int t.last_events /. elapsed))
    else ""
  in
  Printf.fprintf t.out "done: %d/%d runs in %s%s\n" t.completed t.total
    (format_duration elapsed) rate;
  flush t.out

let completed t = t.completed
