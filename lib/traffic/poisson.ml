module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

let start sched ~rng ~mean_interarrival ~start ~until ~sink =
  if mean_interarrival <= 0. then invalid_arg "Poisson.start: mean <= 0";
  let sink, source = Source.counted sink in
  (* One event is outstanding at a time, so a single mutable cell can
     carry the arrival time into the one preallocated [tick] closure —
     scheduling an arrival then allocates nothing. *)
  let at = ref start in
  let rec tick () =
    sink 1;
    arm ()
  and arm () =
    let next =
      Time.add !at (Time.of_ns (Rng.exponential_ns rng ~mean:mean_interarrival))
    in
    if Time.(next <= until) then begin
      at := next;
      ignore (Scheduler.at sched next tick)
    end
  in
  arm ();
  source
