module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

let start sched ~rng ~mean_interarrival ~start ~until ~sink =
  if mean_interarrival <= 0. then invalid_arg "Poisson.start: mean <= 0";
  let sink, source = Source.counted sink in
  let rec arm at =
    let next = Time.add at (Time.of_sec (Rng.exponential rng ~mean:mean_interarrival)) in
    if Time.(next <= until) then
      ignore
        (Scheduler.at sched next (fun () ->
             sink 1;
             arm next))
  in
  arm start;
  source
