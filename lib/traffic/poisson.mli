(** Poisson packet source.

    Submits single packets with exponentially distributed interarrival
    times — the paper's application workload (§3.1): each client submits
    one packet to the transport per arrival, with mean spacing [1/lambda].
    The first arrival is one interarrival after [start]. *)

val start :
  Sim_engine.Scheduler.t ->
  rng:Sim_engine.Rng.t ->
  mean_interarrival:float ->
  start:Sim_engine.Time.t ->
  until:Sim_engine.Time.t ->
  sink:(int -> unit) ->
  Source.t
(** Requires [mean_interarrival > 0]. *)
