(** Bulk-transfer source: submit a whole file at once.

    Models an FTP-style transfer (the Earth System Grid workload the paper
    motivates): the application hands the transport [size] packets at
    [start] and lets congestion control pace them out. *)

val start :
  Sim_engine.Scheduler.t ->
  size:int ->
  start:Sim_engine.Time.t ->
  sink:(int -> unit) ->
  Source.t
(** Requires [size >= 0]. *)

val infinite_backlog_size : int
(** A practically inexhaustible transfer size for greedy-flow experiments. *)
