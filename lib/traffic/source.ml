type t = { generated : unit -> int }

let counted sink =
  let n = ref 0 in
  let wrapped k =
    n := !n + k;
    sink k
  in
  (wrapped, { generated = (fun () -> !n) })
