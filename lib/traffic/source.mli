(** Common shape of application-level traffic sources.

    A source submits whole packets to a transport sink ([int -> unit],
    the number of packets to enqueue now) according to some arrival
    process, until a stop time. Sources know nothing about the transport:
    the same Poisson source drives UDP and every TCP variant, which is the
    point of the paper's methodology — the application offers identical
    traffic and only the transport differs. *)

type t = { generated : unit -> int  (** packets submitted so far *) }

val counted : (int -> unit) -> (int -> unit) * t
(** Wrap a sink so submissions are counted; returns the wrapped sink and
    the source-side counter. *)
