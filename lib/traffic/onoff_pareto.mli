(** Pareto-modulated on/off source.

    Alternates ON periods (packets at a constant rate) and silent OFF
    periods, both with Pareto-distributed durations. With shape in (1, 2)
    the durations are heavy-tailed with infinite variance; aggregating many
    such sources yields self-similar traffic ([Willinger et al. 1997]) —
    the traffic model the self-similarity literature studies, used here in
    the extension experiments that connect the paper to that literature. *)

type params = {
  on_shape : float;  (** Pareto shape of ON durations (e.g. 1.5) *)
  on_mean : float;  (** mean ON duration, seconds *)
  off_shape : float;  (** Pareto shape of OFF durations *)
  off_mean : float;  (** mean OFF duration, seconds *)
  rate : float;  (** packets per second while ON *)
}

val start :
  Sim_engine.Scheduler.t ->
  rng:Sim_engine.Rng.t ->
  params:params ->
  start:Sim_engine.Time.t ->
  until:Sim_engine.Time.t ->
  sink:(int -> unit) ->
  Source.t
(** Requires shapes > 1 (finite means) and positive means and rate. *)
