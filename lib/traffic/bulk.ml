module Scheduler = Sim_engine.Scheduler

let start sched ~size ~start ~sink =
  if size < 0 then invalid_arg "Bulk.start: negative size";
  let sink, source = Source.counted sink in
  ignore (Scheduler.at sched start (fun () -> sink size));
  source

let infinite_backlog_size = 1_000_000_000
