(** Constant-bit-rate packet source: one packet every [interval] seconds. *)

val start :
  Sim_engine.Scheduler.t ->
  interval:float ->
  start:Sim_engine.Time.t ->
  until:Sim_engine.Time.t ->
  sink:(int -> unit) ->
  Source.t
(** Requires [interval > 0]. First packet at [start + interval]. *)
