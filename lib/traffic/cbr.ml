module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

let start sched ~interval ~start ~until ~sink =
  if interval <= 0. then invalid_arg "Cbr.start: interval <= 0";
  let sink, source = Source.counted sink in
  let step = Time.of_sec interval in
  let rec arm at =
    let next = Time.add at step in
    if Time.(next <= until) then
      ignore
        (Scheduler.at sched next (fun () ->
             sink 1;
             arm next))
  in
  arm start;
  source
