module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

let of_timestamps ts =
  let n = Array.length ts in
  if n = 0 then invalid_arg "Trace_replay.of_timestamps: empty";
  Array.init n (fun i ->
      let gap = if i = 0 then ts.(0) else ts.(i) -. ts.(i - 1) in
      if gap < 0. then invalid_arg "Trace_replay.of_timestamps: unsorted";
      gap)

let start sched ~gaps ?(loop = false) ~start ~until ~sink () =
  if Array.length gaps = 0 then invalid_arg "Trace_replay.start: empty trace";
  Array.iter
    (fun g -> if g < 0. then invalid_arg "Trace_replay.start: negative gap")
    gaps;
  let sink, source = Source.counted sink in
  let n = Array.length gaps in
  let rec arm at idx =
    if idx < n || loop then begin
      let idx = idx mod n in
      let next = Time.add at (Time.of_sec gaps.(idx)) in
      if Time.(next <= until) then
        ignore
          (Scheduler.at sched next (fun () ->
               sink 1;
               arm next (idx + 1)))
    end
  in
  arm start 0;
  source
