module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

type params = {
  on_shape : float;
  on_mean : float;
  off_shape : float;
  off_mean : float;
  rate : float;
}

(* Pareto with given shape and mean: mean = shape*scale/(shape-1). *)
let pareto_duration rng ~shape ~mean =
  let scale = mean *. (shape -. 1.) /. shape in
  Rng.pareto rng ~shape ~scale

let start sched ~rng ~params ~start ~until ~sink =
  if params.on_shape <= 1. || params.off_shape <= 1. then
    invalid_arg "Onoff_pareto.start: shape <= 1 (infinite mean)";
  if params.on_mean <= 0. || params.off_mean <= 0. || params.rate <= 0. then
    invalid_arg "Onoff_pareto.start: non-positive parameter";
  let sink, source = Source.counted sink in
  let interval = Time.of_sec (1. /. params.rate) in
  let rec begin_on at =
    if Time.(at <= until) then begin
      let dur = pareto_duration rng ~shape:params.on_shape ~mean:params.on_mean in
      let on_end = Time.min until (Time.add at (Time.of_sec dur)) in
      emit at on_end
    end
  and emit at on_end =
    let next = Time.add at interval in
    if Time.(next <= on_end) then
      ignore
        (Scheduler.at sched next (fun () ->
             sink 1;
             emit next on_end))
    else begin_off on_end
  and begin_off at =
    let dur = pareto_duration rng ~shape:params.off_shape ~mean:params.off_mean in
    let off_end = Time.add at (Time.of_sec dur) in
    if Time.(off_end <= until) then
      ignore (Scheduler.at sched off_end (fun () -> begin_on off_end))
  in
  begin_on start;
  source
