(** Replay a recorded arrival process.

    Feeds a transport with packets at exactly the interarrival gaps given
    (e.g. parsed from a measured trace), optionally looping until the
    horizon — the standard way to drive a simulator with real workloads
    instead of synthetic models. *)

val start :
  Sim_engine.Scheduler.t ->
  gaps:float array ->
  ?loop:bool ->
  start:Sim_engine.Time.t ->
  until:Sim_engine.Time.t ->
  sink:(int -> unit) ->
  unit ->
  Source.t
(** One packet after each gap (seconds). With [loop] (default false) the
    gap sequence repeats until [until]; otherwise the source stops after
    the last gap. @raise Invalid_argument on an empty array or a negative
    gap. *)

val of_timestamps : float array -> float array
(** Convert absolute timestamps (sorted, seconds) to gaps; the first gap
    is measured from 0. @raise Invalid_argument if unsorted. *)
