# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench figures fast clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full paper-scale regeneration of every table, figure, ablation and
# extension (~3 minutes), captured to bench_output.txt.
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Just the paper's figures, at paper scale.
figures:
	dune exec bin/main.exe -- all

# Smoke-test everything at reduced scale.
fast:
	dune exec bench/main.exe -- --fast --skip-micro

clean:
	dune clean
