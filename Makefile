# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-alloc figures fast check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full paper-scale regeneration of every table, figure, ablation and
# extension (~3 minutes), captured to bench_output.txt.
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Allocation-budget gate on its own: events/sec and GC words/event for
# a Reno N=50 run, written to BENCH_alloc.json. Exits non-zero when
# minor words/event exceeds the committed threshold.
bench-alloc:
	dune exec bench/main.exe -- --only alloc --fast

# Just the paper's figures, at paper scale.
figures:
	dune exec bin/main.exe -- all

# Smoke-test everything at reduced scale.
fast:
	dune exec bench/main.exe -- --fast --skip-micro

# CI gate: build, unit + cram tests (including the parallel determinism
# suite, re-run explicitly so a filtered runtest cannot skip it), then a
# telemetry smoke run whose report must validate, plus the events/sec
# overhead baseline, the sequential-vs-parallel sweep timing, and the
# allocation budget (fails when words/event regresses past the
# committed threshold).
check:
	dune build @all
	dune runtest
	dune exec test/test_main.exe -- test parallel
	dune exec bin/main.exe -- table1 --fast \
	  --telemetry=/tmp/burstsim-report.json \
	  --trace-out=/tmp/burstsim-trace.ndjson
	dune exec bin/main.exe -- report-check /tmp/burstsim-report.json
	dune exec bench/main.exe -- --fast --only telemetry
	dune exec bench/main.exe -- --fast --only parallel
	dune exec bench/main.exe -- --fast --only alloc

clean:
	dune clean
