# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-alloc bench-flows bench-burst bench-pdes bench-hybrid figures fast check clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full paper-scale regeneration of every table, figure, ablation and
# extension (~3 minutes), captured to bench_output.txt.
bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# Allocation-budget gate on its own: per-scenario GC words/event rows
# (Reno 6.0, Reno/RED 8.0, Vegas 8.0 minor words/event) written to
# BENCH_alloc.json. Exits non-zero when any scenario exceeds its
# committed threshold or leaks pool slots; the full (non --fast) run
# additionally enforces the Reno events/sec floor.
bench-alloc:
	dune exec bench/main.exe -- --only alloc --fast

# Flow-scaling gate on its own: one Reno/RED run each at N = 10^3,
# 10^4 and 10^5 greedy flows in a mean-field regime (capacity, buffer
# and RED thresholds scale with N), written to BENCH_flows.json. Exits
# non-zero when a row exceeds 512 bytes/flow, grows a pre-sized slab,
# leaks a packet or flow row, or (the converged N <= 10^4 rows) lands
# outside the fluid-model ratio bands; the full (non --fast) run
# additionally enforces the N = 10^5 events/sec floor.
bench-flows:
	dune exec bench/main.exe -- --only flows --fast

# Burstiness-observability gate on its own: paired probed-vs-burst Reno
# runs (minor words/event delta must stay within 0.05), a streaming-vs-
# offline c.o.v. equivalence check at the RTT timescale (|err| <= 1e-6),
# and a RED w_q sweep bracketing the Reynier/Hollot critical gain whose
# oscillation-detector verdicts must match the predicted side, written
# to BENCH_burst.json. Exits non-zero when any gate fails.
bench-burst:
	dune exec bench/main.exe -- --only burst --fast

# Parallelism gate on its own: the sequential-vs-parallel replicate
# sweep plus the sharded conservative-PDES single-run section — a
# 1-shard vs 4-shard bit-identity check (always enforced) and 1/2/4
# shard wall-clock rows at N = 10^4 Reno/RED, written to
# BENCH_parallel.json. On machines with >= 4 domains the recorded
# single-run speedup must reach the committed 3x floor; with fewer the
# ratio is recorded as null rather than commit oversubscription noise.
bench-pdes:
	dune exec bench/main.exe -- --only pdes --fast
	dune exec bin/main.exe -- report-check --kind=parallel BENCH_parallel.json

# Hybrid fluid/packet gate on its own: hybrid-vs-packet validation at
# N = 10^3 and 10^4 (foreground throughput, combined queue and loss
# ratios inside the committed bands), the converged N = 10^6 run
# (K = 100 packet foreground + 999,900 fluid background; leak-free,
# zero slab growth; the full run also enforces the >= 10x
# work-per-simulated-second floor against pure packet at equal N), and
# the RED w_q stability sweep rerun at mean-field scale through the
# hybrid engine, written to BENCH_hybrid.json. Exits non-zero when any
# gate fails.
bench-hybrid:
	dune exec bench/main.exe -- --only hybrid --fast
	dune exec bin/main.exe -- report-check --kind=hybrid BENCH_hybrid.json

# Just the paper's figures, at paper scale.
figures:
	dune exec bin/main.exe -- all

# Smoke-test everything at reduced scale.
fast:
	dune exec bench/main.exe -- --fast --skip-micro

# CI gate: build, unit + cram tests (including the parallel determinism
# suite, re-run explicitly so a filtered runtest cannot skip it), then a
# telemetry smoke run whose report must validate, plus the events/sec
# overhead baseline, the sequential-vs-parallel sweep timing, and the
# allocation budget (fails when any scenario's minor words/event
# regresses past its committed threshold — 6.0 for the Reno N=50 row —
# and re-validated from the written BENCH_alloc.json by report-check),
# and the flow-scaling sweep up to N = 10^5 (bytes/flow, slab growth,
# leak and fluid-ratio gates, re-validated from BENCH_flows.json), and
# the burstiness-observability gates (burst words/event delta, streaming
# c.o.v. equivalence, RED oscillation-detector sweep, re-validated from
# BENCH_burst.json). The parallel sweep runs as `--only pdes`, which
# also exercises the sharded-PDES single-run section (1-vs-4-shard
# bit-identity plus shard-count timing rows) and is re-validated from
# BENCH_parallel.json by report-check --kind=parallel. The hybrid
# fluid/packet gates (hybrid-vs-packet validation bands, the converged
# N = 10^6 row, the mean-field RED stability sweep) run as `--only
# hybrid` and are re-validated from BENCH_hybrid.json by report-check
# --kind=hybrid.
check:
	dune build @all
	dune runtest
	dune exec test/test_main.exe -- test parallel
	dune exec bin/main.exe -- table1 --fast \
	  --telemetry=/tmp/burstsim-report.json \
	  --trace-out=/tmp/burstsim-trace.ndjson
	dune exec bin/main.exe -- report-check /tmp/burstsim-report.json
	dune exec bench/main.exe -- --fast --only telemetry
	dune exec bin/main.exe -- report-check --kind=bench-telemetry BENCH_telemetry.json
	dune exec bench/main.exe -- --fast --only pdes
	dune exec bin/main.exe -- report-check --kind=parallel BENCH_parallel.json
	dune exec bench/main.exe -- --fast --only alloc
	dune exec bin/main.exe -- report-check --kind=alloc BENCH_alloc.json
	dune exec bench/main.exe -- --fast --only flows
	dune exec bin/main.exe -- report-check --kind=flows BENCH_flows.json
	dune exec bench/main.exe -- --fast --only burst
	dune exec bin/main.exe -- report-check --kind=burst BENCH_burst.json
	dune exec bench/main.exe -- --fast --only hybrid
	dune exec bin/main.exe -- report-check --kind=hybrid BENCH_hybrid.json

clean:
	dune clean
