(* The benchmark harness: regenerates every table and figure of the paper
   (Table 1, Figures 2-13), runs the ablation studies, the self-similarity
   extension, and a Bechamel microbenchmark section for the simulator
   primitives. `dune exec bench/main.exe` runs everything at paper scale
   (~1 minute); `--fast` shrinks runs for smoke testing. *)

let std = Format.std_formatter

let fast = ref false
let skip_micro = ref false
let only : string option ref = ref None

let usage = "main.exe [--fast] [--skip-micro] [--only SECTION]"

let args =
  [
    ("--fast", Arg.Set fast, " reduced scale (60 s runs, sparser sweep)");
    ("--skip-micro", Arg.Set skip_micro, " skip the Bechamel microbenchmarks");
    ( "--only",
      Arg.String (fun s -> only := Some s),
      " run one section: table1 | figures | cwnd | queue | ablations | selfsim | sync | fluid | parking | twoway | telemetry | parallel | pdes | alloc | flows | burst | hybrid | micro" );
  ]

let section name = Format.fprintf std "@.==== %s ====@.@." name

let wants name = match !only with None -> true | Some s -> s = name

(* ------------------------------------------------------------------ *)
(* Paper tables and figures                                            *)

let config () =
  if !fast then { Burstcore.Config.default with duration_s = 60.; warmup_s = 20. }
  else Burstcore.Config.default

let sweep_counts () =
  if !fast then [ 5; 15; 25; 30; 36; 39; 42; 50; 60 ]
  else Burstcore.Figures.default_client_counts

let run_table1 () =
  section "Table 1";
  Burstcore.Figures.table1 std (config ())

let run_figures () =
  section "Figures 2, 3, 4, 13 (one sweep)";
  let cfg = config () in
  let progress label = Format.eprintf "  sweep: %s@." label in
  let sweep = Burstcore.Figures.run_sweep ~progress cfg (sweep_counts ()) in
  Burstcore.Figures.fig2 std sweep cfg;
  Format.fprintf std "@.";
  Burstcore.Figures.fig3 std sweep;
  Format.fprintf std "@.";
  Burstcore.Figures.fig4 std sweep;
  Format.fprintf std "@.";
  Burstcore.Figures.fig13 std sweep

let run_cwnd_figures () =
  section "Figures 5-12 (congestion-window evolution)";
  let cfg = config () in
  List.iter
    (fun (k, scenario, clients) ->
      Burstcore.Figures.fig_cwnd std cfg ~scenario ~clients
        ~label:(Printf.sprintf "Figure %d" k);
      Format.fprintf std "@.")
    Burstcore.Figures.cwnd_figures

let run_queue_occupancy () =
  section "Extension: gateway queue occupancy";
  Burstcore.Figures.queue_occupancy std (config ()) ~clients:30

let run_ablations () =
  section "Ablations";
  let cfg = config () in
  Burstcore.Ablation.buffer_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.red_threshold_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.vegas_alpha_beta_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.cc_comparison std cfg [ 30; 45; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.ecn_comparison std cfg [ 45; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.latency std cfg [ 20; 40; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.cwnd_validation std cfg [ 30; 50 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.pacing std cfg [ 30; 50 ]

let run_selfsim () =
  section "Extension: self-similarity";
  Burstcore.Selfsim.report std (config ())

let run_twoway () =
  section "Extension: two-way traffic (ACK compression)";
  Burstcore.Twoway.report std (Burstcore.Config.with_clients (config ()) 30)

let run_parking_lot () =
  section "Extension: parking-lot topology";
  Burstcore.Parking_lot.report std (config ())

let run_fluid () =
  section "Extension: fluid model vs packet simulation";
  Burstcore.Fluid_compare.report std (config ()) [ 4; 8; 16 ]

let run_sync () =
  section "Extension: congestion-control synchronization";
  let cfg = config () in
  Burstcore.Sync.report std cfg (if !fast then [ 30; 60 ] else [ 20; 30; 40; 50; 60 ]);
  Format.fprintf std "@.";
  Burstcore.Sync.desync_ablation std cfg ~clients:50

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: events/sec with and without a probe             *)

(* Three configurations of the same Reno N=50 run, same seed (so the
   event count is identical and only wall time differs; min-of-N
   suppresses scheduler noise):

   - baseline: no probe at all;
   - probed: a probe with no subscribers (phase timers + run notes);
   - recorded: the probe plus a full-lifecycle ring-buffer flight
     recorder (Drop_oldest, 4Ki records) — the "always-on" shape: a
     bounded last-N window sized to stay cache-resident, unlike the
     Grow configuration --record-out uses for complete captures.

   Committed gates, also re-checked from the JSON by `report-check
   --kind=bench-telemetry` in `make check`:
   - probe overhead vs baseline within [probe_budget_pct], on total wall;
   - recorder overhead vs probed within [recorder_budget_pct], on the
     probe-timed {e run phase} (the recorder's per-run setup constant
     amortizes to nothing at paper-scale durations but would swamp a
     --fast run's few-millisecond wall — the same run-phase discipline
     the alloc bench applies to GC counters). Probed and recorded reps
     are interleaved pairs and the estimate is the {e median} of the
     per-pair deltas. Measured steady state on this workload is ~2-3%;
     the committed budget adds headroom for shared-vCPU jitter, which
     swings individual pairs by +-5% or more on the CI box (measured:
     the same binary's median ranges 1.8-5.5% across invocations). The
     budget is a regression tripwire for the failure modes that matter
     — an accidental allocation, a per-record scan, a boxed float on
     the hot path — all of which cost far more than the headroom. The
     deterministic words/event delta below is the precise gate;
   - recorder minor words/event within [recorder_words_budget] of the
     probed run (the hot path is integer stores into a preallocated
     ring, so the delta must be ~0). *)
let probe_budget_pct = 15.0
let recorder_budget_pct = 8.0
let recorder_words_budget = 0.05

let run_telemetry_bench () =
  section "Telemetry overhead (events/sec)";
  let cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      (* A long-enough simulated horizon that a single run's ~25 ms run
         phase rises above single-vCPU scheduler jitter — at 10 s the
         per-rep deltas are pure noise. Kept the same under --fast: the
         whole section still costs well under a second. *)
      Burstcore.Config.duration_s = 30.;
      warmup_s = 2.;
    }
  in
  let scenario = Burstcore.Scenario.reno in
  let reps = if !fast then 9 else 5 in
  let min_wall f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Telemetry.Perf.wall_clock_s () in
      f ();
      let dt = Telemetry.Perf.wall_clock_s () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let baseline_wall = min_wall (fun () -> ignore (Burstcore.Run.run cfg scenario)) in
  let events = ref 0 in
  let words_per_event probe =
    let words =
      Telemetry.Registry.gauge_value
        (Telemetry.Registry.gauge probe.Telemetry.Probe.registry
           Telemetry.Probe.m_minor_words)
    in
    words /. float_of_int (Stdlib.max 1 (Telemetry.Probe.events_total probe))
  in
  let run_phase_s probe =
    Telemetry.Perf.duration_s probe.Telemetry.Probe.phases "run"
  in
  let probed_words = ref 0. in
  let probed_run = ref infinity in
  let probed_wall = ref infinity in
  let recorded_words = ref 0. in
  let recorded_run = ref infinity in
  let recorded_wall = ref infinity in
  let recorder_records = ref 0 in
  let recorder_dropped = ref 0 in
  let deltas = Array.make reps 0. in
  (* Interleave probed and recorded reps so slow drift (CPU frequency,
     cache state) lands on both configurations alike; each iteration
     contributes one paired run-phase delta. *)
  for rep = 0 to reps - 1 do
    (* Settle major-GC debt from the previous rep so collection work
       does not land inside the next timed run phase. *)
    Gc.full_major ();
    let t0 = Telemetry.Perf.wall_clock_s () in
    let probe = Telemetry.Probe.create () in
    ignore (Burstcore.Run.run ~probe cfg scenario);
    probed_wall := Float.min !probed_wall (Telemetry.Perf.wall_clock_s () -. t0);
    events := Telemetry.Probe.events_total probe;
    probed_words := words_per_event probe;
    let probed_rep_run = run_phase_s probe in
    probed_run := Float.min !probed_run probed_rep_run;
    Gc.full_major ();
    let t0 = Telemetry.Perf.wall_clock_s () in
    let probe = Telemetry.Probe.create () in
    Telemetry.Probe.set_recording probe
      {
        Telemetry.Recorder.capacity = 4096;
        overflow = Telemetry.Recorder.Drop_oldest;
        lifecycle = true;
      };
    ignore (Burstcore.Run.run ~probe cfg scenario);
    recorded_wall :=
      Float.min !recorded_wall (Telemetry.Perf.wall_clock_s () -. t0);
    recorded_words := words_per_event probe;
    let recorded_rep_run = run_phase_s probe in
    recorded_run := Float.min !recorded_run recorded_rep_run;
    deltas.(rep) <-
      (if probed_rep_run > 0. then
         100. *. (recorded_rep_run -. probed_rep_run) /. probed_rep_run
       else 0.);
    let segments = Telemetry.Probe.segments probe in
    recorder_records :=
      List.fold_left
        (fun acc r -> acc + Telemetry.Recorder.total_recorded r)
        0 segments;
    recorder_dropped :=
      List.fold_left
        (fun acc r -> acc + Telemetry.Recorder.total_dropped r)
        0 segments
  done;
  let eps wall = if wall > 0. then float_of_int !events /. wall else 0. in
  let pct over base = if base > 0. then 100. *. (over -. base) /. base else 0. in
  let probe_overhead_pct = pct !probed_wall baseline_wall in
  let recorder_overhead_pct =
    Array.sort Float.compare deltas;
    deltas.(reps / 2)
  in
  let words_delta = !recorded_words -. !probed_words in
  Format.fprintf std "events per run        %12d@." !events;
  Format.fprintf std "baseline (no probe)   %12.0f ev/s  (%.4f s)@."
    (eps baseline_wall) baseline_wall;
  Format.fprintf std "probed                %12.0f ev/s  (%.4f s)@."
    (eps !probed_wall) !probed_wall;
  Format.fprintf std "recorded (lifecycle)  %12.0f ev/s  (%.4f s)@."
    (eps !recorded_wall) !recorded_wall;
  Format.fprintf std "run phase             %12.4f s probed, %.4f s recorded@."
    !probed_run !recorded_run;
  Format.fprintf std "probe overhead        %12.2f %%  (budget %.1f)@."
    probe_overhead_pct probe_budget_pct;
  Format.fprintf std
    "recorder overhead     %12.2f %%  (median of %d pairs, budget %.1f)@."
    recorder_overhead_pct reps recorder_budget_pct;
  Format.fprintf std "recorder words/event  %12.4f  (delta %.4f, budget %.2f)@."
    !recorded_words words_delta recorder_words_budget;
  Format.fprintf std "recorder records      %12d  (%d dropped by ring)@."
    !recorder_records !recorder_dropped;
  let failed = ref false in
  if recorder_overhead_pct > recorder_budget_pct then begin
    Format.eprintf
      "recorder overhead regression: %.2f%% exceeds the committed budget %.1f%%@."
      recorder_overhead_pct recorder_budget_pct;
    failed := true
  end;
  if words_delta > recorder_words_budget then begin
    Format.eprintf
      "recorder allocation regression: %.4f minor words/event over the probed \
       run exceeds the committed budget %.2f@."
      words_delta recorder_words_budget;
    failed := true
  end;
  if !recorder_records = 0 then begin
    Format.eprintf "recorder recorded nothing — instrumentation unwired?@.";
    failed := true
  end;
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String (Burstcore.Scenario.label scenario));
        ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("reps", Burstcore.Json.Int reps);
        ("events", Burstcore.Json.Int !events);
        ("baseline_wall_s", Burstcore.Json.Float baseline_wall);
        ("probed_wall_s", Burstcore.Json.Float !probed_wall);
        ("recorded_wall_s", Burstcore.Json.Float !recorded_wall);
        ("probed_run_s", Burstcore.Json.Float !probed_run);
        ("recorded_run_s", Burstcore.Json.Float !recorded_run);
        ("baseline_events_per_sec", Burstcore.Json.Float (eps baseline_wall));
        ("probed_events_per_sec", Burstcore.Json.Float (eps !probed_wall));
        ("recorded_events_per_sec", Burstcore.Json.Float (eps !recorded_wall));
        ("probe_overhead_pct", Burstcore.Json.Float probe_overhead_pct);
        ("probe_overhead_budget_pct", Burstcore.Json.Float probe_budget_pct);
        ("recorder_overhead_pct", Burstcore.Json.Float recorder_overhead_pct);
        ( "recorder_overhead_budget_pct",
          Burstcore.Json.Float recorder_budget_pct );

        ( "probed_minor_words_per_event",
          Burstcore.Json.Float !probed_words );
        ( "recorded_minor_words_per_event",
          Burstcore.Json.Float !recorded_words );
        ( "recorder_minor_words_per_event_delta",
          Burstcore.Json.Float words_delta );
        ("recorder_words_budget", Burstcore.Json.Float recorder_words_budget);
        ("recorder_records", Burstcore.Json.Int !recorder_records);
        ("recorder_dropped", Burstcore.Json.Int !recorder_dropped);
      ]
  in
  Burstcore.Export.write_file "BENCH_telemetry.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "wrote BENCH_telemetry.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Allocation budget: events/sec and GC words per event                *)

(* One Reno N=50 run, instrumented with [Gc.quick_stat] deltas. The
   committed baseline below was measured on this machine before the
   allocation-free inner loop landed (float Time.t, Int64 RNG, no event
   free-list); the JSON report carries both so regressions and the
   before/after ratios are visible in one file. [make check] runs this
   section and fails when minor words/event exceeds the committed
   threshold. *)

(* Pre-optimisation numbers (seed + PR 2 state), recorded by running
   this very section before the inner-loop rewrite: Reno N=50, 30 s,
   best of 3. The baseline bracketed the whole run with [Gc.quick_stat]
   (run-phase GC counters did not exist yet); at 30 s setup amortises to
   under 0.3 words/event, so it is comparable to the run-phase figures
   measured below. *)
let alloc_baseline_minor_words_per_event = 30.48
let alloc_baseline_events_per_sec = 1_311_337.

(* Per-scenario allocation budgets. The packet-pool rewrite measures
   ~3 minor words/event on Reno/drop-tail (down from 14.16 with heap
   packets); each row gates its own committed ceiling with headroom for
   GC-counter jitter. The primary Reno/drop-tail row also carries the
   committed events/sec floor: 1.15x over the 1.79M ev/s recorded before
   the pool landed. Wall-clock gates are machine-sensitive, so only that
   row has one, and it is enforced only on full-length runs — under
   [--fast] the wall time is a few milliseconds and the ratio is noise,
   so the floor prints as informational there. *)
type alloc_budget = {
  ab_scenario : Burstcore.Scenario.t;
  words_threshold : float;
  min_events_per_sec : float option;
}

let alloc_budgets =
  [
    {
      ab_scenario = Burstcore.Scenario.reno;
      words_threshold = 6.0;
      min_events_per_sec = Some 2_060_000.;
    };
    {
      ab_scenario = Burstcore.Scenario.reno_red;
      words_threshold = 8.0;
      min_events_per_sec = None;
    };
    {
      ab_scenario = Burstcore.Scenario.vegas;
      words_threshold = 8.0;
      min_events_per_sec = None;
    };
  ]

let run_alloc_bench () =
  section "Allocation budget (events/sec, GC words/event)";
  let cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      (* Full mode simulates long enough that the best-of wall time is a
         few hundred ms — at 30 s the whole run fits in ~50 ms and the
         events/sec figure swings ±20% with scheduler noise. *)
      Burstcore.Config.duration_s = (if !fast then 10. else 180.);
      warmup_s = 2.;
    }
  in
  let reps = if !fast then 3 else 5 in
  (* Same seed every rep: the event count and allocation profile are
     deterministic, only wall time varies; keep the fastest rep. The GC
     figures come from the probe's run-phase counters (what [note_run]
     records), so they cover exactly the inner loop the gate is about —
     setup and metric collection are excluded, which also keeps
     words/event independent of the run duration. Every run also passes
     [Run.run]'s pool-leak check (live handles must drain to zero), so a
     row in the report doubles as a leak-free certificate. *)
  let measure scenario =
    let best_wall = ref infinity in
    let events = ref 0 in
    let minor_words = ref 0. in
    let promoted_words = ref 0. in
    let major_collections = ref 0 in
    for _ = 1 to reps do
      let probe = Telemetry.Probe.create () in
      let t0 = Telemetry.Perf.wall_clock_s () in
      ignore (Burstcore.Run.run ~probe cfg scenario);
      let dt = Telemetry.Perf.wall_clock_s () -. t0 in
      if dt < !best_wall then begin
        let r = probe.Telemetry.Probe.registry in
        best_wall := dt;
        events := Telemetry.Probe.events_total probe;
        minor_words :=
          Telemetry.Registry.gauge_value
            (Telemetry.Registry.gauge r Telemetry.Probe.m_minor_words);
        promoted_words :=
          Telemetry.Registry.gauge_value
            (Telemetry.Registry.gauge r Telemetry.Probe.m_promoted_words);
        major_collections :=
          Telemetry.Registry.counter_value
            (Telemetry.Registry.counter r Telemetry.Probe.m_major_collections)
      end
    done;
    let fe = float_of_int (Stdlib.max 1 !events) in
    let eps = if !best_wall > 0. then fe /. !best_wall else 0. in
    (!events, !best_wall, eps, !minor_words /. fe, !promoted_words /. fe,
     !major_collections)
  in
  let ratio num den = if den > 0. then num /. den else 0. in
  let failed = ref false in
  let rows =
    List.map
      (fun budget ->
        let label = Burstcore.Scenario.label budget.ab_scenario in
        let events, wall, eps, wpe, ppe, majors = measure budget.ab_scenario in
        Format.fprintf std "@.%s@." label;
        Format.fprintf std "  events per run        %12d@." events;
        Format.fprintf std "  wall (best of %d)     %13.4f s@." reps wall;
        Format.fprintf std "  events/sec            %12.0f@." eps;
        Format.fprintf std "  minor words/event     %12.2f  (budget %.2f)@."
          wpe budget.words_threshold;
        Format.fprintf std "  promoted words/event  %12.4f@." ppe;
        Format.fprintf std "  major collections     %12d@." majors;
        if wpe > budget.words_threshold then begin
          Format.eprintf
            "allocation regression (%s): %.2f minor words/event exceeds the \
             committed threshold %.2f@."
            label wpe budget.words_threshold;
          failed := true
        end;
        (match budget.min_events_per_sec with
        | Some floor ->
            Format.fprintf std
              "  baseline words/event  %12.2f  (%.2fx reduction)@."
              alloc_baseline_minor_words_per_event
              (ratio alloc_baseline_minor_words_per_event wpe);
            Format.fprintf std
              "  baseline events/sec   %12.0f  (%.2fx speedup)@."
              alloc_baseline_events_per_sec
              (ratio eps alloc_baseline_events_per_sec);
            if eps < floor then
              if !fast then
                Format.fprintf std
                  "  (events/sec floor %.0f not enforced under --fast)@." floor
              else begin
                Format.eprintf
                  "throughput regression (%s): %.0f events/sec is below the \
                   committed floor %.0f@."
                  label eps floor;
                failed := true
              end
        | None -> ());
        Burstcore.Json.Obj
          [
            ("scenario", Burstcore.Json.String label);
            ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
            ("events", Burstcore.Json.Int events);
            ("wall_s", Burstcore.Json.Float wall);
            ("events_per_sec", Burstcore.Json.Float eps);
            ("minor_words_per_event", Burstcore.Json.Float wpe);
            ("promoted_words_per_event", Burstcore.Json.Float ppe);
            ("major_collections", Burstcore.Json.Int majors);
            ( "threshold_minor_words_per_event",
              Burstcore.Json.Float budget.words_threshold );
            ( "min_events_per_sec",
              match budget.min_events_per_sec with
              | Some f -> Burstcore.Json.Float f
              | None -> Burstcore.Json.Null );
            ("leak_free", Burstcore.Json.Bool true);
          ])
      alloc_budgets
  in
  let json =
    Burstcore.Json.Obj
      [
        ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("reps", Burstcore.Json.Int reps);
        ( "baseline_minor_words_per_event",
          Burstcore.Json.Float alloc_baseline_minor_words_per_event );
        ( "baseline_events_per_sec",
          Burstcore.Json.Float alloc_baseline_events_per_sec );
        ("rows", Burstcore.Json.List rows);
      ]
  in
  Burstcore.Export.write_file "BENCH_alloc.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "@.wrote BENCH_alloc.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Parallel sweep: sequential vs domain-fanned wall time               *)

(* One replicated Reno sweep, run twice: sequentially and fanned over
   [Domain.recommended_domain_count ()] domains. The two result lists
   must compare equal — the pool guarantees bit-identical metrics — so
   the only thing allowed to change is wall time. Speedup depends on the
   machine; the recorded [domains] field says what was available. *)
let run_parallel_bench () =
  section "Parallel sweep (sequential vs domains)";
  let cfg =
    {
      (config ()) with
      Burstcore.Config.duration_s = (if !fast then 10. else 30.);
      warmup_s = 2.;
    }
  in
  let ns = if !fast then [ 10; 20 ] else [ 10; 20; 30 ] in
  let replicates = 4 in
  let scenario = Burstcore.Scenario.reno in
  let timed f =
    let t0 = Telemetry.Perf.wall_clock_s () in
    let r = f () in
    (r, Telemetry.Perf.wall_clock_s () -. t0)
  in
  let seq, seq_wall =
    timed (fun () -> Burstcore.Sweep.replicated cfg scenario ~replicates ns)
  in
  (* Cap the pool: beyond 8 domains this sweep has fewer points than
     workers, so extra domains only add spawn cost and scheduler noise. *)
  let domains = min 8 (max 1 (Domain.recommended_domain_count ())) in
  let pool_size = ref 1 in
  let par, par_wall =
    timed (fun () ->
        Parallel.Pool.with_pool ~domains (fun pool ->
            pool_size := Parallel.Pool.size pool;
            Burstcore.Sweep.replicated ~pool cfg scenario ~replicates ns))
  in
  let domains = !pool_size in
  let deterministic = par = seq in
  (* With one domain the "parallel" path degrades to an inline map, so
     the ratio measures nothing but noise — report it as skipped rather
     than commit a meaningless (often < 1) figure. *)
  let speedup =
    if domains < 2 || par_wall <= 0. then None else Some (seq_wall /. par_wall)
  in
  Format.fprintf std
    "points                %12d  (%d client counts x %d replicates)@."
    (List.length ns * replicates)
    (List.length ns) replicates;
  Format.fprintf std "domains               %12d@." domains;
  Format.fprintf std "sequential            %12.4f s@." seq_wall;
  Format.fprintf std "parallel              %12.4f s@." par_wall;
  (match speedup with
  | Some s -> Format.fprintf std "speedup               %12.2fx@." s
  | None ->
      Format.fprintf std "speedup               %12s@." "skipped (1 domain)");
  Format.fprintf std "bit-identical results %12s@."
    (if deterministic then "yes" else "NO");
  if not deterministic then begin
    Format.eprintf "parallel sweep diverged from the sequential one@.";
    exit 1
  end;
  (match speedup with
  | Some s when s < 1.05 ->
      Format.fprintf std
        "warning: %d domains yielded only %.2fx — check machine load@." domains
        s
  | Some _ | None -> ());
  (* --- single-run sharded PDES: one N = 10^4 Reno/RED run over K
     domains. Uses the mean-field scaled regime of the flows bench
     (per-flow capacity constant) so the run is steady rather than
     collapsed at this client count. Two sub-claims, both re-checked
     from the file by `report-check --kind=parallel`:

     - determinism: a 1-shard and a 4-shard run of a smaller
       configuration produce identical Metrics.t — always gated, on any
       machine, because it does not depend on physical parallelism;
     - scaling: wall time for 1/2/4 shards at N = 10^4, with speedup
       recorded as wall(1)/wall(4) when the machine has at least 4
       domains and null otherwise (fewer domains measure
       oversubscription, not scaling). *)
  section "Sharded PDES (single run over K domains)";
  let module C = Burstcore.Config in
  let pdes_cfg n duration_s =
    let f = float_of_int n in
    {
      (C.with_clients C.default n) with
      C.bottleneck_bandwidth_mbps = 0.192 *. f;
      client_delay_s = 0.05;
      bottleneck_delay_s = 0.05;
      adv_window = 12;
      buffer_packets = 10 * n;
      red_min_th = f;
      red_max_th = 7.0 *. f;
      red_max_p = 0.05;
      duration_s;
      warmup_s = duration_s /. 2.;
    }
  in
  let pdes_scenario = Burstcore.Scenario.reno_red in
  let det_cfg = pdes_cfg 64 (if !fast then 2.0 else 4.0) in
  let det_run shards =
    Burstcore.Run.run { det_cfg with C.shards } pdes_scenario
  in
  let sharded_deterministic = det_run 1 = det_run 4 in
  Format.fprintf std "1-shard == 4-shard      %10s  (n=%d, %.0f s sim)@."
    (if sharded_deterministic then "yes" else "NO")
    det_cfg.C.clients det_cfg.C.duration_s;
  if not sharded_deterministic then begin
    Format.eprintf "sharded PDES diverged between 1 and 4 shards@.";
    exit 1
  end;
  let pdes_n = 10_000 in
  let pdes_duration = if !fast then 1.0 else 2.0 in
  let scale_cfg = pdes_cfg pdes_n pdes_duration in
  let shard_counts = [ 1; 2; 4 ] in
  let pdes_rows =
    List.map
      (fun shards ->
        let _, wall =
          timed (fun () ->
              ignore
                (Burstcore.Run.run { scale_cfg with C.shards } pdes_scenario))
        in
        Format.fprintf std "shards=%d              %12.4f s@." shards wall;
        (shards, wall))
      shard_counts
  in
  let wall_of k = List.assoc k pdes_rows in
  let min_single_run_speedup = 3.0 in
  let single_run_speedup =
    if domains >= 4 && wall_of 4 > 0. then Some (wall_of 1 /. wall_of 4)
    else None
  in
  (match single_run_speedup with
  | Some s ->
      Format.fprintf std "single-run speedup    %12.2fx  (floor %.1fx)@." s
        min_single_run_speedup;
      if s < min_single_run_speedup then begin
        Format.eprintf
          "single-run PDES speedup %.2fx is below the committed %.1fx floor@."
          s min_single_run_speedup;
        exit 1
      end
  | None ->
      Format.fprintf std "single-run speedup    %12s@."
        (Printf.sprintf "skipped (%d domain%s)" domains
           (if domains = 1 then "" else "s")));
  let single_run_json =
    Burstcore.Json.Obj
      [
        ( "scenario",
          Burstcore.Json.String (Burstcore.Scenario.label pdes_scenario) );
        ("clients", Burstcore.Json.Int pdes_n);
        ("duration_s", Burstcore.Json.Float pdes_duration);
        ("window_s", Burstcore.Json.Float (Burstcore.Pdes.window_s scale_cfg));
        ("available_domains", Burstcore.Json.Int domains);
        ("min_speedup", Burstcore.Json.Float min_single_run_speedup);
        ( "rows",
          Burstcore.Json.List
            (List.map
               (fun (shards, wall) ->
                 Burstcore.Json.Obj
                   [
                     ("shards", Burstcore.Json.Int shards);
                     ("wall_s", Burstcore.Json.Float wall);
                   ])
               pdes_rows) );
        ( "speedup",
          match single_run_speedup with
          | Some s -> Burstcore.Json.Float s
          | None -> Burstcore.Json.Null );
        ("sharded_deterministic", Burstcore.Json.Bool sharded_deterministic);
      ]
  in
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String (Burstcore.Scenario.label scenario));
        ( "clients",
          Burstcore.Json.List (List.map (fun n -> Burstcore.Json.Int n) ns) );
        ("replicates", Burstcore.Json.Int replicates);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("domains", Burstcore.Json.Int domains);
        ("sequential_wall_s", Burstcore.Json.Float seq_wall);
        ("parallel_wall_s", Burstcore.Json.Float par_wall);
        ( "speedup",
          match speedup with
          | Some s -> Burstcore.Json.Float s
          | None -> Burstcore.Json.Null );
        ("deterministic", Burstcore.Json.Bool deterministic);
        ("single_run", single_run_json);
      ]
  in
  Burstcore.Export.write_file "BENCH_parallel.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "wrote BENCH_parallel.json@."

(* ------------------------------------------------------------------ *)
(* Flow scaling: one run pushed from 10^3 to 10^5 greedy flows         *)

(* Mean-field scaling regime: bottleneck capacity, gateway buffer and
   RED thresholds all scale linearly with N, so every size solves the
   same per-flow fluid fixed point and the measured steady state can be
   validated against [Fluidmodel.Reno_fluid.equilibrium] at any N. The
   per-flow constants:

   - 16 pkt/s of bottleneck share per flow (0.192 Mbps at 1500 B);
   - 200 ms round-trip propagation;
   - adv_window 12: the largest window that keeps the sequence tables at
     16 slots (sender + receiver rows at 496 bytes, inside the budget)
     while clearing the AIMD sawtooth's peak, so flows stay
     congestion-limited;
   - buffer 10N, RED band [N, 7N] with max_p 0.05.

   The fixed point is w* ~ 8.0 packets, p* ~ 0.031, queue ~ 4.8N — a
   drop rate low enough that discrete Reno recovers losses with fast
   retransmit instead of collapsing into RTO backoff (at p ~ 0.1 and
   w ~ 4, whole windows die and every flow sits in exponential
   timeout backoff; the fluid ODE knows nothing about timeouts).

   The fluid ratios are gated on the two smaller sizes, which run long
   enough (~20 equilibrium RTTs) for the AIMD ensemble to converge; the
   N = 10^5 point is the memory/throughput row — a shorter run whose
   gates are bytes/flow, zero slab growth, leak-freedom and events/sec,
   with the fluid ratios reported but not enforced. Unlike the
   fluid-comparison section this sweep never records cwnd traces (a
   boxed per-sample list per flow is exactly the O(N) cost it exists to
   avoid): the model is checked through aggregate queue and throughput
   only. *)

let flows_bytes_per_flow_budget = 512

(* Committed floor for the N = 10^5 point, full mode only (wall time is
   machine-dependent; --fast prints but does not enforce). *)
let flows_min_events_per_sec = 300_000.
let flows_minor_words_per_event_budget = 8.0
let flows_throughput_ratio_min, flows_throughput_ratio_max = (0.80, 1.05)
(* The packet sim settles at ~0.5x the ODE's queue (the ODE has no
   timeouts, no sub-RTT burstiness, and a first-order RED average); the
   observable that matters is that the ratio is N-independent, so the
   band is wide but the scaling is tight. *)
let flows_queue_ratio_min, flows_queue_ratio_max = (0.35, 1.5)

let run_flows_bench () =
  section "Flow scaling (greedy Reno/RED flows, N = 10^3 .. 10^5)";
  let module C = Burstcore.Config in
  let module Time = Sim_engine.Time in
  let module Scheduler = Sim_engine.Scheduler in
  let flows_cfg n duration_s =
    let f = float_of_int n in
    {
      (C.with_clients C.default n) with
      C.bottleneck_bandwidth_mbps = 0.192 *. f;
      client_delay_s = 0.05;
      bottleneck_delay_s = 0.05;
      adv_window = 12;
      buffer_packets = 10 * n;
      red_min_th = f;
      red_max_th = 7.0 *. f;
      red_max_p = 0.05;
      duration_s;
      warmup_s = duration_s /. 2.;
    }
  in
  (* (size, sim seconds, fluid ratios enforced?, smoke?) — the
     converged points need ~20 equilibrium RTTs (r* ~ 0.5 s); the 10^5
     point is a short memory/throughput run. The N = 10^6 row (full
     mode only) is a scale smoke probe: its horizon is far too short
     for steady state, so it commits only to the per-flow byte budget
     and leak-freedom — pre-sized slabs are allowed to grow and no
     words/event or fluid gate applies. *)
  let points =
    if !fast then
      [
        (1_000, 8.0, true, false);
        (10_000, 8.0, true, false);
        (100_000, 2.0, false, false);
      ]
    else
      [
        (1_000, 10.0, true, false);
        (10_000, 10.0, true, false);
        (100_000, 2.5, false, false);
        (1_000_000, 0.5, false, true);
      ]
  in
  let failed = ref false in
  let gate cond fmt =
    Format.ksprintf
      (fun msg ->
        if not cond then begin
          Format.eprintf "flow-scaling regression: %s@." msg;
          failed := true
        end)
      fmt
  in
  let rows =
    List.map
      (fun (n, duration_s, fluid_gated, smoke) ->
        let measure_from = 0.6 *. duration_s in
        let cfg = flows_cfg n duration_s in
        let net = Burstcore.Dumbbell.create cfg Burstcore.Scenario.reno_red in
        let sched = Burstcore.Dumbbell.scheduler net in
        let horizon = Time.of_sec duration_s in
        let queue_series =
          Netsim.Monitor.queue_sampler sched
            (Burstcore.Dumbbell.bottleneck net)
            ~every:(Time.of_ms 10.) ~until:horizon
        in
        (* Deterministic start stagger across the first 200 ms: N
           synchronized slow starts would otherwise dump N packets into
           the gateway within one RTT of t = 0. *)
        for i = 0 to n - 1 do
          ignore
            (Traffic.Bulk.start sched
               ~size:Traffic.Bulk.infinite_backlog_size
               ~start:(Time.of_sec (0.2 *. float_of_int i /. float_of_int n))
               ~sink:(Burstcore.Dumbbell.sink net i))
        done;
        let delivered_at_mark = ref 0 in
        ignore
          (Scheduler.at sched (Time.of_sec measure_from) (fun () ->
               delivered_at_mark := Burstcore.Dumbbell.delivered_total net));
        let g0 = Telemetry.Perf.gc_read () in
        let t0 = Telemetry.Perf.wall_clock_s () in
        Scheduler.run ~until:horizon sched;
        let wall = Telemetry.Perf.wall_clock_s () -. t0 in
        let gc = Telemetry.Perf.gc_since g0 in
        let events = Scheduler.events_processed sched in
        let fe = float_of_int (Stdlib.max 1 events) in
        let eps = if wall > 0. then fe /. wall else 0. in
        let wpe = gc.Telemetry.Perf.minor_words /. fe in
        let bytes_per_flow =
          Burstcore.Dumbbell.flow_table_bytes_per_flow net
        in
        let footprint = Burstcore.Dumbbell.flow_table_footprint_bytes net in
        let ft_growths = Burstcore.Dumbbell.flow_table_growths net in
        let q_growths = Scheduler.queue_growths sched in
        let delivered = Burstcore.Dumbbell.delivered_total net in
        let measured_throughput =
          float_of_int (delivered - !delivered_at_mark)
          /. (duration_s -. measure_from)
        in
        let measured_queue =
          let steady =
            Netstats.Series.between queue_series measure_from duration_s
          in
          List.fold_left (fun acc (_, v) -> acc +. v) 0. steady
          /. float_of_int (Stdlib.max 1 (List.length steady))
        in
        (* The two leak sweeps [Run.run] performs, inlined: every packet
           handle and every flow row must drain back to its slab. *)
        Burstcore.Dumbbell.reclaim net;
        let pool_live =
          Netsim.Packet_pool.live (Burstcore.Dumbbell.pool net)
        in
        Burstcore.Dumbbell.release_flows net;
        let flows_live = Burstcore.Dumbbell.flows_live net in
        let leak_free = pool_live = 0 && flows_live = 0 in
        let eq =
          Fluidmodel.Reno_fluid.equilibrium
            {
              Fluidmodel.Reno_fluid.flows = n;
              capacity_pps =
                cfg.C.bottleneck_bandwidth_mbps *. 1e6
                /. float_of_int (8 * cfg.C.packet_bytes);
              base_rtt_s = C.rtt_prop_s cfg;
              buffer_packets = float_of_int cfg.C.buffer_packets;
              red_min_th = cfg.C.red_min_th;
              red_max_th = cfg.C.red_max_th;
              red_max_p = cfg.C.red_max_p;
              avg_gain = 10.;
            }
        in
        let ratio num den = if den > 0. then num /. den else 0. in
        let queue_ratio =
          ratio measured_queue eq.Fluidmodel.Reno_fluid.eq_queue
        in
        let throughput_ratio =
          ratio measured_throughput
            eq.Fluidmodel.Reno_fluid.eq_throughput_pps
        in
        Format.fprintf std "@.N = %d flows@." n;
        Format.fprintf std "  events                %12d@." events;
        Format.fprintf std "  wall                  %13.4f s@." wall;
        Format.fprintf std "  events/sec            %12.0f@." eps;
        Format.fprintf std "  minor words/event     %12.3f  (budget %.2f)@."
          wpe flows_minor_words_per_event_budget;
        Format.fprintf std "  bytes/flow            %12d  (budget %d)@."
          bytes_per_flow flows_bytes_per_flow_budget;
        Format.fprintf std "  flow-table footprint  %12d bytes@." footprint;
        Format.fprintf std "  growths (flows/queue) %9d / %d@." ft_growths
          q_growths;
        Format.fprintf std "  queue: sim %.0f  fluid %.0f  (ratio %.3f)@."
          measured_queue eq.Fluidmodel.Reno_fluid.eq_queue queue_ratio;
        Format.fprintf std
          "  throughput: sim %.0f  fluid %.0f pps  (ratio %.3f)@."
          measured_throughput eq.Fluidmodel.Reno_fluid.eq_throughput_pps
          throughput_ratio;
        gate
          (bytes_per_flow <= flows_bytes_per_flow_budget)
          "N=%d: %d bytes/flow exceeds the committed budget %d" n
          bytes_per_flow flows_bytes_per_flow_budget;
        gate leak_free "N=%d: leaked %d packet(s), %d flow row(s)" n
          pool_live flows_live;
        if not smoke then begin
          gate (ft_growths = 0)
            "N=%d: flow tables grew %d time(s) despite pre-sizing" n
            ft_growths;
          gate (q_growths = 0)
            "N=%d: event queue grew %d time(s) despite pre-sizing" n q_growths;
          gate
            (wpe <= flows_minor_words_per_event_budget)
            "N=%d: %.3f minor words/event exceeds the budget %.2f" n wpe
            flows_minor_words_per_event_budget
        end;
        if fluid_gated then begin
          gate
            (throughput_ratio >= flows_throughput_ratio_min
            && throughput_ratio <= flows_throughput_ratio_max)
            "N=%d: throughput ratio %.3f outside [%.2f, %.2f]" n
            throughput_ratio flows_throughput_ratio_min
            flows_throughput_ratio_max;
          gate
            (queue_ratio >= flows_queue_ratio_min
            && queue_ratio <= flows_queue_ratio_max)
            "N=%d: queue ratio %.3f outside [%.2f, %.2f]" n queue_ratio
            flows_queue_ratio_min flows_queue_ratio_max
        end;
        if n = 100_000 then
          if !fast then
            Format.fprintf std
              "  (events/sec floor %.0f not enforced under --fast)@."
              flows_min_events_per_sec
          else
            gate
              (eps >= flows_min_events_per_sec)
              "N=%d: %.0f events/sec is below the committed floor %.0f" n
              eps flows_min_events_per_sec;
        Burstcore.Json.Obj
          [
            ("flows", Burstcore.Json.Int n);
            ("duration_s", Burstcore.Json.Float duration_s);
            ("fluid_gated", Burstcore.Json.Bool fluid_gated);
            ("smoke", Burstcore.Json.Bool smoke);
            ("events", Burstcore.Json.Int events);
            ("wall_s", Burstcore.Json.Float wall);
            ("events_per_sec", Burstcore.Json.Float eps);
            ("minor_words_per_event", Burstcore.Json.Float wpe);
            ( "promoted_words_per_event",
              Burstcore.Json.Float (gc.Telemetry.Perf.promoted_words /. fe)
            );
            ( "major_collections",
              Burstcore.Json.Int gc.Telemetry.Perf.major_collections );
            ("bytes_per_flow", Burstcore.Json.Int bytes_per_flow);
            ("flow_footprint_bytes", Burstcore.Json.Int footprint);
            ("flow_table_growths", Burstcore.Json.Int ft_growths);
            ("queue_growths", Burstcore.Json.Int q_growths);
            ( "queue_capacity",
              Burstcore.Json.Int (Scheduler.queue_capacity sched) );
            ( "queue_hwm",
              Burstcore.Json.Int (Scheduler.queue_high_water_mark sched) );
            ( "wheel_parked",
              Burstcore.Json.Int (Scheduler.queue_wheel_parked sched) );
            ("delivered", Burstcore.Json.Int delivered);
            ("measured_queue", Burstcore.Json.Float measured_queue);
            ( "fluid_queue",
              Burstcore.Json.Float eq.Fluidmodel.Reno_fluid.eq_queue );
            ("queue_ratio", Burstcore.Json.Float queue_ratio);
            ( "measured_throughput_pps",
              Burstcore.Json.Float measured_throughput );
            ( "fluid_throughput_pps",
              Burstcore.Json.Float eq.Fluidmodel.Reno_fluid.eq_throughput_pps
            );
            ("throughput_ratio", Burstcore.Json.Float throughput_ratio);
            ("leak_free", Burstcore.Json.Bool leak_free);
          ])
      points
  in
  let json =
    Burstcore.Json.Obj
      [
        ("per_flow_capacity_pps", Burstcore.Json.Float 16.);
        ("base_rtt_s", Burstcore.Json.Float 0.2);
        ( "bytes_per_flow_budget",
          Burstcore.Json.Int flows_bytes_per_flow_budget );
        ( "minor_words_per_event_budget",
          Burstcore.Json.Float flows_minor_words_per_event_budget );
        ("min_events_per_sec", Burstcore.Json.Float flows_min_events_per_sec);
        ( "throughput_ratio_min",
          Burstcore.Json.Float flows_throughput_ratio_min );
        ( "throughput_ratio_max",
          Burstcore.Json.Float flows_throughput_ratio_max );
        ("queue_ratio_min", Burstcore.Json.Float flows_queue_ratio_min);
        ("queue_ratio_max", Burstcore.Json.Float flows_queue_ratio_max);
        ("rows", Burstcore.Json.List rows);
      ]
  in
  Burstcore.Export.write_file "BENCH_flows.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "@.wrote BENCH_flows.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Burstiness observability: streaming aggregator cost + correctness   *)

(* Three claims, one JSON artifact (BENCH_burst.json), re-checked from
   the file's own budgets by `report-check --kind=burst` in `make
   check`:

   - cost: enabling the always-on [Telemetry.Burst] aggregator on a
     probed Reno N=50 run adds at most [burst_words_budget] minor
     words per scheduler event. The hot path is a streaming dyadic
     fold over flat float arrays, so the only allocation the burst
     configuration adds during the run phase is the oscillation
     sampler's timer closures (~50/simulated-second); like the
     recorder gate next door, probed and burst-enabled reps are
     interleaved pairs and the wall-clock overhead is the median of
     per-pair run-phase deltas (informational — words/event is the
     deterministic gate);

   - correctness: the streaming c.o.v. at the paper's RTT timescale
     must match the offline [Binned] + [Summary] estimate on the same
     run within [burst_cov_tolerance]. Both paths fold the identical
     complete-bin count sequence through the identical Welford update,
     so the gap is zero up to float noise;

   - discrimination: a RED w_q sweep bracketing the linearized
     (Reynier/Hollot-style) stability threshold from
     [Fluidmodel.Reno_fluid.red_stability]. The sweep topology is
     tightened (150 ms RTT, RED band 15..25 at max_p 0.6) so the
     critical gain w_q* lands where both sides are observable in a
     90 s run: the stable row averages slowly enough to keep the
     queue pinned near its RED equilibrium, the unstable row tracks
     the instantaneous queue and limit-cycles. The oscillation
     detector must fire on the unstable row and stay quiet on the
     stable row. *)

let burst_words_budget = 0.05
let burst_cov_tolerance = 1e-6

let run_burst_bench () =
  section "Burstiness observability (Telemetry.Burst)";
  let scenario = Burstcore.Scenario.reno in
  let cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      Burstcore.Config.duration_s = 30.;
      warmup_s = 2.;
    }
  in
  let reps = if !fast then 3 else 5 in
  let words_per_event probe =
    let words =
      Telemetry.Registry.gauge_value
        (Telemetry.Registry.gauge probe.Telemetry.Probe.registry
           Telemetry.Probe.m_minor_words)
    in
    words /. float_of_int (Stdlib.max 1 (Telemetry.Probe.events_total probe))
  in
  let run_phase_s probe =
    Telemetry.Perf.duration_s probe.Telemetry.Probe.phases "run"
  in
  let events = ref 0 in
  let probed_words = ref 0. in
  let burst_words = ref 0. in
  let probed_run = ref infinity in
  let burst_run = ref infinity in
  let deltas = Array.make reps 0. in
  let burst_metrics = ref None in
  for rep = 0 to reps - 1 do
    Gc.full_major ();
    let probe = Telemetry.Probe.create () in
    ignore (Burstcore.Run.run ~probe cfg scenario);
    probed_words := words_per_event probe;
    let probed_rep_run = run_phase_s probe in
    probed_run := Float.min !probed_run probed_rep_run;
    Gc.full_major ();
    let probe = Telemetry.Probe.create () in
    Telemetry.Probe.set_burst probe (Some Telemetry.Burst.default_config);
    let m = Burstcore.Run.run ~probe cfg scenario in
    events := Telemetry.Probe.events_total probe;
    burst_words := words_per_event probe;
    let burst_rep_run = run_phase_s probe in
    burst_run := Float.min !burst_run burst_rep_run;
    deltas.(rep) <-
      (if probed_rep_run > 0. then
         100. *. (burst_rep_run -. probed_rep_run) /. probed_rep_run
       else 0.);
    burst_metrics := Some m
  done;
  let words_delta = !burst_words -. !probed_words in
  let overhead_pct =
    Array.sort Float.compare deltas;
    deltas.(reps / 2)
  in
  let m =
    match !burst_metrics with Some m -> m | None -> assert false
  in
  let s =
    match m.Burstcore.Metrics.burst with
    | Some s -> s
    | None -> failwith "burst-enabled run produced no burst summary"
  in
  let cov_offline = m.Burstcore.Metrics.cov in
  let cov_streaming =
    match
      List.find_opt (fun r -> r.Telemetry.Burst.level = 0)
        s.Telemetry.Burst.scales
    with
    | Some { Telemetry.Burst.s_cov = Some c; _ } -> c
    | _ -> nan
  in
  let cov_abs_err = Float.abs (cov_streaming -. cov_offline) in
  let hurst =
    match s.Telemetry.Burst.s_hurst with Some h -> h | None -> nan
  in
  Format.fprintf std "events per run        %12d@." !events;
  Format.fprintf std "run phase             %12.4f s probed, %.4f s burst@."
    !probed_run !burst_run;
  Format.fprintf std
    "burst overhead        %12.2f %%  (median of %d pairs, informational)@."
    overhead_pct reps;
  Format.fprintf std
    "burst words/event     %12.4f  (delta %.4f, budget %.2f)@." !burst_words
    words_delta burst_words_budget;
  Format.fprintf std
    "cov at RTT scale      %12.7f streaming, %.7f offline (|err| %.2e, \
     tolerance %g)@."
    cov_streaming cov_offline cov_abs_err burst_cov_tolerance;
  Format.fprintf std "hurst (wavelet)       %12.3f@." hurst;
  let failed = ref false in
  if words_delta > burst_words_budget then begin
    Format.eprintf
      "burst allocation regression: %.4f minor words/event over the probed \
       run exceeds the committed budget %.2f@."
      words_delta burst_words_budget;
    failed := true
  end;
  if not (cov_abs_err <= burst_cov_tolerance) then begin
    Format.eprintf
      "streaming c.o.v. disagrees with the offline estimator: |%.9f - %.9f| \
       = %.2e exceeds %g@."
      cov_streaming cov_offline cov_abs_err burst_cov_tolerance;
    failed := true
  end;
  (* --- RED w_q sweep across the linearized stability threshold --- *)
  let sweep_cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      Burstcore.Config.client_delay_s = 0.0375;
      bottleneck_delay_s = 0.0375;
      red_min_th = 15.;
      red_max_th = 25.;
      red_max_p = 0.6;
      duration_s = 90.;
      warmup_s = 30.;
    }
  in
  let capacity_pps =
    sweep_cfg.Burstcore.Config.bottleneck_bandwidth_mbps *. 1e6
    /. float_of_int (8 * sweep_cfg.Burstcore.Config.packet_bytes)
  in
  let params =
    {
      Fluidmodel.Reno_fluid.flows = sweep_cfg.Burstcore.Config.clients;
      capacity_pps;
      base_rtt_s = Burstcore.Config.rtt_prop_s sweep_cfg;
      buffer_packets =
        float_of_int sweep_cfg.Burstcore.Config.buffer_packets;
      red_min_th = sweep_cfg.Burstcore.Config.red_min_th;
      red_max_th = sweep_cfg.Burstcore.Config.red_max_th;
      red_max_p = sweep_cfg.Burstcore.Config.red_max_p;
      avg_gain = 10.;
    }
  in
  let stability = Fluidmodel.Reno_fluid.red_stability params in
  let wq_critical =
    match stability.Fluidmodel.Reno_fluid.wq_critical with
    | Some w -> w
    | None ->
        Format.eprintf
          "burst bench misconfigured: loop gain %.3f <= 1, no critical w_q@."
          stability.Fluidmodel.Reno_fluid.loop_gain;
        exit 1
  in
  Format.fprintf std
    "@.RED stability (N=%d, R=%.3f s, C=%.1f pps): loop gain %.3f, \
     w_q* = %.2e@."
    sweep_cfg.Burstcore.Config.clients
    (Burstcore.Config.rtt_prop_s sweep_cfg)
    capacity_pps stability.Fluidmodel.Reno_fluid.loop_gain wq_critical;
  let osc_row side w_q =
    let cfg = { sweep_cfg with Burstcore.Config.red_w_q = w_q } in
    let probe = Telemetry.Probe.create () in
    Telemetry.Probe.set_burst probe (Some Telemetry.Burst.default_config);
    let m = Burstcore.Run.run ~probe cfg Burstcore.Scenario.reno_red in
    let o =
      match m.Burstcore.Metrics.burst with
      | Some { Telemetry.Burst.s_osc = Some o; _ } -> o
      | _ -> failwith "RED sweep run produced no oscillation summary"
    in
    Format.fprintf std
      "  w_q %.2e (%8s): rel amplitude %.3f, %d crossings, %.3f Hz, mean \
       queue %.1f -> %s@."
      w_q side o.Telemetry.Burst.o_rel_amplitude
      o.Telemetry.Burst.o_crossings o.Telemetry.Burst.o_frequency_hz
      o.Telemetry.Burst.o_mean
      (if o.Telemetry.Burst.o_oscillating then "OSCILLATING" else "quiet");
    (w_q, side, o)
  in
  let rows =
    [ osc_row "stable" (wq_critical /. 10.); osc_row "unstable" (wq_critical *. 100.) ]
  in
  List.iter
    (fun (w_q, side, o) ->
      let expected = side = "unstable" in
      if o.Telemetry.Burst.o_oscillating <> expected then begin
        Format.eprintf
          "oscillation detector missed the %s side at w_q %.2e \
           (rel %.3f, %d crossings)@."
          side w_q o.Telemetry.Burst.o_rel_amplitude
          o.Telemetry.Burst.o_crossings;
        failed := true
      end)
    rows;
  let row_json (w_q, side, o) =
    Burstcore.Json.Obj
      [
        ("w_q", Burstcore.Json.Float w_q);
        ("side", Burstcore.Json.String side);
        ( "rel_amplitude",
          Burstcore.Json.Float o.Telemetry.Burst.o_rel_amplitude );
        ("frequency_hz", Burstcore.Json.Float o.Telemetry.Burst.o_frequency_hz);
        ("crossings", Burstcore.Json.Int o.Telemetry.Burst.o_crossings);
        ("mean_queue", Burstcore.Json.Float o.Telemetry.Burst.o_mean);
        ("oscillating", Burstcore.Json.Bool o.Telemetry.Burst.o_oscillating);
      ]
  in
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String (Burstcore.Scenario.label scenario));
        ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("reps", Burstcore.Json.Int reps);
        ("events", Burstcore.Json.Int !events);
        ("probed_run_s", Burstcore.Json.Float !probed_run);
        ("burst_run_s", Burstcore.Json.Float !burst_run);
        ("burst_overhead_pct", Burstcore.Json.Float overhead_pct);
        ("probed_minor_words_per_event", Burstcore.Json.Float !probed_words);
        ("burst_minor_words_per_event", Burstcore.Json.Float !burst_words);
        ("burst_minor_words_per_event_delta", Burstcore.Json.Float words_delta);
        ("burst_words_budget", Burstcore.Json.Float burst_words_budget);
        ("cov_offline", Burstcore.Json.Float cov_offline);
        ("cov_streaming", Burstcore.Json.Float cov_streaming);
        ("cov_abs_err", Burstcore.Json.Float cov_abs_err);
        ("cov_tolerance", Burstcore.Json.Float burst_cov_tolerance);
        ("hurst_wavelet", Burstcore.Json.Float hurst);
        ( "red_sweep",
          Burstcore.Json.Obj
            [
              ( "flows",
                Burstcore.Json.Int sweep_cfg.Burstcore.Config.clients );
              ( "base_rtt_s",
                Burstcore.Json.Float (Burstcore.Config.rtt_prop_s sweep_cfg)
              );
              ("capacity_pps", Burstcore.Json.Float capacity_pps);
              ( "loop_gain",
                Burstcore.Json.Float
                  stability.Fluidmodel.Reno_fluid.loop_gain );
              ("wq_critical", Burstcore.Json.Float wq_critical);
              ("rows", Burstcore.Json.List (List.map row_json rows));
            ] );
      ]
  in
  Burstcore.Export.write_file "BENCH_burst.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "@.wrote BENCH_burst.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Hybrid fluid/packet engine: validation, converged 10^6, stability   *)

(* Three claims, one JSON artifact (BENCH_hybrid.json), re-checked from
   the file's own tolerance bands by `report-check --kind=hybrid` in
   `make check`:

   - validity: at N in {10^3, 10^4} total flows on the mean-field
     regime (the flow-scaling bench's shape), replacing all but K = 50
     flows with the fluid background population reproduces the pure
     packet-level run's per-flow foreground throughput, combined
     bottleneck backlog and gateway loss rate within committed bands —
     while processing a fraction of the events;
   - scale: the converged N = 10^6 run (K = 100 packet-level foreground
     + 999,900 fluid background, a steady-state >= 20-equilibrium-RTT
     horizon) is leak-free with zero slab growth and does at least
     [hybrid_work_ratio_min] times less work per simulated second than
     a pure packet-level run at equal N (measured, full mode only; the
     --fast row is a smoke probe and records null);
   - stability: the RED w_q sweep rerun at mean-field scale (N = 10^4,
     hybrid engine) is classified by the fluid Hopf threshold — the
     oscillation detector fires on the super-critical side and stays
     quiet on the sub-critical side, closing the stability-boundary
     question at a population size the packet engine alone cannot hold
     at this horizon. *)

let hybrid_foreground = 50

(* The fluid Reno law has no timeouts and no sub-RTT burstiness, so the
   fluid-dominated side settles at a somewhat higher queue (and its
   foreground a somewhat higher throughput) than the pure packet run —
   the same inherent bias the flow-scaling bench gates at ~0.5x queue
   ratio against the standalone ODE. The observable that matters is
   that the ratios are N-independent; the bands are set around the
   measured bias with replicate headroom. *)
let hybrid_throughput_ratio_min, hybrid_throughput_ratio_max = (0.80, 1.25)
let hybrid_queue_ratio_min, hybrid_queue_ratio_max = (0.5, 2.0)
let hybrid_loss_abs_tol = 0.025
let hybrid_work_ratio_min = 10.

let run_hybrid_bench () =
  section "Hybrid fluid/packet engine (fluid background population)";
  let module C = Burstcore.Config in
  let module Time = Sim_engine.Time in
  let module Scheduler = Sim_engine.Scheduler in
  let failed = ref false in
  let gate cond fmt =
    Format.ksprintf
      (fun msg ->
        if not cond then begin
          Format.eprintf "hybrid regression: %s@." msg;
          failed := true
        end)
      fmt
  in
  (* The flow-scaling bench's mean-field shape: 16 pps/flow, 0.2 s
     propagation RTT, RED spanning [N, 7N]. *)
  let flows_cfg n duration_s =
    let f = float_of_int n in
    {
      (C.with_clients C.default n) with
      C.bottleneck_bandwidth_mbps = 0.192 *. f;
      client_delay_s = 0.05;
      bottleneck_delay_s = 0.05;
      adv_window = 12;
      buffer_packets = 10 * n;
      red_min_th = f;
      red_max_th = 7.0 *. f;
      red_max_p = 0.05;
      duration_s;
      warmup_s = duration_s /. 2.;
    }
  in
  (* Drive [k] packet-level greedy flows over [cfg], attaching the
     fluid background when [cfg.background >= 1]; measure over the last
     40 % of the horizon. *)
  let drive cfg k =
    let duration_s = cfg.C.duration_s in
    let measure_from = 0.6 *. duration_s in
    let net = Burstcore.Dumbbell.create cfg Burstcore.Scenario.reno_red in
    let sched = Burstcore.Dumbbell.scheduler net in
    let horizon = Time.of_sec duration_s in
    let bottleneck = Burstcore.Dumbbell.bottleneck net in
    let hybrid =
      if cfg.C.background >= 1 then
        Some (Burstcore.Hybrid.attach ~sched ~bottleneck cfg)
      else None
    in
    let queue_series =
      Netsim.Monitor.queue_sampler sched bottleneck ~every:(Time.of_ms 10.)
        ~until:horizon
    in
    for i = 0 to k - 1 do
      ignore
        (Traffic.Bulk.start sched ~size:Traffic.Bulk.infinite_backlog_size
           ~start:(Time.of_sec (0.2 *. float_of_int i /. float_of_int k))
           ~sink:(Burstcore.Dumbbell.sink net i))
    done;
    let delivered_at_mark = ref 0 in
    let arrivals_at_mark = ref 0 in
    let drops_at_mark = ref 0 in
    ignore
      (Scheduler.at sched (Time.of_sec measure_from) (fun () ->
           delivered_at_mark := Burstcore.Dumbbell.delivered_total net;
           arrivals_at_mark := Netsim.Link.arrivals bottleneck;
           drops_at_mark := Netsim.Link.drops bottleneck));
    let t0 = Telemetry.Perf.wall_clock_s () in
    Scheduler.run ~until:horizon sched;
    let wall = Telemetry.Perf.wall_clock_s () -. t0 in
    let events = Scheduler.events_processed sched in
    let window = duration_s -. measure_from in
    let per_flow_pps =
      float_of_int
        (Burstcore.Dumbbell.delivered_total net - !delivered_at_mark)
      /. window /. float_of_int k
    in
    let arr = Netsim.Link.arrivals bottleneck - !arrivals_at_mark in
    let drops = Netsim.Link.drops bottleneck - !drops_at_mark in
    let loss_rate =
      if arr = 0 then 0. else float_of_int drops /. float_of_int arr
    in
    let queue_phys =
      let steady =
        Netstats.Series.between queue_series measure_from duration_s
      in
      List.fold_left (fun acc (_, v) -> acc +. v) 0. steady
      /. float_of_int (Stdlib.max 1 (List.length steady))
    in
    let summary = Option.map Burstcore.Hybrid.summary hybrid in
    let queue_comb =
      queue_phys
      +.
      match summary with
      | Some s -> s.Burstcore.Metrics.bg_queue_mean
      | None -> 0.
    in
    let ft_growths = Burstcore.Dumbbell.flow_table_growths net in
    let q_growths = Scheduler.queue_growths sched in
    Burstcore.Dumbbell.reclaim net;
    let pool_live = Netsim.Packet_pool.live (Burstcore.Dumbbell.pool net) in
    Burstcore.Dumbbell.release_flows net;
    let flows_live = Burstcore.Dumbbell.flows_live net in
    ( events,
      wall,
      per_flow_pps,
      loss_rate,
      queue_comb,
      pool_live = 0 && flows_live = 0,
      ft_growths,
      q_growths,
      summary )
  in
  (* --- validation: hybrid vs pure packet at N in {10^3, 10^4} ------ *)
  let k_fg = hybrid_foreground in
  let validation_rows =
    List.map
      (fun n ->
        let duration_s = if !fast then 8.0 else 10.0 in
        let base = flows_cfg n duration_s in
        let p_events, p_wall, p_pf, p_loss, p_queue, p_leak, _, _, _ =
          drive base n
        in
        let hcfg = { (C.with_clients base k_fg) with C.background = n - k_fg } in
        let h_events, h_wall, h_pf, h_loss, h_queue, h_leak, h_ft, h_qg, h_sum
            =
          drive hcfg k_fg
        in
        let ratio num den = if den > 0. then num /. den else 0. in
        let thr_ratio = ratio h_pf p_pf in
        let queue_ratio = ratio h_queue p_queue in
        let loss_err = Float.abs (h_loss -. p_loss) in
        let event_ratio = ratio (float_of_int p_events) (float_of_int h_events) in
        Format.fprintf std "@.N = %d (K = %d foreground, %d fluid)@." n k_fg
          (n - k_fg);
        Format.fprintf std
          "  per-flow throughput   %9.2f pps packet, %8.2f hybrid  (ratio \
           %.3f)@."
          p_pf h_pf thr_ratio;
        Format.fprintf std
          "  combined queue        %9.0f packet, %12.0f hybrid  (ratio \
           %.3f)@."
          p_queue h_queue queue_ratio;
        Format.fprintf std
          "  gateway loss rate     %9.4f packet, %12.4f hybrid  (|err| \
           %.4f)@."
          p_loss h_loss loss_err;
        Format.fprintf std
          "  events                %9d packet, %12d hybrid  (%.0fx less \
           work)@."
          p_events h_events event_ratio;
        Format.fprintf std "  wall                  %9.3f s packet, %10.3f s \
                            hybrid@."
          p_wall h_wall;
        gate
          (thr_ratio >= hybrid_throughput_ratio_min
          && thr_ratio <= hybrid_throughput_ratio_max)
          "N=%d: foreground throughput ratio %.3f outside [%.2f, %.2f]" n
          thr_ratio hybrid_throughput_ratio_min hybrid_throughput_ratio_max;
        gate
          (queue_ratio >= hybrid_queue_ratio_min
          && queue_ratio <= hybrid_queue_ratio_max)
          "N=%d: combined queue ratio %.3f outside [%.2f, %.2f]" n queue_ratio
          hybrid_queue_ratio_min hybrid_queue_ratio_max;
        gate
          (loss_err <= hybrid_loss_abs_tol)
          "N=%d: loss-rate gap %.4f exceeds tolerance %.3f" n loss_err
          hybrid_loss_abs_tol;
        gate (event_ratio >= 1.)
          "N=%d: hybrid did more work than pure packet (%.2fx)" n event_ratio;
        gate p_leak "N=%d: pure packet run leaked" n;
        gate h_leak "N=%d: hybrid run leaked" n;
        gate (h_ft = 0 && h_qg = 0)
          "N=%d: hybrid slabs grew (%d flow-table, %d event-queue)" n h_ft
          h_qg;
        Burstcore.Json.Obj
          ([
             ("flows", Burstcore.Json.Int n);
             ("foreground", Burstcore.Json.Int k_fg);
             ("background", Burstcore.Json.Int (n - k_fg));
             ("duration_s", Burstcore.Json.Float duration_s);
             ("packet_throughput_pps", Burstcore.Json.Float p_pf);
             ("hybrid_throughput_pps", Burstcore.Json.Float h_pf);
             ("throughput_ratio", Burstcore.Json.Float thr_ratio);
             ("packet_queue_mean", Burstcore.Json.Float p_queue);
             ("hybrid_queue_mean", Burstcore.Json.Float h_queue);
             ("queue_ratio", Burstcore.Json.Float queue_ratio);
             ("packet_loss_rate", Burstcore.Json.Float p_loss);
             ("hybrid_loss_rate", Burstcore.Json.Float h_loss);
             ("loss_abs_err", Burstcore.Json.Float loss_err);
             ("packet_events", Burstcore.Json.Int p_events);
             ("hybrid_events", Burstcore.Json.Int h_events);
             ("event_ratio", Burstcore.Json.Float event_ratio);
             ("packet_wall_s", Burstcore.Json.Float p_wall);
             ("hybrid_wall_s", Burstcore.Json.Float h_wall);
           ]
          @
          match h_sum with
          | Some s ->
              [ ("hybrid", Burstcore.Export.hybrid_summary_to_json s) ]
          | None -> []))
      [ 1_000; 10_000 ]
  in
  (* --- converged N = 10^6 ------------------------------------------ *)
  let conv_n = 1_000_000 and conv_k = 100 in
  let conv_duration = if !fast then 4.0 else 10.0 in
  let conv_cfg =
    {
      (C.with_clients (flows_cfg conv_n conv_duration) conv_k) with
      C.background = conv_n - conv_k;
    }
  in
  let c_events, c_wall, c_pf, c_loss, _c_queue, c_leak, c_ft, c_qg, c_sum =
    drive conv_cfg conv_k
  in
  let c_eps = float_of_int c_events /. Stdlib.max 1e-9 c_wall in
  let hybrid_work = float_of_int c_events /. conv_duration in
  Format.fprintf std
    "@.N = %d converged (K = %d foreground, %d fluid, %.1f s horizon)@."
    conv_n conv_k (conv_n - conv_k) conv_duration;
  Format.fprintf std "  events                %12d  (%.0f per simulated s)@."
    c_events hybrid_work;
  Format.fprintf std "  wall                  %13.4f s  (%.0f events/s)@."
    c_wall c_eps;
  Format.fprintf std "  foreground throughput %12.2f pps/flow, loss %.4f@."
    c_pf c_loss;
  (match c_sum with
  | Some s ->
      Format.fprintf std
        "  background            %12.2f window, %.0f virtual queue, \
         slowdown %.2f@."
        s.Burstcore.Metrics.bg_window_mean s.Burstcore.Metrics.bg_queue_mean
        s.Burstcore.Metrics.slowdown_mean
  | None -> ());
  gate c_leak "converged N=%d: leaked" conv_n;
  gate (c_ft = 0 && c_qg = 0)
    "converged N=%d: slabs grew (%d flow-table, %d event-queue)" conv_n c_ft
    c_qg;
  let work_ratio =
    if !fast then begin
      Format.fprintf std
        "  (pure-packet work baseline skipped under --fast; work ratio not \
         enforced)@.";
      None
    end
    else begin
      (* Pure packet at equal N: a short scale probe is enough to
         measure its work per simulated second. *)
      let probe_s = 0.3 in
      let p_events, p_wall, _, _, _, _, _, _, _ =
        drive (flows_cfg conv_n probe_s) conv_n
      in
      let packet_work = float_of_int p_events /. probe_s in
      let r = packet_work /. Stdlib.max 1. hybrid_work in
      Format.fprintf std
        "  pure packet at N=%d:  %12d events in %.1f simulated s (%.3f s \
         wall) -> %.0f events per simulated s@."
        conv_n p_events probe_s p_wall packet_work;
      Format.fprintf std "  work ratio            %12.0fx  (floor %.0fx)@." r
        hybrid_work_ratio_min;
      gate
        (r >= hybrid_work_ratio_min)
        "converged N=%d: %.1fx work reduction is below the committed floor \
         %.0fx"
        conv_n r hybrid_work_ratio_min;
      Some r
    end
  in
  let converged_json =
    Burstcore.Json.Obj
      ([
         ("flows", Burstcore.Json.Int conv_n);
         ("foreground", Burstcore.Json.Int conv_k);
         ("background", Burstcore.Json.Int (conv_n - conv_k));
         ("duration_s", Burstcore.Json.Float conv_duration);
         ("events", Burstcore.Json.Int c_events);
         ("wall_s", Burstcore.Json.Float c_wall);
         ("events_per_sec", Burstcore.Json.Float c_eps);
         ("events_per_sim_s", Burstcore.Json.Float hybrid_work);
         ("foreground_throughput_pps", Burstcore.Json.Float c_pf);
         ("foreground_loss_rate", Burstcore.Json.Float c_loss);
         ( "bg_window_mean",
           Burstcore.Json.Float
             (match c_sum with
             | Some s -> s.Burstcore.Metrics.bg_window_mean
             | None -> 0.) );
         ( "bg_queue_mean",
           Burstcore.Json.Float
             (match c_sum with
             | Some s -> s.Burstcore.Metrics.bg_queue_mean
             | None -> 0.) );
         ( "slowdown_mean",
           Burstcore.Json.Float
             (match c_sum with
             | Some s -> s.Burstcore.Metrics.slowdown_mean
             | None -> 0.) );
         ("flow_table_growths", Burstcore.Json.Int c_ft);
         ("queue_growths", Burstcore.Json.Int c_qg);
         ("leak_free", Burstcore.Json.Bool c_leak);
         ("smoke", Burstcore.Json.Bool !fast);
         ( "work_ratio",
           match work_ratio with
           | Some r -> Burstcore.Json.Float r
           | None -> Burstcore.Json.Null );
       ]
      @
      match c_sum with
      | Some s -> [ ("hybrid", Burstcore.Export.hybrid_summary_to_json s) ]
      | None -> [])
  in
  (* --- RED w_q stability sweep at mean-field scale ------------------ *)
  (* The burst bench's sweep shape scaled x200 to N = 10^4 total flows:
     the loop gain L = slope (RC)^3 / (2N)^2 is invariant under
     (C, thresholds, buffer) proportional to N, so the Hopf threshold
     survives the scaling while the population becomes far too large to
     sweep packet-level at this horizon. *)
  let sweep_n = 10_000 in
  let sweep_cfg w_q =
    {
      (C.with_clients C.default hybrid_foreground) with
      C.bottleneck_bandwidth_mbps = 1000.;
      client_delay_s = 0.0375;
      bottleneck_delay_s = 0.0375;
      buffer_packets = 10_000;
      red_min_th = 3000.;
      red_max_th = 5000.;
      red_max_p = 0.6;
      red_w_q = w_q;
      duration_s = 90.;
      warmup_s = 30.;
      background = sweep_n - hybrid_foreground;
    }
  in
  let probe_cfg = sweep_cfg 0.002 in
  let capacity_pps = Burstcore.Hybrid.capacity_pps probe_cfg in
  let params =
    {
      Fluidmodel.Reno_fluid.flows = sweep_n;
      capacity_pps;
      base_rtt_s = C.rtt_prop_s probe_cfg;
      buffer_packets = float_of_int probe_cfg.C.buffer_packets;
      red_min_th = probe_cfg.C.red_min_th;
      red_max_th = probe_cfg.C.red_max_th;
      red_max_p = probe_cfg.C.red_max_p;
      avg_gain = 10.;
    }
  in
  let stability = Fluidmodel.Reno_fluid.red_stability params in
  let wq_critical =
    match stability.Fluidmodel.Reno_fluid.wq_critical with
    | Some w -> w
    | None ->
        Format.eprintf
          "hybrid bench misconfigured: loop gain %.3f <= 1, no critical w_q@."
          stability.Fluidmodel.Reno_fluid.loop_gain;
        exit 1
  in
  Format.fprintf std
    "@.RED stability at mean-field scale (N=%d, R=%.3f s, C=%.0f pps): loop \
     gain %.3f, w_q* = %.2e@."
    sweep_n
    (C.rtt_prop_s probe_cfg)
    capacity_pps stability.Fluidmodel.Reno_fluid.loop_gain wq_critical;
  let osc_row side w_q =
    let cfg = sweep_cfg w_q in
    let probe = Telemetry.Probe.create () in
    Telemetry.Probe.set_burst probe (Some Telemetry.Burst.default_config);
    let m = Burstcore.Run.run ~probe cfg Burstcore.Scenario.reno_red in
    let o =
      match m.Burstcore.Metrics.burst with
      | Some { Telemetry.Burst.s_osc = Some o; _ } -> o
      | _ -> failwith "hybrid sweep run produced no oscillation summary"
    in
    Format.fprintf std
      "  w_q %.2e (%8s): rel amplitude %.3f, %d crossings, %.3f Hz, mean \
       queue %.1f -> %s@."
      w_q side o.Telemetry.Burst.o_rel_amplitude
      o.Telemetry.Burst.o_crossings o.Telemetry.Burst.o_frequency_hz
      o.Telemetry.Burst.o_mean
      (if o.Telemetry.Burst.o_oscillating then "OSCILLATING" else "quiet");
    (w_q, side, o)
  in
  let sweep_rows =
    [
      osc_row "stable" (wq_critical /. 10.);
      osc_row "unstable" (wq_critical *. 100.);
    ]
  in
  List.iter
    (fun (w_q, side, o) ->
      let expected = side = "unstable" in
      gate
        (o.Telemetry.Burst.o_oscillating = expected)
        "oscillation detector missed the %s side at w_q %.2e (rel %.3f, %d \
         crossings)"
        side w_q o.Telemetry.Burst.o_rel_amplitude
        o.Telemetry.Burst.o_crossings)
    sweep_rows;
  let sweep_row_json (w_q, side, o) =
    Burstcore.Json.Obj
      [
        ("w_q", Burstcore.Json.Float w_q);
        ("side", Burstcore.Json.String side);
        ( "rel_amplitude",
          Burstcore.Json.Float o.Telemetry.Burst.o_rel_amplitude );
        ("frequency_hz", Burstcore.Json.Float o.Telemetry.Burst.o_frequency_hz);
        ("crossings", Burstcore.Json.Int o.Telemetry.Burst.o_crossings);
        ("mean_queue", Burstcore.Json.Float o.Telemetry.Burst.o_mean);
        ("oscillating", Burstcore.Json.Bool o.Telemetry.Burst.o_oscillating);
      ]
  in
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String "reno-red");
        ("foreground", Burstcore.Json.Int k_fg);
        ( "throughput_ratio_min",
          Burstcore.Json.Float hybrid_throughput_ratio_min );
        ( "throughput_ratio_max",
          Burstcore.Json.Float hybrid_throughput_ratio_max );
        ("queue_ratio_min", Burstcore.Json.Float hybrid_queue_ratio_min);
        ("queue_ratio_max", Burstcore.Json.Float hybrid_queue_ratio_max);
        ("loss_abs_tol", Burstcore.Json.Float hybrid_loss_abs_tol);
        ("work_ratio_min", Burstcore.Json.Float hybrid_work_ratio_min);
        ("validation", Burstcore.Json.List validation_rows);
        ("converged", converged_json);
        ( "stability_sweep",
          Burstcore.Json.Obj
            [
              ("flows", Burstcore.Json.Int sweep_n);
              ("foreground", Burstcore.Json.Int hybrid_foreground);
              ( "base_rtt_s",
                Burstcore.Json.Float (C.rtt_prop_s probe_cfg) );
              ("capacity_pps", Burstcore.Json.Float capacity_pps);
              ( "loop_gain",
                Burstcore.Json.Float stability.Fluidmodel.Reno_fluid.loop_gain
              );
              ("wq_critical", Burstcore.Json.Float wq_critical);
              ("rows", Burstcore.Json.List (List.map sweep_row_json sweep_rows));
            ] );
      ]
  in
  Burstcore.Export.write_file "BENCH_hybrid.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "@.wrote BENCH_hybrid.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator primitives                *)

module Micro = struct
  open Bechamel
  open Toolkit

  module Int_heap = Sim_engine.Heap.Make (Int)

  let heap_push_pop =
    Test.make ~name:"heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Int_heap.create () in
           for i = 0 to 99 do
             Int_heap.push h ((i * 7919) mod 101)
           done;
           for _ = 0 to 99 do
             ignore (Int_heap.pop h)
           done))

  let event_queue_cycle =
    Test.make ~name:"event_queue schedule+pop x100"
      (Staged.stage (fun () ->
           let q = Sim_engine.Event_queue.create () in
           for i = 0 to 99 do
             ignore
               (Sim_engine.Event_queue.schedule q
                  (Sim_engine.Time.of_sec (float_of_int ((i * 31) mod 17)))
                  ignore)
           done;
           while Sim_engine.Event_queue.pop q <> None do
             ()
           done))

  let rng_exponential =
    let rng = Sim_engine.Rng.create ~seed:1L in
    Test.make ~name:"rng exponential"
      (Staged.stage (fun () -> ignore (Sim_engine.Rng.exponential rng ~mean:0.1)))

  let red_enqueue_dequeue =
    let rng = Sim_engine.Rng.create ~seed:2L in
    let pool = Netsim.Packet_pool.create () in
    let params = Netsim.Red.default_params ~capacity:50 ~min_th:10. ~max_th:40. in
    let red = Netsim.Red.create ~rng ~pool params in
    (* One live handle recycled through the queue; RED never frees, so a
       drop just leaves it valid for the next iteration. *)
    let packet =
      Netsim.Packet_pool.alloc_data pool ~flow:0 ~src:1 ~dst:0 ~size_bytes:1500
        ~sent_at:Sim_engine.Time.zero ~seq:0 ~is_retransmit:false ()
    in
    Test.make ~name:"red enqueue+dequeue"
      (Staged.stage (fun () ->
           ignore (Netsim.Red.enqueue red ~now:Sim_engine.Time.zero packet);
           ignore (Netsim.Red.dequeue red ~now:Sim_engine.Time.zero)))

  let welford_add =
    let w = Netstats.Welford.create () in
    Test.make ~name:"welford add"
      (Staged.stage (fun () -> Netstats.Welford.add w 1.234))

  let mini_simulation =
    Test.make ~name:"dumbbell 2 clients x 5s"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Burstcore.Config.with_clients Burstcore.Config.default 2) with
               Burstcore.Config.duration_s = 5.;
               warmup_s = 1.;
             }
           in
           ignore (Burstcore.Run.run cfg Burstcore.Scenario.reno)))

  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
      [
        heap_push_pop;
        event_queue_cycle;
        rng_exponential;
        red_enqueue_dequeue;
        welford_add;
        mini_simulation;
      ]

  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    Hashtbl.iter
      (fun _clock per_test ->
        let rows = ref [] in
        Hashtbl.iter
          (fun name ols_result ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (x :: _) -> x
              | _ -> Float.nan
            in
            rows := (name, ns) :: !rows)
          per_test;
        let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
        List.iter
          (fun (name, ns) ->
            if ns > 1e6 then Format.fprintf std "%-40s %12.3f ms/run@." name (ns /. 1e6)
            else if ns > 1e3 then Format.fprintf std "%-40s %12.3f us/run@." name (ns /. 1e3)
            else Format.fprintf std "%-40s %12.1f ns/run@." name ns)
          rows)
      results
end

let run_micro () =
  section "Microbenchmarks (Bechamel)";
  Micro.run ()

let () =
  Arg.parse (Arg.align args) (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if wants "table1" then run_table1 ();
  if wants "figures" then run_figures ();
  if wants "cwnd" then run_cwnd_figures ();
  if wants "queue" then run_queue_occupancy ();
  if wants "ablations" then run_ablations ();
  if wants "selfsim" then run_selfsim ();
  if wants "sync" then run_sync ();
  if wants "fluid" then run_fluid ();
  if wants "parking" then run_parking_lot ();
  if wants "twoway" then run_twoway ();
  if wants "telemetry" then run_telemetry_bench ();
  (* "pdes" is an alias for the parallel section: the sweep fan-out and
     the single-run sharded engine write one BENCH_parallel.json. *)
  if wants "parallel" || wants "pdes" then run_parallel_bench ();
  if wants "alloc" then run_alloc_bench ();
  if wants "flows" then run_flows_bench ();
  if wants "burst" then run_burst_bench ();
  if wants "hybrid" then run_hybrid_bench ();
  if (not !skip_micro) && wants "micro" then run_micro ();
  Format.pp_print_flush std ()
