(* The benchmark harness: regenerates every table and figure of the paper
   (Table 1, Figures 2-13), runs the ablation studies, the self-similarity
   extension, and a Bechamel microbenchmark section for the simulator
   primitives. `dune exec bench/main.exe` runs everything at paper scale
   (~1 minute); `--fast` shrinks runs for smoke testing. *)

let std = Format.std_formatter

let fast = ref false
let skip_micro = ref false
let only : string option ref = ref None

let usage = "main.exe [--fast] [--skip-micro] [--only SECTION]"

let args =
  [
    ("--fast", Arg.Set fast, " reduced scale (60 s runs, sparser sweep)");
    ("--skip-micro", Arg.Set skip_micro, " skip the Bechamel microbenchmarks");
    ( "--only",
      Arg.String (fun s -> only := Some s),
      " run one section: table1 | figures | cwnd | queue | ablations | selfsim | sync | fluid | parking | twoway | telemetry | parallel | alloc | micro" );
  ]

let section name = Format.fprintf std "@.==== %s ====@.@." name

let wants name = match !only with None -> true | Some s -> s = name

(* ------------------------------------------------------------------ *)
(* Paper tables and figures                                            *)

let config () =
  if !fast then { Burstcore.Config.default with duration_s = 60.; warmup_s = 20. }
  else Burstcore.Config.default

let sweep_counts () =
  if !fast then [ 5; 15; 25; 30; 36; 39; 42; 50; 60 ]
  else Burstcore.Figures.default_client_counts

let run_table1 () =
  section "Table 1";
  Burstcore.Figures.table1 std (config ())

let run_figures () =
  section "Figures 2, 3, 4, 13 (one sweep)";
  let cfg = config () in
  let progress label = Format.eprintf "  sweep: %s@." label in
  let sweep = Burstcore.Figures.run_sweep ~progress cfg (sweep_counts ()) in
  Burstcore.Figures.fig2 std sweep cfg;
  Format.fprintf std "@.";
  Burstcore.Figures.fig3 std sweep;
  Format.fprintf std "@.";
  Burstcore.Figures.fig4 std sweep;
  Format.fprintf std "@.";
  Burstcore.Figures.fig13 std sweep

let run_cwnd_figures () =
  section "Figures 5-12 (congestion-window evolution)";
  let cfg = config () in
  List.iter
    (fun (k, scenario, clients) ->
      Burstcore.Figures.fig_cwnd std cfg ~scenario ~clients
        ~label:(Printf.sprintf "Figure %d" k);
      Format.fprintf std "@.")
    Burstcore.Figures.cwnd_figures

let run_queue_occupancy () =
  section "Extension: gateway queue occupancy";
  Burstcore.Figures.queue_occupancy std (config ()) ~clients:30

let run_ablations () =
  section "Ablations";
  let cfg = config () in
  Burstcore.Ablation.buffer_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.red_threshold_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.vegas_alpha_beta_sweep std cfg ~clients:45;
  Format.fprintf std "@.";
  Burstcore.Ablation.cc_comparison std cfg [ 30; 45; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.ecn_comparison std cfg [ 45; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.latency std cfg [ 20; 40; 60 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.cwnd_validation std cfg [ 30; 50 ];
  Format.fprintf std "@.";
  Burstcore.Ablation.pacing std cfg [ 30; 50 ]

let run_selfsim () =
  section "Extension: self-similarity";
  Burstcore.Selfsim.report std (config ())

let run_twoway () =
  section "Extension: two-way traffic (ACK compression)";
  Burstcore.Twoway.report std (Burstcore.Config.with_clients (config ()) 30)

let run_parking_lot () =
  section "Extension: parking-lot topology";
  Burstcore.Parking_lot.report std (config ())

let run_fluid () =
  section "Extension: fluid model vs packet simulation";
  Burstcore.Fluid_compare.report std (config ()) [ 4; 8; 16 ]

let run_sync () =
  section "Extension: congestion-control synchronization";
  let cfg = config () in
  Burstcore.Sync.report std cfg (if !fast then [ 30; 60 ] else [ 20; 30; 40; 50; 60 ]);
  Format.fprintf std "@.";
  Burstcore.Sync.desync_ablation std cfg ~clients:50

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: events/sec with and without a probe             *)

(* Three configurations of the same Reno N=50 run, same seed (so the
   event count is identical and only wall time differs; min-of-N
   suppresses scheduler noise):

   - baseline: no probe at all;
   - probed: a probe with no subscribers (phase timers + run notes);
   - recorded: the probe plus a full-lifecycle ring-buffer flight
     recorder (Drop_oldest, 4Ki records) — the "always-on" shape: a
     bounded last-N window sized to stay cache-resident, unlike the
     Grow configuration --record-out uses for complete captures.

   Committed gates, also re-checked from the JSON by `report-check
   --kind=bench-telemetry` in `make check`:
   - probe overhead vs baseline within [probe_budget_pct], on total wall;
   - recorder overhead vs probed within [recorder_budget_pct], on the
     probe-timed {e run phase} (the recorder's per-run setup constant
     amortizes to nothing at paper-scale durations but would swamp a
     --fast run's few-millisecond wall — the same run-phase discipline
     the alloc bench applies to GC counters). Probed and recorded reps
     are interleaved pairs and the estimate is the {e median} of the
     per-pair deltas. Measured steady state on this workload is ~2-3%;
     the committed budget adds headroom for shared-vCPU jitter, which
     swings individual pairs by +-5% or more on the CI box (measured:
     the same binary's median ranges 1.8-5.5% across invocations). The
     budget is a regression tripwire for the failure modes that matter
     — an accidental allocation, a per-record scan, a boxed float on
     the hot path — all of which cost far more than the headroom. The
     deterministic words/event delta below is the precise gate;
   - recorder minor words/event within [recorder_words_budget] of the
     probed run (the hot path is integer stores into a preallocated
     ring, so the delta must be ~0). *)
let probe_budget_pct = 15.0
let recorder_budget_pct = 8.0
let recorder_words_budget = 0.05

let run_telemetry_bench () =
  section "Telemetry overhead (events/sec)";
  let cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      (* A long-enough simulated horizon that a single run's ~25 ms run
         phase rises above single-vCPU scheduler jitter — at 10 s the
         per-rep deltas are pure noise. Kept the same under --fast: the
         whole section still costs well under a second. *)
      Burstcore.Config.duration_s = 30.;
      warmup_s = 2.;
    }
  in
  let scenario = Burstcore.Scenario.reno in
  let reps = if !fast then 9 else 5 in
  let min_wall f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Telemetry.Perf.wall_clock_s () in
      f ();
      let dt = Telemetry.Perf.wall_clock_s () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let baseline_wall = min_wall (fun () -> ignore (Burstcore.Run.run cfg scenario)) in
  let events = ref 0 in
  let words_per_event probe =
    let words =
      Telemetry.Registry.gauge_value
        (Telemetry.Registry.gauge probe.Telemetry.Probe.registry
           Telemetry.Probe.m_minor_words)
    in
    words /. float_of_int (Stdlib.max 1 (Telemetry.Probe.events_total probe))
  in
  let run_phase_s probe =
    Telemetry.Perf.duration_s probe.Telemetry.Probe.phases "run"
  in
  let probed_words = ref 0. in
  let probed_run = ref infinity in
  let probed_wall = ref infinity in
  let recorded_words = ref 0. in
  let recorded_run = ref infinity in
  let recorded_wall = ref infinity in
  let recorder_records = ref 0 in
  let recorder_dropped = ref 0 in
  let deltas = Array.make reps 0. in
  (* Interleave probed and recorded reps so slow drift (CPU frequency,
     cache state) lands on both configurations alike; each iteration
     contributes one paired run-phase delta. *)
  for rep = 0 to reps - 1 do
    (* Settle major-GC debt from the previous rep so collection work
       does not land inside the next timed run phase. *)
    Gc.full_major ();
    let t0 = Telemetry.Perf.wall_clock_s () in
    let probe = Telemetry.Probe.create () in
    ignore (Burstcore.Run.run ~probe cfg scenario);
    probed_wall := Float.min !probed_wall (Telemetry.Perf.wall_clock_s () -. t0);
    events := Telemetry.Probe.events_total probe;
    probed_words := words_per_event probe;
    let probed_rep_run = run_phase_s probe in
    probed_run := Float.min !probed_run probed_rep_run;
    Gc.full_major ();
    let t0 = Telemetry.Perf.wall_clock_s () in
    let probe = Telemetry.Probe.create () in
    Telemetry.Probe.set_recording probe
      {
        Telemetry.Recorder.capacity = 4096;
        overflow = Telemetry.Recorder.Drop_oldest;
        lifecycle = true;
      };
    ignore (Burstcore.Run.run ~probe cfg scenario);
    recorded_wall :=
      Float.min !recorded_wall (Telemetry.Perf.wall_clock_s () -. t0);
    recorded_words := words_per_event probe;
    let recorded_rep_run = run_phase_s probe in
    recorded_run := Float.min !recorded_run recorded_rep_run;
    deltas.(rep) <-
      (if probed_rep_run > 0. then
         100. *. (recorded_rep_run -. probed_rep_run) /. probed_rep_run
       else 0.);
    let segments = Telemetry.Probe.segments probe in
    recorder_records :=
      List.fold_left
        (fun acc r -> acc + Telemetry.Recorder.total_recorded r)
        0 segments;
    recorder_dropped :=
      List.fold_left
        (fun acc r -> acc + Telemetry.Recorder.total_dropped r)
        0 segments
  done;
  let eps wall = if wall > 0. then float_of_int !events /. wall else 0. in
  let pct over base = if base > 0. then 100. *. (over -. base) /. base else 0. in
  let probe_overhead_pct = pct !probed_wall baseline_wall in
  let recorder_overhead_pct =
    Array.sort Float.compare deltas;
    deltas.(reps / 2)
  in
  let words_delta = !recorded_words -. !probed_words in
  Format.fprintf std "events per run        %12d@." !events;
  Format.fprintf std "baseline (no probe)   %12.0f ev/s  (%.4f s)@."
    (eps baseline_wall) baseline_wall;
  Format.fprintf std "probed                %12.0f ev/s  (%.4f s)@."
    (eps !probed_wall) !probed_wall;
  Format.fprintf std "recorded (lifecycle)  %12.0f ev/s  (%.4f s)@."
    (eps !recorded_wall) !recorded_wall;
  Format.fprintf std "run phase             %12.4f s probed, %.4f s recorded@."
    !probed_run !recorded_run;
  Format.fprintf std "probe overhead        %12.2f %%  (budget %.1f)@."
    probe_overhead_pct probe_budget_pct;
  Format.fprintf std
    "recorder overhead     %12.2f %%  (median of %d pairs, budget %.1f)@."
    recorder_overhead_pct reps recorder_budget_pct;
  Format.fprintf std "recorder words/event  %12.4f  (delta %.4f, budget %.2f)@."
    !recorded_words words_delta recorder_words_budget;
  Format.fprintf std "recorder records      %12d  (%d dropped by ring)@."
    !recorder_records !recorder_dropped;
  let failed = ref false in
  if recorder_overhead_pct > recorder_budget_pct then begin
    Format.eprintf
      "recorder overhead regression: %.2f%% exceeds the committed budget %.1f%%@."
      recorder_overhead_pct recorder_budget_pct;
    failed := true
  end;
  if words_delta > recorder_words_budget then begin
    Format.eprintf
      "recorder allocation regression: %.4f minor words/event over the probed \
       run exceeds the committed budget %.2f@."
      words_delta recorder_words_budget;
    failed := true
  end;
  if !recorder_records = 0 then begin
    Format.eprintf "recorder recorded nothing — instrumentation unwired?@.";
    failed := true
  end;
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String (Burstcore.Scenario.label scenario));
        ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("reps", Burstcore.Json.Int reps);
        ("events", Burstcore.Json.Int !events);
        ("baseline_wall_s", Burstcore.Json.Float baseline_wall);
        ("probed_wall_s", Burstcore.Json.Float !probed_wall);
        ("recorded_wall_s", Burstcore.Json.Float !recorded_wall);
        ("probed_run_s", Burstcore.Json.Float !probed_run);
        ("recorded_run_s", Burstcore.Json.Float !recorded_run);
        ("baseline_events_per_sec", Burstcore.Json.Float (eps baseline_wall));
        ("probed_events_per_sec", Burstcore.Json.Float (eps !probed_wall));
        ("recorded_events_per_sec", Burstcore.Json.Float (eps !recorded_wall));
        ("probe_overhead_pct", Burstcore.Json.Float probe_overhead_pct);
        ("probe_overhead_budget_pct", Burstcore.Json.Float probe_budget_pct);
        ("recorder_overhead_pct", Burstcore.Json.Float recorder_overhead_pct);
        ( "recorder_overhead_budget_pct",
          Burstcore.Json.Float recorder_budget_pct );

        ( "probed_minor_words_per_event",
          Burstcore.Json.Float !probed_words );
        ( "recorded_minor_words_per_event",
          Burstcore.Json.Float !recorded_words );
        ( "recorder_minor_words_per_event_delta",
          Burstcore.Json.Float words_delta );
        ("recorder_words_budget", Burstcore.Json.Float recorder_words_budget);
        ("recorder_records", Burstcore.Json.Int !recorder_records);
        ("recorder_dropped", Burstcore.Json.Int !recorder_dropped);
      ]
  in
  Burstcore.Export.write_file "BENCH_telemetry.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "wrote BENCH_telemetry.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Allocation budget: events/sec and GC words per event                *)

(* One Reno N=50 run, instrumented with [Gc.quick_stat] deltas. The
   committed baseline below was measured on this machine before the
   allocation-free inner loop landed (float Time.t, Int64 RNG, no event
   free-list); the JSON report carries both so regressions and the
   before/after ratios are visible in one file. [make check] runs this
   section and fails when minor words/event exceeds the committed
   threshold. *)

(* Pre-optimisation numbers (seed + PR 2 state), recorded by running
   this very section before the inner-loop rewrite: Reno N=50, 30 s,
   best of 3. The baseline bracketed the whole run with [Gc.quick_stat]
   (run-phase GC counters did not exist yet); at 30 s setup amortises to
   under 0.3 words/event, so it is comparable to the run-phase figures
   measured below. *)
let alloc_baseline_minor_words_per_event = 30.48
let alloc_baseline_events_per_sec = 1_311_337.

(* Per-scenario allocation budgets. The packet-pool rewrite measures
   ~3 minor words/event on Reno/drop-tail (down from 14.16 with heap
   packets); each row gates its own committed ceiling with headroom for
   GC-counter jitter. The primary Reno/drop-tail row also carries the
   committed events/sec floor: 1.15x over the 1.79M ev/s recorded before
   the pool landed. Wall-clock gates are machine-sensitive, so only that
   row has one, and it is enforced only on full-length runs — under
   [--fast] the wall time is a few milliseconds and the ratio is noise,
   so the floor prints as informational there. *)
type alloc_budget = {
  ab_scenario : Burstcore.Scenario.t;
  words_threshold : float;
  min_events_per_sec : float option;
}

let alloc_budgets =
  [
    {
      ab_scenario = Burstcore.Scenario.reno;
      words_threshold = 6.0;
      min_events_per_sec = Some 2_060_000.;
    };
    {
      ab_scenario = Burstcore.Scenario.reno_red;
      words_threshold = 8.0;
      min_events_per_sec = None;
    };
    {
      ab_scenario = Burstcore.Scenario.vegas;
      words_threshold = 8.0;
      min_events_per_sec = None;
    };
  ]

let run_alloc_bench () =
  section "Allocation budget (events/sec, GC words/event)";
  let cfg =
    {
      (Burstcore.Config.with_clients (config ()) 50) with
      (* Full mode simulates long enough that the best-of wall time is a
         few hundred ms — at 30 s the whole run fits in ~50 ms and the
         events/sec figure swings ±20% with scheduler noise. *)
      Burstcore.Config.duration_s = (if !fast then 10. else 180.);
      warmup_s = 2.;
    }
  in
  let reps = if !fast then 3 else 5 in
  (* Same seed every rep: the event count and allocation profile are
     deterministic, only wall time varies; keep the fastest rep. The GC
     figures come from the probe's run-phase counters (what [note_run]
     records), so they cover exactly the inner loop the gate is about —
     setup and metric collection are excluded, which also keeps
     words/event independent of the run duration. Every run also passes
     [Run.run]'s pool-leak check (live handles must drain to zero), so a
     row in the report doubles as a leak-free certificate. *)
  let measure scenario =
    let best_wall = ref infinity in
    let events = ref 0 in
    let minor_words = ref 0. in
    let promoted_words = ref 0. in
    let major_collections = ref 0 in
    for _ = 1 to reps do
      let probe = Telemetry.Probe.create () in
      let t0 = Telemetry.Perf.wall_clock_s () in
      ignore (Burstcore.Run.run ~probe cfg scenario);
      let dt = Telemetry.Perf.wall_clock_s () -. t0 in
      if dt < !best_wall then begin
        let r = probe.Telemetry.Probe.registry in
        best_wall := dt;
        events := Telemetry.Probe.events_total probe;
        minor_words :=
          Telemetry.Registry.gauge_value
            (Telemetry.Registry.gauge r Telemetry.Probe.m_minor_words);
        promoted_words :=
          Telemetry.Registry.gauge_value
            (Telemetry.Registry.gauge r Telemetry.Probe.m_promoted_words);
        major_collections :=
          Telemetry.Registry.counter_value
            (Telemetry.Registry.counter r Telemetry.Probe.m_major_collections)
      end
    done;
    let fe = float_of_int (Stdlib.max 1 !events) in
    let eps = if !best_wall > 0. then fe /. !best_wall else 0. in
    (!events, !best_wall, eps, !minor_words /. fe, !promoted_words /. fe,
     !major_collections)
  in
  let ratio num den = if den > 0. then num /. den else 0. in
  let failed = ref false in
  let rows =
    List.map
      (fun budget ->
        let label = Burstcore.Scenario.label budget.ab_scenario in
        let events, wall, eps, wpe, ppe, majors = measure budget.ab_scenario in
        Format.fprintf std "@.%s@." label;
        Format.fprintf std "  events per run        %12d@." events;
        Format.fprintf std "  wall (best of %d)     %13.4f s@." reps wall;
        Format.fprintf std "  events/sec            %12.0f@." eps;
        Format.fprintf std "  minor words/event     %12.2f  (budget %.2f)@."
          wpe budget.words_threshold;
        Format.fprintf std "  promoted words/event  %12.4f@." ppe;
        Format.fprintf std "  major collections     %12d@." majors;
        if wpe > budget.words_threshold then begin
          Format.eprintf
            "allocation regression (%s): %.2f minor words/event exceeds the \
             committed threshold %.2f@."
            label wpe budget.words_threshold;
          failed := true
        end;
        (match budget.min_events_per_sec with
        | Some floor ->
            Format.fprintf std
              "  baseline words/event  %12.2f  (%.2fx reduction)@."
              alloc_baseline_minor_words_per_event
              (ratio alloc_baseline_minor_words_per_event wpe);
            Format.fprintf std
              "  baseline events/sec   %12.0f  (%.2fx speedup)@."
              alloc_baseline_events_per_sec
              (ratio eps alloc_baseline_events_per_sec);
            if eps < floor then
              if !fast then
                Format.fprintf std
                  "  (events/sec floor %.0f not enforced under --fast)@." floor
              else begin
                Format.eprintf
                  "throughput regression (%s): %.0f events/sec is below the \
                   committed floor %.0f@."
                  label eps floor;
                failed := true
              end
        | None -> ());
        Burstcore.Json.Obj
          [
            ("scenario", Burstcore.Json.String label);
            ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
            ("events", Burstcore.Json.Int events);
            ("wall_s", Burstcore.Json.Float wall);
            ("events_per_sec", Burstcore.Json.Float eps);
            ("minor_words_per_event", Burstcore.Json.Float wpe);
            ("promoted_words_per_event", Burstcore.Json.Float ppe);
            ("major_collections", Burstcore.Json.Int majors);
            ( "threshold_minor_words_per_event",
              Burstcore.Json.Float budget.words_threshold );
            ( "min_events_per_sec",
              match budget.min_events_per_sec with
              | Some f -> Burstcore.Json.Float f
              | None -> Burstcore.Json.Null );
            ("leak_free", Burstcore.Json.Bool true);
          ])
      alloc_budgets
  in
  let json =
    Burstcore.Json.Obj
      [
        ("clients", Burstcore.Json.Int cfg.Burstcore.Config.clients);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("reps", Burstcore.Json.Int reps);
        ( "baseline_minor_words_per_event",
          Burstcore.Json.Float alloc_baseline_minor_words_per_event );
        ( "baseline_events_per_sec",
          Burstcore.Json.Float alloc_baseline_events_per_sec );
        ("rows", Burstcore.Json.List rows);
      ]
  in
  Burstcore.Export.write_file "BENCH_alloc.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "@.wrote BENCH_alloc.json@.";
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* Parallel sweep: sequential vs domain-fanned wall time               *)

(* One replicated Reno sweep, run twice: sequentially and fanned over
   [Domain.recommended_domain_count ()] domains. The two result lists
   must compare equal — the pool guarantees bit-identical metrics — so
   the only thing allowed to change is wall time. Speedup depends on the
   machine; the recorded [domains] field says what was available. *)
let run_parallel_bench () =
  section "Parallel sweep (sequential vs domains)";
  let cfg =
    {
      (config ()) with
      Burstcore.Config.duration_s = (if !fast then 10. else 30.);
      warmup_s = 2.;
    }
  in
  let ns = if !fast then [ 10; 20 ] else [ 10; 20; 30 ] in
  let replicates = 4 in
  let scenario = Burstcore.Scenario.reno in
  let timed f =
    let t0 = Telemetry.Perf.wall_clock_s () in
    let r = f () in
    (r, Telemetry.Perf.wall_clock_s () -. t0)
  in
  let seq, seq_wall =
    timed (fun () -> Burstcore.Sweep.replicated cfg scenario ~replicates ns)
  in
  (* Cap the pool: beyond 8 domains this sweep has fewer points than
     workers, so extra domains only add spawn cost and scheduler noise. *)
  let domains = min 8 (max 1 (Domain.recommended_domain_count ())) in
  let pool_size = ref 1 in
  let par, par_wall =
    timed (fun () ->
        Parallel.Pool.with_pool ~domains (fun pool ->
            pool_size := Parallel.Pool.size pool;
            Burstcore.Sweep.replicated ~pool cfg scenario ~replicates ns))
  in
  let domains = !pool_size in
  let deterministic = par = seq in
  (* With one domain the "parallel" path degrades to an inline map, so
     the ratio measures nothing but noise — report it as skipped rather
     than commit a meaningless (often < 1) figure. *)
  let speedup =
    if domains < 2 || par_wall <= 0. then None else Some (seq_wall /. par_wall)
  in
  Format.fprintf std
    "points                %12d  (%d client counts x %d replicates)@."
    (List.length ns * replicates)
    (List.length ns) replicates;
  Format.fprintf std "domains               %12d@." domains;
  Format.fprintf std "sequential            %12.4f s@." seq_wall;
  Format.fprintf std "parallel              %12.4f s@." par_wall;
  (match speedup with
  | Some s -> Format.fprintf std "speedup               %12.2fx@." s
  | None ->
      Format.fprintf std "speedup               %12s@." "skipped (1 domain)");
  Format.fprintf std "bit-identical results %12s@."
    (if deterministic then "yes" else "NO");
  if not deterministic then begin
    Format.eprintf "parallel sweep diverged from the sequential one@.";
    exit 1
  end;
  (match speedup with
  | Some s when s < 1.05 ->
      Format.fprintf std
        "warning: %d domains yielded only %.2fx — check machine load@." domains
        s
  | Some _ | None -> ());
  let json =
    Burstcore.Json.Obj
      [
        ("scenario", Burstcore.Json.String (Burstcore.Scenario.label scenario));
        ( "clients",
          Burstcore.Json.List (List.map (fun n -> Burstcore.Json.Int n) ns) );
        ("replicates", Burstcore.Json.Int replicates);
        ("duration_s", Burstcore.Json.Float cfg.Burstcore.Config.duration_s);
        ("domains", Burstcore.Json.Int domains);
        ("sequential_wall_s", Burstcore.Json.Float seq_wall);
        ("parallel_wall_s", Burstcore.Json.Float par_wall);
        ( "speedup",
          match speedup with
          | Some s -> Burstcore.Json.Float s
          | None -> Burstcore.Json.Null );
        ("deterministic", Burstcore.Json.Bool deterministic);
      ]
  in
  Burstcore.Export.write_file "BENCH_parallel.json"
    (Burstcore.Json.to_string json ^ "\n");
  Format.fprintf std "wrote BENCH_parallel.json@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator primitives                *)

module Micro = struct
  open Bechamel
  open Toolkit

  module Int_heap = Sim_engine.Heap.Make (Int)

  let heap_push_pop =
    Test.make ~name:"heap push+pop x100"
      (Staged.stage (fun () ->
           let h = Int_heap.create () in
           for i = 0 to 99 do
             Int_heap.push h ((i * 7919) mod 101)
           done;
           for _ = 0 to 99 do
             ignore (Int_heap.pop h)
           done))

  let event_queue_cycle =
    Test.make ~name:"event_queue schedule+pop x100"
      (Staged.stage (fun () ->
           let q = Sim_engine.Event_queue.create () in
           for i = 0 to 99 do
             ignore
               (Sim_engine.Event_queue.schedule q
                  (Sim_engine.Time.of_sec (float_of_int ((i * 31) mod 17)))
                  ignore)
           done;
           while Sim_engine.Event_queue.pop q <> None do
             ()
           done))

  let rng_exponential =
    let rng = Sim_engine.Rng.create ~seed:1L in
    Test.make ~name:"rng exponential"
      (Staged.stage (fun () -> ignore (Sim_engine.Rng.exponential rng ~mean:0.1)))

  let red_enqueue_dequeue =
    let rng = Sim_engine.Rng.create ~seed:2L in
    let pool = Netsim.Packet_pool.create () in
    let params = Netsim.Red.default_params ~capacity:50 ~min_th:10. ~max_th:40. in
    let red = Netsim.Red.create ~rng ~pool params in
    (* One live handle recycled through the queue; RED never frees, so a
       drop just leaves it valid for the next iteration. *)
    let packet =
      Netsim.Packet_pool.alloc_data pool ~flow:0 ~src:1 ~dst:0 ~size_bytes:1500
        ~sent_at:Sim_engine.Time.zero ~seq:0 ~is_retransmit:false ()
    in
    Test.make ~name:"red enqueue+dequeue"
      (Staged.stage (fun () ->
           ignore (Netsim.Red.enqueue red ~now:Sim_engine.Time.zero packet);
           ignore (Netsim.Red.dequeue red ~now:Sim_engine.Time.zero)))

  let welford_add =
    let w = Netstats.Welford.create () in
    Test.make ~name:"welford add"
      (Staged.stage (fun () -> Netstats.Welford.add w 1.234))

  let mini_simulation =
    Test.make ~name:"dumbbell 2 clients x 5s"
      (Staged.stage (fun () ->
           let cfg =
             {
               (Burstcore.Config.with_clients Burstcore.Config.default 2) with
               Burstcore.Config.duration_s = 5.;
               warmup_s = 1.;
             }
           in
           ignore (Burstcore.Run.run cfg Burstcore.Scenario.reno)))

  let tests =
    Test.make_grouped ~name:"primitives" ~fmt:"%s %s"
      [
        heap_push_pop;
        event_queue_cycle;
        rng_exponential;
        red_enqueue_dequeue;
        welford_add;
        mini_simulation;
      ]

  let run () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw_results = Benchmark.all cfg instances tests in
    let results =
      List.map (fun instance -> Analyze.all ols instance raw_results) instances
    in
    let results = Analyze.merge ols instances results in
    Hashtbl.iter
      (fun _clock per_test ->
        let rows = ref [] in
        Hashtbl.iter
          (fun name ols_result ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some (x :: _) -> x
              | _ -> Float.nan
            in
            rows := (name, ns) :: !rows)
          per_test;
        let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) !rows in
        List.iter
          (fun (name, ns) ->
            if ns > 1e6 then Format.fprintf std "%-40s %12.3f ms/run@." name (ns /. 1e6)
            else if ns > 1e3 then Format.fprintf std "%-40s %12.3f us/run@." name (ns /. 1e3)
            else Format.fprintf std "%-40s %12.1f ns/run@." name ns)
          rows)
      results
end

let run_micro () =
  section "Microbenchmarks (Bechamel)";
  Micro.run ()

let () =
  Arg.parse (Arg.align args) (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if wants "table1" then run_table1 ();
  if wants "figures" then run_figures ();
  if wants "cwnd" then run_cwnd_figures ();
  if wants "queue" then run_queue_occupancy ();
  if wants "ablations" then run_ablations ();
  if wants "selfsim" then run_selfsim ();
  if wants "sync" then run_sync ();
  if wants "fluid" then run_fluid ();
  if wants "parking" then run_parking_lot ();
  if wants "twoway" then run_twoway ();
  if wants "telemetry" then run_telemetry_bench ();
  if wants "parallel" then run_parallel_bench ();
  if wants "alloc" then run_alloc_bench ();
  if (not !skip_micro) && wants "micro" then run_micro ();
  Format.pp_print_flush std ()
