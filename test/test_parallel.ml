(* Tests for the domain pool and the determinism guarantee of parallel
   sweeps: fanning points across domains must change nothing but wall
   time. *)

module Pool = Parallel.Pool

(* ------------------------------------------------------------------ *)
(* Pool *)

let pool_create_validates () =
  Alcotest.(check bool) "domains < 1 raises" true
    (try
       ignore (Pool.create ~domains:0);
       false
     with Invalid_argument _ -> true);
  let pool = Pool.create ~domains:1 in
  Alcotest.(check int) "size" 1 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let pool_map_basics () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x * x) [ 3 ]);
      Alcotest.(check (list int))
        "order preserved" [ 2; 4; 6; 8; 10 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3; 4; 5 ]))

let pool_map_reusable () =
  Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 5 do
        let n = 10 * i in
        let expected = List.init n (fun j -> j + 1) in
        Alcotest.(check (list int))
          (Printf.sprintf "map #%d" i)
          expected
          (Pool.map pool (fun x -> x + 1) (List.init n Fun.id))
      done)

exception Boom of int

let pool_map_propagates_exception () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "exception re-raised" true
        (try
           ignore
             (Pool.map pool
                (fun x -> if x = 7 then raise (Boom x) else x)
                (List.init 20 Fun.id));
           false
         with Boom 7 -> true);
      (* The pool survives a failed map. *)
      Alcotest.(check (list int)) "still usable" [ 1; 2; 3 ]
        (Pool.map pool Fun.id [ 1; 2; 3 ]))

let pool_map_after_shutdown_raises () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Alcotest.(check bool) "map after shutdown raises" true
    (try
       ignore (Pool.map pool Fun.id [ 1 ]);
       false
     with Invalid_argument _ -> true)

let pool_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map f = List.map f" ~count:50
    QCheck.(pair (int_range 1 4) (small_list small_int))
    (fun (domains, xs) ->
      let f x = (x * 31) + 7 in
      Pool.with_pool ~domains (fun pool -> Pool.map pool f xs) = List.map f xs)

(* ------------------------------------------------------------------ *)
(* Sweep determinism: domains must not change any result *)

let tiny_config =
  {
    (Burstcore.Config.with_clients Burstcore.Config.default 5) with
    Burstcore.Config.duration_s = 4.;
    warmup_s = 1.;
  }

let ns = [ 2; 4; 6 ]

let metrics_fingerprint ms =
  (* Every field, through the canonical JSON encoding — floats included,
     so any bit-level divergence shows up. *)
  String.concat "\n"
    (List.map
       (fun m -> Burstcore.Json.to_string (Burstcore.Export.metrics_to_json m))
       ms)

let sweep_deterministic_across_domains () =
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.over_clients ~pool tiny_config Burstcore.Scenario.reno ns)
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check string) "metrics bit-identical"
    (metrics_fingerprint seq) (metrics_fingerprint par)

let grid_deterministic_across_domains () =
  let scenarios = [ Burstcore.Scenario.reno; Burstcore.Scenario.vegas ] in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.grid ~pool tiny_config scenarios ns)
  in
  let seq = run 1 and par = run 4 in
  List.iter2
    (fun (s_seq, ms_seq) (s_par, ms_par) ->
      Alcotest.(check bool) "same scenario" true
        (Burstcore.Scenario.equal s_seq s_par);
      Alcotest.(check string)
        ("series bit-identical: " ^ Burstcore.Scenario.label s_seq)
        (metrics_fingerprint ms_seq) (metrics_fingerprint ms_par))
    seq par

let replicated_deterministic_across_domains () =
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.replicated ~pool tiny_config Burstcore.Scenario.reno
          ~replicates:3 ns)
  in
  let seq = run 1 and par = run 4 in
  (* The records are plain floats and ints; (=) is bit-exact here. *)
  Alcotest.(check bool) "replicated records bit-identical" true (seq = par)

let parallel_probe_totals_match_sequential () =
  let totals domains =
    let probe = Telemetry.Probe.create () in
    Pool.with_pool ~domains (fun pool ->
        ignore
          (Burstcore.Sweep.over_clients ~pool ~probe tiny_config
             Burstcore.Scenario.reno ns));
    (Telemetry.Probe.runs_total probe, Telemetry.Probe.events_total probe)
  in
  let seq_runs, seq_events = totals 1 and par_runs, par_events = totals 4 in
  Alcotest.(check int) "runs merge to same total" seq_runs par_runs;
  Alcotest.(check int) "event counts merge to same total" seq_events par_events

let parallel_notify_counts_match () =
  let count domains =
    let seen = Atomic.make 0 in
    Pool.with_pool ~domains (fun pool ->
        ignore
          (Burstcore.Sweep.replicated ~pool
             ~notify:(fun _ -> Atomic.incr seen)
             tiny_config Burstcore.Scenario.reno ~replicates:2 ns));
    Atomic.get seen
  in
  Alcotest.(check int) "notify fires once per point" (count 1) (count 4)

(* ------------------------------------------------------------------ *)
(* Team: the SPMD barrier primitive under the sharded PDES engine *)

let team_create_validates () =
  Alcotest.(check bool) "domains < 1 raises" true
    (try
       ignore (Pool.Team.create ~domains:0);
       false
     with Invalid_argument _ -> true);
  let team = Pool.Team.create ~domains:1 in
  Alcotest.(check int) "size" 1 (Pool.Team.size team);
  (* A one-domain team runs the body inline on the caller. *)
  let ran = ref false in
  Pool.Team.run team (fun rank ->
      Alcotest.(check int) "solo rank" 0 rank;
      ran := true);
  Alcotest.(check bool) "body ran" true !ran;
  Pool.Team.shutdown team;
  Pool.Team.shutdown team (* idempotent *)

let team_lockstep_windows () =
  (* The PDES shape: every rank must see every other rank's pre-barrier
     writes after the rendezvous, window after window, on one team. *)
  Pool.Team.with_team ~domains:4 (fun team ->
      let windows = 8 in
      let arrived = Array.init windows (fun _ -> Atomic.make 0) in
      let ok = Atomic.make true in
      Pool.Team.run team (fun _rank ->
          for w = 0 to windows - 1 do
            Atomic.incr arrived.(w);
            Pool.Team.barrier team;
            if Atomic.get arrived.(w) <> 4 then Atomic.set ok false;
            (* Second barrier keeps a fast rank from racing into the
               next window's increment before everyone has checked. *)
            Pool.Team.barrier team
          done);
      Alcotest.(check bool) "all 4 ranks seen at every window boundary" true
        (Atomic.get ok))

let team_runs_every_rank () =
  Pool.Team.with_team ~domains:3 (fun team ->
      let seen = Array.make 3 false in
      Pool.Team.run team (fun rank -> seen.(rank) <- true);
      Alcotest.(check (list bool))
        "ranks 0..2 each ran" [ true; true; true ]
        (Array.to_list seen))

let team_abort_wakes_blocked_ranks () =
  (* One rank raising mid-window must wake the ranks already parked in
     the barrier with Aborted (no deadlock), re-raise the original
     exception in the caller, and leave the team reusable. *)
  Pool.Team.with_team ~domains:3 (fun team ->
      let aborted_seen = Atomic.make 0 in
      let raised =
        try
          Pool.Team.run team (fun rank ->
              if rank = 1 then raise (Boom 41)
              else begin
                try
                  Pool.Team.barrier team;
                  Pool.Team.barrier team
                with Pool.Team.Aborted ->
                  Atomic.incr aborted_seen;
                  raise Pool.Team.Aborted
              end);
          false
        with Boom 41 -> true
      in
      Alcotest.(check bool) "Boom re-raised in caller" true raised;
      Alcotest.(check int) "both surviving ranks woken with Aborted" 2
        (Atomic.get aborted_seen);
      let sum = Atomic.make 0 in
      Pool.Team.run team (fun rank ->
          ignore (Atomic.fetch_and_add sum rank);
          Pool.Team.barrier team);
      Alcotest.(check int) "team reusable after a failed run" 3
        (Atomic.get sum))

let team_run_after_shutdown_raises () =
  let team = Pool.Team.create ~domains:2 in
  Pool.Team.shutdown team;
  Alcotest.(check bool) "run after shutdown raises" true
    (try
       Pool.Team.run team (fun _ -> ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sharded PDES single-run determinism: the shard count must change
   nothing but wall time *)

let pdes_cfg shards = { tiny_config with Burstcore.Config.shards }

let single_run_fingerprint shards scenario =
  metrics_fingerprint [ Burstcore.Run.run (pdes_cfg shards) scenario ]

let pdes_deterministic_across_shards () =
  List.iter
    (fun scenario ->
      let one = single_run_fingerprint 1 scenario in
      let four = single_run_fingerprint 4 scenario in
      Alcotest.(check string)
        ("1-shard vs 4-shard bit-identical: "
        ^ Burstcore.Scenario.label scenario)
        one four)
    [ Burstcore.Scenario.reno; Burstcore.Scenario.reno_red ]

let pdes_shards_exceeding_clients_clamp () =
  (* More shards than clients must clamp, not crash or diverge. *)
  Alcotest.(check string) "8 shards over 5 clients == 1 shard"
    (single_run_fingerprint 1 Burstcore.Scenario.reno)
    (single_run_fingerprint 8 Burstcore.Scenario.reno)

let pdes_hybrid_deterministic_across_shards () =
  (* The hybrid quantum tick lives on the hub scheduler and reads only
     hub-local state, so enabling fluid background load must leave the
     result invariant under the shard count — bit for bit, like the
     pure-packet path. *)
  let cfg shards =
    { (pdes_cfg shards) with Burstcore.Config.background = 200 }
  in
  let fingerprint shards =
    metrics_fingerprint
      [ Burstcore.Run.run (cfg shards) Burstcore.Scenario.reno_red ]
  in
  Alcotest.(check string)
    "1-shard vs 4-shard bit-identical with background load" (fingerprint 1)
    (fingerprint 4)

let pdes_rejects_prepare_and_udp () =
  Alcotest.(check bool) "?prepare rejected under shards >= 1" true
    (try
       ignore
         (Burstcore.Run.run
            ~prepare:(fun _ -> ())
            (pdes_cfg 2) Burstcore.Scenario.reno);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "UDP rejected under shards >= 1" true
    (try
       ignore (Burstcore.Run.run (pdes_cfg 2) Burstcore.Scenario.udp);
       false
     with Invalid_argument _ -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "create validates" `Quick pool_create_validates;
        Alcotest.test_case "map basics" `Quick pool_map_basics;
        Alcotest.test_case "map reusable" `Quick pool_map_reusable;
        Alcotest.test_case "exception propagation" `Quick
          pool_map_propagates_exception;
        Alcotest.test_case "map after shutdown raises" `Quick
          pool_map_after_shutdown_raises;
      ]
      @ qsuite [ pool_map_equals_list_map ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "over_clients 1 vs 4 domains" `Quick
          sweep_deterministic_across_domains;
        Alcotest.test_case "grid 1 vs 4 domains" `Quick
          grid_deterministic_across_domains;
        Alcotest.test_case "replicated 1 vs 4 domains" `Quick
          replicated_deterministic_across_domains;
        Alcotest.test_case "probe totals merge" `Quick
          parallel_probe_totals_match_sequential;
        Alcotest.test_case "notify count" `Quick parallel_notify_counts_match;
      ] );
    ( "parallel.team",
      [
        Alcotest.test_case "create validates" `Quick team_create_validates;
        Alcotest.test_case "lockstep windows" `Quick team_lockstep_windows;
        Alcotest.test_case "runs every rank" `Quick team_runs_every_rank;
        Alcotest.test_case "abort wakes blocked ranks" `Quick
          team_abort_wakes_blocked_ranks;
        Alcotest.test_case "run after shutdown raises" `Quick
          team_run_after_shutdown_raises;
      ] );
    ( "parallel.pdes",
      [
        Alcotest.test_case "1 vs 4 shards bit-identical" `Quick
          pdes_deterministic_across_shards;
        Alcotest.test_case "shards clamp to clients" `Quick
          pdes_shards_exceeding_clients_clamp;
        Alcotest.test_case "hybrid background bit-identical across shards"
          `Quick pdes_hybrid_deterministic_across_shards;
        Alcotest.test_case "rejects prepare and UDP" `Quick
          pdes_rejects_prepare_and_udp;
      ] );
  ]
