(* Tests for the domain pool and the determinism guarantee of parallel
   sweeps: fanning points across domains must change nothing but wall
   time. *)

module Pool = Parallel.Pool

(* ------------------------------------------------------------------ *)
(* Pool *)

let pool_create_validates () =
  Alcotest.(check bool) "domains < 1 raises" true
    (try
       ignore (Pool.create ~domains:0);
       false
     with Invalid_argument _ -> true);
  let pool = Pool.create ~domains:1 in
  Alcotest.(check int) "size" 1 (Pool.size pool);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let pool_map_basics () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 9 ] (Pool.map pool (fun x -> x * x) [ 3 ]);
      Alcotest.(check (list int))
        "order preserved" [ 2; 4; 6; 8; 10 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3; 4; 5 ]))

let pool_map_reusable () =
  Pool.with_pool ~domains:2 (fun pool ->
      for i = 1 to 5 do
        let n = 10 * i in
        let expected = List.init n (fun j -> j + 1) in
        Alcotest.(check (list int))
          (Printf.sprintf "map #%d" i)
          expected
          (Pool.map pool (fun x -> x + 1) (List.init n Fun.id))
      done)

exception Boom of int

let pool_map_propagates_exception () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check bool) "exception re-raised" true
        (try
           ignore
             (Pool.map pool
                (fun x -> if x = 7 then raise (Boom x) else x)
                (List.init 20 Fun.id));
           false
         with Boom 7 -> true);
      (* The pool survives a failed map. *)
      Alcotest.(check (list int)) "still usable" [ 1; 2; 3 ]
        (Pool.map pool Fun.id [ 1; 2; 3 ]))

let pool_map_after_shutdown_raises () =
  let pool = Pool.create ~domains:2 in
  Pool.shutdown pool;
  Alcotest.(check bool) "map after shutdown raises" true
    (try
       ignore (Pool.map pool Fun.id [ 1 ]);
       false
     with Invalid_argument _ -> true)

let pool_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map f = List.map f" ~count:50
    QCheck.(pair (int_range 1 4) (small_list small_int))
    (fun (domains, xs) ->
      let f x = (x * 31) + 7 in
      Pool.with_pool ~domains (fun pool -> Pool.map pool f xs) = List.map f xs)

(* ------------------------------------------------------------------ *)
(* Sweep determinism: domains must not change any result *)

let tiny_config =
  {
    (Burstcore.Config.with_clients Burstcore.Config.default 5) with
    Burstcore.Config.duration_s = 4.;
    warmup_s = 1.;
  }

let ns = [ 2; 4; 6 ]

let metrics_fingerprint ms =
  (* Every field, through the canonical JSON encoding — floats included,
     so any bit-level divergence shows up. *)
  String.concat "\n"
    (List.map
       (fun m -> Burstcore.Json.to_string (Burstcore.Export.metrics_to_json m))
       ms)

let sweep_deterministic_across_domains () =
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.over_clients ~pool tiny_config Burstcore.Scenario.reno ns)
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check string) "metrics bit-identical"
    (metrics_fingerprint seq) (metrics_fingerprint par)

let grid_deterministic_across_domains () =
  let scenarios = [ Burstcore.Scenario.reno; Burstcore.Scenario.vegas ] in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.grid ~pool tiny_config scenarios ns)
  in
  let seq = run 1 and par = run 4 in
  List.iter2
    (fun (s_seq, ms_seq) (s_par, ms_par) ->
      Alcotest.(check bool) "same scenario" true
        (Burstcore.Scenario.equal s_seq s_par);
      Alcotest.(check string)
        ("series bit-identical: " ^ Burstcore.Scenario.label s_seq)
        (metrics_fingerprint ms_seq) (metrics_fingerprint ms_par))
    seq par

let replicated_deterministic_across_domains () =
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        Burstcore.Sweep.replicated ~pool tiny_config Burstcore.Scenario.reno
          ~replicates:3 ns)
  in
  let seq = run 1 and par = run 4 in
  (* The records are plain floats and ints; (=) is bit-exact here. *)
  Alcotest.(check bool) "replicated records bit-identical" true (seq = par)

let parallel_probe_totals_match_sequential () =
  let totals domains =
    let probe = Telemetry.Probe.create () in
    Pool.with_pool ~domains (fun pool ->
        ignore
          (Burstcore.Sweep.over_clients ~pool ~probe tiny_config
             Burstcore.Scenario.reno ns));
    (Telemetry.Probe.runs_total probe, Telemetry.Probe.events_total probe)
  in
  let seq_runs, seq_events = totals 1 and par_runs, par_events = totals 4 in
  Alcotest.(check int) "runs merge to same total" seq_runs par_runs;
  Alcotest.(check int) "event counts merge to same total" seq_events par_events

let parallel_notify_counts_match () =
  let count domains =
    let seen = Atomic.make 0 in
    Pool.with_pool ~domains (fun pool ->
        ignore
          (Burstcore.Sweep.replicated ~pool
             ~notify:(fun _ -> Atomic.incr seen)
             tiny_config Burstcore.Scenario.reno ~replicates:2 ns));
    Atomic.get seen
  in
  Alcotest.(check int) "notify fires once per point" (count 1) (count 4)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "create validates" `Quick pool_create_validates;
        Alcotest.test_case "map basics" `Quick pool_map_basics;
        Alcotest.test_case "map reusable" `Quick pool_map_reusable;
        Alcotest.test_case "exception propagation" `Quick
          pool_map_propagates_exception;
        Alcotest.test_case "map after shutdown raises" `Quick
          pool_map_after_shutdown_raises;
      ]
      @ qsuite [ pool_map_equals_list_map ] );
    ( "parallel.determinism",
      [
        Alcotest.test_case "over_clients 1 vs 4 domains" `Quick
          sweep_deterministic_across_domains;
        Alcotest.test_case "grid 1 vs 4 domains" `Quick
          grid_deterministic_across_domains;
        Alcotest.test_case "replicated 1 vs 4 domains" `Quick
          replicated_deterministic_across_domains;
        Alcotest.test_case "probe totals merge" `Quick
          parallel_probe_totals_match_sequential;
        Alcotest.test_case "notify count" `Quick parallel_notify_counts_match;
      ] );
  ]
