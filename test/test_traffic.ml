(* Tests for the traffic sources. *)

module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
open Traffic

let collect_arrivals () =
  let log = ref [] in
  let sink sched n = log := (Time.to_sec (Scheduler.now sched), n) :: !log in
  (log, sink)

let poisson_rate_and_count () =
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:1L in
  let log, sink = collect_arrivals () in
  let source =
    Poisson.start sched ~rng ~mean_interarrival:0.1 ~start:Time.zero
      ~until:(Time.of_sec 1000.) ~sink:(sink sched)
  in
  Scheduler.run sched;
  let n = source.Source.generated () in
  Alcotest.(check bool)
    (Printf.sprintf "rate ~ 10/s (got %d in 1000s)" n)
    true
    (n > 9500 && n < 10500);
  Alcotest.(check int) "sink calls match counter" n (List.length !log);
  Alcotest.(check bool) "single packets" true (List.for_all (fun (_, k) -> k = 1) !log)

let poisson_interarrival_distribution () =
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:2L in
  let log, sink = collect_arrivals () in
  ignore
    (Poisson.start sched ~rng ~mean_interarrival:0.5 ~start:Time.zero
       ~until:(Time.of_sec 5000.) ~sink:(sink sched));
  Scheduler.run sched;
  let times = List.rev_map fst !log in
  let gaps =
    match times with
    | [] -> []
    | first :: rest ->
        let _, acc =
          List.fold_left (fun (prev, acc) t -> (t, (t -. prev) :: acc)) (first, []) rest
        in
        acc
  in
  let s = Netstats.Summary.of_list gaps in
  (* Exponential: mean = std = 0.5, cov = 1. *)
  Alcotest.(check (float 0.03)) "mean gap" 0.5 s.Netstats.Summary.mean;
  Alcotest.(check (float 0.05)) "cov ~ 1" 1.0 s.Netstats.Summary.cov

let poisson_stops_at_horizon () =
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:3L in
  let log, sink = collect_arrivals () in
  ignore
    (Poisson.start sched ~rng ~mean_interarrival:0.01 ~start:Time.zero
       ~until:(Time.of_sec 1.) ~sink:(sink sched));
  Scheduler.run sched;
  Alcotest.(check bool) "no arrivals past horizon" true
    (List.for_all (fun (t, _) -> t <= 1.) !log)

let poisson_deterministic_with_seed () =
  let run seed =
    let sched = Scheduler.create () in
    let rng = Rng.create ~seed in
    let log, sink = collect_arrivals () in
    ignore
      (Poisson.start sched ~rng ~mean_interarrival:0.1 ~start:Time.zero
         ~until:(Time.of_sec 10.) ~sink:(sink sched));
    Scheduler.run sched;
    List.rev_map fst !log
  in
  Alcotest.(check bool) "same seed same arrivals" true (run 7L = run 7L);
  Alcotest.(check bool) "different seed differs" true (run 7L <> run 8L)

let cbr_exact_schedule () =
  let sched = Scheduler.create () in
  let log, sink = collect_arrivals () in
  let source =
    Cbr.start sched ~interval:0.25 ~start:Time.zero ~until:(Time.of_sec 1.)
      ~sink:(sink sched)
  in
  Scheduler.run sched;
  Alcotest.(check int) "4 packets in 1s" 4 (source.Source.generated ());
  Alcotest.(check (list (float 1e-9)))
    "at multiples of 0.25"
    [ 0.25; 0.5; 0.75; 1.0 ]
    (List.rev_map fst !log)

let onoff_pareto_generates_with_gaps () =
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:4L in
  let log, sink = collect_arrivals () in
  let params =
    {
      Onoff_pareto.on_shape = 1.5;
      on_mean = 0.5;
      off_shape = 1.5;
      off_mean = 0.5;
      rate = 100.;
    }
  in
  let source =
    Onoff_pareto.start sched ~rng ~params ~start:Time.zero ~until:(Time.of_sec 200.)
      ~sink:(sink sched)
  in
  Scheduler.run sched;
  let n = source.Source.generated () in
  (* Duty cycle ~ 1/2 of rate 100/s: expect very roughly 10000 packets. *)
  Alcotest.(check bool) (Printf.sprintf "plausible volume (%d)" n) true
    (n > 2000 && n < 20000);
  (* Heavy-tailed OFF periods leave long silences: max gap far above the
     10 ms on-interval. *)
  let times = Array.of_list (List.rev_map fst !log) in
  let max_gap = ref 0. in
  for i = 1 to Array.length times - 1 do
    max_gap := Stdlib.max !max_gap (times.(i) -. times.(i - 1))
  done;
  Alcotest.(check bool) "long silences exist" true (!max_gap > 0.5)

let onoff_rejects_infinite_mean () =
  let sched = Scheduler.create () in
  let rng = Rng.create ~seed:5L in
  Alcotest.check_raises "shape <= 1"
    (Invalid_argument "Onoff_pareto.start: shape <= 1 (infinite mean)") (fun () ->
      ignore
        (Onoff_pareto.start sched ~rng
           ~params:
             {
               Onoff_pareto.on_shape = 1.0;
               on_mean = 1.;
               off_shape = 1.5;
               off_mean = 1.;
               rate = 1.;
             }
           ~start:Time.zero ~until:(Time.of_sec 1.) ~sink:ignore))

let bulk_submits_once () =
  let sched = Scheduler.create () in
  let log, sink = collect_arrivals () in
  let source = Bulk.start sched ~size:42 ~start:(Time.of_sec 3.) ~sink:(sink sched) in
  Scheduler.run sched;
  Alcotest.(check int) "generated" 42 (source.Source.generated ());
  match !log with
  | [ (t, n) ] ->
      Alcotest.(check (float 1e-9)) "at start time" 3. t;
      Alcotest.(check int) "all at once" 42 n
  | _ -> Alcotest.fail "expected one submission"

let trace_replay_exact () =
  let sched = Scheduler.create () in
  let log, sink = collect_arrivals () in
  let source =
    Trace_replay.start sched ~gaps:[| 0.5; 0.25; 0.25 |] ~start:Time.zero
      ~until:(Time.of_sec 10.) ~sink:(sink sched) ()
  in
  Scheduler.run sched;
  Alcotest.(check int) "three packets" 3 (source.Source.generated ());
  Alcotest.(check (list (float 1e-9))) "at trace times" [ 0.5; 0.75; 1.0 ]
    (List.rev_map fst !log)

let trace_replay_loops () =
  let sched = Scheduler.create () in
  let log, sink = collect_arrivals () in
  ignore
    (Trace_replay.start sched ~gaps:[| 0.4 |] ~loop:true ~start:Time.zero
       ~until:(Time.of_sec 2.) ~sink:(sink sched) ());
  Scheduler.run sched;
  Alcotest.(check int) "5 repeats in 2s" 5 (List.length !log)

let trace_replay_of_timestamps () =
  Alcotest.(check (array (float 1e-9))) "gaps" [| 1.; 1.5; 0.5 |]
    (Trace_replay.of_timestamps [| 1.; 2.5; 3. |]);
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Trace_replay.of_timestamps: unsorted") (fun () ->
      ignore (Trace_replay.of_timestamps [| 2.; 1. |]))

let suite =
  [
    ( "traffic.poisson",
      [
        Alcotest.test_case "rate and count" `Quick poisson_rate_and_count;
        Alcotest.test_case "exponential interarrivals" `Slow poisson_interarrival_distribution;
        Alcotest.test_case "stops at horizon" `Quick poisson_stops_at_horizon;
        Alcotest.test_case "deterministic per seed" `Quick poisson_deterministic_with_seed;
      ] );
    ( "traffic.cbr", [ Alcotest.test_case "exact schedule" `Quick cbr_exact_schedule ] );
    ( "traffic.onoff_pareto",
      [
        Alcotest.test_case "volume and silences" `Quick onoff_pareto_generates_with_gaps;
        Alcotest.test_case "rejects infinite-mean shapes" `Quick onoff_rejects_infinite_mean;
      ] );
    ( "traffic.bulk", [ Alcotest.test_case "one-shot submission" `Quick bulk_submits_once ] );
    ( "traffic.trace_replay",
      [
        Alcotest.test_case "exact schedule" `Quick trace_replay_exact;
        Alcotest.test_case "looping" `Quick trace_replay_loops;
        Alcotest.test_case "timestamps to gaps" `Quick trace_replay_of_timestamps;
      ] );
  ]
