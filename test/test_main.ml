(* Aggregates every suite into one Alcotest runner. *)

let () =
  Alcotest.run "burstsim"
    (Test_engine.suite @ Test_stats.suite @ Test_net.suite @ Test_transport.suite
   @ Test_traffic.suite @ Test_fluid.suite @ Test_core.suite
   @ Test_telemetry.suite @ Test_parallel.suite)
