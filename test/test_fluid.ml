(* Tests for the fluid-model library: the RK4 integrator against known
   solutions, the Reno/Vegas equilibria against their fixed-point
   equations, and the fluid-vs-packet comparison. *)

open Fluidmodel

let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Ode *)

let ode_exponential_decay () =
  (* dy/dt = -y, y(0) = 1 -> y(t) = e^-t. *)
  let f ~t:_ ~y = [| -.y.(0) |] in
  let y = Ode.integrate f ~y0:[| 1. |] ~t0:0. ~t1:2. ~dt:0.01 in
  check_close 1e-6 "e^-2" (exp (-2.)) y.(0)

let ode_harmonic_oscillator () =
  (* y'' = -y as a system: energy and phase are preserved to RK4 accuracy. *)
  let f ~t:_ ~y = [| y.(1); -.y.(0) |] in
  let y = Ode.integrate f ~y0:[| 1.; 0. |] ~t0:0. ~t1:(2. *. Float.pi) ~dt:0.001 in
  check_close 1e-6 "position after one period" 1. y.(0);
  check_close 1e-6 "velocity after one period" 0. y.(1)

let ode_fourth_order_convergence () =
  (* Halving dt should shrink the error by about 2^4. *)
  let f ~t ~y:_ = [| cos t |] in
  let exact = sin 1.5 in
  let err dt =
    let y = Ode.integrate f ~y0:[| 0. |] ~t0:0. ~t1:1.5 ~dt in
    Float.abs (y.(0) -. exact)
  in
  let e1 = err 0.1 and e2 = err 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "error ratio %.1f ~ 16" (e1 /. e2))
    true
    (e1 /. e2 > 8. && e1 /. e2 < 32.)

let ode_observe_and_project () =
  let seen = ref 0 in
  let f ~t:_ ~y:_ = [| 1. |] in
  let y =
    Ode.integrate
      ~observe:(fun ~t:_ ~y:_ -> incr seen)
      ~project:(fun y -> if y.(0) > 0.5 then y.(0) <- 0.5)
      f ~y0:[| 0. |] ~t0:0. ~t1:1. ~dt:0.1
  in
  check_close 1e-9 "clamped" 0.5 y.(0);
  Alcotest.(check int) "observer called per step + start" 11 !seen

let ode_rejects_bad_args () =
  let f ~t:_ ~y:_ = [| 0. |] in
  Alcotest.check_raises "dt" (Invalid_argument "Ode.integrate: dt <= 0") (fun () ->
      ignore (Ode.integrate f ~y0:[| 0. |] ~t0:0. ~t1:1. ~dt:0.));
  Alcotest.check_raises "t1" (Invalid_argument "Ode.integrate: t1 < t0") (fun () ->
      ignore (Ode.integrate f ~y0:[| 0. |] ~t0:1. ~t1:0. ~dt:0.1))

(* --- in-place RK4 stepper ----------------------------------------- *)

(* A stiff-ish nonlinear 2-d system exercising both components and the
   time argument. Allocating and in-place forms of the same field. *)
let vdp_alloc ~t ~y = [| y.(1); ((1. -. (y.(0) *. y.(0))) *. y.(1)) -. y.(0) +. sin t |]

let vdp_in_place ~t ~y ~dy =
  dy.(0) <- y.(1);
  dy.(1) <- ((1. -. (y.(0) *. y.(0))) *. y.(1)) -. y.(0) +. sin t

let ode_step_in_place_bit_identical () =
  (* The in-place stepper's stage arithmetic is expression-identical to
     [rk4_step], so the results must agree bit for bit — not just to
     tolerance — over many steps. *)
  let y_ref = ref [| 2.; 0. |] in
  let y = [| 2.; 0. |] in
  let s = Ode.stepper 2 in
  for i = 0 to 199 do
    let t = 0.05 *. float_of_int i in
    y_ref := Ode.rk4_step vdp_alloc ~t ~dt:0.05 !y_ref;
    Ode.step_in_place s vdp_in_place ~t ~dt:0.05 y;
    Array.iteri
      (fun j v ->
        Alcotest.(check bool)
          (Printf.sprintf "step %d component %d bit-identical" i j)
          true
          (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float !y_ref.(j))))
      y
  done

let ode_step_in_place_golden () =
  (* Golden vectors pinned from the expression-identical [rk4_step]:
     exponential decay (one step, exact RK4 polynomial) and 10 steps of
     the forced Van der Pol system above. *)
  let s = Ode.stepper 2 in
  let y = [| 1. |] in
  Ode.step_in_place s (fun ~t:_ ~y ~dy -> dy.(0) <- -.y.(0)) ~t:0. ~dt:0.5 y;
  (* 1 - 1/2 + 1/8 - 1/48 + 1/384 = RK4's quartic truncation of e^-0.5. *)
  check_close 1e-15 "decay one step" 0.6067708333333333 y.(0);
  let y = [| 2.; 0. |] in
  for i = 0 to 9 do
    Ode.step_in_place s vdp_in_place ~t:(0.1 *. float_of_int i) ~dt:0.1 y
  done;
  check_close 1e-12 "vdp position" 1.6106899418778762 y.(0);
  check_close 1e-12 "vdp velocity" (-0.49467209532545381) y.(1)

let ode_stepper_validates () =
  Alcotest.check_raises "dim" (Invalid_argument "Ode.stepper: dim <= 0")
    (fun () -> ignore (Ode.stepper 0));
  let s = Ode.stepper 1 in
  Alcotest.check_raises "dimension exceeded"
    (Invalid_argument "Ode.step_in_place: state exceeds stepper dimension")
    (fun () -> Ode.step_in_place s vdp_in_place ~t:0. ~dt:0.1 [| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* Reno fluid *)

let table1_reno flows =
  Reno_fluid.of_table1 ~flows ~capacity_pps:416.67 ~base_rtt_s:1.
    ~buffer_packets:50.

let reno_equilibrium_golden () =
  (* Golden equilibrium for the Table 1 Reno/RED shape at 8 flows,
     pinned to 1e-9 so any change to the integrator (including the
     in-place stepper refactor) that perturbs the fluid fixed point is
     caught immediately. *)
  let eq = Reno_fluid.equilibrium (table1_reno 8) in
  check_close 1e-9 "window" 53.464937705775021 eq.Reno_fluid.eq_window;
  check_close 1e-9 "queue" 11.049501646795884 eq.Reno_fluid.eq_queue;
  check_close 1e-9 "throughput" 416.66999999941964 eq.Reno_fluid.eq_throughput_pps

let reno_fluid_fixed_point () =
  (* At equilibrium dw/dt = 0 gives w = sqrt(2/p). *)
  let eq = Reno_fluid.equilibrium (table1_reno 8) in
  Alcotest.(check bool) "loss positive" true (eq.Reno_fluid.eq_loss > 0.);
  let w_expected = sqrt (2. /. eq.Reno_fluid.eq_loss) in
  check_close (0.05 *. w_expected) "w = sqrt(2/p)" w_expected eq.Reno_fluid.eq_window

let reno_fluid_fills_the_pipe () =
  let eq = Reno_fluid.equilibrium (table1_reno 8) in
  Alcotest.(check bool) "throughput near capacity" true
    (eq.Reno_fluid.eq_throughput_pps > 0.95 *. 416.67
    && eq.Reno_fluid.eq_throughput_pps < 1.05 *. 416.67);
  Alcotest.(check bool) "queue inside RED band" true
    (eq.Reno_fluid.eq_queue > 0. && eq.Reno_fluid.eq_queue < 40.)

let reno_fluid_window_scales_inversely () =
  let w n = (Reno_fluid.equilibrium (table1_reno n)).Reno_fluid.eq_window in
  Alcotest.(check bool) "w(4) ~ 2 w(8)" true
    (w 4 /. w 8 > 1.6 && w 4 /. w 8 < 2.4)

let reno_fluid_trajectory_shape () =
  let traj = Reno_fluid.simulate (table1_reno 8) ~horizon:50. in
  Alcotest.(check bool) "samples recorded" true (Array.length traj.Reno_fluid.times > 100);
  (* Slow-start-ish growth at the beginning, stable at the end. *)
  let n = Array.length traj.Reno_fluid.window in
  Alcotest.(check bool) "window grew" true
    (traj.Reno_fluid.window.(n - 1) > traj.Reno_fluid.window.(0))

let reno_fluid_validates () =
  Alcotest.check_raises "flows" (Invalid_argument "Reno_fluid: flows < 1") (fun () ->
      ignore (Reno_fluid.equilibrium (table1_reno 0)))

(* ------------------------------------------------------------------ *)
(* Vegas fluid *)

let table1_vegas flows buffer =
  {
    Vegas_fluid.flows;
    capacity_pps = 416.67;
    base_rtt_s = 1.;
    buffer_packets = buffer;
    alpha = 1.;
    beta = 3.;
  }

let vegas_fluid_equilibrium () =
  let eq = Vegas_fluid.equilibrium (table1_vegas 8 50.) in
  check_close 1e-9 "queue = n (a+b)/2" 16. eq.Vegas_fluid.eq_queue;
  Alcotest.(check bool) "not overloaded" false eq.Vegas_fluid.overloaded;
  check_close 1e-6 "full capacity" 416.67 eq.Vegas_fluid.eq_throughput_pps;
  (* w = c r0 / n + d = 52.08 + 2 *)
  check_close 0.01 "window" ((416.67 /. 8.) +. 2.) eq.Vegas_fluid.eq_window

let vegas_fluid_overload_flag () =
  (* 60 flows want >= 60 queued packets; a 50-packet buffer cannot. *)
  let eq = Vegas_fluid.equilibrium (table1_vegas 60 50.) in
  Alcotest.(check bool) "overloaded" true eq.Vegas_fluid.overloaded;
  check_close 1e-9 "queue pinned at buffer" 50. eq.Vegas_fluid.eq_queue;
  check_close 1e-9 "min buffer" 60. (Vegas_fluid.min_buffer (table1_vegas 60 50.))

let vegas_fluid_validates () =
  Alcotest.check_raises "alpha/beta" (Invalid_argument "Vegas_fluid: bad alpha/beta")
    (fun () ->
      ignore (Vegas_fluid.equilibrium { (table1_vegas 8 50.) with Vegas_fluid.beta = 0.5 }))

(* ------------------------------------------------------------------ *)
(* Fluid vs packet simulation *)

let fluid_matches_packet_vegas () =
  let cfg = { Burstcore.Config.default with duration_s = 120. } in
  let c = Burstcore.Fluid_compare.compare_vegas cfg ~flows:8 in
  let ratio = c.Burstcore.Fluid_compare.measured_window /. c.Burstcore.Fluid_compare.fluid_window in
  Alcotest.(check bool)
    (Printf.sprintf "window ratio %.3f within 10%%" ratio)
    true
    (ratio > 0.9 && ratio < 1.1);
  let qratio = c.Burstcore.Fluid_compare.measured_queue /. c.Burstcore.Fluid_compare.fluid_queue in
  Alcotest.(check bool)
    (Printf.sprintf "queue ratio %.3f within 30%%" qratio)
    true
    (qratio > 0.7 && qratio < 1.3)

let fluid_matches_packet_reno_window () =
  let cfg = { Burstcore.Config.default with duration_s = 120. } in
  let c = Burstcore.Fluid_compare.compare_reno cfg ~flows:8 in
  let ratio = c.Burstcore.Fluid_compare.measured_window /. c.Burstcore.Fluid_compare.fluid_window in
  Alcotest.(check bool)
    (Printf.sprintf "window ratio %.3f within 25%%" ratio)
    true
    (ratio > 0.75 && ratio < 1.25)

let suite =
  [
    ( "fluid.ode",
      [
        Alcotest.test_case "exponential decay" `Quick ode_exponential_decay;
        Alcotest.test_case "harmonic oscillator" `Quick ode_harmonic_oscillator;
        Alcotest.test_case "fourth-order convergence" `Quick ode_fourth_order_convergence;
        Alcotest.test_case "observe and project" `Quick ode_observe_and_project;
        Alcotest.test_case "argument validation" `Quick ode_rejects_bad_args;
        Alcotest.test_case "in-place stepper bit-identical" `Quick
          ode_step_in_place_bit_identical;
        Alcotest.test_case "in-place stepper golden vectors" `Quick
          ode_step_in_place_golden;
        Alcotest.test_case "stepper validation" `Quick ode_stepper_validates;
      ] );
    ( "fluid.reno",
      [
        Alcotest.test_case "fixed point w = sqrt(2/p)" `Quick reno_fluid_fixed_point;
        Alcotest.test_case "fills the pipe" `Quick reno_fluid_fills_the_pipe;
        Alcotest.test_case "window scales with 1/n" `Quick reno_fluid_window_scales_inversely;
        Alcotest.test_case "trajectory shape" `Quick reno_fluid_trajectory_shape;
        Alcotest.test_case "validation" `Quick reno_fluid_validates;
        Alcotest.test_case "equilibrium golden" `Quick reno_equilibrium_golden;
      ] );
    ( "fluid.vegas",
      [
        Alcotest.test_case "equilibrium" `Quick vegas_fluid_equilibrium;
        Alcotest.test_case "overload flag" `Quick vegas_fluid_overload_flag;
        Alcotest.test_case "validation" `Quick vegas_fluid_validates;
      ] );
    ( "fluid.vs_packet",
      [
        Alcotest.test_case "vegas agreement" `Slow fluid_matches_packet_vegas;
        Alcotest.test_case "reno window agreement" `Slow fluid_matches_packet_reno_window;
      ] );
  ]
